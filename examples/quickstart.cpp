//===-- examples/quickstart.cpp - Medley in five minutes ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: train the experts, co-execute a NAS target with an external
// workload on a dynamic 32-core machine, and compare the mixture-of-experts
// policy against the OpenMP default and the adaptive baselines.
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"

#include <iostream>

using namespace medley;

int main() {
  std::cout << "Medley quickstart\n=================\n\n";

  // 1. Train the experts (one-off; NAS programs on 12- and 32-core
  //    platforms, split by scaling behaviour as in the paper's Figure 5).
  exp::PolicySet &Policies = exp::PolicySet::instance();
  std::cout << "Trained experts (4-expert mixture):\n";
  for (const core::Expert &E : *Policies.experts(4))
    std::cout << "  " << E.name() << ": " << E.description()
              << "  (mean training ||e|| = " << E.meanTrainingEnv() << ")\n";
  std::cout << '\n';

  // 2. Pick a dynamic scenario: the target co-executes with a small
  //    external workload while processor availability changes every 20 s.
  exp::Driver Driver;
  exp::Scenario Scen = exp::Scenario::smallLow();

  // 3. Compare policies on one target program.
  const std::string Target = "lu";
  std::vector<std::string> Names = {"online", "offline", "analytic",
                                    "mixture"};
  std::vector<double> Speedups;
  for (const std::string &Name : Names)
    Speedups.push_back(
        Driver.speedup(Target, Policies.factory(Name), Scen));

  std::cout << "Speedup over the OpenMP default for target '" << Target
            << "' (" << Scen.Name << "):\n";
  exp::printBars(std::cout, "", Names, Speedups);
  return 0;
}
