//===-- examples/dynamic_coexecution.cpp - A shared-machine scenario ------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The scenario the paper's introduction motivates: your parallel program no
// longer owns the machine. Here an irregular NAS solver (cg) shares a
// 32-core box with a churning mix of co-runners while processors come and
// go. We run it under the OpenMP default and under the mixture-of-experts
// policy, print a timeline of what the mixture decided as conditions
// changed, and compare completion times.
//
//===----------------------------------------------------------------------===//

#include "exp/PolicySet.h"
#include "runtime/CoExecution.h"
#include "support/StringUtils.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

runtime::CoExecutionConfig sharedMachine() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  // Processors drop and recover every 15 seconds.
  Config.Availability = [] {
    return sim::PeriodicAvailability::standardLadder(32, 15.0, 0xD1CE);
  };
  Config.WorkloadSeed = 0xD1CE;
  Config.WorkloadMaxThreads = 10;
  Config.RecordTraces = true;
  Config.MaxTime = 600.0;
  return Config;
}

} // namespace

int main() {
  std::cout << "Dynamic co-execution: cg sharing the machine with "
               "{bt, equake, is, art}\n\n";

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const workload::ProgramSpec &Target = workload::Catalog::byName("cg");
  std::vector<std::string> CoRunners = {"bt", "equake", "is", "art"};

  // Run under the OpenMP default.
  auto Default = Policies.factory("default")();
  runtime::CoExecutionResult DefaultRun = runCoExecution(
      sharedMachine(), Target, *Default,
      runtime::patternWorkload(CoRunners));

  // Identical machine and workload, mixture policy.
  auto Mixture = Policies.factory("mixture")();
  runtime::CoExecutionResult MixtureRun = runCoExecution(
      sharedMachine(), Target, *Mixture,
      runtime::patternWorkload(CoRunners));

  // Sample the mixture's behaviour every 4 seconds.
  std::cout << "   t  cores  workload  chosen n\n";
  std::cout << "--------------------------------\n";
  size_t D = 0;
  for (double T = 0.0; T < MixtureRun.TargetTime; T += 4.0) {
    size_t Tick = std::min(MixtureRun.Trace.size() - 1,
                           static_cast<size_t>(T / 0.1));
    while (D + 1 < MixtureRun.TargetDecisions.size() &&
           MixtureRun.TargetDecisions[D + 1].Time <= T)
      ++D;
    std::cout << padLeft(formatDouble(T, 0), 4) << "  "
              << padLeft(std::to_string(MixtureRun.Trace[Tick].AvailableCores), 5)
              << "  "
              << padLeft(std::to_string(MixtureRun.Trace[Tick].WorkloadThreads), 8)
              << "  "
              << padLeft(std::to_string(MixtureRun.TargetDecisions[D].Threads), 8)
              << '\n';
  }

  std::cout << "\nOpenMP default: " << formatDouble(DefaultRun.TargetTime, 1)
            << " s\n";
  std::cout << "mixture:        " << formatDouble(MixtureRun.TargetTime, 1)
            << " s  ("
            << formatDouble(DefaultRun.TargetTime / MixtureRun.TargetTime, 2)
            << "x)\n";
  std::cout << "co-runner throughput: default "
            << formatDouble(DefaultRun.WorkloadThroughput, 2) << ", mixture "
            << formatDouble(MixtureRun.WorkloadThroughput, 2)
            << " work units/s (the win-win of Result 3)\n";
  return 0;
}
