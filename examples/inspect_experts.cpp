//===-- examples/inspect_experts.cpp - Look inside the mixture ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Inspects the trained experts: the Figure-5 scalability split, each
// expert's regression weights and cross-validated accuracy, and how closely
// the mixture's decisions track the oracle in a dynamic run.
//
//===----------------------------------------------------------------------===//

#include "core/MixtureOfExperts.h"
#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "ml/CrossValidation.h"
#include "support/Table.h"

#include <cmath>
#include <iostream>

using namespace medley;

int main() {
  exp::PolicySet &Policies = exp::PolicySet::instance();
  core::ExpertBuilder &Builder = Policies.builder();

  // 1. The Figure-5 split: which programs count as scalable.
  Table Split("Training-program scalability (isolated speedup, P/4 rule)");
  Split.addRow({"program", "cores", "speedup", "scalable"});
  for (const core::ScalabilityEntry &E : Builder.scalabilityTable()) {
    Split.addRow();
    Split.addCell(E.Program);
    Split.addCell(E.PlatformCores);
    Split.addCell(E.IsolatedSpeedup);
    Split.addCell(E.Scalable ? "yes" : "no");
  }
  Split.print(std::cout);
  std::cout << '\n';

  // 2. Per-expert model quality (leave-one-program-out accuracy).
  std::cout << "Corpus: " << Builder.samples().size()
            << " labelled decisions\n\n";
  Table Quality("Expert model quality");
  Quality.addRow({"expert", "role", "samples", "w acc", "w R2", "m acc",
                  "m R2"});
  for (const core::BuiltExpert &B : Policies.builtExperts(4)) {
    AccuracyOptions Acc;
    Acc.RelativeTolerance = 0.25;
    Acc.AbsoluteTolerance = 2.0;
    Quality.addRow();
    Quality.addCell(B.E.name());
    Quality.addCell(B.E.description());
    Quality.addCell(static_cast<unsigned>(B.ThreadData.size()));
    Quality.addCell(leaveOneGroupOut(B.ThreadData, {}, Acc).Accuracy);
    Quality.addCell(B.E.threadModel()->trainingR2());
    AccuracyOptions EnvAcc;
    EnvAcc.RelativeTolerance = 0.2;
    EnvAcc.AbsoluteTolerance = 0.05;
    Quality.addCell(leaveOneGroupOut(B.EnvData, {}, EnvAcc).Accuracy);
    Quality.addCell(B.E.envModel()->trainingR2());
  }
  Quality.print(std::cout);
  std::cout << '\n';

  // 3. How far from the oracle do the deployed policies land?
  exp::Driver Driver;
  exp::Scenario Scen = exp::Scenario::largeLow();
  Table Compare("Speedup over default, large/low scenario (spot check)");
  Compare.addRow({"target", "offline", "analytic", "mixture"});
  for (const char *Target : {"lu", "cg", "ep", "mg"}) {
    Compare.addRow();
    Compare.addCell(Target);
    for (const char *Policy : {"offline", "analytic", "mixture"})
      Compare.addCell(Driver.speedup(Target, Policies.factory(Policy), Scen));
  }
  Compare.print(std::cout);
  return 0;
}
