//===-- examples/custom_program.cpp - Mapping your own application ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// A downstream-user story: describe *your own* parallel application as a
// sequence of regions (the information an OpenMP compiler has anyway:
// instruction mix per loop plus measured behaviour), and let the trained
// mixture map it on a shared machine. The program here is a made-up video
// analytics pipeline — decode (memory-streaming), detect (compute), track
// (synchronisation-heavy) — nothing like the NAS training programs.
//
//===----------------------------------------------------------------------===//

#include "exp/PolicySet.h"
#include "runtime/CoExecution.h"
#include "support/StringUtils.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

workload::ProgramSpec videoPipeline() {
  workload::ProgramSpec Spec;
  Spec.Name = "video-pipeline";
  Spec.Suite = "user";
  Spec.Iterations = 80; // Frames.
  Spec.WorkingSetMb = 900.0;

  workload::RegionSpec Decode;
  Decode.Name = "decode";
  Decode.Work = 1.0;
  Decode.ParallelFraction = 0.96;
  Decode.SyncCost = 0.004;
  Decode.MemIntensity = 0.85; // Streams compressed frames.
  Decode.Code = {0.61, 0.25, 0.10};

  workload::RegionSpec Detect;
  Detect.Name = "detect";
  Detect.Work = 2.2;
  Detect.ParallelFraction = 0.995;
  Detect.SyncCost = 0.001;
  Detect.MemIntensity = 0.20; // Compute-dense convolutions.
  Detect.Code = {0.29, 0.55, 0.06};

  workload::RegionSpec Track;
  Track.Name = "track";
  Track.Work = 0.8;
  Track.ParallelFraction = 0.93;
  Track.SyncCost = 0.030; // Data-dependent association, barriers.
  Track.MemIntensity = 0.45;
  Track.Code = {0.45, 0.20, 0.23};

  Spec.Regions = {Decode, Detect, Track};
  return Spec;
}

runtime::CoExecutionConfig sharedMachine() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [] {
    return sim::PeriodicAvailability::standardLadder(32, 20.0, 0x1DE0);
  };
  Config.WorkloadSeed = 0x1DE0;
  Config.WorkloadMaxThreads = 10;
  Config.MaxTime = 900.0;
  return Config;
}

double runUnder(const policy::PolicyFactory &Factory,
                const workload::ProgramSpec &Spec) {
  auto Policy = Factory();
  return runCoExecution(sharedMachine(), Spec, *Policy,
                        runtime::patternWorkload({"cg", "bt", "swim"}))
      .TargetTime;
}

} // namespace

int main() {
  std::cout << "Mapping a user-defined program (video analytics pipeline)\n"
               "==========================================================\n\n";

  workload::ProgramSpec Pipeline = videoPipeline();
  std::cout << "regions:\n";
  for (const workload::RegionSpec &R : Pipeline.Regions)
    std::cout << "  " << padRight(R.Name, 8) << " work/frame=" << R.Work
              << "  phi=" << R.ParallelFraction << "  sync=" << R.SyncCost
              << "  mem=" << R.MemIntensity << '\n';

  exp::PolicySet &Policies = exp::PolicySet::instance();
  std::cout << "\ncompletion time sharing the machine with {cg, bt, swim}:\n";
  double Default = runUnder(Policies.factory("default"), Pipeline);
  for (const std::string &Name : {std::string("default"),
                                  std::string("online"),
                                  std::string("analytic"),
                                  std::string("mixture")}) {
    double T = Name == "default" ? Default
                                 : runUnder(Policies.factory(Name), Pipeline);
    std::cout << "  " << padRight(Name, 9) << formatDouble(T, 1) << " s  ("
              << formatDouble(Default / T, 2) << "x)\n";
  }
  std::cout << "\nThe experts were trained on NAS programs only — the "
               "pipeline is unseen,\njust like the SpecOMP/Parsec targets "
               "of the paper's evaluation.\n";
  return 0;
}
