//===-- examples/custom_expert.cpp - Extending the mixture ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Section 5.1: "Any (potentially external) expert that determines these
// two parameters, via whatever means, can be included in the existing
// mixture." This example adds a fifth, hand-trained specialist to the
// standard four: an expert fitted only to memory-bandwidth-bound training
// samples. The selector discovers online when the newcomer's environment
// predictions are the most accurate and routes decisions to it — no
// retraining of the existing experts required.
//
//===----------------------------------------------------------------------===//

#include "core/MixtureOfExperts.h"
#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "support/StringUtils.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  std::cout << "Adding a custom expert to the mixture\n"
               "=====================================\n\n";

  exp::PolicySet &Policies = exp::PolicySet::instance();
  core::ExpertBuilder &Builder = Policies.builder();

  // 1. Build the specialist's training set: decisions whose loops were
  //    memory-hungry (high load/store density, feature f1).
  Dataset ThreadData(policy::featureNames());
  Dataset EnvData(policy::featureNames());
  for (const core::TrainingSample &S : Builder.samples()) {
    if (S.Features[0] < 0.48) // f1: load/store density.
      continue;
    ThreadData.add(S.Features, S.BestThreads, S.Program);
    if (S.HasNextEnv)
      EnvData.add(S.Features, S.NextEnvNorm, S.Program);
  }
  std::cout << "memory-bound specialist: " << ThreadData.size()
            << " thread samples, " << EnvData.size() << " env samples\n";

  // 2. Fit its (w, m) pair — any modelling technique would do; we reuse
  //    the least-squares trainer.
  FeatureScaler Shared = Builder.featureScaler();
  LinearModelOptions WOptions;
  WOptions.Ridge = 1e-3;
  WOptions.SharedScaler = &Shared;
  LinearModelOptions MOptions;
  MOptions.Ridge = 0.3 * static_cast<double>(EnvData.size());
  auto W = trainLinearModel(ThreadData, "w:memory-bound", WOptions);
  auto M = trainLinearModel(EnvData, "m:memory-bound", MOptions);
  if (!W || !M) {
    std::cerr << "failed to train the custom expert\n";
    return 1;
  }
  core::Expert Custom("E5", "memory-bound specialist", *W, *M,
                      mean(EnvData.targets()));

  // 3. Splice it into the standard 4-expert set.
  auto Extended = std::make_shared<std::vector<core::Expert>>(
      *Policies.experts(4));
  Extended->push_back(Custom);

  policy::PolicyFactory ExtendedMixture = [Extended]() {
    // The newcomer carries no regime tag; the accuracy selector ranks all
    // five purely by recent environment error.
    return std::make_unique<core::MixtureOfExperts>(
        Extended, std::make_unique<core::AccuracySelector>(5));
  };

  // 4. Compare 4 vs 4+1 experts on memory-bound targets under a heavy
  //    workload.
  exp::Driver Driver;
  exp::Scenario Scen = exp::Scenario::largeLow();
  std::cout << "\nspeedup over OpenMP default (large/low):\n";
  std::cout << "target        4 experts   4+custom\n";
  std::cout << "-----------------------------------\n";
  for (const char *Target : {"ft", "mg", "art", "equake", "cg"}) {
    double Base =
        Driver.speedup(Target, Policies.mixtureFactory(4, "accuracy"), Scen);
    double Ext = Driver.speedup(Target, ExtendedMixture, Scen);
    std::cout << padRight(Target, 12) << "  " << padLeft(formatDouble(Base, 2), 8)
              << "  " << padLeft(formatDouble(Ext, 2), 9) << '\n';
  }
  std::cout << "\nThe selector only uses the newcomer where its environment "
               "predictions win;\nno existing expert was retrained "
               "(Section 5.1's graceful extension).\n";
  return 0;
}
