file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13b_adaptive_workloads.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig13b_adaptive_workloads.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig13b_adaptive_workloads.dir/bench_fig13b_adaptive_workloads.cpp.o"
  "CMakeFiles/bench_fig13b_adaptive_workloads.dir/bench_fig13b_adaptive_workloads.cpp.o.d"
  "bench_fig13b_adaptive_workloads"
  "bench_fig13b_adaptive_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_adaptive_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
