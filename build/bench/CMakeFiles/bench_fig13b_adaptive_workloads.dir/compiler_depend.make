# Empty compiler generated dependencies file for bench_fig13b_adaptive_workloads.
# This may be replaced when dependencies are built.
