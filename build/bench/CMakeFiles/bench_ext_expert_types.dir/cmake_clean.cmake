file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_expert_types.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_ext_expert_types.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_ext_expert_types.dir/bench_ext_expert_types.cpp.o"
  "CMakeFiles/bench_ext_expert_types.dir/bench_ext_expert_types.cpp.o.d"
  "bench_ext_expert_types"
  "bench_ext_expert_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_expert_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
