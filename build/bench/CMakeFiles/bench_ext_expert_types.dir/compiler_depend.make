# Empty compiler generated dependencies file for bench_ext_expert_types.
# This may be replaced when dependencies are built.
