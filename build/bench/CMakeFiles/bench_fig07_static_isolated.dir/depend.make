# Empty dependencies file for bench_fig07_static_isolated.
# This may be replaced when dependencies are built.
