file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_static_isolated.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig07_static_isolated.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig07_static_isolated.dir/bench_fig07_static_isolated.cpp.o"
  "CMakeFiles/bench_fig07_static_isolated.dir/bench_fig07_static_isolated.cpp.o.d"
  "bench_fig07_static_isolated"
  "bench_fig07_static_isolated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_static_isolated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
