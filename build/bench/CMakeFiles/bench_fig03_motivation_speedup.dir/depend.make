# Empty dependencies file for bench_fig03_motivation_speedup.
# This may be replaced when dependencies are built.
