file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_motivation_speedup.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig03_motivation_speedup.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig03_motivation_speedup.dir/bench_fig03_motivation_speedup.cpp.o"
  "CMakeFiles/bench_fig03_motivation_speedup.dir/bench_fig03_motivation_speedup.cpp.o.d"
  "bench_fig03_motivation_speedup"
  "bench_fig03_motivation_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_motivation_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
