file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15c_num_experts.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig15c_num_experts.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig15c_num_experts.dir/bench_fig15c_num_experts.cpp.o"
  "CMakeFiles/bench_fig15c_num_experts.dir/bench_fig15c_num_experts.cpp.o.d"
  "bench_fig15c_num_experts"
  "bench_fig15c_num_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15c_num_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
