# Empty dependencies file for bench_fig15c_num_experts.
# This may be replaced when dependencies are built.
