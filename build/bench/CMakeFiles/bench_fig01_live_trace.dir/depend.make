# Empty dependencies file for bench_fig01_live_trace.
# This may be replaced when dependencies are built.
