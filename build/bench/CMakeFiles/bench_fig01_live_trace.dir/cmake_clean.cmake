file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_live_trace.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig01_live_trace.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig01_live_trace.dir/bench_fig01_live_trace.cpp.o"
  "CMakeFiles/bench_fig01_live_trace.dir/bench_fig01_live_trace.cpp.o.d"
  "bench_fig01_live_trace"
  "bench_fig01_live_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_live_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
