# Empty dependencies file for bench_ext_portability.
# This may be replaced when dependencies are built.
