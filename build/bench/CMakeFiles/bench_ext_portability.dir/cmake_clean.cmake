file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_portability.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_ext_portability.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_ext_portability.dir/bench_ext_portability.cpp.o"
  "CMakeFiles/bench_ext_portability.dir/bench_ext_portability.cpp.o.d"
  "bench_ext_portability"
  "bench_ext_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
