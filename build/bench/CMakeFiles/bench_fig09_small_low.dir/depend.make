# Empty dependencies file for bench_fig09_small_low.
# This may be replaced when dependencies are built.
