file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_small_low.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig09_small_low.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig09_small_low.dir/bench_fig09_small_low.cpp.o"
  "CMakeFiles/bench_fig09_small_low.dir/bench_fig09_small_low.cpp.o.d"
  "bench_fig09_small_low"
  "bench_fig09_small_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_small_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
