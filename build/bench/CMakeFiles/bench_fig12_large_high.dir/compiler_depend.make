# Empty compiler generated dependencies file for bench_fig12_large_high.
# This may be replaced when dependencies are built.
