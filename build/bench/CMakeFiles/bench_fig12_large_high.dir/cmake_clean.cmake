file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_large_high.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig12_large_high.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig12_large_high.dir/bench_fig12_large_high.cpp.o"
  "CMakeFiles/bench_fig12_large_high.dir/bench_fig12_large_high.cpp.o.d"
  "bench_fig12_large_high"
  "bench_fig12_large_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_large_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
