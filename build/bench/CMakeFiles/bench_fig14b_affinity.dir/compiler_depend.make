# Empty compiler generated dependencies file for bench_fig14b_affinity.
# This may be replaced when dependencies are built.
