file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14b_affinity.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig14b_affinity.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig14b_affinity.dir/bench_fig14b_affinity.cpp.o"
  "CMakeFiles/bench_fig14b_affinity.dir/bench_fig14b_affinity.cpp.o.d"
  "bench_fig14b_affinity"
  "bench_fig14b_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
