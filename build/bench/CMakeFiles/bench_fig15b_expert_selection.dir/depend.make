# Empty dependencies file for bench_fig15b_expert_selection.
# This may be replaced when dependencies are built.
