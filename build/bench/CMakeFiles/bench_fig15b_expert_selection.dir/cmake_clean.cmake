file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15b_expert_selection.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig15b_expert_selection.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig15b_expert_selection.dir/bench_fig15b_expert_selection.cpp.o"
  "CMakeFiles/bench_fig15b_expert_selection.dir/bench_fig15b_expert_selection.cpp.o.d"
  "bench_fig15b_expert_selection"
  "bench_fig15b_expert_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b_expert_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
