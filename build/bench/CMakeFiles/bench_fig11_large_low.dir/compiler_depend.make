# Empty compiler generated dependencies file for bench_fig11_large_low.
# This may be replaced when dependencies are built.
