# Empty compiler generated dependencies file for bench_fig14c_monolithic_vs_mixture.
# This may be replaced when dependencies are built.
