file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14c_monolithic_vs_mixture.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig14c_monolithic_vs_mixture.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig14c_monolithic_vs_mixture.dir/bench_fig14c_monolithic_vs_mixture.cpp.o"
  "CMakeFiles/bench_fig14c_monolithic_vs_mixture.dir/bench_fig14c_monolithic_vs_mixture.cpp.o.d"
  "bench_fig14c_monolithic_vs_mixture"
  "bench_fig14c_monolithic_vs_mixture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14c_monolithic_vs_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
