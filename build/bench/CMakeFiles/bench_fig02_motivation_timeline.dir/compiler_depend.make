# Empty compiler generated dependencies file for bench_fig02_motivation_timeline.
# This may be replaced when dependencies are built.
