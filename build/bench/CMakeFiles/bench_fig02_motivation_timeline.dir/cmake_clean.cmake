file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_motivation_timeline.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig02_motivation_timeline.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig02_motivation_timeline.dir/bench_fig02_motivation_timeline.cpp.o"
  "CMakeFiles/bench_fig02_motivation_timeline.dir/bench_fig02_motivation_timeline.cpp.o.d"
  "bench_fig02_motivation_timeline"
  "bench_fig02_motivation_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_motivation_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
