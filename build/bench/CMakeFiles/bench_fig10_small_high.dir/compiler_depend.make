# Empty compiler generated dependencies file for bench_fig10_small_high.
# This may be replaced when dependencies are built.
