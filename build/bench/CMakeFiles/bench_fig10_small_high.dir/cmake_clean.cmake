file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_small_high.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig10_small_high.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig10_small_high.dir/bench_fig10_small_high.cpp.o"
  "CMakeFiles/bench_fig10_small_high.dir/bench_fig10_small_high.cpp.o.d"
  "bench_fig10_small_high"
  "bench_fig10_small_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_small_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
