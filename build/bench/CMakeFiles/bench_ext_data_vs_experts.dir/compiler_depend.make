# Empty compiler generated dependencies file for bench_ext_data_vs_experts.
# This may be replaced when dependencies are built.
