file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_data_vs_experts.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_ext_data_vs_experts.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_ext_data_vs_experts.dir/bench_ext_data_vs_experts.cpp.o"
  "CMakeFiles/bench_ext_data_vs_experts.dir/bench_ext_data_vs_experts.cpp.o.d"
  "bench_ext_data_vs_experts"
  "bench_ext_data_vs_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_data_vs_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
