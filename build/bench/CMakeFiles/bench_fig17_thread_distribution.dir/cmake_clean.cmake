file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_thread_distribution.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig17_thread_distribution.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig17_thread_distribution.dir/bench_fig17_thread_distribution.cpp.o"
  "CMakeFiles/bench_fig17_thread_distribution.dir/bench_fig17_thread_distribution.cpp.o.d"
  "bench_fig17_thread_distribution"
  "bench_fig17_thread_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_thread_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
