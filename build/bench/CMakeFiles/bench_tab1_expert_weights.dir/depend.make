# Empty dependencies file for bench_tab1_expert_weights.
# This may be replaced when dependencies are built.
