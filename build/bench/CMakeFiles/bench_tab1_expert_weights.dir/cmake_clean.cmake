file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_expert_weights.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_tab1_expert_weights.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_tab1_expert_weights.dir/bench_tab1_expert_weights.cpp.o"
  "CMakeFiles/bench_tab1_expert_weights.dir/bench_tab1_expert_weights.cpp.o.d"
  "bench_tab1_expert_weights"
  "bench_tab1_expert_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_expert_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
