# Empty compiler generated dependencies file for bench_fig15a_env_accuracy.
# This may be replaced when dependencies are built.
