file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_feature_impact.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig06_feature_impact.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig06_feature_impact.dir/bench_fig06_feature_impact.cpp.o"
  "CMakeFiles/bench_fig06_feature_impact.dir/bench_fig06_feature_impact.cpp.o.d"
  "bench_fig06_feature_impact"
  "bench_fig06_feature_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_feature_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
