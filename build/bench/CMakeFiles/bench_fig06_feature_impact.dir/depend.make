# Empty dependencies file for bench_fig06_feature_impact.
# This may be replaced when dependencies are built.
