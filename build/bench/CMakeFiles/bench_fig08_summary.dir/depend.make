# Empty dependencies file for bench_fig08_summary.
# This may be replaced when dependencies are built.
