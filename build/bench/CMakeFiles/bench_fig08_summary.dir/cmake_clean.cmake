file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_summary.dir/BenchUtil.cpp.o"
  "CMakeFiles/bench_fig08_summary.dir/BenchUtil.cpp.o.d"
  "CMakeFiles/bench_fig08_summary.dir/bench_fig08_summary.cpp.o"
  "CMakeFiles/bench_fig08_summary.dir/bench_fig08_summary.cpp.o.d"
  "bench_fig08_summary"
  "bench_fig08_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
