# Empty dependencies file for medley_support.
# This may be replaced when dependencies are built.
