file(REMOVE_RECURSE
  "CMakeFiles/medley_support.dir/Csv.cpp.o"
  "CMakeFiles/medley_support.dir/Csv.cpp.o.d"
  "CMakeFiles/medley_support.dir/Error.cpp.o"
  "CMakeFiles/medley_support.dir/Error.cpp.o.d"
  "CMakeFiles/medley_support.dir/Histogram.cpp.o"
  "CMakeFiles/medley_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/medley_support.dir/Random.cpp.o"
  "CMakeFiles/medley_support.dir/Random.cpp.o.d"
  "CMakeFiles/medley_support.dir/Statistics.cpp.o"
  "CMakeFiles/medley_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/medley_support.dir/StringUtils.cpp.o"
  "CMakeFiles/medley_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/medley_support.dir/Table.cpp.o"
  "CMakeFiles/medley_support.dir/Table.cpp.o.d"
  "libmedley_support.a"
  "libmedley_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
