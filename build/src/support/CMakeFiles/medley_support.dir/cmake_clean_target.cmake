file(REMOVE_RECURSE
  "libmedley_support.a"
)
