
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/AvailabilityPattern.cpp" "src/sim/CMakeFiles/medley_sim.dir/AvailabilityPattern.cpp.o" "gcc" "src/sim/CMakeFiles/medley_sim.dir/AvailabilityPattern.cpp.o.d"
  "/root/repo/src/sim/EnvSample.cpp" "src/sim/CMakeFiles/medley_sim.dir/EnvSample.cpp.o" "gcc" "src/sim/CMakeFiles/medley_sim.dir/EnvSample.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/medley_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/medley_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/Simulation.cpp" "src/sim/CMakeFiles/medley_sim.dir/Simulation.cpp.o" "gcc" "src/sim/CMakeFiles/medley_sim.dir/Simulation.cpp.o.d"
  "/root/repo/src/sim/SystemMonitor.cpp" "src/sim/CMakeFiles/medley_sim.dir/SystemMonitor.cpp.o" "gcc" "src/sim/CMakeFiles/medley_sim.dir/SystemMonitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
