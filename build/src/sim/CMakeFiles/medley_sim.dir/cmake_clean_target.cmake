file(REMOVE_RECURSE
  "libmedley_sim.a"
)
