file(REMOVE_RECURSE
  "CMakeFiles/medley_sim.dir/AvailabilityPattern.cpp.o"
  "CMakeFiles/medley_sim.dir/AvailabilityPattern.cpp.o.d"
  "CMakeFiles/medley_sim.dir/EnvSample.cpp.o"
  "CMakeFiles/medley_sim.dir/EnvSample.cpp.o.d"
  "CMakeFiles/medley_sim.dir/Machine.cpp.o"
  "CMakeFiles/medley_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/medley_sim.dir/Simulation.cpp.o"
  "CMakeFiles/medley_sim.dir/Simulation.cpp.o.d"
  "CMakeFiles/medley_sim.dir/SystemMonitor.cpp.o"
  "CMakeFiles/medley_sim.dir/SystemMonitor.cpp.o.d"
  "libmedley_sim.a"
  "libmedley_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
