# Empty compiler generated dependencies file for medley_sim.
# This may be replaced when dependencies are built.
