file(REMOVE_RECURSE
  "libmedley_core.a"
)
