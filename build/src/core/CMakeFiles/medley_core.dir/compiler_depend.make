# Empty compiler generated dependencies file for medley_core.
# This may be replaced when dependencies are built.
