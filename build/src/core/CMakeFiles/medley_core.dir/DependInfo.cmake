
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Expert.cpp" "src/core/CMakeFiles/medley_core.dir/Expert.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/Expert.cpp.o.d"
  "/root/repo/src/core/ExpertBuilder.cpp" "src/core/CMakeFiles/medley_core.dir/ExpertBuilder.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/ExpertBuilder.cpp.o.d"
  "/root/repo/src/core/ExpertIo.cpp" "src/core/CMakeFiles/medley_core.dir/ExpertIo.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/ExpertIo.cpp.o.d"
  "/root/repo/src/core/ExpertSelector.cpp" "src/core/CMakeFiles/medley_core.dir/ExpertSelector.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/ExpertSelector.cpp.o.d"
  "/root/repo/src/core/ExternalExperts.cpp" "src/core/CMakeFiles/medley_core.dir/ExternalExperts.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/ExternalExperts.cpp.o.d"
  "/root/repo/src/core/MixtureOfExperts.cpp" "src/core/CMakeFiles/medley_core.dir/MixtureOfExperts.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/MixtureOfExperts.cpp.o.d"
  "/root/repo/src/core/MoeStats.cpp" "src/core/CMakeFiles/medley_core.dir/MoeStats.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/MoeStats.cpp.o.d"
  "/root/repo/src/core/Oracle.cpp" "src/core/CMakeFiles/medley_core.dir/Oracle.cpp.o" "gcc" "src/core/CMakeFiles/medley_core.dir/Oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/medley_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/medley_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/medley_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/medley_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
