file(REMOVE_RECURSE
  "CMakeFiles/medley_core.dir/Expert.cpp.o"
  "CMakeFiles/medley_core.dir/Expert.cpp.o.d"
  "CMakeFiles/medley_core.dir/ExpertBuilder.cpp.o"
  "CMakeFiles/medley_core.dir/ExpertBuilder.cpp.o.d"
  "CMakeFiles/medley_core.dir/ExpertIo.cpp.o"
  "CMakeFiles/medley_core.dir/ExpertIo.cpp.o.d"
  "CMakeFiles/medley_core.dir/ExpertSelector.cpp.o"
  "CMakeFiles/medley_core.dir/ExpertSelector.cpp.o.d"
  "CMakeFiles/medley_core.dir/ExternalExperts.cpp.o"
  "CMakeFiles/medley_core.dir/ExternalExperts.cpp.o.d"
  "CMakeFiles/medley_core.dir/MixtureOfExperts.cpp.o"
  "CMakeFiles/medley_core.dir/MixtureOfExperts.cpp.o.d"
  "CMakeFiles/medley_core.dir/MoeStats.cpp.o"
  "CMakeFiles/medley_core.dir/MoeStats.cpp.o.d"
  "CMakeFiles/medley_core.dir/Oracle.cpp.o"
  "CMakeFiles/medley_core.dir/Oracle.cpp.o.d"
  "libmedley_core.a"
  "libmedley_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
