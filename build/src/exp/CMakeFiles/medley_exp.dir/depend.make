# Empty dependencies file for medley_exp.
# This may be replaced when dependencies are built.
