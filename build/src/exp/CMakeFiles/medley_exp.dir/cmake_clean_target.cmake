file(REMOVE_RECURSE
  "libmedley_exp.a"
)
