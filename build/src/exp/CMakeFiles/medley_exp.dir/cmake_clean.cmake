file(REMOVE_RECURSE
  "CMakeFiles/medley_exp.dir/Driver.cpp.o"
  "CMakeFiles/medley_exp.dir/Driver.cpp.o.d"
  "CMakeFiles/medley_exp.dir/PolicySet.cpp.o"
  "CMakeFiles/medley_exp.dir/PolicySet.cpp.o.d"
  "CMakeFiles/medley_exp.dir/Reporter.cpp.o"
  "CMakeFiles/medley_exp.dir/Reporter.cpp.o.d"
  "CMakeFiles/medley_exp.dir/Scenario.cpp.o"
  "CMakeFiles/medley_exp.dir/Scenario.cpp.o.d"
  "libmedley_exp.a"
  "libmedley_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
