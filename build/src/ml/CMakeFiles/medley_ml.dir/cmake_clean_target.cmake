file(REMOVE_RECURSE
  "libmedley_ml.a"
)
