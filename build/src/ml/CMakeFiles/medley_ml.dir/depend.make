# Empty dependencies file for medley_ml.
# This may be replaced when dependencies are built.
