file(REMOVE_RECURSE
  "CMakeFiles/medley_ml.dir/CrossValidation.cpp.o"
  "CMakeFiles/medley_ml.dir/CrossValidation.cpp.o.d"
  "CMakeFiles/medley_ml.dir/Dataset.cpp.o"
  "CMakeFiles/medley_ml.dir/Dataset.cpp.o.d"
  "CMakeFiles/medley_ml.dir/FeatureImpact.cpp.o"
  "CMakeFiles/medley_ml.dir/FeatureImpact.cpp.o.d"
  "CMakeFiles/medley_ml.dir/FeatureScaler.cpp.o"
  "CMakeFiles/medley_ml.dir/FeatureScaler.cpp.o.d"
  "CMakeFiles/medley_ml.dir/FeatureSelection.cpp.o"
  "CMakeFiles/medley_ml.dir/FeatureSelection.cpp.o.d"
  "CMakeFiles/medley_ml.dir/KnnModel.cpp.o"
  "CMakeFiles/medley_ml.dir/KnnModel.cpp.o.d"
  "CMakeFiles/medley_ml.dir/LinearModel.cpp.o"
  "CMakeFiles/medley_ml.dir/LinearModel.cpp.o.d"
  "CMakeFiles/medley_ml.dir/SvrModel.cpp.o"
  "CMakeFiles/medley_ml.dir/SvrModel.cpp.o.d"
  "libmedley_ml.a"
  "libmedley_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
