
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/CrossValidation.cpp" "src/ml/CMakeFiles/medley_ml.dir/CrossValidation.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/CrossValidation.cpp.o.d"
  "/root/repo/src/ml/Dataset.cpp" "src/ml/CMakeFiles/medley_ml.dir/Dataset.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/Dataset.cpp.o.d"
  "/root/repo/src/ml/FeatureImpact.cpp" "src/ml/CMakeFiles/medley_ml.dir/FeatureImpact.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/FeatureImpact.cpp.o.d"
  "/root/repo/src/ml/FeatureScaler.cpp" "src/ml/CMakeFiles/medley_ml.dir/FeatureScaler.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/FeatureScaler.cpp.o.d"
  "/root/repo/src/ml/FeatureSelection.cpp" "src/ml/CMakeFiles/medley_ml.dir/FeatureSelection.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/FeatureSelection.cpp.o.d"
  "/root/repo/src/ml/KnnModel.cpp" "src/ml/CMakeFiles/medley_ml.dir/KnnModel.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/KnnModel.cpp.o.d"
  "/root/repo/src/ml/LinearModel.cpp" "src/ml/CMakeFiles/medley_ml.dir/LinearModel.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/LinearModel.cpp.o.d"
  "/root/repo/src/ml/SvrModel.cpp" "src/ml/CMakeFiles/medley_ml.dir/SvrModel.cpp.o" "gcc" "src/ml/CMakeFiles/medley_ml.dir/SvrModel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
