file(REMOVE_RECURSE
  "CMakeFiles/medley_linalg.dir/LeastSquares.cpp.o"
  "CMakeFiles/medley_linalg.dir/LeastSquares.cpp.o.d"
  "CMakeFiles/medley_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/medley_linalg.dir/Matrix.cpp.o.d"
  "CMakeFiles/medley_linalg.dir/Solve.cpp.o"
  "CMakeFiles/medley_linalg.dir/Solve.cpp.o.d"
  "CMakeFiles/medley_linalg.dir/Vector.cpp.o"
  "CMakeFiles/medley_linalg.dir/Vector.cpp.o.d"
  "libmedley_linalg.a"
  "libmedley_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
