# Empty dependencies file for medley_linalg.
# This may be replaced when dependencies are built.
