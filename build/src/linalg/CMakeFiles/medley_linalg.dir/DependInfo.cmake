
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/LeastSquares.cpp" "src/linalg/CMakeFiles/medley_linalg.dir/LeastSquares.cpp.o" "gcc" "src/linalg/CMakeFiles/medley_linalg.dir/LeastSquares.cpp.o.d"
  "/root/repo/src/linalg/Matrix.cpp" "src/linalg/CMakeFiles/medley_linalg.dir/Matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/medley_linalg.dir/Matrix.cpp.o.d"
  "/root/repo/src/linalg/Solve.cpp" "src/linalg/CMakeFiles/medley_linalg.dir/Solve.cpp.o" "gcc" "src/linalg/CMakeFiles/medley_linalg.dir/Solve.cpp.o.d"
  "/root/repo/src/linalg/Vector.cpp" "src/linalg/CMakeFiles/medley_linalg.dir/Vector.cpp.o" "gcc" "src/linalg/CMakeFiles/medley_linalg.dir/Vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
