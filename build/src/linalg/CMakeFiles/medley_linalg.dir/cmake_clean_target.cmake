file(REMOVE_RECURSE
  "libmedley_linalg.a"
)
