file(REMOVE_RECURSE
  "CMakeFiles/medley_runtime.dir/CoExecution.cpp.o"
  "CMakeFiles/medley_runtime.dir/CoExecution.cpp.o.d"
  "CMakeFiles/medley_runtime.dir/PolicyBinding.cpp.o"
  "CMakeFiles/medley_runtime.dir/PolicyBinding.cpp.o.d"
  "libmedley_runtime.a"
  "libmedley_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
