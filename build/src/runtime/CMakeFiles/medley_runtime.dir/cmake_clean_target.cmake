file(REMOVE_RECURSE
  "libmedley_runtime.a"
)
