# Empty compiler generated dependencies file for medley_runtime.
# This may be replaced when dependencies are built.
