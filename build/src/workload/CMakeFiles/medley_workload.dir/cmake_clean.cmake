file(REMOVE_RECURSE
  "CMakeFiles/medley_workload.dir/Catalog.cpp.o"
  "CMakeFiles/medley_workload.dir/Catalog.cpp.o.d"
  "CMakeFiles/medley_workload.dir/LiveTrace.cpp.o"
  "CMakeFiles/medley_workload.dir/LiveTrace.cpp.o.d"
  "CMakeFiles/medley_workload.dir/Program.cpp.o"
  "CMakeFiles/medley_workload.dir/Program.cpp.o.d"
  "CMakeFiles/medley_workload.dir/Region.cpp.o"
  "CMakeFiles/medley_workload.dir/Region.cpp.o.d"
  "CMakeFiles/medley_workload.dir/ThreadPattern.cpp.o"
  "CMakeFiles/medley_workload.dir/ThreadPattern.cpp.o.d"
  "CMakeFiles/medley_workload.dir/WorkloadSets.cpp.o"
  "CMakeFiles/medley_workload.dir/WorkloadSets.cpp.o.d"
  "libmedley_workload.a"
  "libmedley_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
