
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Catalog.cpp" "src/workload/CMakeFiles/medley_workload.dir/Catalog.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/Catalog.cpp.o.d"
  "/root/repo/src/workload/LiveTrace.cpp" "src/workload/CMakeFiles/medley_workload.dir/LiveTrace.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/LiveTrace.cpp.o.d"
  "/root/repo/src/workload/Program.cpp" "src/workload/CMakeFiles/medley_workload.dir/Program.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/Program.cpp.o.d"
  "/root/repo/src/workload/Region.cpp" "src/workload/CMakeFiles/medley_workload.dir/Region.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/Region.cpp.o.d"
  "/root/repo/src/workload/ThreadPattern.cpp" "src/workload/CMakeFiles/medley_workload.dir/ThreadPattern.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/ThreadPattern.cpp.o.d"
  "/root/repo/src/workload/WorkloadSets.cpp" "src/workload/CMakeFiles/medley_workload.dir/WorkloadSets.cpp.o" "gcc" "src/workload/CMakeFiles/medley_workload.dir/WorkloadSets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/medley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
