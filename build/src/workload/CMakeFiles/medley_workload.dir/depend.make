# Empty dependencies file for medley_workload.
# This may be replaced when dependencies are built.
