file(REMOVE_RECURSE
  "libmedley_workload.a"
)
