file(REMOVE_RECURSE
  "libmedley_policy.a"
)
