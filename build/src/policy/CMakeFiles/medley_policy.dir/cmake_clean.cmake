file(REMOVE_RECURSE
  "CMakeFiles/medley_policy.dir/AnalyticPolicy.cpp.o"
  "CMakeFiles/medley_policy.dir/AnalyticPolicy.cpp.o.d"
  "CMakeFiles/medley_policy.dir/DefaultPolicy.cpp.o"
  "CMakeFiles/medley_policy.dir/DefaultPolicy.cpp.o.d"
  "CMakeFiles/medley_policy.dir/ExtendedFeatures.cpp.o"
  "CMakeFiles/medley_policy.dir/ExtendedFeatures.cpp.o.d"
  "CMakeFiles/medley_policy.dir/Features.cpp.o"
  "CMakeFiles/medley_policy.dir/Features.cpp.o.d"
  "CMakeFiles/medley_policy.dir/OfflinePolicy.cpp.o"
  "CMakeFiles/medley_policy.dir/OfflinePolicy.cpp.o.d"
  "CMakeFiles/medley_policy.dir/OnlinePolicy.cpp.o"
  "CMakeFiles/medley_policy.dir/OnlinePolicy.cpp.o.d"
  "CMakeFiles/medley_policy.dir/ThreadPolicy.cpp.o"
  "CMakeFiles/medley_policy.dir/ThreadPolicy.cpp.o.d"
  "libmedley_policy.a"
  "libmedley_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
