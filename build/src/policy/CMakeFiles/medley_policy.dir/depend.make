# Empty dependencies file for medley_policy.
# This may be replaced when dependencies are built.
