
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/AnalyticPolicy.cpp" "src/policy/CMakeFiles/medley_policy.dir/AnalyticPolicy.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/AnalyticPolicy.cpp.o.d"
  "/root/repo/src/policy/DefaultPolicy.cpp" "src/policy/CMakeFiles/medley_policy.dir/DefaultPolicy.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/DefaultPolicy.cpp.o.d"
  "/root/repo/src/policy/ExtendedFeatures.cpp" "src/policy/CMakeFiles/medley_policy.dir/ExtendedFeatures.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/ExtendedFeatures.cpp.o.d"
  "/root/repo/src/policy/Features.cpp" "src/policy/CMakeFiles/medley_policy.dir/Features.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/Features.cpp.o.d"
  "/root/repo/src/policy/OfflinePolicy.cpp" "src/policy/CMakeFiles/medley_policy.dir/OfflinePolicy.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/OfflinePolicy.cpp.o.d"
  "/root/repo/src/policy/OnlinePolicy.cpp" "src/policy/CMakeFiles/medley_policy.dir/OnlinePolicy.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/OnlinePolicy.cpp.o.d"
  "/root/repo/src/policy/ThreadPolicy.cpp" "src/policy/CMakeFiles/medley_policy.dir/ThreadPolicy.cpp.o" "gcc" "src/policy/CMakeFiles/medley_policy.dir/ThreadPolicy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/medley_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/medley_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
