file(REMOVE_RECURSE
  "CMakeFiles/medley.dir/medley.cpp.o"
  "CMakeFiles/medley.dir/medley.cpp.o.d"
  "medley"
  "medley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
