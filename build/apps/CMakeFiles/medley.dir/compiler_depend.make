# Empty compiler generated dependencies file for medley.
# This may be replaced when dependencies are built.
