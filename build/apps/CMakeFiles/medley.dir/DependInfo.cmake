
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/apps/medley.cpp" "apps/CMakeFiles/medley.dir/medley.cpp.o" "gcc" "apps/CMakeFiles/medley.dir/medley.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/medley_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/medley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/medley_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/medley_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/medley_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/medley_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
