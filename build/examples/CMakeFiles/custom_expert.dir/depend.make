# Empty dependencies file for custom_expert.
# This may be replaced when dependencies are built.
