# Empty compiler generated dependencies file for dynamic_coexecution.
# This may be replaced when dependencies are built.
