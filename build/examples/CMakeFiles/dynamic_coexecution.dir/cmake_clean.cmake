file(REMOVE_RECURSE
  "CMakeFiles/dynamic_coexecution.dir/dynamic_coexecution.cpp.o"
  "CMakeFiles/dynamic_coexecution.dir/dynamic_coexecution.cpp.o.d"
  "dynamic_coexecution"
  "dynamic_coexecution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_coexecution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
