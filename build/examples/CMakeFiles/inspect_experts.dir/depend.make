# Empty dependencies file for inspect_experts.
# This may be replaced when dependencies are built.
