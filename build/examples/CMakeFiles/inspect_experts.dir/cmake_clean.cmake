file(REMOVE_RECURSE
  "CMakeFiles/inspect_experts.dir/inspect_experts.cpp.o"
  "CMakeFiles/inspect_experts.dir/inspect_experts.cpp.o.d"
  "inspect_experts"
  "inspect_experts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_experts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
