# Empty compiler generated dependencies file for medley_tests.
# This may be replaced when dependencies are built.
