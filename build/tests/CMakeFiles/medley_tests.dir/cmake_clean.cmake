file(REMOVE_RECURSE
  "CMakeFiles/medley_tests.dir/ContractTest.cpp.o"
  "CMakeFiles/medley_tests.dir/ContractTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/CoreTest.cpp.o"
  "CMakeFiles/medley_tests.dir/CoreTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/ExpTest.cpp.o"
  "CMakeFiles/medley_tests.dir/ExpTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/IntegrationTest.cpp.o"
  "CMakeFiles/medley_tests.dir/IntegrationTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/LinalgTest.cpp.o"
  "CMakeFiles/medley_tests.dir/LinalgTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/MlTest.cpp.o"
  "CMakeFiles/medley_tests.dir/MlTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/PolicyTest.cpp.o"
  "CMakeFiles/medley_tests.dir/PolicyTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/RuntimeTest.cpp.o"
  "CMakeFiles/medley_tests.dir/RuntimeTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/SimTest.cpp.o"
  "CMakeFiles/medley_tests.dir/SimTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/SupportTest.cpp.o"
  "CMakeFiles/medley_tests.dir/SupportTest.cpp.o.d"
  "CMakeFiles/medley_tests.dir/WorkloadTest.cpp.o"
  "CMakeFiles/medley_tests.dir/WorkloadTest.cpp.o.d"
  "medley_tests"
  "medley_tests.pdb"
  "medley_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medley_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
