
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ContractTest.cpp" "tests/CMakeFiles/medley_tests.dir/ContractTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/ContractTest.cpp.o.d"
  "/root/repo/tests/CoreTest.cpp" "tests/CMakeFiles/medley_tests.dir/CoreTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/CoreTest.cpp.o.d"
  "/root/repo/tests/ExpTest.cpp" "tests/CMakeFiles/medley_tests.dir/ExpTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/ExpTest.cpp.o.d"
  "/root/repo/tests/IntegrationTest.cpp" "tests/CMakeFiles/medley_tests.dir/IntegrationTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/IntegrationTest.cpp.o.d"
  "/root/repo/tests/LinalgTest.cpp" "tests/CMakeFiles/medley_tests.dir/LinalgTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/LinalgTest.cpp.o.d"
  "/root/repo/tests/MlTest.cpp" "tests/CMakeFiles/medley_tests.dir/MlTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/MlTest.cpp.o.d"
  "/root/repo/tests/PolicyTest.cpp" "tests/CMakeFiles/medley_tests.dir/PolicyTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/PolicyTest.cpp.o.d"
  "/root/repo/tests/RuntimeTest.cpp" "tests/CMakeFiles/medley_tests.dir/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/RuntimeTest.cpp.o.d"
  "/root/repo/tests/SimTest.cpp" "tests/CMakeFiles/medley_tests.dir/SimTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/SimTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/medley_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/WorkloadTest.cpp" "tests/CMakeFiles/medley_tests.dir/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/medley_tests.dir/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/medley_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/medley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/medley_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/medley_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/medley_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/medley_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/medley_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/medley_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/medley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
