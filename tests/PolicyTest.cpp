//===-- tests/PolicyTest.cpp - baseline policy tests ---------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/AnalyticPolicy.h"
#include "policy/DefaultPolicy.h"
#include "policy/Features.h"
#include "policy/OfflinePolicy.h"
#include "policy/OnlinePolicy.h"
#include "runtime/PolicyBinding.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace medley;
using namespace medley::policy;

namespace {

/// Builds a feature vector directly (bypassing a simulation).
FeatureVector makeFeatures(double Processors, double WorkloadThreads,
                           double RunQueue, unsigned MaxThreads = 32,
                           double Now = 0.0) {
  FeatureVector F;
  F.Values = {0.3, 0.4, 0.1, WorkloadThreads, Processors,
              RunQueue, RunQueue, RunQueue, 0.9, 0.01};
  F.EnvNorm = 1.0;
  F.Now = Now;
  F.MaxThreads = MaxThreads;
  return F;
}

workload::RegionOutcome makeOutcome(const workload::RegionSpec *Region,
                                    unsigned Threads, double Rate) {
  workload::RegionOutcome O;
  O.Region = Region;
  O.Threads = Threads;
  O.Work = Rate; // With Duration = 1, rate() == Work.
  O.Duration = 1.0;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Features
//===----------------------------------------------------------------------===//

TEST(FeaturesTest, TenTable1Names) {
  const auto &Names = featureNames();
  ASSERT_EQ(Names.size(), NumFeatures);
  EXPECT_EQ(Names[0], "load/store count");
  EXPECT_EQ(Names[4], "processors");
  EXPECT_EQ(Names[9], "pages free list rate");
}

TEST(FeaturesTest, BuildFeaturesMapsContext) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("lu");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[1];
  Context.Env.WorkloadThreads = 12;
  Context.Env.Processors = 24;
  Context.Env.RunQueue = 20;
  Context.Env.LoadAvg1 = 18;
  Context.Env.LoadAvg5 = 15;
  Context.Env.CachedMemory = 0.8;
  Context.Env.PageFreeRate = 0.02;
  Context.Now = 7.0;
  Context.MaxThreads = 32;

  FeatureVector F = buildFeatures(Context, 32);
  ASSERT_EQ(F.Values.size(), NumFeatures);
  EXPECT_DOUBLE_EQ(F.Values[0], Spec.Regions[1].Code.LoadStoreRatio);
  EXPECT_DOUBLE_EQ(F.Values[1], Spec.Regions[1].Code.InstructionWeight);
  EXPECT_DOUBLE_EQ(F.Values[2], Spec.Regions[1].Code.BranchRatio);
  EXPECT_DOUBLE_EQ(F.Values[3], 12.0);
  EXPECT_DOUBLE_EQ(F.Values[4], 24.0);
  EXPECT_DOUBLE_EQ(F.Values[5], 20.0);
  EXPECT_DOUBLE_EQ(F.Values[8], 0.8);
  EXPECT_DOUBLE_EQ(F.Now, 7.0);
  EXPECT_EQ(F.MaxThreads, 32u);
  EXPECT_NEAR(F.EnvNorm, Context.Env.scaledNorm(32.0), 1e-12);
}

TEST(FeaturesTest, EnvironmentPartIsLastSeven) {
  FeatureVector F = makeFeatures(24, 12, 20);
  Vec E = environmentPart(F);
  ASSERT_EQ(E.size(), 7u);
  EXPECT_DOUBLE_EQ(E[0], 12.0);
  EXPECT_DOUBLE_EQ(E[1], 24.0);
}

//===----------------------------------------------------------------------===//
// DefaultPolicy
//===----------------------------------------------------------------------===//

TEST(DefaultPolicyTest, ReturnsAvailableProcessors) {
  DefaultPolicy P;
  EXPECT_EQ(P.select(makeFeatures(32, 50, 80)), 32u);
  EXPECT_EQ(P.select(makeFeatures(8, 0, 0)), 8u);
  EXPECT_EQ(P.name(), "default");
}

TEST(DefaultPolicyTest, IgnoresWorkload) {
  DefaultPolicy P;
  EXPECT_EQ(P.select(makeFeatures(16, 0, 0)),
            P.select(makeFeatures(16, 100, 200)));
}

//===----------------------------------------------------------------------===//
// OnlinePolicy (hill climbing)
//===----------------------------------------------------------------------===//

TEST(OnlinePolicyTest, StartsAtHalfTheMachine) {
  OnlinePolicy P;
  EXPECT_EQ(P.select(makeFeatures(32, 0, 0, 32)), 16u);
}

TEST(OnlinePolicyTest, ClimbsWhileImproving) {
  workload::RegionSpec R;
  OnlinePolicy P(/*Window=*/1, /*Step=*/1);
  unsigned N = P.select(makeFeatures(32, 0, 0, 32));
  // Feed rates that improve with thread count: the climb must move up.
  for (int I = 0; I < 8; ++I) {
    P.observe(makeOutcome(&R, N, double(N)));
    N = P.select(makeFeatures(32, 0, 0, 32));
  }
  EXPECT_GT(N, 16u);
}

TEST(OnlinePolicyTest, ReversesWhenPerformanceDrops) {
  workload::RegionSpec R;
  OnlinePolicy P(1, 1);
  unsigned N = P.select(makeFeatures(32, 0, 0, 32));
  // Optimal at 12: rate decreases beyond it.
  auto RateAt = [](unsigned T) { return 10.0 - std::fabs(double(T) - 12.0); };
  std::set<unsigned> Visited;
  for (int I = 0; I < 60; ++I) {
    P.observe(makeOutcome(&R, N, RateAt(N)));
    N = P.select(makeFeatures(32, 0, 0, 32));
    Visited.insert(N);
  }
  // The climb must end near the optimum.
  EXPECT_LE(N, 15u);
  EXPECT_GE(N, 9u);
}

TEST(OnlinePolicyTest, ClampsAtMachineEdges) {
  workload::RegionSpec R;
  OnlinePolicy P(1, 4);
  unsigned N = P.select(makeFeatures(32, 0, 0, 32));
  for (int I = 0; I < 30; ++I) {
    P.observe(makeOutcome(&R, N, double(N))); // Always improving: go up.
    N = P.select(makeFeatures(32, 0, 0, 32));
    EXPECT_LE(N, 32u);
    EXPECT_GE(N, 1u);
  }
  EXPECT_EQ(N, 32u);
}

TEST(OnlinePolicyTest, ResetRestartsClimb) {
  workload::RegionSpec R;
  OnlinePolicy P(1, 2);
  unsigned N = P.select(makeFeatures(32, 0, 0, 32));
  P.observe(makeOutcome(&R, N, 5.0));
  P.reset();
  EXPECT_EQ(P.select(makeFeatures(32, 0, 0, 32)), 16u);
}

TEST(OnlinePolicyTest, WindowDelaysAdaptation) {
  workload::RegionSpec R;
  OnlinePolicy P(/*Window=*/5, /*Step=*/1);
  unsigned First = P.select(makeFeatures(32, 0, 0, 32));
  for (int I = 0; I < 4; ++I) {
    P.observe(makeOutcome(&R, First, 1.0));
    EXPECT_EQ(P.select(makeFeatures(32, 0, 0, 32)), First)
        << "must not move before the window fills";
  }
  P.observe(makeOutcome(&R, First, 1.0));
  EXPECT_NE(P.select(makeFeatures(32, 0, 0, 32)), First);
}

//===----------------------------------------------------------------------===//
// AnalyticPolicy
//===----------------------------------------------------------------------===//

TEST(AnalyticPolicyTest, ExploresTwoDistinctCounts) {
  workload::RegionSpec R;
  AnalyticPolicy P;
  unsigned First = P.select(makeFeatures(32, 0, 0, 32, 0.0));
  P.observe(makeOutcome(&R, First, 5.0));
  unsigned Second = P.select(makeFeatures(32, 0, 0, 32, 0.1));
  EXPECT_NE(First, Second);
  EXPECT_TRUE(P.exploring());
}

TEST(AnalyticPolicyTest, HoldsAfterFitting) {
  workload::RegionSpec R;
  AnalyticPolicy P;
  unsigned N1 = P.select(makeFeatures(32, 0, 0, 32, 0.0));
  P.observe(makeOutcome(&R, N1, double(N1)));
  unsigned N2 = P.select(makeFeatures(32, 0, 0, 32, 0.1));
  P.observe(makeOutcome(&R, N2, double(N2)));
  EXPECT_FALSE(P.exploring());
  unsigned Held = P.select(makeFeatures(32, 0, 0, 32, 0.2));
  EXPECT_EQ(P.select(makeFeatures(32, 0, 0, 32, 0.3)), Held);
  EXPECT_GE(Held, 1u);
  EXPECT_LE(Held, 32u);
}

TEST(AnalyticPolicyTest, ReExploresAfterHoldInterval) {
  workload::RegionSpec R;
  AnalyticPolicy::Options Options;
  Options.HoldInterval = 2.0;
  AnalyticPolicy P(Options);
  unsigned N1 = P.select(makeFeatures(32, 0, 0, 32, 0.0));
  P.observe(makeOutcome(&R, N1, 3.0));
  unsigned N2 = P.select(makeFeatures(32, 0, 0, 32, 0.1));
  P.observe(makeOutcome(&R, N2, 4.0));
  ASSERT_FALSE(P.exploring());
  P.select(makeFeatures(32, 0, 0, 32, 0.2));
  // Past the hold interval it must explore again.
  P.select(makeFeatures(32, 0, 0, 32, 3.0));
  EXPECT_TRUE(P.exploring());
}

TEST(AnalyticPolicyTest, DriftTriggersEarlyReExploration) {
  workload::RegionSpec R;
  AnalyticPolicy::Options Options;
  Options.HoldInterval = 1000.0; // Never re-explore on the clock.
  Options.DriftThreshold = 0.4;
  AnalyticPolicy P(Options);
  unsigned N1 = P.select(makeFeatures(32, 0, 0, 32, 0.0));
  P.observe(makeOutcome(&R, N1, 3.0));
  unsigned N2 = P.select(makeFeatures(32, 0, 0, 32, 0.1));
  P.observe(makeOutcome(&R, N2, 4.0));
  ASSERT_FALSE(P.exploring());
  unsigned Held = P.select(makeFeatures(32, 0, 0, 32, 0.2));
  // Establish the reference rate, then crash it.
  P.observe(makeOutcome(&R, Held, 4.0));
  P.observe(makeOutcome(&R, Held, 1.0)); // -75%: drift.
  P.select(makeFeatures(32, 0, 0, 32, 0.4));
  EXPECT_TRUE(P.exploring());
}

TEST(AnalyticPolicyTest, DeterministicGivenSeed) {
  AnalyticPolicy::Options Options;
  Options.Seed = 1234;
  AnalyticPolicy A(Options), B(Options);
  EXPECT_EQ(A.select(makeFeatures(32, 0, 0, 32, 0.0)),
            B.select(makeFeatures(32, 0, 0, 32, 0.0)));
}

TEST(AnalyticPolicyTest, ResetRestores) {
  workload::RegionSpec R;
  AnalyticPolicy P;
  unsigned First = P.select(makeFeatures(32, 0, 0, 32, 0.0));
  P.observe(makeOutcome(&R, First, 2.0));
  P.select(makeFeatures(32, 0, 0, 32, 0.1));
  P.reset();
  EXPECT_EQ(P.select(makeFeatures(32, 0, 0, 32, 0.0)), First);
}

//===----------------------------------------------------------------------===//
// OfflinePolicy
//===----------------------------------------------------------------------===//

namespace {

/// Trains a tiny model mapping processors (f5) to half its value.
LinearModel makeHalfProcessorsModel() {
  Dataset Data(featureNames());
  Rng R(3);
  for (int I = 0; I < 200; ++I) {
    double P = R.uniform(4, 32);
    Vec X = {0.3, 0.4, 0.1, 5.0, P, 10.0, 8.0, 8.0, 0.9, 0.01};
    Data.add(std::move(X), P / 2.0, "g");
  }
  auto Model = trainLinearModel(Data, "half");
  EXPECT_TRUE(Model.has_value());
  return *Model;
}

} // namespace

TEST(OfflinePolicyTest, FollowsItsModel) {
  OfflinePolicy P(makeHalfProcessorsModel());
  EXPECT_EQ(P.name(), "offline");
  EXPECT_NEAR(double(P.select(makeFeatures(24, 5, 10))), 12.0, 1.0);
  EXPECT_NEAR(double(P.select(makeFeatures(8, 5, 10))), 4.0, 1.0);
}

TEST(OfflinePolicyTest, ClampsToMachineBounds) {
  OfflinePolicy P(makeHalfProcessorsModel());
  FeatureVector F = makeFeatures(32, 5, 10, /*MaxThreads=*/4);
  unsigned N = P.select(F);
  EXPECT_GE(N, 1u);
  EXPECT_LE(N, 4u);
}

TEST(OfflinePolicyTest, CustomName) {
  OfflinePolicy P(makeHalfProcessorsModel(), "aggregate");
  EXPECT_EQ(P.name(), "aggregate");
}

//===----------------------------------------------------------------------===//
// Extended candidate features (Section 5.2.2 sweep)
//===----------------------------------------------------------------------===//

#include "policy/ExtendedFeatures.h"

TEST(ExtendedFeaturesTest, FirstTenAreTheDeployedFeatures) {
  const auto &Extended = extendedFeatureNames();
  const auto &Deployed = featureNames();
  ASSERT_GE(Extended.size(), Deployed.size());
  for (size_t I = 0; I < Deployed.size(); ++I)
    EXPECT_EQ(Extended[I], Deployed[I]);
  EXPECT_EQ(numExtendedFeatures(), Extended.size());
  EXPECT_GE(numExtendedFeatures(), 35u);
}

TEST(ExtendedFeaturesTest, VectorAlignsWithBaseFeatures) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("mg");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.WorkloadThreads = 18;
  Context.Env.Processors = 24;
  Context.Env.RunQueue = 30;
  Context.Env.LoadAvg1 = 26;
  Context.Env.LoadAvg5 = 20;
  Context.Env.CachedMemory = 0.8;
  Context.Env.PageFreeRate = 0.02;
  Context.MaxThreads = 32;

  Vec Extended = buildExtendedFeatures(Context, 32);
  ASSERT_EQ(Extended.size(), numExtendedFeatures());
  FeatureVector Base = buildFeatures(Context, 32);
  for (size_t I = 0; I < NumFeatures; ++I)
    EXPECT_DOUBLE_EQ(Extended[I], Base.Values[I]);
}

TEST(ExtendedFeaturesTest, DerivedValuesAreConsistent) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("mg");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.WorkloadThreads = 18;
  Context.Env.Processors = 24;
  Context.Env.RunQueue = 30;
  Context.MaxThreads = 32;

  const auto &Names = extendedFeatureNames();
  Vec X = buildExtendedFeatures(Context, 32);
  auto At = [&](const std::string &Name) {
    for (size_t I = 0; I < Names.size(); ++I)
      if (Names[I] == Name)
        return X[I];
    ADD_FAILURE() << "missing feature " << Name;
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(At("utilization (runq/procs)"), 30.0 / 24.0);
  EXPECT_DOUBLE_EQ(At("overload flag"), 1.0);
  EXPECT_DOUBLE_EQ(At("runq minus procs"), 6.0);
  EXPECT_DOUBLE_EQ(At("procs squared"), 576.0);
  EXPECT_DOUBLE_EQ(At("cached minus cached (zero)"), 0.0);
  EXPECT_DOUBLE_EQ(At("page size (const)"), 4096.0);
}

//===----------------------------------------------------------------------===//
// Feature sanitization (degradation-ladder rung 1)
//===----------------------------------------------------------------------===//

TEST(FeaturesTest, SanitizeValuesZeroesNonFiniteEntries) {
  Vec Values = {1.0, std::nan(""), -std::numeric_limits<double>::infinity(),
                4.0};
  EXPECT_EQ(sanitizeValues(Values), 2u);
  EXPECT_EQ(Values, (Vec{1.0, 0.0, 0.0, 4.0}));
  EXPECT_EQ(sanitizeValues(Values), 0u);
}

TEST(FeaturesTest, BuildFeaturesSanitizesCorruptSample) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("lu");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.WorkloadThreads = std::nan("");
  Context.Env.Processors = std::numeric_limits<double>::infinity();
  Context.Env.RunQueue = -1e18;
  Context.Env.CachedMemory = 0.5;
  Context.MaxThreads = 32;

  FeatureVector F = buildFeatures(Context, 32);
  for (double V : F.Values)
    EXPECT_TRUE(std::isfinite(V));
  EXPECT_TRUE(std::isfinite(F.EnvNorm));
  EXPECT_GE(F.SanitizedCount, 2u);
}

//===----------------------------------------------------------------------===//
// Binding-site thread clamp (degradation-ladder rung 4)
//===----------------------------------------------------------------------===//

TEST(ThreadClampTest, CeilingIsAvailableProcessors) {
  EXPECT_EQ(runtime::threadCeiling(makeFeatures(4, 2, 6)), 4u);
  EXPECT_EQ(runtime::threadCeiling(makeFeatures(24, 2, 6)), 24u);
}

TEST(ThreadClampTest, ZeroAvailableWindowStillAllowsOneThread) {
  EXPECT_EQ(runtime::threadCeiling(makeFeatures(0, 2, 6)), 1u);
}

TEST(ThreadClampTest, CeilingNeverExceedsMachineCores) {
  // A corrupt (already sanitized but huge) processor reading must not
  // push the ceiling beyond the machine.
  EXPECT_EQ(runtime::threadCeiling(makeFeatures(64, 2, 6, /*MaxThreads=*/32)),
            32u);
}

namespace {

/// Policy that deliberately oversubscribes: always asks for far more
/// threads than the machine has.
class GreedyPolicy : public ThreadPolicy {
public:
  unsigned select(const FeatureVector &) override { return 999; }
  void reset() override {}
  const std::string &name() const override {
    static const std::string N = "greedy";
    return N;
  }
};

} // namespace

TEST(ThreadClampTest, BindPolicyClampsOversubscription) {
  GreedyPolicy Greedy;
  std::vector<runtime::Decision> Trace;
  workload::ThreadChooser Chooser = runtime::bindPolicy(Greedy, 32, &Trace);

  const workload::ProgramSpec &Spec = workload::Catalog::byName("lu");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.Processors = 6;
  Context.MaxThreads = 32;

  EXPECT_EQ(Chooser(Context), 6u);
  ASSERT_EQ(Trace.size(), 1u);
  EXPECT_EQ(Trace[0].Threads, 6u);
  EXPECT_EQ(Trace[0].AvailableProcessors, 6u);
  EXPECT_TRUE(Trace[0].Clamped);

  // During a total outage the clamp floors at one thread.
  Context.Env.Processors = 0;
  EXPECT_EQ(Chooser(Context), 1u);
}
