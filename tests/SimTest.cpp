//===-- tests/SimTest.cpp - simulator tests ------------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/AvailabilityPattern.h"
#include "sim/EnvSample.h"
#include "sim/FaultInjector.h"
#include "sim/Machine.h"
#include "sim/Simulation.h"
#include "sim/SystemMonitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace medley;
using namespace medley::sim;

namespace {

/// Minimal task: fixed thread count, accumulates received CPU time.
class StubTask : public Task {
public:
  StubTask(std::string Name, unsigned Threads, double Demand = 0.0,
           double WorkingSet = 100.0, double WorkNeeded = 1e18)
      : Name(std::move(Name)), Threads(Threads), Demand(Demand),
        WorkingSet(WorkingSet), WorkNeeded(WorkNeeded) {}

  const std::string &name() const override { return Name; }
  unsigned activeThreads() const override { return Done ? 0 : Threads; }
  double memoryDemand() const override { return Demand; }
  double workingSetMb() const override { return WorkingSet; }
  bool finished() const override { return Done; }

  void step(double Dt, const CpuAllocation &Allocation) override {
    LastAllocation = Allocation;
    ++Steps;
    WorkDone += Dt * Allocation.CpuShare * Threads;
    if (WorkDone >= WorkNeeded)
      Done = true;
  }

  CpuAllocation LastAllocation;
  size_t Steps = 0;
  double WorkDone = 0.0;

private:
  std::string Name;
  unsigned Threads;
  double Demand;
  double WorkingSet;
  double WorkNeeded;
  bool Done = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// EnvSample
//===----------------------------------------------------------------------===//

TEST(EnvSampleTest, ToVecOrderMatchesFeatureNames) {
  EnvSample E;
  E.WorkloadThreads = 1;
  E.Processors = 2;
  E.RunQueue = 3;
  E.LoadAvg1 = 4;
  E.LoadAvg5 = 5;
  E.CachedMemory = 6;
  E.PageFreeRate = 7;
  EXPECT_EQ(E.toVec(), (Vec{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(EnvSample::featureNames().size(), 7u);
}

TEST(EnvSampleTest, ScaledNormKnownValue) {
  EnvSample E;
  E.Processors = 32;
  E.CachedMemory = 1.0;
  // Only two non-zero components: (32/32)^2 + 1^2 = 2.
  EXPECT_NEAR(E.scaledNorm(32.0), std::sqrt(2.0), 1e-12);
}

TEST(EnvSampleTest, ScaledNormScalesWithMachine) {
  EnvSample E;
  E.RunQueue = 16;
  EXPECT_NEAR(E.scaledNorm(16.0), 1.0, 1e-12);
  EXPECT_NEAR(E.scaledNorm(32.0), 0.5, 1e-12);
}

//===----------------------------------------------------------------------===//
// Availability patterns
//===----------------------------------------------------------------------===//

TEST(AvailabilityTest, StaticIsConstant) {
  StaticAvailability A(16);
  EXPECT_EQ(A.coresAt(0.0), 16u);
  EXPECT_EQ(A.coresAt(1e6), 16u);
}

TEST(AvailabilityTest, PeriodicStaysOnLadder) {
  auto A = PeriodicAvailability::standardLadder(32, 10.0, 7);
  for (double T = 0.0; T < 500.0; T += 1.0) {
    unsigned C = A->coresAt(T);
    EXPECT_TRUE(C == 8 || C == 16 || C == 24 || C == 32) << "cores " << C;
  }
}

TEST(AvailabilityTest, PeriodicStartsFullyAvailable) {
  auto A = PeriodicAvailability::standardLadder(32, 20.0, 3);
  EXPECT_EQ(A->coresAt(0.0), 32u);
  EXPECT_EQ(A->coresAt(19.9), 32u);
}

TEST(AvailabilityTest, PeriodicChangesAtMostOneRungPerPeriod) {
  auto A = PeriodicAvailability::standardLadder(32, 10.0, 11);
  unsigned Prev = A->coresAt(0.0);
  for (double T = 10.0; T < 1000.0; T += 10.0) {
    unsigned Cur = A->coresAt(T);
    EXPECT_LE(std::abs(int(Cur) - int(Prev)), 8) << "jumped more than a rung";
    Prev = Cur;
  }
}

TEST(AvailabilityTest, PeriodicResetReplaysExactly) {
  auto A = PeriodicAvailability::standardLadder(32, 5.0, 99);
  std::vector<unsigned> First;
  for (double T = 0.0; T < 200.0; T += 5.0)
    First.push_back(A->coresAt(T));
  A->reset();
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(A->coresAt(5.0 * double(I)), First[I]);
}

TEST(AvailabilityTest, PeriodicEventuallyVaries) {
  auto A = PeriodicAvailability::standardLadder(32, 5.0, 42);
  bool Varied = false;
  unsigned First = A->coresAt(0.0);
  for (double T = 5.0; T < 500.0 && !Varied; T += 5.0)
    Varied = A->coresAt(T) != First;
  EXPECT_TRUE(Varied);
}

TEST(AvailabilityTest, TraceLookup) {
  TraceAvailability A({{0.0, 32}, {10.0, 16}, {20.0, 32}});
  EXPECT_EQ(A.coresAt(0.0), 32u);
  EXPECT_EQ(A.coresAt(9.99), 32u);
  EXPECT_EQ(A.coresAt(10.0), 16u);
  EXPECT_EQ(A.coresAt(15.0), 16u);
  EXPECT_EQ(A.coresAt(25.0), 32u);
}

TEST(AvailabilityTest, TraceBeforeFirstPoint) {
  TraceAvailability A({{5.0, 8}});
  EXPECT_EQ(A.coresAt(0.0), 8u);
}

//===----------------------------------------------------------------------===//
// MachineConfig
//===----------------------------------------------------------------------===//

TEST(MachineTest, EvaluationPlatformMatchesTable2) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  EXPECT_EQ(M.TotalCores, 32u);
  EXPECT_EQ(M.SocketCount, 4u);
  EXPECT_EQ(M.coresPerSocket(), 8u);
  EXPECT_DOUBLE_EQ(M.TotalMemoryMb, 64.0 * 1024.0);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, TrainingPlatform12) {
  MachineConfig M = MachineConfig::trainingPlatform12();
  EXPECT_EQ(M.TotalCores, 12u);
  EXPECT_EQ(M.coresPerSocket(), 6u);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, WithAffinity) {
  MachineConfig M = MachineConfig::evaluationPlatform().withAffinity(0.4);
  EXPECT_DOUBLE_EQ(M.AffinityBenefit, 0.4);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, InvalidConfigsDetected) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  M.TotalCores = 0;
  EXPECT_FALSE(M.valid());
  M = MachineConfig::evaluationPlatform();
  M.MemoryBandwidth = 0.0;
  EXPECT_FALSE(M.valid());
  M = MachineConfig::evaluationPlatform();
  M.AffinityBenefit = 1.0;
  EXPECT_FALSE(M.valid());
}

//===----------------------------------------------------------------------===//
// SystemMonitor
//===----------------------------------------------------------------------===//

TEST(SystemMonitorTest, TracksRunQueueAndProcessors) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 16, 1000.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 40.0);
  EXPECT_DOUBLE_EQ(E.Processors, 16.0);
  EXPECT_DOUBLE_EQ(E.WorkloadThreads, 40.0);
}

TEST(SystemMonitorTest, ObserverThreadsExcluded) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 32, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(Monitor.sample(12).WorkloadThreads, 28.0);
  // More observer threads than runnable clamps to zero.
  EXPECT_DOUBLE_EQ(Monitor.sample(100).WorkloadThreads, 0.0);
}

TEST(SystemMonitorTest, LoadAveragesWarmUpAtDifferentSpeeds) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(0, 32, 0.0, 0.1);
  for (int I = 0; I < 300; ++I) // 30 seconds at load 32.
    Monitor.update(32, 32, 0.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_GT(E.LoadAvg1, E.LoadAvg5); // 1-minute EMA reacts faster.
  EXPECT_GT(E.LoadAvg1, 5.0);
  EXPECT_LT(E.LoadAvg1, 32.0);
}

TEST(SystemMonitorTest, CachedMemoryFraction) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  SystemMonitor Monitor(M);
  Monitor.update(1, 32, M.TotalMemoryMb / 4.0, 0.1);
  EXPECT_NEAR(Monitor.sample().CachedMemory, 0.75, 1e-9);
  Monitor.update(1, 32, 2.0 * M.TotalMemoryMb, 0.1); // Clamps at full.
  EXPECT_NEAR(Monitor.sample().CachedMemory, 0.0, 1e-9);
}

TEST(SystemMonitorTest, PageRateRespondsToChurn) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(1, 32, 0.0, 0.1);
  for (int I = 0; I < 20; ++I)
    Monitor.update(1, 32, (I % 2) * 8000.0, 0.1);
  EXPECT_GT(Monitor.sample().PageFreeRate, 0.0);
}

TEST(SystemMonitorTest, ResetClears) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 16, 5000.0, 0.1);
  Monitor.reset();
  EnvSample E = Monitor.sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 0.0);
  EXPECT_DOUBLE_EQ(E.Processors, 32.0);
  EXPECT_DOUBLE_EQ(E.LoadAvg1, 0.0);
}

TEST(SystemMonitorTest, EnvNormUsesMachineScale) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(32, 32, 0.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_NEAR(Monitor.envNorm(), E.scaledNorm(32.0), 1e-12);
}

//===----------------------------------------------------------------------===//
// Simulation scheduling
//===----------------------------------------------------------------------===//

TEST(SimulationTest, UndersubscribedTasksRunFullSpeed) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 8);
  Sim.addTask(T);
  Sim.step();
  EXPECT_DOUBLE_EQ(T->LastAllocation.CpuShare, 1.0);
  EXPECT_DOUBLE_EQ(T->LastAllocation.MemFactor, 1.0);
  EXPECT_DOUBLE_EQ(T->LastAllocation.BarrierFactor, 1.0);
  EXPECT_EQ(T->LastAllocation.AvailableCores, 32u);
}

TEST(SimulationTest, OversubscriptionReducesShareAndConvoysBarriers) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  Simulation Sim(M, std::make_unique<StaticAvailability>(32));
  auto A = std::make_shared<StubTask>("a", 32);
  auto B = std::make_shared<StubTask>("b", 32);
  Sim.addTask(A);
  Sim.addTask(B);
  Sim.step();
  double Ratio = 64.0 / 32.0;
  double ExpectedShare =
      (1.0 / Ratio) / (1.0 + M.ContextSwitchOverhead * (Ratio - 1.0));
  EXPECT_NEAR(A->LastAllocation.CpuShare, ExpectedShare, 1e-12);
  EXPECT_NEAR(A->LastAllocation.BarrierFactor,
              1.0 + M.BarrierConvoy * (Ratio - 1.0), 1e-12);
  EXPECT_EQ(A->LastAllocation.RunnableThreads, 64u);
}

TEST(SimulationTest, MemoryContentionKicksInAboveBandwidth) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  Simulation Sim(M, std::make_unique<StaticAvailability>(32));
  // Demand is scaled by share (1.0 here); 2x bandwidth demanded.
  auto T = std::make_shared<StubTask>("t", 8, 2.0 * M.MemoryBandwidth);
  Sim.addTask(T);
  Sim.step();
  EXPECT_NEAR(T->LastAllocation.MemFactor,
              std::min(std::pow(2.0, M.MemContentionExponent),
                       M.MemFactorCap),
              1e-9);
}

TEST(SimulationTest, AffinityReducesMemoryPenalty) {
  MachineConfig Plain = MachineConfig::evaluationPlatform();
  MachineConfig Affine = Plain.withAffinity(0.5);

  auto runOnce = [](const MachineConfig &M) {
    Simulation Sim(M, std::make_unique<StaticAvailability>(32));
    auto T = std::make_shared<StubTask>("t", 8, 2.0 * M.MemoryBandwidth);
    Sim.addTask(T);
    Sim.step();
    return T->LastAllocation.MemFactor;
  };
  EXPECT_LT(runOnce(Affine), runOnce(Plain));
}

TEST(SimulationTest, TimeAdvancesByTicks) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32), 0.25);
  EXPECT_DOUBLE_EQ(Sim.now(), 0.0);
  Sim.step();
  Sim.step();
  EXPECT_DOUBLE_EQ(Sim.now(), 0.5);
  EXPECT_DOUBLE_EQ(Sim.tick(), 0.25);
}

TEST(SimulationTest, FinishedTasksLeaveTheRunQueue) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto Short = std::make_shared<StubTask>("short", 8, 0.0, 100.0,
                                          /*WorkNeeded=*/0.4);
  auto Long = std::make_shared<StubTask>("long", 8);
  Sim.addTask(Short);
  Sim.addTask(Long);
  Sim.runUntil([&] { return Short->finished(); }, 10.0);
  EXPECT_TRUE(Short->finished());
  EXPECT_EQ(Sim.runnableThreads(), 8u);
}

TEST(SimulationTest, RemoveTask) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 4);
  Sim.addTask(T);
  EXPECT_EQ(Sim.numTasks(), 1u);
  Sim.removeTask(T.get());
  EXPECT_EQ(Sim.numTasks(), 0u);
}

TEST(SimulationTest, TaskChurnPreservesOrderAndHidesTombstones) {
  // Workload-swap-heavy regression: bursts of removals interleaved with
  // additions and steps. The tombstoning removeTask must never expose a
  // null entry through tasks()/numTasks(), and the survivors must stay in
  // insertion order (the per-tick FP reductions depend on it).
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  std::vector<std::shared_ptr<StubTask>> Live;
  unsigned NextId = 0;
  auto Spawn = [&] {
    auto T = std::make_shared<StubTask>("churn" + std::to_string(NextId++), 2);
    Live.push_back(T);
    Sim.addTask(T);
  };
  for (int I = 0; I < 8; ++I)
    Spawn();
  for (int Round = 0; Round < 16; ++Round) {
    // Remove every other task in one burst, then backfill.
    for (size_t I = Live.size(); I-- > 0;)
      if (I % 2 == 0) {
        Sim.removeTask(Live[I].get());
        Live.erase(Live.begin() + static_cast<long>(I));
      }
    for (int I = 0; I < 4; ++I)
      Spawn();
    Sim.step();
    const auto &Tasks = Sim.tasks();
    ASSERT_EQ(Tasks.size(), Live.size());
    for (size_t I = 0; I < Tasks.size(); ++I) {
      ASSERT_NE(Tasks[I], nullptr);
      // Insertion order survives compaction.
      EXPECT_EQ(Tasks[I].get(), Live[I].get());
    }
  }
  EXPECT_EQ(Sim.numTasks(), Live.size());
  // Every surviving task advanced on every tick it was present for.
  for (const auto &T : Live)
    EXPECT_GT(T->WorkDone, 0.0);
}

TEST(SimulationTest, RemoveTaskBurstThenAccessorNeverSeesNull) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  std::vector<std::shared_ptr<StubTask>> All;
  for (int I = 0; I < 6; ++I) {
    All.push_back(std::make_shared<StubTask>("t" + std::to_string(I), 1));
    Sim.addTask(All.back());
  }
  // Burst-remove three without stepping in between; the first accessor
  // afterwards must already observe the compacted list.
  Sim.removeTask(All[1].get());
  Sim.removeTask(All[3].get());
  Sim.removeTask(All[5].get());
  EXPECT_EQ(Sim.runnableThreads(), 3u);
  const auto &Tasks = Sim.tasks();
  ASSERT_EQ(Tasks.size(), 3u);
  EXPECT_EQ(Tasks[0].get(), All[0].get());
  EXPECT_EQ(Tasks[1].get(), All[2].get());
  EXPECT_EQ(Tasks[2].get(), All[4].get());
  // Removing a pointer that is not in the list is a no-op.
  StubTask Foreign("foreign", 1);
  Sim.removeTask(&Foreign);
  EXPECT_EQ(Sim.numTasks(), 3u);
}

TEST(SimulationTest, TickHooksFireEveryStep) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  int Calls = 0;
  Sim.addTickHook([&Calls](Simulation &) { ++Calls; });
  Sim.step();
  Sim.step();
  Sim.step();
  EXPECT_EQ(Calls, 3);
}

TEST(SimulationTest, RunUntilReportsTimeout) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  EXPECT_FALSE(Sim.runUntil([] { return false; }, 1.0));
  EXPECT_GE(Sim.now(), 1.0);
  EXPECT_TRUE(Sim.runUntil([] { return true; }, 2.0));
}

TEST(SimulationTest, MonitorSeesTaskActivity) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 10, 0.0, 4096.0);
  Sim.addTask(T);
  Sim.step();
  EnvSample E = Sim.monitor().sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 10.0);
  EXPECT_LT(E.CachedMemory, 1.0);
}

TEST(SimulationTest, AvailabilityChangeReachesTasks) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<TraceAvailability>(
                     std::vector<std::pair<double, unsigned>>{{0.0, 32},
                                                              {0.15, 8}}),
                 0.1);
  auto T = std::make_shared<StubTask>("t", 16);
  Sim.addTask(T);
  Sim.step(); // t in [0, 0.1): 32 cores.
  EXPECT_EQ(T->LastAllocation.AvailableCores, 32u);
  Sim.step();
  Sim.step(); // Beyond 0.15: 8 cores.
  EXPECT_EQ(T->LastAllocation.AvailableCores, 8u);
  EXPECT_LT(T->LastAllocation.CpuShare, 1.0);
}

//===----------------------------------------------------------------------===//
// EnvSample sanitization
//===----------------------------------------------------------------------===//

TEST(EnvSampleTest, SanitizeRepairsNonFiniteFields) {
  EnvSample E;
  E.WorkloadThreads = std::nan("");
  E.Processors = std::numeric_limits<double>::infinity();
  E.RunQueue = 5.0;
  E.CachedMemory = 3.5; // Fraction: must clamp to [0, 1].
  unsigned Repaired = E.sanitize();
  EXPECT_GE(Repaired, 3u);
  EXPECT_TRUE(E.isFinite());
  EXPECT_DOUBLE_EQ(E.WorkloadThreads, 0.0);
  EXPECT_DOUBLE_EQ(E.Processors, 0.0);
  EXPECT_DOUBLE_EQ(E.RunQueue, 5.0);
  EXPECT_DOUBLE_EQ(E.CachedMemory, 1.0);
}

TEST(EnvSampleTest, SanitizeLeavesCleanSamplesAlone) {
  EnvSample E;
  E.WorkloadThreads = 4;
  E.Processors = 16;
  E.CachedMemory = 0.5;
  EXPECT_EQ(E.sanitize(), 0u);
  EXPECT_TRUE(E.isFinite());
}

//===----------------------------------------------------------------------===//
// SystemMonitor under zero-available-processor windows
//===----------------------------------------------------------------------===//

TEST(SystemMonitorTest, ZeroAvailableWindowStaysFinite) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  // A hot-unplug storm: runnable work but zero cores for many ticks.
  for (int I = 0; I < 50; ++I)
    Monitor.update(/*RunnableThreads=*/12, /*AvailableCores=*/0,
                   /*UsedMemoryMb=*/4096.0, /*Dt=*/0.1);
  EnvSample E = Monitor.sample(0);
  EXPECT_TRUE(E.isFinite());
  EXPECT_DOUBLE_EQ(E.Processors, 0.0);
  EXPECT_DOUBLE_EQ(E.RunQueue, 12.0);
  EXPECT_TRUE(std::isfinite(Monitor.envNorm(0)));
}

TEST(SystemMonitorTest, RecoversAfterZeroAvailableWindow) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  for (int I = 0; I < 10; ++I)
    Monitor.update(8, 0, 1024.0, 0.1);
  for (int I = 0; I < 10; ++I)
    Monitor.update(8, 16, 1024.0, 0.1);
  EnvSample E = Monitor.sample(0);
  EXPECT_DOUBLE_EQ(E.Processors, 16.0);
  EXPECT_TRUE(E.isFinite());
}

TEST(SimulationTest, ZeroCoreWindowGivesZeroShare) {
  MachineConfig Machine = MachineConfig::evaluationPlatform();
  Simulation Sim(Machine, std::make_unique<StaticAvailability>(0), 0.1);
  auto Task = std::make_shared<StubTask>("stalled", 4);
  Sim.addTask(Task);
  for (int I = 0; I < 20; ++I)
    Sim.step();
  EXPECT_DOUBLE_EQ(Task->LastAllocation.CpuShare, 0.0);
  EXPECT_DOUBLE_EQ(Task->WorkDone, 0.0);
  EXPECT_TRUE(Sim.monitor().sample(0).isFinite());
  EXPECT_TRUE(std::isfinite(Sim.monitor().envNorm(0)));
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, EmptyPlanInjectsNothing) {
  FaultInjector Injector(FaultPlan{}, 1);
  EnvSample E;
  E.Processors = 16;
  for (double T = 0.0; T < 5.0; T += 0.1) {
    EXPECT_EQ(Injector.overrideCores(T, 8), 8u);
    EXPECT_FALSE(Injector.monitorStale(T));
    Injector.perturbEnv(T, E);
  }
  EXPECT_DOUBLE_EQ(E.Processors, 16.0);
  EXPECT_TRUE(Injector.stats().clean());
}

TEST(FaultInjectorTest, StormForcesCoreCount) {
  FaultPlan Plan;
  Plan.UnplugStorm.push_back({1.0, 2.0});
  Plan.StormCores = 0;
  FaultInjector Injector(Plan, 7);
  EXPECT_EQ(Injector.overrideCores(0.5, 8), 8u);
  EXPECT_EQ(Injector.overrideCores(1.5, 8), 0u);
  EXPECT_EQ(Injector.overrideCores(2.5, 8), 8u);
  EXPECT_EQ(Injector.stats().UnplugOverrides, 1u);
}

TEST(FaultInjectorTest, StormNeverRaisesCores) {
  FaultPlan Plan;
  Plan.UnplugStorm.push_back({0.0, 10.0});
  Plan.StormCores = 16;
  FaultInjector Injector(Plan, 7);
  // The pattern says 4; a "storm" of 16 must not add cores.
  EXPECT_EQ(Injector.overrideCores(5.0, 4), 4u);
}

TEST(FaultInjectorTest, DropoutZeroesTheSample) {
  FaultPlan Plan;
  Plan.SensorDropout.push_back({0.0, 1.0});
  Plan.DropoutRate = 1.0;
  FaultInjector Injector(Plan, 3);
  EnvSample E;
  E.WorkloadThreads = 6;
  E.Processors = 16;
  E.RunQueue = 9;
  Injector.perturbEnv(0.5, E);
  EXPECT_DOUBLE_EQ(E.WorkloadThreads, 0.0);
  EXPECT_DOUBLE_EQ(E.Processors, 0.0);
  EXPECT_DOUBLE_EQ(E.RunQueue, 0.0);
  EXPECT_EQ(Injector.stats().SensorDropouts, 1u);
}

TEST(FaultInjectorTest, CorruptionNeedsSanitizing) {
  FaultPlan Plan;
  Plan.SensorCorruption.push_back({0.0, 1.0});
  Plan.CorruptionRate = 1.0;
  FaultInjector Injector(Plan, 11);
  EnvSample E;
  E.Processors = 16;
  Injector.perturbEnv(0.5, E);
  EXPECT_GE(Injector.stats().SensorCorruptions, 1u);
  // Whatever garbage was injected (NaN, Inf, +-1e18), the sanitizer must
  // have something to repair.
  EXPECT_GE(E.sanitize(), 1u);
  EXPECT_TRUE(E.isFinite());
}

TEST(FaultInjectorTest, StaleWindowSuppressesMonitorUpdates) {
  FaultPlan Plan;
  Plan.StaleMonitor.push_back({2.0, 3.0});
  FaultInjector Injector(Plan, 5);
  EXPECT_FALSE(Injector.monitorStale(1.0));
  EXPECT_TRUE(Injector.monitorStale(2.5));
  EXPECT_FALSE(Injector.monitorStale(3.5));
  EXPECT_EQ(Injector.stats().StaleTicks, 1u);
}

TEST(FaultInjectorTest, ReplayIsDeterministic) {
  FaultPlan Plan = FaultPlan::chaosSchedule(30.0);
  auto Run = [&Plan](uint64_t Seed) {
    FaultInjector Injector(Plan, Seed);
    std::vector<double> Observed;
    for (double T = 0.0; T < 30.0; T += 0.1) {
      EnvSample E;
      E.WorkloadThreads = 4;
      E.Processors = 16;
      E.RunQueue = 6;
      Injector.perturbEnv(T, E);
      E.sanitize(); // Compare post-repair: NaN != NaN would break EQ.
      for (double V : E.toVec())
        Observed.push_back(V);
      Observed.push_back(Injector.overrideCores(T, 8));
      Observed.push_back(Injector.monitorStale(T) ? 1.0 : 0.0);
    }
    return Observed;
  };
  EXPECT_EQ(Run(42), Run(42));
  EXPECT_NE(Run(42), Run(43));
}

TEST(FaultInjectorTest, ResetReplaysTheSameFaults) {
  FaultPlan Plan = FaultPlan::chaosSchedule(10.0);
  FaultInjector Injector(Plan, 9);
  auto Sweep = [&Injector] {
    std::vector<double> Observed;
    for (double T = 0.0; T < 10.0; T += 0.1) {
      EnvSample E;
      E.Processors = 16;
      Injector.perturbEnv(T, E);
      E.sanitize();
      for (double V : E.toVec())
        Observed.push_back(V);
    }
    return Observed;
  };
  std::vector<double> First = Sweep();
  Injector.reset();
  EXPECT_EQ(First, Sweep());
}

TEST(FaultInjectorTest, ChaosScheduleCoversEveryFaultClass) {
  FaultPlan Plan = FaultPlan::chaosSchedule(100.0);
  EXPECT_FALSE(Plan.empty());
  EXPECT_GE(Plan.SensorDropout.size(), 2u);
  EXPECT_GE(Plan.SensorCorruption.size(), 2u);
  EXPECT_GE(Plan.UnplugStorm.size(), 2u);
  EXPECT_GE(Plan.StaleMonitor.size(), 2u);
  for (const auto *Windows :
       {&Plan.SensorDropout, &Plan.SensorCorruption, &Plan.UnplugStorm,
        &Plan.StaleMonitor})
    for (const FaultWindow &W : *Windows) {
      EXPECT_LT(W.Begin, W.End);
      EXPECT_LE(W.End, 100.0);
    }
}

TEST(SimulationTest, FaultInjectorStormReachesAvailability) {
  MachineConfig Machine = MachineConfig::evaluationPlatform();
  FaultPlan Plan;
  Plan.UnplugStorm.push_back({0.5, 1.5});
  Plan.StormCores = 0;
  Simulation Sim(Machine,
                 std::make_unique<StaticAvailability>(Machine.TotalCores),
                 0.1);
  Sim.setFaultInjector(std::make_unique<FaultInjector>(Plan, 1));
  auto Task = std::make_shared<StubTask>("victim", 4);
  Sim.addTask(Task);
  std::vector<unsigned> Cores;
  Sim.addTickHook([&Cores](Simulation &S) {
    Cores.push_back(S.availableCores());
  });
  for (int I = 0; I < 20; ++I)
    Sim.step();
  ASSERT_EQ(Cores.size(), 20u);
  // Ticks inside [0.5, 1.5) must observe the outage; the rest must not.
  EXPECT_EQ(Cores.front(), Machine.TotalCores);
  EXPECT_EQ(Cores[10], 0u);
  EXPECT_EQ(Cores.back(), Machine.TotalCores);
  EXPECT_TRUE(Sim.monitor().sample(0).isFinite());
}
