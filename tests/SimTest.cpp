//===-- tests/SimTest.cpp - simulator tests ------------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/AvailabilityPattern.h"
#include "sim/EnvSample.h"
#include "sim/Machine.h"
#include "sim/Simulation.h"
#include "sim/SystemMonitor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace medley;
using namespace medley::sim;

namespace {

/// Minimal task: fixed thread count, accumulates received CPU time.
class StubTask : public Task {
public:
  StubTask(std::string Name, unsigned Threads, double Demand = 0.0,
           double WorkingSet = 100.0, double WorkNeeded = 1e18)
      : Name(std::move(Name)), Threads(Threads), Demand(Demand),
        WorkingSet(WorkingSet), WorkNeeded(WorkNeeded) {}

  const std::string &name() const override { return Name; }
  unsigned activeThreads() const override { return Done ? 0 : Threads; }
  double memoryDemand() const override { return Demand; }
  double workingSetMb() const override { return WorkingSet; }
  bool finished() const override { return Done; }

  void step(double Dt, const CpuAllocation &Allocation) override {
    LastAllocation = Allocation;
    ++Steps;
    WorkDone += Dt * Allocation.CpuShare * Threads;
    if (WorkDone >= WorkNeeded)
      Done = true;
  }

  CpuAllocation LastAllocation;
  size_t Steps = 0;
  double WorkDone = 0.0;

private:
  std::string Name;
  unsigned Threads;
  double Demand;
  double WorkingSet;
  double WorkNeeded;
  bool Done = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// EnvSample
//===----------------------------------------------------------------------===//

TEST(EnvSampleTest, ToVecOrderMatchesFeatureNames) {
  EnvSample E;
  E.WorkloadThreads = 1;
  E.Processors = 2;
  E.RunQueue = 3;
  E.LoadAvg1 = 4;
  E.LoadAvg5 = 5;
  E.CachedMemory = 6;
  E.PageFreeRate = 7;
  EXPECT_EQ(E.toVec(), (Vec{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(EnvSample::featureNames().size(), 7u);
}

TEST(EnvSampleTest, ScaledNormKnownValue) {
  EnvSample E;
  E.Processors = 32;
  E.CachedMemory = 1.0;
  // Only two non-zero components: (32/32)^2 + 1^2 = 2.
  EXPECT_NEAR(E.scaledNorm(32.0), std::sqrt(2.0), 1e-12);
}

TEST(EnvSampleTest, ScaledNormScalesWithMachine) {
  EnvSample E;
  E.RunQueue = 16;
  EXPECT_NEAR(E.scaledNorm(16.0), 1.0, 1e-12);
  EXPECT_NEAR(E.scaledNorm(32.0), 0.5, 1e-12);
}

//===----------------------------------------------------------------------===//
// Availability patterns
//===----------------------------------------------------------------------===//

TEST(AvailabilityTest, StaticIsConstant) {
  StaticAvailability A(16);
  EXPECT_EQ(A.coresAt(0.0), 16u);
  EXPECT_EQ(A.coresAt(1e6), 16u);
}

TEST(AvailabilityTest, PeriodicStaysOnLadder) {
  auto A = PeriodicAvailability::standardLadder(32, 10.0, 7);
  for (double T = 0.0; T < 500.0; T += 1.0) {
    unsigned C = A->coresAt(T);
    EXPECT_TRUE(C == 8 || C == 16 || C == 24 || C == 32) << "cores " << C;
  }
}

TEST(AvailabilityTest, PeriodicStartsFullyAvailable) {
  auto A = PeriodicAvailability::standardLadder(32, 20.0, 3);
  EXPECT_EQ(A->coresAt(0.0), 32u);
  EXPECT_EQ(A->coresAt(19.9), 32u);
}

TEST(AvailabilityTest, PeriodicChangesAtMostOneRungPerPeriod) {
  auto A = PeriodicAvailability::standardLadder(32, 10.0, 11);
  unsigned Prev = A->coresAt(0.0);
  for (double T = 10.0; T < 1000.0; T += 10.0) {
    unsigned Cur = A->coresAt(T);
    EXPECT_LE(std::abs(int(Cur) - int(Prev)), 8) << "jumped more than a rung";
    Prev = Cur;
  }
}

TEST(AvailabilityTest, PeriodicResetReplaysExactly) {
  auto A = PeriodicAvailability::standardLadder(32, 5.0, 99);
  std::vector<unsigned> First;
  for (double T = 0.0; T < 200.0; T += 5.0)
    First.push_back(A->coresAt(T));
  A->reset();
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(A->coresAt(5.0 * double(I)), First[I]);
}

TEST(AvailabilityTest, PeriodicEventuallyVaries) {
  auto A = PeriodicAvailability::standardLadder(32, 5.0, 42);
  bool Varied = false;
  unsigned First = A->coresAt(0.0);
  for (double T = 5.0; T < 500.0 && !Varied; T += 5.0)
    Varied = A->coresAt(T) != First;
  EXPECT_TRUE(Varied);
}

TEST(AvailabilityTest, TraceLookup) {
  TraceAvailability A({{0.0, 32}, {10.0, 16}, {20.0, 32}});
  EXPECT_EQ(A.coresAt(0.0), 32u);
  EXPECT_EQ(A.coresAt(9.99), 32u);
  EXPECT_EQ(A.coresAt(10.0), 16u);
  EXPECT_EQ(A.coresAt(15.0), 16u);
  EXPECT_EQ(A.coresAt(25.0), 32u);
}

TEST(AvailabilityTest, TraceBeforeFirstPoint) {
  TraceAvailability A({{5.0, 8}});
  EXPECT_EQ(A.coresAt(0.0), 8u);
}

//===----------------------------------------------------------------------===//
// MachineConfig
//===----------------------------------------------------------------------===//

TEST(MachineTest, EvaluationPlatformMatchesTable2) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  EXPECT_EQ(M.TotalCores, 32u);
  EXPECT_EQ(M.SocketCount, 4u);
  EXPECT_EQ(M.coresPerSocket(), 8u);
  EXPECT_DOUBLE_EQ(M.TotalMemoryMb, 64.0 * 1024.0);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, TrainingPlatform12) {
  MachineConfig M = MachineConfig::trainingPlatform12();
  EXPECT_EQ(M.TotalCores, 12u);
  EXPECT_EQ(M.coresPerSocket(), 6u);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, WithAffinity) {
  MachineConfig M = MachineConfig::evaluationPlatform().withAffinity(0.4);
  EXPECT_DOUBLE_EQ(M.AffinityBenefit, 0.4);
  EXPECT_TRUE(M.valid());
}

TEST(MachineTest, InvalidConfigsDetected) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  M.TotalCores = 0;
  EXPECT_FALSE(M.valid());
  M = MachineConfig::evaluationPlatform();
  M.MemoryBandwidth = 0.0;
  EXPECT_FALSE(M.valid());
  M = MachineConfig::evaluationPlatform();
  M.AffinityBenefit = 1.0;
  EXPECT_FALSE(M.valid());
}

//===----------------------------------------------------------------------===//
// SystemMonitor
//===----------------------------------------------------------------------===//

TEST(SystemMonitorTest, TracksRunQueueAndProcessors) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 16, 1000.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 40.0);
  EXPECT_DOUBLE_EQ(E.Processors, 16.0);
  EXPECT_DOUBLE_EQ(E.WorkloadThreads, 40.0);
}

TEST(SystemMonitorTest, ObserverThreadsExcluded) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 32, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(Monitor.sample(12).WorkloadThreads, 28.0);
  // More observer threads than runnable clamps to zero.
  EXPECT_DOUBLE_EQ(Monitor.sample(100).WorkloadThreads, 0.0);
}

TEST(SystemMonitorTest, LoadAveragesWarmUpAtDifferentSpeeds) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(0, 32, 0.0, 0.1);
  for (int I = 0; I < 300; ++I) // 30 seconds at load 32.
    Monitor.update(32, 32, 0.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_GT(E.LoadAvg1, E.LoadAvg5); // 1-minute EMA reacts faster.
  EXPECT_GT(E.LoadAvg1, 5.0);
  EXPECT_LT(E.LoadAvg1, 32.0);
}

TEST(SystemMonitorTest, CachedMemoryFraction) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  SystemMonitor Monitor(M);
  Monitor.update(1, 32, M.TotalMemoryMb / 4.0, 0.1);
  EXPECT_NEAR(Monitor.sample().CachedMemory, 0.75, 1e-9);
  Monitor.update(1, 32, 2.0 * M.TotalMemoryMb, 0.1); // Clamps at full.
  EXPECT_NEAR(Monitor.sample().CachedMemory, 0.0, 1e-9);
}

TEST(SystemMonitorTest, PageRateRespondsToChurn) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(1, 32, 0.0, 0.1);
  for (int I = 0; I < 20; ++I)
    Monitor.update(1, 32, (I % 2) * 8000.0, 0.1);
  EXPECT_GT(Monitor.sample().PageFreeRate, 0.0);
}

TEST(SystemMonitorTest, ResetClears) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(40, 16, 5000.0, 0.1);
  Monitor.reset();
  EnvSample E = Monitor.sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 0.0);
  EXPECT_DOUBLE_EQ(E.Processors, 32.0);
  EXPECT_DOUBLE_EQ(E.LoadAvg1, 0.0);
}

TEST(SystemMonitorTest, EnvNormUsesMachineScale) {
  SystemMonitor Monitor(MachineConfig::evaluationPlatform());
  Monitor.update(32, 32, 0.0, 0.1);
  EnvSample E = Monitor.sample();
  EXPECT_NEAR(Monitor.envNorm(), E.scaledNorm(32.0), 1e-12);
}

//===----------------------------------------------------------------------===//
// Simulation scheduling
//===----------------------------------------------------------------------===//

TEST(SimulationTest, UndersubscribedTasksRunFullSpeed) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 8);
  Sim.addTask(T);
  Sim.step();
  EXPECT_DOUBLE_EQ(T->LastAllocation.CpuShare, 1.0);
  EXPECT_DOUBLE_EQ(T->LastAllocation.MemFactor, 1.0);
  EXPECT_DOUBLE_EQ(T->LastAllocation.BarrierFactor, 1.0);
  EXPECT_EQ(T->LastAllocation.AvailableCores, 32u);
}

TEST(SimulationTest, OversubscriptionReducesShareAndConvoysBarriers) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  Simulation Sim(M, std::make_unique<StaticAvailability>(32));
  auto A = std::make_shared<StubTask>("a", 32);
  auto B = std::make_shared<StubTask>("b", 32);
  Sim.addTask(A);
  Sim.addTask(B);
  Sim.step();
  double Ratio = 64.0 / 32.0;
  double ExpectedShare =
      (1.0 / Ratio) / (1.0 + M.ContextSwitchOverhead * (Ratio - 1.0));
  EXPECT_NEAR(A->LastAllocation.CpuShare, ExpectedShare, 1e-12);
  EXPECT_NEAR(A->LastAllocation.BarrierFactor,
              1.0 + M.BarrierConvoy * (Ratio - 1.0), 1e-12);
  EXPECT_EQ(A->LastAllocation.RunnableThreads, 64u);
}

TEST(SimulationTest, MemoryContentionKicksInAboveBandwidth) {
  MachineConfig M = MachineConfig::evaluationPlatform();
  Simulation Sim(M, std::make_unique<StaticAvailability>(32));
  // Demand is scaled by share (1.0 here); 2x bandwidth demanded.
  auto T = std::make_shared<StubTask>("t", 8, 2.0 * M.MemoryBandwidth);
  Sim.addTask(T);
  Sim.step();
  EXPECT_NEAR(T->LastAllocation.MemFactor,
              std::min(std::pow(2.0, M.MemContentionExponent),
                       M.MemFactorCap),
              1e-9);
}

TEST(SimulationTest, AffinityReducesMemoryPenalty) {
  MachineConfig Plain = MachineConfig::evaluationPlatform();
  MachineConfig Affine = Plain.withAffinity(0.5);

  auto runOnce = [](const MachineConfig &M) {
    Simulation Sim(M, std::make_unique<StaticAvailability>(32));
    auto T = std::make_shared<StubTask>("t", 8, 2.0 * M.MemoryBandwidth);
    Sim.addTask(T);
    Sim.step();
    return T->LastAllocation.MemFactor;
  };
  EXPECT_LT(runOnce(Affine), runOnce(Plain));
}

TEST(SimulationTest, TimeAdvancesByTicks) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32), 0.25);
  EXPECT_DOUBLE_EQ(Sim.now(), 0.0);
  Sim.step();
  Sim.step();
  EXPECT_DOUBLE_EQ(Sim.now(), 0.5);
  EXPECT_DOUBLE_EQ(Sim.tick(), 0.25);
}

TEST(SimulationTest, FinishedTasksLeaveTheRunQueue) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto Short = std::make_shared<StubTask>("short", 8, 0.0, 100.0,
                                          /*WorkNeeded=*/0.4);
  auto Long = std::make_shared<StubTask>("long", 8);
  Sim.addTask(Short);
  Sim.addTask(Long);
  Sim.runUntil([&] { return Short->finished(); }, 10.0);
  EXPECT_TRUE(Short->finished());
  EXPECT_EQ(Sim.runnableThreads(), 8u);
}

TEST(SimulationTest, RemoveTask) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 4);
  Sim.addTask(T);
  EXPECT_EQ(Sim.numTasks(), 1u);
  Sim.removeTask(T.get());
  EXPECT_EQ(Sim.numTasks(), 0u);
}

TEST(SimulationTest, TickHooksFireEveryStep) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  int Calls = 0;
  Sim.addTickHook([&Calls](Simulation &) { ++Calls; });
  Sim.step();
  Sim.step();
  Sim.step();
  EXPECT_EQ(Calls, 3);
}

TEST(SimulationTest, RunUntilReportsTimeout) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  EXPECT_FALSE(Sim.runUntil([] { return false; }, 1.0));
  EXPECT_GE(Sim.now(), 1.0);
  EXPECT_TRUE(Sim.runUntil([] { return true; }, 2.0));
}

TEST(SimulationTest, MonitorSeesTaskActivity) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<StaticAvailability>(32));
  auto T = std::make_shared<StubTask>("t", 10, 0.0, 4096.0);
  Sim.addTask(T);
  Sim.step();
  EnvSample E = Sim.monitor().sample();
  EXPECT_DOUBLE_EQ(E.RunQueue, 10.0);
  EXPECT_LT(E.CachedMemory, 1.0);
}

TEST(SimulationTest, AvailabilityChangeReachesTasks) {
  Simulation Sim(MachineConfig::evaluationPlatform(),
                 std::make_unique<TraceAvailability>(
                     std::vector<std::pair<double, unsigned>>{{0.0, 32},
                                                              {0.15, 8}}),
                 0.1);
  auto T = std::make_shared<StubTask>("t", 16);
  Sim.addTask(T);
  Sim.step(); // t in [0, 0.1): 32 cores.
  EXPECT_EQ(T->LastAllocation.AvailableCores, 32u);
  Sim.step();
  Sim.step(); // Beyond 0.15: 8 cores.
  EXPECT_EQ(T->LastAllocation.AvailableCores, 8u);
  EXPECT_LT(T->LastAllocation.CpuShare, 1.0);
}
