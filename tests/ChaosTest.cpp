//===-- tests/ChaosTest.cpp - fault-injection / degradation tests -------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The chaos suite (DESIGN.md §9): experiment grids executed under the
// full fault schedule must complete deterministically, the degradation
// ladder must engage rung by rung (sanitize -> quarantine -> default-
// policy fallback -> binding clamp -> cell retry), and corrupted expert
// files must be rejected at load time. Runs under the `chaos` ctest
// label (`make chaos`).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertIo.h"
#include "core/MixtureOfExperts.h"
#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "policy/DefaultPolicy.h"
#include "sim/FaultInjector.h"
#include "support/FaultStats.h"
#include "trace/Columnar.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

using namespace medley;
using namespace medley::exp;

namespace {

/// Builds a feature vector directly (bypassing a simulation).
policy::FeatureVector makeFeatures(double Processors, unsigned MaxThreads = 32) {
  policy::FeatureVector F;
  F.Values = {0.3, 0.4, 0.1, 4.0, Processors, 6.0, 6.0, 6.0, 0.9, 0.01};
  F.EnvNorm = 1.0;
  F.MaxThreads = MaxThreads;
  return F;
}

core::QuarantineOptions fastQuarantine() {
  core::QuarantineOptions Q;
  Q.DivergenceFactor = 2.0;
  Q.AbsoluteErrorFloor = 0.1;
  Q.Strikes = 2;
  Q.BackoffUpdates = 3;
  Q.MaxBackoffUpdates = 12;
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// QuarantineSelector (degradation-ladder rung 2)
//===----------------------------------------------------------------------===//

TEST(QuarantineTest, DivergingExpertIsQuarantinedAndRedirected) {
  support::FaultStats Stats;
  core::QuarantineSelector Selector(
      std::make_unique<core::FixedSelector>(3, 0), fastQuarantine(), &Stats);

  Vec F = makeFeatures(16).Values;
  // Expert 0 diverges wildly; 1 and 2 track the environment.
  Selector.update(F, {10.0, 0.05, 0.08});
  EXPECT_FALSE(Selector.isQuarantined(0));
  Selector.update(F, {10.0, 0.05, 0.08});
  EXPECT_TRUE(Selector.isQuarantined(0));
  EXPECT_EQ(Stats.Quarantines, 1u);
  EXPECT_EQ(Selector.healthyCount(), 2u);

  // The inner FixedSelector keeps asking for 0; the decorator must
  // redirect to a healthy expert.
  size_t Chosen = Selector.select(F);
  EXPECT_NE(Chosen, 0u);
  EXPECT_LT(Chosen, 3u);
}

TEST(QuarantineTest, TimedReadmissionWithExponentialBackoff) {
  support::FaultStats Stats;
  core::QuarantineSelector Selector(
      std::make_unique<core::FixedSelector>(3, 0), fastQuarantine(), &Stats);

  Vec F = makeFeatures(16).Values;
  Selector.update(F, {10.0, 0.05, 0.08});
  Selector.update(F, {10.0, 0.05, 0.08});
  ASSERT_TRUE(Selector.isQuarantined(0));

  // BackoffUpdates = 3: after three clean updates the expert returns.
  for (int I = 0; I < 3; ++I)
    Selector.update(F, {0.05, 0.05, 0.08});
  EXPECT_FALSE(Selector.isQuarantined(0));
  EXPECT_EQ(Stats.Readmissions, 1u);

  // Relapse: the sentence doubles, so three clean updates are no longer
  // enough.
  Selector.update(F, {10.0, 0.05, 0.08});
  Selector.update(F, {10.0, 0.05, 0.08});
  ASSERT_TRUE(Selector.isQuarantined(0));
  for (int I = 0; I < 3; ++I)
    Selector.update(F, {0.05, 0.05, 0.08});
  EXPECT_TRUE(Selector.isQuarantined(0));
  for (int I = 0; I < 3; ++I)
    Selector.update(F, {0.05, 0.05, 0.08});
  EXPECT_FALSE(Selector.isQuarantined(0));
}

TEST(QuarantineTest, WhollyNonFiniteUpdateQuarantinesEveryone) {
  core::QuarantineOptions Q = fastQuarantine();
  Q.Strikes = 1;
  core::QuarantineSelector Selector(
      std::make_unique<core::FixedSelector>(3, 0), Q);

  Vec F = makeFeatures(16).Values;
  double NaN = std::nan("");
  Selector.update(F, {NaN, NaN, NaN});
  EXPECT_TRUE(Selector.allQuarantined());
  EXPECT_EQ(Selector.healthyCount(), 0u);
  // With nobody healthy the selector still answers in range.
  EXPECT_LT(Selector.select(F), 3u);
}

TEST(QuarantineTest, HealthySelectorsPassThrough) {
  core::QuarantineSelector Selector(
      std::make_unique<core::FixedSelector>(3, 1), fastQuarantine());
  Vec F = makeFeatures(16).Values;
  EXPECT_EQ(Selector.select(F), 1u);
  EXPECT_FALSE(Selector.allQuarantined());
  EXPECT_EQ(Selector.healthyCount(), 3u);
  EXPECT_EQ(Selector.name(), "quarantine:fixed");
}

TEST(QuarantineTest, CloneAndResetStartFresh) {
  core::QuarantineSelector Selector(
      std::make_unique<core::FixedSelector>(3, 0), fastQuarantine());
  Vec F = makeFeatures(16).Values;
  Selector.update(F, {10.0, 0.05, 0.08});
  Selector.update(F, {10.0, 0.05, 0.08});
  ASSERT_TRUE(Selector.isQuarantined(0));

  std::unique_ptr<core::ExpertSelector> Clone = Selector.clone();
  EXPECT_FALSE(Clone->isQuarantined(0));

  Selector.reset();
  EXPECT_FALSE(Selector.isQuarantined(0));
  EXPECT_EQ(Selector.healthyCount(), 3u);
}

//===----------------------------------------------------------------------===//
// MixtureOfExperts default-policy fallback (rung 3)
//===----------------------------------------------------------------------===//

namespace {

/// Selector stub reporting every expert as quarantined.
class AllQuarantinedSelector : public core::ExpertSelector {
public:
  explicit AllQuarantinedSelector(size_t NumExperts)
      : core::ExpertSelector(NumExperts) {}
  size_t select(const Vec &) override { return 0; }
  void update(const Vec &, const Vec &) override { ++Updates; }
  void reset() override {}
  std::unique_ptr<core::ExpertSelector> clone() const override {
    return std::make_unique<AllQuarantinedSelector>(NumExperts);
  }
  const std::string &name() const override {
    static const std::string N = "all-quarantined";
    return N;
  }
  bool isQuarantined(size_t) const override { return true; }
  bool allQuarantined() const override { return true; }

  size_t Updates = 0;
};

} // namespace

TEST(MixtureFallbackTest, AllQuarantinedMatchesDefaultPolicy) {
  PolicySet &Policies = PolicySet::instance();
  auto Experts = Policies.experts(2);

  support::FaultStats Stats;
  core::MixtureOptions Options;
  Options.Faults = &Stats;
  core::MixtureOfExperts Mixture(
      Experts, std::make_unique<AllQuarantinedSelector>(Experts->size()),
      nullptr, Options);
  policy::DefaultPolicy Default;

  for (double Processors : {1.0, 5.0, 17.0, 32.0}) {
    policy::FeatureVector F = makeFeatures(Processors);
    EXPECT_EQ(Mixture.select(F), Default.select(F))
        << "processors = " << Processors;
  }
  EXPECT_EQ(Stats.DefaultFallbacks, 4u);
}

TEST(MixtureFallbackTest, JudgingContinuesUnderFallback) {
  // Pending environment predictions must still be stashed during the
  // fallback, so selector updates keep flowing and quarantined experts
  // can earn re-admission.
  PolicySet &Policies = PolicySet::instance();
  auto Experts = Policies.experts(2);
  auto Selector = std::make_unique<AllQuarantinedSelector>(Experts->size());
  AllQuarantinedSelector *Raw = Selector.get();
  core::MixtureOfExperts Mixture(Experts, std::move(Selector));

  policy::FeatureVector F = makeFeatures(16.0);
  Mixture.select(F);
  EXPECT_EQ(Raw->Updates, 0u); // Nothing pending on the first decision.
  Mixture.select(F);
  EXPECT_EQ(Raw->Updates, 1u); // The fallback decision was judged.
}

//===----------------------------------------------------------------------===//
// Expert-file corruption (fault class 5)
//===----------------------------------------------------------------------===//

namespace {

/// Serialised form of a small trained expert set.
std::string expertFileText() {
  std::ostringstream OS;
  EXPECT_TRUE(
      core::writeExperts(OS, *PolicySet::instance().experts(2)));
  return OS.str();
}

/// Rewrites a v2 (checksummed) serialisation as a legacy v1 file so the
/// parse-level validation runs; on v2 files any mutation trips the
/// checksum first (covered by ExpertIoTest).
std::string stripToLegacyV1(const std::string &Text) {
  size_t HeaderEnd = Text.find('\n');
  EXPECT_NE(HeaderEnd, std::string::npos);
  size_t ChecksumEnd = Text.find('\n', HeaderEnd + 1);
  EXPECT_NE(ChecksumEnd, std::string::npos);
  return "medley-experts 1\n" + Text.substr(ChecksumEnd + 1);
}

std::string writeTempFile(const std::string &Name, const std::string &Text) {
  std::string Path = ::testing::TempDir() + Name;
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS << Text;
  return Path;
}

} // namespace

TEST(ExpertFileChaosTest, CleanFileRoundTrips) {
  std::string Path = writeTempFile("medley_clean_experts.txt",
                                   expertFileText());
  support::Error Err;
  auto Loaded = core::loadExpertsFromFile(Path, &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  EXPECT_FALSE(Err);
  EXPECT_EQ(Loaded->size(), 2u);
}

TEST(ExpertFileChaosTest, TruncatedFileIsRejected) {
  std::string Text = stripToLegacyV1(expertFileText());
  std::string Path = writeTempFile("medley_truncated_experts.txt",
                                   Text.substr(0, Text.size() / 2));
  support::Error Err;
  EXPECT_FALSE(core::loadExpertsFromFile(Path, &Err).has_value());
  EXPECT_TRUE(Err);
  EXPECT_EQ(Err.code(), support::ErrorCode::TruncatedInput);
  EXPECT_FALSE(Err.message().empty());
}

TEST(ExpertFileChaosTest, BadMagicIsRejected) {
  std::string Path = writeTempFile("medley_magic_experts.txt",
                                   "bogus-format 1\nexperts 2 features 10\n");
  support::Error Err;
  EXPECT_FALSE(core::loadExpertsFromFile(Path, &Err).has_value());
  EXPECT_TRUE(Err);
  EXPECT_NE(Err.message().find("magic"), std::string::npos) << Err.str();
}

TEST(ExpertFileChaosTest, WrongDimensionIsRejected) {
  std::string Text = stripToLegacyV1(expertFileText());
  size_t Pos = Text.find("features 10");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, 11, "features 99");
  std::string Path = writeTempFile("medley_dims_experts.txt", Text);
  support::Error Err;
  EXPECT_FALSE(core::loadExpertsFromFile(Path, &Err).has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::CorruptInput);
  EXPECT_NE(Err.message().find("99"), std::string::npos) << Err.str();
}

TEST(ExpertFileChaosTest, MissingFileReportsIoFailure) {
  support::Error Err;
  EXPECT_FALSE(core::loadExpertsFromFile(
                   ::testing::TempDir() + "medley_does_not_exist.txt", &Err)
                   .has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::IoFailure);
}

TEST(ExpertFileChaosTest, CorruptFileHelperForcesRejection) {
  std::string Text = expertFileText();
  unsigned Rejected = 0;
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    std::string Path = writeTempFile(
        "medley_corrupt_experts_" + std::to_string(Seed) + ".txt", Text);
    ASSERT_TRUE(sim::FaultInjector::corruptFile(Path, Seed));
    support::Error Err;
    if (!core::loadExpertsFromFile(Path, &Err).has_value()) {
      ++Rejected;
      EXPECT_TRUE(Err);
      EXPECT_FALSE(Err.message().empty());
    }
  }
  // Deterministic corruption: most mutations must be caught by the
  // validating loader (a rare one may land in a description line).
  EXPECT_GE(Rejected, 4u);
}

//===----------------------------------------------------------------------===//
// Driver cell isolation (rung 5)
//===----------------------------------------------------------------------===//

namespace {

/// Throws on every decision — a policy whose model is unusable.
class ExplodingPolicy : public policy::ThreadPolicy {
public:
  unsigned select(const policy::FeatureVector &) override {
    throw std::runtime_error("model exploded");
  }
  void reset() override {}
  const std::string &name() const override {
    static const std::string N = "exploding";
    return N;
  }
};

/// Throws until reset() (the driver's retry path) disarms it.
class FlakyPolicy : public policy::ThreadPolicy {
public:
  unsigned select(const policy::FeatureVector &Features) override {
    if (Armed)
      throw std::runtime_error("transient fault");
    return std::max(1u, Features.MaxThreads / 2);
  }
  void reset() override { Armed = false; }
  const std::string &name() const override {
    static const std::string N = "flaky";
    return N;
  }

private:
  bool Armed = true;
};

DriverOptions chaosDriverOptions(unsigned Jobs, uint64_t Seed) {
  DriverOptions Options;
  Options.Repeats = 2;
  Options.Jobs = Jobs;
  Options.Seed = Seed;
  return Options;
}

} // namespace

TEST(CellIsolationTest, ExplodingPolicyBecomesCellFailure) {
  DriverOptions Options = chaosDriverOptions(2, 0xC4A05);
  Driver D(Options);
  Scenario S = Scenario::isolatedStatic();

  policy::PolicyFactory Exploding = [] {
    return std::make_unique<ExplodingPolicy>();
  };
  Measurement M = D.measure("cg", Exploding, S, nullptr);

  ASSERT_EQ(M.Failures.size(), Options.Repeats);
  for (const CellFailure &F : M.Failures) {
    EXPECT_EQ(F.Attempts, 1 + Options.CellRetries);
    EXPECT_NE(F.Error.find("model exploded"), std::string::npos);
  }
  EXPECT_EQ(M.Faults.CellFailures, Options.Repeats);
  // Failed repeats carry the MaxTime penalty, keeping the reduction
  // arithmetic deterministic.
  EXPECT_DOUBLE_EQ(M.MeanTargetTime, Options.MaxTime);
}

TEST(CellIsolationTest, FailingCellDoesNotPoisonThePlan) {
  DriverOptions Options = chaosDriverOptions(2, 0xC4A06);
  Driver D(Options);
  Scenario S = Scenario::isolatedStatic();

  policy::PolicyFactory Exploding = [] {
    return std::make_unique<ExplodingPolicy>();
  };
  policy::PolicyFactory Healthy = PolicySet::instance().factory("online");

  CellSpec Bad;
  Bad.Target = "cg";
  Bad.Factory = &Exploding;
  Bad.Scen = &S;
  CellSpec Good = Bad;
  Good.Factory = &Healthy;

  auto Results = D.measureCells({Bad, Good});
  EXPECT_FALSE(Results[0]->Failures.empty());
  EXPECT_TRUE(Results[1]->Failures.empty());
  EXPECT_GT(Results[1]->MeanTargetTime, 0.0);
  EXPECT_LT(Results[1]->MeanTargetTime, Options.MaxTime);
}

TEST(CellIsolationTest, TransientFaultIsRetriedToSuccess) {
  DriverOptions Options = chaosDriverOptions(1, 0xC4A07);
  Driver D(Options);
  Scenario S = Scenario::isolatedStatic();

  policy::PolicyFactory Flaky = [] {
    return std::make_unique<FlakyPolicy>();
  };
  Measurement M = D.measure("cg", Flaky, S, nullptr);

  EXPECT_TRUE(M.Failures.empty());
  EXPECT_EQ(M.Faults.CellRetries, Options.Repeats); // One retry per repeat.
  EXPECT_LT(M.MeanTargetTime, Options.MaxTime);
}

//===----------------------------------------------------------------------===//
// Chaos grids end to end
//===----------------------------------------------------------------------===//

namespace {

Measurement runChaosCell(unsigned Jobs, uint64_t Seed) {
  DriverOptions Options = chaosDriverOptions(Jobs, Seed);
  Options.Faults = sim::FaultPlan::chaosSchedule(Options.MaxTime);
  Driver D(Options);
  D.clearCache();
  Scenario S = Scenario::smallLow();
  const workload::WorkloadSet &Set = S.workloadSets()[0];
  policy::PolicyFactory Hardened =
      PolicySet::instance().hardenedMixtureFactory(4, "regime");
  return D.measure("cg", Hardened, S, &Set);
}

} // namespace

TEST(ChaosGridTest, GridCompletesUnderFullFaultSchedule) {
  Measurement M = runChaosCell(2, 0xC4A0);

  ASSERT_EQ(M.Runs.size(), 2u);
  EXPECT_GT(M.MeanTargetTime, 0.0);
  // Every fault class must actually have fired.
  EXPECT_GT(M.Faults.SensorDropouts, 0u);
  EXPECT_GT(M.Faults.SensorCorruptions, 0u);
  EXPECT_GT(M.Faults.UnplugOverrides, 0u);
  EXPECT_GT(M.Faults.StaleTicks, 0u);
}

TEST(ChaosGridTest, DecisionsRespectTheAvailabilityClamp) {
  Measurement M = runChaosCell(2, 0xC4A1);
  size_t Decisions = 0;
  for (const runtime::CoExecutionResult &Run : M.Runs)
    for (const runtime::Decision &D : Run.TargetDecisions) {
      ++Decisions;
      ASSERT_GE(D.Threads, 1u);
      ASSERT_LE(D.Threads, D.AvailableProcessors);
    }
  EXPECT_GT(Decisions, 0u);
}

TEST(ChaosGridTest, ChaosRunsAreBitIdenticalAcrossJobs) {
  Measurement Sequential = runChaosCell(1, 0xC4A2);
  Measurement Pooled = runChaosCell(4, 0xC4A2);

  EXPECT_EQ(Sequential.MeanTargetTime, Pooled.MeanTargetTime);
  EXPECT_EQ(Sequential.MeanWorkloadThroughput,
            Pooled.MeanWorkloadThroughput);
  ASSERT_EQ(Sequential.Runs.size(), Pooled.Runs.size());
  for (size_t R = 0; R < Sequential.Runs.size(); ++R) {
    const runtime::CoExecutionResult &A = Sequential.Runs[R];
    const runtime::CoExecutionResult &B = Pooled.Runs[R];
    EXPECT_EQ(A.TargetTime, B.TargetTime);
    EXPECT_EQ(A.WorkloadThroughput, B.WorkloadThroughput);
    ASSERT_EQ(A.TargetDecisions.size(), B.TargetDecisions.size());
    for (size_t I = 0; I < A.TargetDecisions.size(); ++I)
      EXPECT_EQ(A.TargetDecisions[I].Threads, B.TargetDecisions[I].Threads);
  }
}

TEST(ChaosGridTest, FaultFreeHardenedMixtureMatchesPlainCosts) {
  // Without faults the hardened mixture may quarantine rarely, but the
  // measurement must stay sane and comparable to the plain mixture's.
  DriverOptions Options = chaosDriverOptions(2, 0xC4A3);
  Driver D(Options);
  Scenario S = Scenario::isolatedStatic();
  policy::PolicyFactory Hardened =
      PolicySet::instance().hardenedMixtureFactory(4, "regime");
  Measurement M = D.measure("cg", Hardened, S, nullptr);
  EXPECT_TRUE(M.Failures.empty());
  EXPECT_GT(M.MeanTargetTime, 0.0);
  EXPECT_LT(M.MeanTargetTime, Options.MaxTime);
  // No injector configured: the only counters that may tick are the
  // degradation rungs, never the injection ones.
  EXPECT_EQ(M.Faults.SensorDropouts, 0u);
  EXPECT_EQ(M.Faults.SensorCorruptions, 0u);
  EXPECT_EQ(M.Faults.UnplugOverrides, 0u);
  EXPECT_EQ(M.Faults.StaleTicks, 0u);
  EXPECT_EQ(M.Faults.CellFailures, 0u);
}

//===----------------------------------------------------------------------===//
// Columnar trace corruption (the trace reader's degradation contract)
//===----------------------------------------------------------------------===//

namespace {

/// A small columnar trace serialised to bytes.
std::string chaosTraceBytes() {
  trace::TickTrace T;
  for (unsigned I = 0; I < 8; ++I) {
    trace::TracePoint P;
    P.Time = 0.1 * (I + 1);
    P.AvailableCores = 32 - I;
    P.WorkloadThreads = I * 2;
    P.TargetThreads = I + 1;
    P.EnvNorm = 1.0 + 0.125 * I;
    T.append(P);
  }
  std::ostringstream OS(std::ios::binary);
  support::Error E = trace::ColumnarWriter::write(T, OS);
  EXPECT_FALSE(E) << E.str();
  return OS.str();
}

} // namespace

TEST(ChaosTraceTest, EveryTruncationFailsWithTaxonomyError) {
  // Cutting the file at any byte must produce a clean taxonomy error —
  // never a crash, never a silently short trace.
  std::string Full = chaosTraceBytes();
  for (size_t Cut = 0; Cut < Full.size(); ++Cut) {
    std::istringstream IS(Full.substr(0, Cut), std::ios::binary);
    trace::TickTrace Out;
    support::Error Err;
    ASSERT_FALSE(trace::ColumnarReader::read(IS, Out, &Err))
        << "read succeeded at cut " << Cut;
    ASSERT_TRUE(Err.code() == support::ErrorCode::TruncatedInput ||
                Err.code() == support::ErrorCode::CorruptInput)
        << "cut " << Cut << " gave " << Err.str();
  }
}

TEST(ChaosTraceTest, HeaderBitFlipsFailAsCorruptInput) {
  // Every load-bearing header/descriptor byte, flipped, must be caught by
  // a structural check. Bytes 24-31 are the reserved field, which readers
  // ignore by design.
  std::string Full = chaosTraceBytes();
  constexpr size_t DescriptorEnd = 32 + 5 * 48;
  for (size_t B = 0; B < DescriptorEnd; ++B) {
    if (B >= 24 && B < 32)
      continue;
    std::string Flipped = Full;
    Flipped[B] = static_cast<char>(Flipped[B] ^ 0x2A);
    std::istringstream IS(Flipped, std::ios::binary);
    trace::TickTrace Out;
    support::Error Err;
    ASSERT_FALSE(trace::ColumnarReader::read(IS, Out, &Err))
        << "read succeeded with byte " << B << " flipped";
    ASSERT_TRUE(Err.code() == support::ErrorCode::CorruptInput ||
                Err.code() == support::ErrorCode::TruncatedInput)
        << "byte " << B << " gave " << Err.str();
  }
}
