//===-- tests/IntegrationTest.cpp - end-to-end paper-shape tests ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end checks that the trained system reproduces the paper's
/// qualitative results (see DESIGN.md §7): the mixture outperforms the
/// default and the adaptive baselines in dynamic scenarios, adds (almost)
/// no overhead in a static isolated system, never harms the external
/// workload, and its experts' environment predictors are accurate.
///
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"
#include "ml/CrossValidation.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

using namespace medley;
using namespace medley::exp;

namespace {

DriverOptions quickOptions() {
  DriverOptions Options;
  Options.Repeats = 1; // Keep the suite fast; benches use 3 repeats.
  return Options;
}

/// A fast hmean over a representative subset of targets.
double hmeanSpeedup(Driver &D, const policy::PolicyFactory &Factory,
                    const Scenario &S,
                    const std::vector<std::string> &Targets) {
  std::vector<double> V;
  for (const std::string &T : Targets)
    V.push_back(D.speedup(T, Factory, S));
  return harmonicMean(V);
}

const std::vector<std::string> &subsetTargets() {
  static const std::vector<std::string> Targets = {"lu", "cg", "mg", "is",
                                                   "ep", "equake"};
  return Targets;
}

} // namespace

TEST(IntegrationTest, TrainedModelsHaveUsefulAccuracy) {
  PolicySet &Policies = PolicySet::instance();
  AccuracyOptions Acc;
  Acc.RelativeTolerance = 0.25;
  Acc.AbsoluteTolerance = 2.0;
  for (const core::BuiltExpert &B : Policies.builtExperts(4)) {
    double ThreadAcc = leaveOneGroupOut(B.ThreadData, {}, Acc).Accuracy;
    EXPECT_GT(ThreadAcc, 0.5) << B.E.description();
  }
}

TEST(IntegrationTest, MixtureBeatsDefaultInDynamicScenarios) {
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  for (const Scenario &S : Scenario::dynamicScenarios()) {
    double H = hmeanSpeedup(D, Policies.factory("mixture"), S,
                            subsetTargets());
    EXPECT_GT(H, 1.3) << S.Name;
  }
}

TEST(IntegrationTest, MixtureBeatsOnlineAndAnalyticInDynamicScenarios) {
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::largeLow();
  double Mixture =
      hmeanSpeedup(D, Policies.factory("mixture"), S, subsetTargets());
  double Online =
      hmeanSpeedup(D, Policies.factory("online"), S, subsetTargets());
  double Analytic =
      hmeanSpeedup(D, Policies.factory("analytic"), S, subsetTargets());
  EXPECT_GT(Mixture, Online);
  EXPECT_GT(Mixture, Analytic);
}

TEST(IntegrationTest, MixtureCompetitiveWithOfflineModel) {
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::smallLow();
  double Mixture =
      hmeanSpeedup(D, Policies.factory("mixture"), S, subsetTargets());
  double Offline =
      hmeanSpeedup(D, Policies.factory("offline"), S, subsetTargets());
  EXPECT_GT(Mixture, 0.95 * Offline);
}

TEST(IntegrationTest, NearZeroOverheadWhenIsolatedAndStatic) {
  // Paper Result 1: no slowdown in a static isolated system. We allow a
  // small tolerance on unseen ultra-scalable programs (see
  // EXPERIMENTS.md).
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::isolatedStatic();
  for (const std::string &T : workload::Catalog::evaluationTargets()) {
    double Speedup = D.speedup(T, Policies.factory("mixture"), S);
    EXPECT_GT(Speedup, 0.80) << T;
  }
}

TEST(IntegrationTest, MixtureImprovesIrregularProgramsInIsolation) {
  // Paper Result 1: "improves mg, cg, art" in the static isolated system.
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::isolatedStatic();
  for (const char *T : {"mg", "cg", "art"})
    EXPECT_GT(D.speedup(T, Policies.factory("mixture"), S), 1.05) << T;
}

TEST(IntegrationTest, MixtureDoesNotDegradeWorkloads) {
  // Paper Result 3: the mixture never slows the co-executing workload.
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::smallLow();
  for (const char *T : {"lu", "cg", "ep"}) {
    double Impact = D.workloadImpact(T, Policies.factory("mixture"), S);
    EXPECT_GT(Impact, 0.97) << T;
  }
}

TEST(IntegrationTest, EnvironmentPredictorsAreAccurate) {
  // Paper Fig 15a: experts predict the environment accurately most of the
  // time, and the mixture's chosen expert is at least as good as the
  // average expert.
  PolicySet &Policies = PolicySet::instance();
  auto Stats = std::make_shared<core::MoeStats>(4);
  Driver D(quickOptions());
  Scenario S = Scenario::largeLow();
  auto Factory = Policies.mixtureFactory(4, "regime", Stats);
  for (const char *T : {"lu", "cg", "mg"})
    D.measure(T, Factory, S, &S.workloadSets()[0]);

  ASSERT_GT(Stats->MixtureEnvTotal, 100u);
  double Sum = 0.0;
  for (size_t K = 0; K < 4; ++K) {
    double A = Stats->envAccuracy(K);
    EXPECT_GT(A, 0.3) << "expert " << K;
    Sum += A;
  }
  EXPECT_GE(Stats->mixtureEnvAccuracy() + 0.05, Sum / 4.0);
}

TEST(IntegrationTest, MoreExpertsNeverHurtMuch) {
  // Paper Figs 15c/16: adding experts improves (monotone trend with slack
  // for noise).
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::largeLow();
  std::vector<std::string> Probe = {"lu", "cg", "mg", "is"};
  double K1 = hmeanSpeedup(D, Policies.mixtureFactory(1, "accuracy"), S,
                           Probe);
  double K4 = hmeanSpeedup(D, Policies.mixtureFactory(4, "regime"), S,
                           Probe);
  double K8 = hmeanSpeedup(D, Policies.mixtureFactory(8, "regime"), S,
                           Probe);
  EXPECT_GT(K4, 0.95 * K1);
  EXPECT_GT(K8, 0.9 * K4);
  EXPECT_GT(K8, K1);
}

TEST(IntegrationTest, AffinityHelpsTheMixture) {
  // Paper Fig 14b: affinity scheduling improves every policy; the mixture
  // benefits as well.
  PolicySet &Policies = PolicySet::instance();
  Scenario Plain = Scenario::smallLow();
  Scenario Affine = Plain.withAffinity();
  Driver D(quickOptions());
  // Affinity changes the machine for both the policy run and its default
  // baseline, so compare end-to-end times: the affinity run must not be
  // slower than the plain run.
  const workload::WorkloadSet &Set = Plain.workloadSets()[0];
  double PlainTime =
      D.measure("mg", Policies.factory("mixture"), Plain, &Set)
          .MeanTargetTime;
  double AffineTime =
      D.measure("mg", Policies.factory("mixture"), Affine, &Set)
          .MeanTargetTime;
  EXPECT_LT(AffineTime, PlainTime * 1.02);
}

TEST(IntegrationTest, SmartWorkloadsCreateWinWin) {
  // Paper Result 4 direction: both sides adopting the mixture policy must
  // not be worse than both sides using the default.
  PolicySet &Policies = PolicySet::instance();
  Driver D(quickOptions());
  Scenario S = Scenario::smallLow();
  const workload::WorkloadSet &Set = S.workloadSets()[0];

  policy::PolicyFactory Mixture = Policies.factory("mixture");
  Measurement Smart = D.measure("lu", Mixture, S, &Set, &Mixture);
  std::shared_ptr<const Measurement> Dumb = D.defaultMeasurement("lu", S, &Set);
  double TargetGain = Dumb->MeanTargetTime / Smart.MeanTargetTime;
  double WorkloadGain =
      Smart.MeanWorkloadThroughput / Dumb->MeanWorkloadThroughput;
  EXPECT_GT(TargetGain, 1.0);
  EXPECT_GT(WorkloadGain, 0.97);
}
