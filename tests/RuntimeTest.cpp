//===-- tests/RuntimeTest.cpp - runtime/co-execution tests ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/DefaultPolicy.h"
#include "policy/OnlinePolicy.h"
#include "runtime/CoExecution.h"
#include "runtime/PolicyBinding.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

using namespace medley;
using namespace medley::runtime;

namespace {

CoExecutionConfig staticConfig(double MaxTime = 600.0) {
  CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  unsigned Cores = Config.Machine.TotalCores;
  Config.Availability = [Cores] {
    return std::make_unique<sim::StaticAvailability>(Cores);
  };
  Config.MaxTime = MaxTime;
  return Config;
}

/// Policy that always chooses a constant and records what it saw.
class RecordingPolicy : public policy::ThreadPolicy {
public:
  explicit RecordingPolicy(unsigned N) : N(N) {}
  unsigned select(const policy::FeatureVector &Features) override {
    Selections.push_back(Features);
    return N;
  }
  void observe(const workload::RegionOutcome &Outcome) override {
    Outcomes.push_back(Outcome);
  }
  void reset() override {
    Selections.clear();
    Outcomes.clear();
  }
  const std::string &name() const override {
    static const std::string Name = "recording";
    return Name;
  }

  std::vector<policy::FeatureVector> Selections;
  std::vector<workload::RegionOutcome> Outcomes;

private:
  unsigned N;
};

} // namespace

//===----------------------------------------------------------------------===//
// Policy binding
//===----------------------------------------------------------------------===//

TEST(PolicyBindingTest, ChooserAssemblesFeaturesAndTraces) {
  RecordingPolicy Policy(6);
  std::vector<Decision> Trace;
  workload::ThreadChooser Chooser = bindPolicy(Policy, 32, &Trace);

  const workload::ProgramSpec &Spec = workload::Catalog::byName("mg");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.Processors = 24;
  Context.Env.RunQueue = 30;
  Context.Now = 4.5;
  Context.MaxThreads = 32;

  EXPECT_EQ(Chooser(Context), 6u);
  ASSERT_EQ(Policy.Selections.size(), 1u);
  EXPECT_DOUBLE_EQ(Policy.Selections[0].Values[4], 24.0);
  ASSERT_EQ(Trace.size(), 1u);
  EXPECT_DOUBLE_EQ(Trace[0].Time, 4.5);
  EXPECT_EQ(Trace[0].Threads, 6u);
  EXPECT_GT(Trace[0].EnvNorm, 0.0);
}

TEST(PolicyBindingTest, ObserverForwardsOutcomes) {
  RecordingPolicy Policy(4);
  workload::RegionObserver Observer = bindObserver(Policy);
  workload::RegionOutcome Outcome;
  Outcome.Threads = 4;
  Outcome.Work = 1.0;
  Outcome.Duration = 0.5;
  Observer(Outcome);
  ASSERT_EQ(Policy.Outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(Policy.Outcomes[0].rate(), 2.0);
}

//===----------------------------------------------------------------------===//
// Co-execution
//===----------------------------------------------------------------------===//

TEST(CoExecutionTest, IsolatedTargetFinishes) {
  policy::DefaultPolicy Policy;
  CoExecutionResult Result = runCoExecution(
      staticConfig(), workload::Catalog::byName("is"), Policy, {});
  EXPECT_TRUE(Result.TargetFinished);
  EXPECT_GT(Result.TargetTime, 0.0);
  EXPECT_GT(Result.TargetRegions, 100u);
  EXPECT_FALSE(Result.TargetDecisions.empty());
  EXPECT_DOUBLE_EQ(Result.WorkloadThroughput, 0.0);
}

TEST(CoExecutionTest, WorkloadRunsUntilTargetFinishes) {
  policy::DefaultPolicy Policy;
  CoExecutionResult Result =
      runCoExecution(staticConfig(), workload::Catalog::byName("is"), Policy,
                     patternWorkload({"cg", "lu"}));
  EXPECT_TRUE(Result.TargetFinished);
  EXPECT_GT(Result.WorkloadThroughput, 0.0);
}

TEST(CoExecutionTest, ContentionSlowsTheTarget) {
  policy::DefaultPolicy A, B;
  double Isolated =
      runCoExecution(staticConfig(), workload::Catalog::byName("is"), A, {})
          .TargetTime;
  double Loaded =
      runCoExecution(staticConfig(), workload::Catalog::byName("is"), B,
                     patternWorkload({"bt", "sp", "cg", "art"}))
          .TargetTime;
  EXPECT_GT(Loaded, Isolated * 1.2);
}

TEST(CoExecutionTest, DeterministicForIdenticalConfig) {
  policy::DefaultPolicy A, B;
  CoExecutionResult R1 =
      runCoExecution(staticConfig(), workload::Catalog::byName("cg"), A,
                     patternWorkload({"lu"}));
  CoExecutionResult R2 =
      runCoExecution(staticConfig(), workload::Catalog::byName("cg"), B,
                     patternWorkload({"lu"}));
  EXPECT_DOUBLE_EQ(R1.TargetTime, R2.TargetTime);
  EXPECT_DOUBLE_EQ(R1.WorkloadThroughput, R2.WorkloadThroughput);
  ASSERT_EQ(R1.TargetDecisions.size(), R2.TargetDecisions.size());
}

TEST(CoExecutionTest, WorkloadBehaviourIndependentOfTargetPolicy) {
  // The reproducibility requirement of Section 6.4: the same external
  // workload must be replayed for every policy under comparison. Workload
  // thread patterns are functions of time only, so the trace of workload
  // threads must match across different target policies at identical
  // timestamps.
  CoExecutionConfig Config = staticConfig();
  Config.RecordTraces = true;
  policy::DefaultPolicy Default;
  policy::OnlinePolicy Online;
  CoExecutionResult R1 = runCoExecution(
      Config, workload::Catalog::byName("cg"), Default,
      patternWorkload({"lu", "ft"}));
  CoExecutionResult R2 =
      runCoExecution(Config, workload::Catalog::byName("cg"), Online,
                     patternWorkload({"lu", "ft"}));
  size_t Common = std::min(R1.Trace.size(), R2.Trace.size());
  ASSERT_GT(Common, 50u);
  // Workload thread decisions are piecewise-constant in time with period
  // >= 5s; compare at coarse time points to avoid region-boundary skew.
  for (size_t I = 0; I + 60 < Common; I += 60)
    EXPECT_EQ(R1.Trace[I].WorkloadThreads, R2.Trace[I].WorkloadThreads)
        << "tick " << I;
}

TEST(CoExecutionTest, TimeoutReported) {
  CoExecutionConfig Config = staticConfig(/*MaxTime=*/1.0);
  policy::DefaultPolicy Policy;
  CoExecutionResult Result = runCoExecution(
      Config, workload::Catalog::byName("ep"), Policy, {});
  EXPECT_FALSE(Result.TargetFinished);
  EXPECT_DOUBLE_EQ(Result.TargetTime, 1.0);
}

TEST(CoExecutionTest, TracesRecordedOnRequest) {
  CoExecutionConfig Config = staticConfig();
  Config.RecordTraces = true;
  policy::DefaultPolicy Policy;
  CoExecutionResult Result =
      runCoExecution(Config, workload::Catalog::byName("is"), Policy,
                     patternWorkload({"cg"}));
  ASSERT_FALSE(Result.Trace.empty());
  for (size_t I = 0; I < Result.Trace.size(); I += 50) {
    EXPECT_EQ(Result.Trace[I].AvailableCores, 32u);
    EXPECT_GE(Result.Trace[I].EnvNorm, 0.0);
  }
  // Time advances monotonically.
  for (size_t I = 1; I < Result.Trace.size(); ++I)
    EXPECT_GT(Result.Trace[I].Time, Result.Trace[I - 1].Time);
}

TEST(CoExecutionTest, PolicyDrivenWorkload) {
  CoExecutionConfig Config = staticConfig();
  policy::DefaultPolicy Target;
  std::vector<WorkloadProgramSetup> Workload;
  WorkloadProgramSetup Setup;
  Setup.Spec = workload::Catalog::byName("cg");
  Setup.Policy = std::make_shared<policy::OnlinePolicy>();
  Workload.push_back(std::move(Setup));
  CoExecutionResult Result = runCoExecution(
      Config, workload::Catalog::byName("is"), Target, std::move(Workload));
  EXPECT_TRUE(Result.TargetFinished);
  EXPECT_GT(Result.WorkloadThroughput, 0.0);
}

TEST(CoExecutionTest, ExplicitChooserWorkload) {
  CoExecutionConfig Config = staticConfig();
  policy::DefaultPolicy Target;
  std::vector<WorkloadProgramSetup> Workload;
  WorkloadProgramSetup Setup;
  Setup.Spec = workload::Catalog::byName("cg");
  Setup.Chooser = workload::fixedChooser(4);
  Workload.push_back(std::move(Setup));
  CoExecutionResult Result = runCoExecution(
      Config, workload::Catalog::byName("is"), Target, std::move(Workload));
  EXPECT_TRUE(Result.TargetFinished);
}

TEST(CoExecutionTest, PatternWorkloadResolvesAliases) {
  auto Setups = patternWorkload({"bscholes", "fmine"});
  ASSERT_EQ(Setups.size(), 2u);
  EXPECT_EQ(Setups[0].Spec.Name, "blackscholes");
  EXPECT_EQ(Setups[1].Spec.Name, "freqmine");
}

TEST(CoExecutionTest, DifferentSeedsChangeWorkloadBehaviour) {
  CoExecutionConfig C1 = staticConfig(), C2 = staticConfig();
  C1.WorkloadSeed = 1;
  C2.WorkloadSeed = 2;
  policy::DefaultPolicy A, B;
  double T1 = runCoExecution(C1, workload::Catalog::byName("cg"), A,
                             patternWorkload({"lu", "ft"}))
                  .TargetTime;
  double T2 = runCoExecution(C2, workload::Catalog::byName("cg"), B,
                             patternWorkload({"lu", "ft"}))
                  .TargetTime;
  EXPECT_NE(T1, T2);
}
