//===-- tests/ChaosLifecycleTest.cpp - Expert lifecycle chaos suite -------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
// The hot-expert-lifecycle chaos suite (DESIGN.md §14.6): RCU publication
// hammered from concurrent readers (the TSan target), the staged-rollout
// ladder end to end, crash-safe disk publication under injected torn
// writes / stale readbacks / candidate corruption, and the quarantine
// re-admission regression. Runs under ASan and TSan via MEDLEY_SANITIZE.
//
//===----------------------------------------------------------------------===//

#include "core/ExpertRegistry.h"
#include "core/ExpertTrainer.h"
#include "core/LiveMixture.h"
#include "core/RolloutController.h"
#include "sim/FaultInjector.h"
#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>

using namespace medley;
using namespace medley::core;

namespace {

/// A linear model that predicts the constant \p Value everywhere (zero
/// weights, identity scaler): cheap, serialisable, bit-exact.
LinearModel constModel(double Value, const std::string &Name) {
  Vec Means(policy::NumFeatures, 0.0);
  Vec Scales(policy::NumFeatures, 1.0);
  LinearFit Fit;
  Fit.Weights = Vec(policy::NumFeatures, 0.0);
  Fit.Intercept = Value;
  return LinearModel(FeatureScaler::fromMoments(std::move(Means),
                                                std::move(Scales)),
                     std::move(Fit), Name);
}

Expert constExpert(const std::string &Name, double Threads, double Env,
                   const std::string &Description = "test") {
  return Expert(Name, Description, constModel(Threads, "w:" + Name),
                constModel(Env, "m:" + Name), Env);
}

std::shared_ptr<const std::vector<Expert>>
expertSet(std::vector<Expert> Experts) {
  return std::make_shared<const std::vector<Expert>>(std::move(Experts));
}

FeatureScaler identityScaler() {
  return FeatureScaler::fromMoments(Vec(policy::NumFeatures, 0.0),
                                    Vec(policy::NumFeatures, 1.0));
}

policy::FeatureVector makeFeatures(double EnvNorm) {
  policy::FeatureVector F;
  F.Values = {0.3, 0.4, 0.1, 5.0, 32.0, 10.0, 8.0, 8.0, 0.9, 0.01};
  F.EnvNorm = EnvNorm;
  F.MaxThreads = 32;
  return F;
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// RCU publication under concurrent readers (the TSan target)
//===----------------------------------------------------------------------===//

TEST(LifecycleChaosTest, PublishHammerKeepsReadersConsistent) {
  support::FaultStats Stats;
  auto Registry = std::make_shared<ExpertRegistry>(&Stats);
  const FeatureScaler Scaler = identityScaler();

  // Two alternating contents; each version's checksum is known up front,
  // so any torn snapshot (version from one publication, experts from
  // another) is detectable by every reader.
  auto SetA = expertSet({constExpert("A0", 8.0, 1.0),
                         constExpert("A1", 16.0, 2.0)});
  auto SetB = expertSet({constExpert("B0", 4.0, 3.0),
                         constExpert("B1", 24.0, 4.0)});
  const uint64_t CkA = snapshotChecksum(*SetA, Scaler);
  const uint64_t CkB = snapshotChecksum(*SetB, Scaler);
  ASSERT_NE(CkA, CkB);

  Registry->publish(SetA, Scaler, nullptr);

  constexpr int Publications = 400;
  constexpr unsigned Readers = 4;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> NullSnapshots{0};
  std::atomic<uint64_t> TornSnapshots{0};
  std::atomic<uint64_t> NonMonotonic{0};

  {
    // Each long-running reader task occupies one pool worker until Stop.
    support::ThreadPool Pool(Readers);
    for (unsigned R = 0; R < Readers; ++R)
      Pool.submit([&] {
        ExpertRegistry::ReaderEpoch Reader;
        uint64_t LastVersion = 0;
        while (!Stop.load(std::memory_order_acquire)) {
          const ExpertSnapshot *Snap = Registry->acquire(Reader);
          if (!Snap) {
            ++NullSnapshots;
            continue;
          }
          if (Snap->Version < LastVersion)
            ++NonMonotonic;
          LastVersion = Snap->Version;
          const uint64_t Expected = Snap->Version % 2 == 1 ? CkA : CkB;
          if (Snap->Checksum != Expected ||
              (*Snap->Experts)[0].name()[0] !=
                  (Snap->Version % 2 == 1 ? 'A' : 'B'))
            ++TornSnapshots;
        }
      });

    for (int P = 2; P <= Publications; ++P)
      Registry->publish(P % 2 == 1 ? SetA : SetB, Scaler, nullptr);
    Stop.store(true, std::memory_order_release);
  } // Pool drain joins the readers.

  EXPECT_EQ(NullSnapshots.load(), 0u);

  EXPECT_EQ(TornSnapshots.load(), 0u);
  EXPECT_EQ(NonMonotonic.load(), 0u);
  EXPECT_EQ(Registry->epoch(), static_cast<uint64_t>(Publications));
  EXPECT_EQ(Stats.SnapshotPublications, static_cast<uint64_t>(Publications));
}

TEST(LifecycleChaosTest, TrainerThreadFeedsRolloutUnderReaders) {
  // The production shape: a ThreadPool worker retrains and submits
  // candidates while the decision thread drives observe()/maintain() and
  // extra reader threads hammer acquire(). TSan checks the hand-off.
  auto Registry = std::make_shared<ExpertRegistry>();
  auto Live = expertSet({constExpert("L0", 8.0, 5.0)});
  Registry->publish(Live, identityScaler(), nullptr);

  RolloutOptions Options;
  Options.ShadowWindow = 4;
  Options.PromoteFraction = 0.5;
  Options.CanaryWindow = 4;
  RolloutController Controller(Registry, Options);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> NullSnapshots{0};
  {
    // Workers 1..2 run reader loops until Stop; worker 3 streams
    // candidate submissions, mimicking the background trainer.
    support::ThreadPool Pool(3);
    for (unsigned R = 0; R < 2; ++R)
      Pool.submit([&] {
        ExpertRegistry::ReaderEpoch Reader;
        while (!Stop.load(std::memory_order_acquire))
          if (!Registry->acquire(Reader))
            ++NullSnapshots;
      });
    for (int Round = 0; Round < 8; ++Round)
      Pool.submit([&Controller, Round] {
        Controller.submitCandidate(
            {constExpert("C" + std::to_string(Round), 8.0, 1.0)});
      });
    // Decision thread: judge towards promotion while candidates stream
    // in. Bounded spin rather than a fixed count — the submitter worker
    // may be scheduled long after the first decisions (promotions() is
    // only ever written by maintain() on this thread, so the read races
    // with nothing).
    const policy::FeatureVector F = makeFeatures(1.0);
    for (int I = 0; I < 2000000 && Controller.promotions() == 0; ++I) {
      Controller.maintain();
      Controller.observe(F);
    }
    Controller.maintain();
    Stop.store(true, std::memory_order_release);
  } // Pool drain joins readers and the submitter.
  EXPECT_EQ(NullSnapshots.load(), 0u);

  // Candidates predicting 1.0 against a live 5.0 and observations at 1.0
  // must win shadow and survive canary: at least one promotion happened.
  EXPECT_GE(Controller.promotions(), 1u);
  EXPECT_GE(Registry->epoch(), 2u);
}

//===----------------------------------------------------------------------===//
// Swap transparency: no publication => bit-identical decisions
//===----------------------------------------------------------------------===//

TEST(LifecycleChaosTest, NoSwapDecisionSequenceBitIdentical) {
  auto Experts = expertSet({constExpert("E0", 8.0, 1.0),
                            constExpert("E1", 16.0, 3.0)});
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(Experts, identityScaler(), nullptr);

  LiveMixture Live(Registry, std::make_unique<AccuracySelector>(2));
  MixtureOfExperts Plain(Experts, std::make_unique<AccuracySelector>(2));

  Rng R(77);
  for (int I = 0; I < 500; ++I) {
    policy::FeatureVector F = makeFeatures(R.uniform(0.5, 4.0));
    for (double &V : F.Values)
      V += R.uniform(-0.2, 0.2);
    Live.beginDecisionEpoch();
    EXPECT_EQ(Live.select(F), Plain.select(F)) << "decision " << I;
  }
  EXPECT_EQ(Live.swaps(), 0u);
  EXPECT_EQ(Live.boundVersion(), 1u);
}

//===----------------------------------------------------------------------===//
// The rollout ladder
//===----------------------------------------------------------------------===//

namespace {

RolloutOptions fastRollout() {
  RolloutOptions Options;
  Options.ShadowWindow = 8;
  Options.PromoteFraction = 0.6;
  Options.CanaryWindow = 8;
  Options.RollbackStrikes = 3;
  Options.DivergenceFactor = 1.5;
  Options.AbsoluteErrorFloor = 0.25;
  return Options;
}

/// Runs maintain()+observe() cycles, as the decision loop would.
void drive(RolloutController &Controller, double Observed, int Decisions) {
  const policy::FeatureVector F = makeFeatures(Observed);
  for (int I = 0; I < Decisions; ++I) {
    Controller.maintain();
    Controller.observe(F);
  }
  Controller.maintain();
}

} // namespace

TEST(LifecycleChaosTest, ShadowLoserIsRejectedWithoutPublication) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("L", 8.0, 1.0)}),
                    identityScaler(), nullptr);
  support::FaultStats Stats;
  RolloutController Controller(Registry, fastRollout(), &Stats);

  // Candidate predicts 4.0, live predicts 1.0, world delivers 1.0: the
  // candidate loses every judged decision.
  Controller.submitCandidate({constExpert("C", 8.0, 4.0)});
  drive(Controller, 1.0, 16);

  EXPECT_EQ(Controller.state(), RolloutState::Idle);
  EXPECT_EQ(Controller.shadowRejects(), 1u);
  EXPECT_EQ(Controller.promotions(), 0u);
  EXPECT_EQ(Registry->epoch(), 1u); // The loser never went live.
}

TEST(LifecycleChaosTest, CandidatePromotesThroughShadowAndCanary) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("L", 8.0, 5.0)}),
                    identityScaler(), nullptr);
  support::FaultStats Stats;
  RolloutController Controller(Registry, fastRollout(), &Stats);

  Controller.submitCandidate({constExpert("C", 12.0, 1.0)});
  drive(Controller, 1.0, 12); // Shadow: candidate wins every decision.
  EXPECT_EQ(Controller.state(), RolloutState::Canary);
  EXPECT_EQ(Registry->epoch(), 2u); // The swap happened at promotion.
  ASSERT_NE(Controller.preSwapSnapshot(), nullptr);
  EXPECT_EQ(Controller.preSwapSnapshot()->Version, 1u);

  drive(Controller, 1.0, 12); // Canary: zero error, zero strikes.
  EXPECT_EQ(Controller.state(), RolloutState::Promoted);
  EXPECT_EQ(Controller.promotions(), 1u);
  EXPECT_EQ(Controller.rollbacks(), 0u);
  EXPECT_EQ(Stats.SnapshotPromotions, 1u);
  EXPECT_EQ(Controller.preSwapSnapshot(), nullptr);
  EXPECT_EQ((*Registry->current()->Experts)[0].name(), "C");
  EXPECT_FALSE(Controller.consumeRollback());
}

TEST(LifecycleChaosTest, DivergingCanaryRollsBackBitIdentical) {
  auto Registry = std::make_shared<ExpertRegistry>();
  auto LiveSet = expertSet({constExpert("L", 8.0, 2.0)});
  Registry->publish(LiveSet, identityScaler(), nullptr);
  const uint64_t LiveChecksum = Registry->current()->Checksum;

  support::FaultStats Stats;
  RolloutController Controller(Registry, fastRollout(), &Stats);

  // Shadow at 6.0: candidate (6.0) beats live (2.0) and promotes...
  Controller.submitCandidate({constExpert("C", 12.0, 6.0)});
  drive(Controller, 6.0, 12);
  ASSERT_EQ(Controller.state(), RolloutState::Canary);
  ASSERT_EQ(Registry->epoch(), 2u);

  // ...but the world snaps back to 2.0: the canary's error (4.0) exceeds
  // 1.5 x the pre-swap snapshot's (0.0 -> floor 0.25) on every scored
  // decision; RollbackStrikes consecutive strikes trigger auto-rollback.
  drive(Controller, 2.0, 8);
  EXPECT_EQ(Controller.state(), RolloutState::RolledBack);
  EXPECT_EQ(Controller.rollbacks(), 1u);
  EXPECT_EQ(Stats.SnapshotRollbacks, 1u);

  // The rollback republished the pre-swap content under a fresh version:
  // monotonic epoch, bit-identical experts (the very same vector).
  EXPECT_EQ(Registry->epoch(), 3u);
  EXPECT_EQ(Registry->current()->Checksum, LiveChecksum);
  EXPECT_EQ(Registry->current()->Experts.get(), LiveSet.get());

  EXPECT_TRUE(Controller.consumeRollback());
  EXPECT_FALSE(Controller.consumeRollback()); // Acked exactly once.
}

TEST(LifecycleChaosTest, LiveMixtureFollowsSwapsAcrossTheLadder) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("L0", 8.0, 2.0),
                               constExpert("L1", 16.0, 2.5)}),
                    identityScaler(), nullptr);
  auto Controller =
      std::make_shared<RolloutController>(Registry, fastRollout());
  LiveMixture Policy(Registry,
                     std::make_unique<QuarantineSelector>(
                         std::make_unique<AccuracySelector>(2)),
                     Controller);

  EXPECT_EQ(Policy.boundVersion(), 1u);
  Controller->submitCandidate({constExpert("C0", 10.0, 6.0),
                               constExpert("C1", 20.0, 6.5)});

  auto decide = [&Policy](double Observed, int Decisions) {
    for (int I = 0; I < Decisions; ++I) {
      Policy.beginDecisionEpoch();
      unsigned N = Policy.select(makeFeatures(Observed));
      EXPECT_GE(N, 1u);
      EXPECT_LE(N, 32u);
    }
  };

  decide(6.0, 14); // Shadow won -> canary published -> policy swaps.
  EXPECT_EQ(Policy.boundVersion(), 2u);
  EXPECT_EQ(Policy.swaps(), 1u);
  EXPECT_EQ(Policy.mixture().experts()[0].name(), "C0");

  decide(2.0, 10); // Canary diverges -> rollback -> policy swaps back.
  EXPECT_EQ(Controller->state(), RolloutState::RolledBack);
  EXPECT_EQ(Policy.boundVersion(), 3u);
  EXPECT_EQ(Policy.swaps(), 2u);
  EXPECT_EQ(Policy.mixture().experts()[0].name(), "L0");
  // The rollback ack was consumed inside beginDecisionEpoch.
  EXPECT_FALSE(Controller->consumeRollback());
}

//===----------------------------------------------------------------------===//
// Quarantine re-admission (strike-leakage regression)
//===----------------------------------------------------------------------===//

TEST(LifecycleChaosTest, ReadmissionClearsStrikesButKeepsInnerLearning) {
  QuarantineOptions Options;
  Options.Strikes = 3;
  support::FaultStats Stats;
  // Three experts so the strike yardstick (median error) tracks the
  // healthy majority rather than the diverging outlier.
  QuarantineSelector Selector(std::make_unique<AccuracySelector>(3), Options,
                              &Stats);

  const Vec F = makeFeatures(1.0).Values;
  // Expert 0 diverges hard; experts 1 and 2 are accurate. The inner
  // accuracy selector learns to prefer 1 while the ladder quarantines 0.
  for (int I = 0; I < 8; ++I)
    Selector.update(F, {50.0, 0.1, 0.2});
  ASSERT_TRUE(Selector.isQuarantined(0));
  ASSERT_EQ(Selector.select(F), 1u);

  Selector.readmitAll();
  EXPECT_FALSE(Selector.isQuarantined(0));
  EXPECT_GE(Stats.Readmissions, 1u);
  // Inner learning survived: expert 1 is still preferred.
  EXPECT_EQ(Selector.select(F), 1u);

  // Strikes were cleared, not leaked: one post-readmission bad update is
  // below the 3-strike threshold, so expert 0 stays admitted.
  Selector.update(F, {50.0, 0.1, 0.2});
  EXPECT_FALSE(Selector.isQuarantined(0));
  // Three consecutive strikes quarantine again — the ladder still works.
  Selector.update(F, {50.0, 0.1, 0.2});
  Selector.update(F, {50.0, 0.1, 0.2});
  EXPECT_TRUE(Selector.isQuarantined(0));
}

TEST(LifecycleChaosTest, MixtureReadmitForwardsToQuarantineSelector) {
  auto Experts = expertSet({constExpert("E0", 8.0, 1.0),
                            constExpert("E1", 16.0, 1.0)});
  MixtureOfExperts Mix(Experts,
                       std::make_unique<QuarantineSelector>(
                           std::make_unique<AccuracySelector>(2)));
  // Expert 0's env prediction (1.0) is fine; force strikes by feeding
  // decisions whose observed env makes it diverge is impossible with equal
  // experts — drive the selector directly through decisions instead.
  for (int I = 0; I < 30; ++I)
    Mix.select(makeFeatures(I % 2 ? 1.0 : 60.0));
  // Whether or not anything was quarantined, the hook must be safe and
  // leave the mixture deciding.
  Mix.readmitQuarantined();
  EXPECT_FALSE(Mix.selector().allQuarantined());
  EXPECT_GE(Mix.select(makeFeatures(1.0)), 1u);
}

//===----------------------------------------------------------------------===//
// Crash-safe disk publication under injected faults
//===----------------------------------------------------------------------===//

namespace {

ExpertSnapshot snapshotOf(const ExpertRegistry &Registry) {
  return *Registry.current();
}

} // namespace

TEST(LifecycleChaosTest, SnapshotFileRoundTripsExactly) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("E0", 8.0, 1.25),
                               constExpert("E1", 16.0, 2.5)}),
                    identityScaler(),
                    std::make_shared<AccuracySelector>(2));
  const std::string Path = tempPath("medley_snapshot_roundtrip.txt");

  support::Error Err;
  ASSERT_TRUE(saveSnapshotToFile(Path, snapshotOf(*Registry), &Err))
      << Err.str();

  std::string SelectorName;
  auto Loaded = loadSnapshotFromFile(Path, &Err, 0, &SelectorName);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  EXPECT_EQ(Loaded->Version, 1u);
  EXPECT_EQ(Loaded->Checksum, Registry->current()->Checksum);
  EXPECT_EQ(SelectorName, "accuracy");
  ASSERT_EQ(Loaded->numExperts(), 2u);
  const policy::FeatureVector F = makeFeatures(1.0);
  for (size_t K = 0; K < 2; ++K) {
    EXPECT_EQ((*Loaded->Experts)[K].predictThreads(F),
              (*Registry->current()->Experts)[K].predictThreads(F));
    EXPECT_DOUBLE_EQ((*Loaded->Experts)[K].predictEnvNorm(F),
                     (*Registry->current()->Experts)[K].predictEnvNorm(F));
  }
}

TEST(LifecycleChaosTest, TornPublicationLeavesPreviousFileIntact) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("V1", 8.0, 1.0)}),
                    identityScaler(), nullptr);
  const std::string Path = tempPath("medley_snapshot_torn.txt");

  support::Error Err;
  ASSERT_TRUE(saveSnapshotToFile(Path, snapshotOf(*Registry), &Err));

  // Publish v2, but tear its disk publication through an injector window.
  Registry->publish(expertSet({constExpert("V2", 10.0, 2.0)}),
                    identityScaler(), nullptr);
  sim::FaultPlan Plan;
  Plan.TornPublication.push_back({0.0, 100.0});
  sim::FaultInjector Injector(Plan, 7);
  SnapshotFaultHooks Hooks;
  Hooks.TearWrite = [&Injector] { return Injector.tearPublication(50.0); };

  support::FaultStats Stats;
  EXPECT_FALSE(
      saveSnapshotToFile(Path, snapshotOf(*Registry), &Err, &Hooks, &Stats));
  EXPECT_EQ(Err.code(), support::ErrorCode::IoFailure);
  EXPECT_EQ(Stats.TornPublications, 1u);
  EXPECT_EQ(Injector.stats().TornPublications, 1u);

  // Crash consistency: the published path still holds complete v1.
  auto Loaded = loadSnapshotFromFile(Path, &Err);
  ASSERT_TRUE(Loaded.has_value()) << Err.str();
  EXPECT_EQ(Loaded->Version, 1u);
  EXPECT_EQ((*Loaded->Experts)[0].name(), "V1");

  // Stale-readback defence: a reader that already observed v2 must refuse
  // the v1 file.
  support::FaultStats ReadStats;
  EXPECT_FALSE(
      loadSnapshotFromFile(Path, &Err, 2, nullptr, &ReadStats).has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::StaleVersion);
  EXPECT_EQ(ReadStats.StaleSnapshotReads, 1u);
}

TEST(LifecycleChaosTest, CorruptedCandidateNeverLoads) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("E", 8.0, 1.0)}),
                    identityScaler(), nullptr);

  sim::FaultPlan Plan;
  Plan.CandidateCorruption.push_back({0.0, 100.0});

  // Whatever the corruption (truncation or bit rot, seed-dependent), a
  // damaged candidate must never load as a valid snapshot.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    sim::FaultInjector Injector(Plan, Seed);
    SnapshotFaultHooks Hooks;
    Hooks.CorruptCandidate = [&Injector](std::string &Bytes) {
      Injector.corruptCandidate(10.0, Bytes);
    };
    const std::string Path =
        tempPath("medley_snapshot_corrupt_" + std::to_string(Seed) + ".txt");
    support::Error Err;
    support::FaultStats Stats;
    const bool Saved =
        saveSnapshotToFile(Path, snapshotOf(*Registry), &Err, &Hooks, &Stats);
    EXPECT_EQ(Stats.CandidateCorruptions, 1u);
    EXPECT_EQ(Injector.stats().CandidateCorruptions, 1u);
    if (!Saved)
      continue; // Truncated below a writable payload: nothing published.
    EXPECT_FALSE(loadSnapshotFromFile(Path, &Err).has_value())
        << "seed " << Seed << " produced a loadable corrupt snapshot";
  }
}

TEST(LifecycleChaosTest, ChecksumMismatchIsCountedAndTyped) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(expertSet({constExpert("E", 8.0, 1.0)}),
                    identityScaler(), nullptr);
  const std::string Path = tempPath("medley_snapshot_bitflip.txt");
  support::Error Err;
  ASSERT_TRUE(saveSnapshotToFile(Path, snapshotOf(*Registry), &Err));

  // Flip one payload byte far from the header.
  {
    std::FILE *F = std::fopen(Path.c_str(), "r+b");
    ASSERT_NE(F, nullptr);
    ASSERT_EQ(std::fseek(F, -8, SEEK_END), 0);
    int C = std::fgetc(F);
    ASSERT_NE(C, EOF);
    ASSERT_EQ(std::fseek(F, -1, SEEK_CUR), 0);
    std::fputc(C == '0' ? '1' : '0', F);
    std::fclose(F);
  }

  support::FaultStats Stats;
  EXPECT_FALSE(
      loadSnapshotFromFile(Path, &Err, 0, nullptr, &Stats).has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::ChecksumMismatch);
  EXPECT_EQ(Stats.ChecksumRejects, 1u);
}

//===----------------------------------------------------------------------===//
// Background retraining
//===----------------------------------------------------------------------===//

namespace {

/// A synthetic trace alternating between an uncontended regime (workload
/// below cores, small env) and a contended one (workload above cores,
/// large env).
trace::TickTrace syntheticTrace(size_t Rows) {
  trace::TickTrace Trace;
  Rng R(13);
  for (size_t I = 0; I < Rows; ++I) {
    trace::TracePoint P;
    P.Time = static_cast<double>(I);
    const bool Contended = (I / 32) % 2 == 1;
    P.AvailableCores = 16;
    P.WorkloadThreads = Contended ? 24 + I % 4 : 4 + I % 4;
    P.TargetThreads = Contended ? 6 : 14;
    P.EnvNorm = (Contended ? 3.0 : 0.8) + R.uniform(-0.1, 0.1);
    Trace.append(P);
  }
  return Trace;
}

} // namespace

TEST(LifecycleChaosTest, RetrainingIsDeterministicAndRegimeRouted) {
  auto Registry = std::make_shared<ExpertRegistry>();
  Registry->publish(
      expertSet({constExpert("U", 14.0, 0.8, "uncontended synthetic"),
                 constExpert("K", 6.0, 3.0, "contended synthetic")}),
      identityScaler(), nullptr);

  trace::TickTrace Trace = syntheticTrace(512);
  TrainerOptions Options;
  Options.Window.Window = 256;
  ExpertTrainer Trainer(Options);

  auto First = Trainer.retrainCounted(Trace, *Registry->current());
  auto Second = Trainer.retrainCounted(Trace, *Registry->current());
  ASSERT_TRUE(First.has_value());
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(First->Refitted, 2u);
  EXPECT_EQ(First->CarriedOver, 0u);

  // Determinism: same (window, base, options) => bit-identical models.
  ASSERT_EQ(First->Experts.size(), Second->Experts.size());
  for (size_t K = 0; K < First->Experts.size(); ++K) {
    ASSERT_NE(First->Experts[K].envModel(), nullptr);
    EXPECT_EQ(First->Experts[K].envModel()->weights(),
              Second->Experts[K].envModel()->weights());
    EXPECT_EQ(First->Experts[K].threadModel()->weights(),
              Second->Experts[K].threadModel()->weights());
    // Shared-scaler discipline: refits reuse the base corpus scaler, so
    // the mixture's batched scoring path stays valid for candidates.
    EXPECT_EQ(First->Experts[K].threadModel()->scaler().means(),
              Registry->current()->Scaler.means());
  }

  // A window too thin to refit anything yields no candidate at all.
  EXPECT_FALSE(
      Trainer.retrain(syntheticTrace(8), *Registry->current()).has_value());
}

//===----------------------------------------------------------------------===//
// Fault-plan wiring
//===----------------------------------------------------------------------===//

TEST(LifecycleChaosTest, ChaosScheduleCoversLifecycleFaults) {
  sim::FaultPlan Plan = sim::FaultPlan::chaosSchedule(100.0);
  EXPECT_FALSE(Plan.TornPublication.empty());
  EXPECT_FALSE(Plan.StaleSnapshotRead.empty());
  EXPECT_FALSE(Plan.CandidateCorruption.empty());

  sim::FaultInjector Injector(Plan, 3);
  // Inside the first torn window (5..8 of each 25 s cycle) the injector
  // tears; outside it does not.
  EXPECT_TRUE(Injector.tearPublication(6.0));
  EXPECT_FALSE(Injector.tearPublication(20.0));
  EXPECT_TRUE(Injector.staleSnapshotRead(15.0));
  EXPECT_FALSE(Injector.staleSnapshotRead(2.0));
  std::string Bytes = "medley-snapshot payload payload payload";
  const std::string Before = Bytes;
  EXPECT_FALSE(Injector.corruptCandidate(2.0, Bytes));
  EXPECT_EQ(Bytes, Before);
  EXPECT_TRUE(Injector.corruptCandidate(22.0, Bytes));
  EXPECT_NE(Bytes, Before);
  EXPECT_EQ(Injector.stats().TornPublications, 1u);
  EXPECT_EQ(Injector.stats().StaleSnapshotReads, 1u);
  EXPECT_EQ(Injector.stats().CandidateCorruptions, 1u);

  // reset() rewinds the lifecycle fault stream with everything else.
  Injector.reset();
  EXPECT_EQ(Injector.stats().TornPublications, 0u);
  std::string Bytes2 = Before;
  EXPECT_TRUE(Injector.corruptCandidate(22.0, Bytes2));
  EXPECT_EQ(Bytes2, Bytes); // Same seed, same damage.
}
