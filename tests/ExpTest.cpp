//===-- tests/ExpTest.cpp - experiment harness tests ---------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace medley;
using namespace medley::exp;

//===----------------------------------------------------------------------===//
// Scenario
//===----------------------------------------------------------------------===//

TEST(ScenarioTest, PaperSettings) {
  EXPECT_EQ(Scenario::isolatedStatic().workloadSets().size(), 0u);
  EXPECT_DOUBLE_EQ(Scenario::isolatedStatic().availabilityPeriod(), 0.0);

  Scenario SmallLow = Scenario::smallLow();
  EXPECT_EQ(SmallLow.WorkloadSize, "small");
  EXPECT_DOUBLE_EQ(SmallLow.availabilityPeriod(), 20.0);
  EXPECT_EQ(SmallLow.workloadSets().size(), 2u);

  Scenario LargeHigh = Scenario::largeHigh();
  EXPECT_DOUBLE_EQ(LargeHigh.availabilityPeriod(), 10.0);
  EXPECT_EQ(LargeHigh.workloadSets()[1].Programs.size(), 7u);

  EXPECT_EQ(Scenario::dynamicScenarios().size(), 4u);
}

TEST(ScenarioTest, AffinityModifier) {
  Scenario S = Scenario::smallLow().withAffinity();
  EXPECT_TRUE(S.Affinity);
  EXPECT_NE(S.Name.find("affinity"), std::string::npos);
}

TEST(ScenarioTest, LiveStudyUsesTraceHardware) {
  Scenario S = Scenario::liveStudy();
  EXPECT_EQ(S.Hardware, HardwareChange::LiveTrace);
  EXPECT_FALSE(S.workloadSets().empty());
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

namespace {

DriverOptions quickOptions() {
  DriverOptions Options;
  Options.Repeats = 1;
  return Options;
}

} // namespace

TEST(DriverTest, DefaultPolicySpeedupIsOne) {
  Driver D(quickOptions());
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::isolatedStatic();
  EXPECT_NEAR(D.speedup("cg", Policies.factory("default"), S), 1.0, 1e-9);
}

TEST(DriverTest, BaselineCacheReturnsSameObject) {
  Driver D(quickOptions());
  Scenario S = Scenario::isolatedStatic();
  std::shared_ptr<const Measurement> A = D.defaultMeasurement("cg", S, nullptr);
  std::shared_ptr<const Measurement> B = D.defaultMeasurement("cg", S, nullptr);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_GT(A->MeanTargetTime, 0.0);
  // The entry survives a cache clear: callers never hold dangling
  // references into the cache (the old per-driver map could rehash away).
  D.clearCache();
  EXPECT_GT(A->MeanTargetTime, 0.0);
  std::shared_ptr<const Measurement> C = D.defaultMeasurement("cg", S, nullptr);
  EXPECT_DOUBLE_EQ(C->MeanTargetTime, A->MeanTargetTime);
}

TEST(DriverTest, MeasurementsAreDeterministic) {
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::smallLow();
  Driver D1(quickOptions()), D2(quickOptions());
  const workload::WorkloadSet &Set = S.workloadSets()[0];
  Measurement A = D1.measure("lu", Policies.factory("online"), S, &Set);
  Measurement B = D2.measure("lu", Policies.factory("online"), S, &Set);
  EXPECT_DOUBLE_EQ(A.MeanTargetTime, B.MeanTargetTime);
}

TEST(DriverTest, RepeatsAreAveraged) {
  DriverOptions Options;
  Options.Repeats = 3;
  Driver D(Options);
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::smallLow();
  const workload::WorkloadSet &Set = S.workloadSets()[0];
  Measurement M = D.measure("cg", Policies.factory("default"), S, &Set);
  ASSERT_EQ(M.Runs.size(), 3u);
  double Sum = 0.0;
  for (const auto &Run : M.Runs)
    Sum += Run.TargetTime;
  EXPECT_NEAR(M.MeanTargetTime, Sum / 3.0, 1e-9);
}

TEST(DriverTest, WorkloadImpactOfDefaultIsOne) {
  Driver D(quickOptions());
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::smallLow();
  EXPECT_NEAR(D.workloadImpact("cg", Policies.factory("default"), S), 1.0,
              1e-9);
}

TEST(DriverTest, LiveScenarioRuns) {
  Driver D(quickOptions());
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::liveStudy();
  double Speedup = D.speedup("cg", Policies.factory("mixture"), S);
  EXPECT_GT(Speedup, 0.3);
  EXPECT_LT(Speedup, 30.0);
}

//===----------------------------------------------------------------------===//
// Reporter
//===----------------------------------------------------------------------===//

TEST(ReporterTest, MatrixAggregation) {
  SpeedupMatrix M;
  M.Targets = {"a", "b"};
  M.Policies = {"p", "q"};
  M.Values = {{1.0, 2.0}, {1.0, 4.0}};
  auto H = M.hmeanPerPolicy();
  ASSERT_EQ(H.size(), 2u);
  EXPECT_NEAR(H[0], 1.0, 1e-12);
  EXPECT_NEAR(H[1], harmonicMean({2.0, 4.0}), 1e-12);
  EXPECT_EQ(M.policyIndex("q"), 1u);
}

TEST(ReporterTest, PrintSpeedupMatrixContainsRows) {
  SpeedupMatrix M;
  M.Targets = {"cg"};
  M.Policies = {"mixture"};
  M.Values = {{1.5}};
  std::ostringstream OS;
  printSpeedupMatrix(OS, "Figure N", M);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Figure N"), std::string::npos);
  EXPECT_NE(Out.find("cg"), std::string::npos);
  EXPECT_NE(Out.find("mixture"), std::string::npos);
  EXPECT_NE(Out.find("hmean"), std::string::npos);
}

TEST(ReporterTest, SpeedupMatrixCsvRoundTrips) {
  SpeedupMatrix M;
  M.Targets = {"cg", "lu"};
  M.Policies = {"online", "mixture"};
  M.Values = {{1.0, 1.5}, {2.0, 3.0}};
  std::ostringstream OS;
  writeSpeedupMatrixCsv(OS, M);
  std::string Out = OS.str();
  EXPECT_EQ(Out.rfind("benchmark,online,mixture\n", 0), 0u) << Out;
  EXPECT_NE(Out.find("cg,1.0000,1.5000\n"), std::string::npos) << Out;
  EXPECT_NE(Out.find("lu,2.0000,3.0000\n"), std::string::npos) << Out;
  EXPECT_NE(Out.find("hmean,"), std::string::npos) << Out;
}

TEST(ReporterTest, PrintBars) {
  std::ostringstream OS;
  printBars(OS, "Bars", {"one", "two"}, {1.0, 2.0});
  std::string Out = OS.str();
  EXPECT_NE(Out.find("one"), std::string::npos);
  EXPECT_NE(Out.find("##"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// PolicySet
//===----------------------------------------------------------------------===//

TEST(PolicySetTest, FactoriesProduceNamedPolicies) {
  PolicySet &Policies = PolicySet::instance();
  EXPECT_EQ(Policies.factory("default")()->name(), "default");
  EXPECT_EQ(Policies.factory("online")()->name(), "online");
  EXPECT_EQ(Policies.factory("offline")()->name(), "offline");
  EXPECT_EQ(Policies.factory("analytic")()->name(), "analytic");
  EXPECT_EQ(Policies.factory("mixture")()->name(), "mixture");
}

TEST(PolicySetTest, ExpertSetsAreCached) {
  PolicySet &Policies = PolicySet::instance();
  EXPECT_EQ(Policies.experts(4).get(), Policies.experts(4).get());
  EXPECT_EQ(Policies.experts(4)->size(), 4u);
  EXPECT_EQ(Policies.experts(2)->size(), 2u);
}

TEST(PolicySetTest, MixtureFactorySharesStats) {
  PolicySet &Policies = PolicySet::instance();
  auto Stats = std::make_shared<core::MoeStats>(4);
  auto Factory = Policies.mixtureFactory(4, "regime", Stats);
  auto P1 = Factory();
  auto P2 = Factory();
  policy::FeatureVector F;
  F.Values = Vec(policy::NumFeatures, 1.0);
  F.EnvNorm = 1.0;
  F.MaxThreads = 32;
  P1->select(F);
  P2->select(F);
  size_t Total = 0;
  for (size_t C : Stats->SelectionCounts)
    Total += C;
  EXPECT_EQ(Total, 2u);
}

TEST(PolicySetTest, SingleExpertFactoryPinsExpert) {
  PolicySet &Policies = PolicySet::instance();
  auto Factory = Policies.singleExpertFactory(4, 2);
  auto P = Factory();
  auto *Mix = dynamic_cast<core::MixtureOfExperts *>(P.get());
  ASSERT_NE(Mix, nullptr);
  policy::FeatureVector F;
  F.Values = Vec(policy::NumFeatures, 1.0);
  F.EnvNorm = 1.0;
  F.MaxThreads = 32;
  Mix->select(F);
  EXPECT_EQ(Mix->lastExpert(), 2u);
}

TEST(PolicySetTest, AllSelectorKindsConstruct) {
  PolicySet &Policies = PolicySet::instance();
  for (const char *Kind : {"regime", "accuracy", "binned", "perceptron",
                           "hyperplane", "random"}) {
    auto P = Policies.mixtureFactory(4, Kind)();
    EXPECT_EQ(P->name(), "mixture") << Kind;
  }
}

TEST(PolicySetTest, StandardPoliciesOrder) {
  const auto &Names = PolicySet::standardPolicies();
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names.back(), "mixture");
}
