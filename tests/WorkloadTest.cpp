//===-- tests/WorkloadTest.cpp - workload model tests --------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/Catalog.h"
#include "workload/LiveTrace.h"
#include "workload/Program.h"
#include "workload/Region.h"
#include "workload/ThreadPattern.h"
#include "workload/WorkloadSets.h"
#include "sim/AvailabilityPattern.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace medley;
using namespace medley::workload;

namespace {

sim::CpuAllocation idleAllocation(unsigned Cores = 32) {
  sim::CpuAllocation A;
  A.CpuShare = 1.0;
  A.MemFactor = 1.0;
  A.BarrierFactor = 1.0;
  A.CoresPerSocket = 8;
  A.InterSocketSync = 0.0;
  A.AvailableCores = Cores;
  return A;
}

RegionSpec simpleRegion(double Phi = 0.95, double Sigma = 0.01,
                        double Mu = 0.3) {
  RegionSpec R;
  R.Name = "r";
  R.Work = 1.0;
  R.ParallelFraction = Phi;
  R.SyncCost = Sigma;
  R.MemIntensity = Mu;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Region rate model
//===----------------------------------------------------------------------===//

TEST(RegionRateTest, OneThreadFullShareIsUnitRate) {
  RegionSpec R = simpleRegion();
  EXPECT_NEAR(regionRate(R, 1, idleAllocation()), 1.0, 1e-12);
}

TEST(RegionRateTest, MonotoneInCpuShare) {
  RegionSpec R = simpleRegion();
  sim::CpuAllocation Full = idleAllocation();
  sim::CpuAllocation Half = idleAllocation();
  Half.CpuShare = 0.5;
  EXPECT_GT(regionRate(R, 8, Full), regionRate(R, 8, Half));
}

TEST(RegionRateTest, PerfectlyParallelScalesLinearly) {
  RegionSpec R = simpleRegion(1.0, 0.0, 0.0);
  sim::CpuAllocation A = idleAllocation();
  EXPECT_NEAR(regionRate(R, 8, A), 8.0, 1e-9);
  EXPECT_NEAR(regionRate(R, 4, A), 4.0, 1e-9);
}

TEST(RegionRateTest, AmdahlLimitsSerialFraction) {
  RegionSpec R = simpleRegion(0.5, 0.0, 0.0);
  // At phi = 0.5 the asymptotic speedup is 2.
  EXPECT_LT(regionRate(R, 32, idleAllocation()), 2.0);
  EXPECT_GT(regionRate(R, 32, idleAllocation()), 1.9);
}

TEST(RegionRateTest, SyncCostCreatesInteriorOptimum) {
  RegionSpec R = simpleRegion(0.99, 0.05, 0.0);
  sim::CpuAllocation A = idleAllocation();
  A.InterSocketSync = 0.5; // Socket-crossing barriers on.
  double Rate8 = regionRate(R, 8, A);
  double Rate32 = regionRate(R, 32, A);
  EXPECT_GT(Rate8, Rate32) << "sync-heavy region should prefer one socket";
}

TEST(RegionRateTest, BarrierConvoyAmplifiesSyncCost) {
  RegionSpec R = simpleRegion(0.99, 0.02, 0.0);
  sim::CpuAllocation Calm = idleAllocation();
  sim::CpuAllocation Convoyed = idleAllocation();
  Convoyed.BarrierFactor = 3.0;
  EXPECT_GT(regionRate(R, 16, Calm), regionRate(R, 16, Convoyed));
  // A single thread never pays synchronisation cost.
  EXPECT_NEAR(regionRate(R, 1, Calm), regionRate(R, 1, Convoyed), 1e-12);
}

TEST(RegionRateTest, MemFactorSlowsMemoryBoundWork) {
  RegionSpec MemoryBound = simpleRegion(0.99, 0.0, 0.9);
  RegionSpec ComputeBound = simpleRegion(0.99, 0.0, 0.0);
  sim::CpuAllocation Contended = idleAllocation();
  Contended.MemFactor = 2.0;
  double MemLoss = regionRate(MemoryBound, 8, idleAllocation()) /
                   regionRate(MemoryBound, 8, Contended);
  double ComputeLoss = regionRate(ComputeBound, 8, idleAllocation()) /
                       regionRate(ComputeBound, 8, Contended);
  EXPECT_GT(MemLoss, 1.5);
  EXPECT_NEAR(ComputeLoss, 1.0, 1e-12);
}

TEST(RegionRateTest, SocketStaircaseStepsAtSocketBoundary) {
  RegionSpec R = simpleRegion(0.999, 0.03, 0.0);
  sim::CpuAllocation A = idleAllocation();
  A.InterSocketSync = 0.8;
  // Crossing from 8 to 9 threads spans a second socket: the per-thread
  // marginal gain collapses.
  double Gain8 = regionRate(R, 8, A) / regionRate(R, 7, A);
  double Gain9 = regionRate(R, 9, A) / regionRate(R, 8, A);
  EXPECT_GT(Gain8, Gain9);
}

TEST(RegionRateTest, IsolatedSpeedupOfOneThreadIsOne) {
  RegionSpec R = simpleRegion();
  EXPECT_NEAR(
      isolatedRegionSpeedup(R, 1, sim::MachineConfig::evaluationPlatform()),
      1.0, 1e-12);
}

TEST(RegionRateTest, IsolatedSpeedupBoundedByThreads) {
  RegionSpec R = simpleRegion(0.999, 0.001, 0.1);
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  for (unsigned N : {2u, 8u, 16u, 32u})
    EXPECT_LE(isolatedRegionSpeedup(R, N, M), double(N) + 1e-9);
}

//===----------------------------------------------------------------------===//
// Catalog
//===----------------------------------------------------------------------===//

TEST(CatalogTest, HasThreeSuites) {
  EXPECT_EQ(Catalog::bySuite("NAS").size(), 8u);
  EXPECT_GE(Catalog::bySuite("SpecOMP").size(), 8u);
  EXPECT_GE(Catalog::bySuite("Parsec").size(), 10u);
  EXPECT_GE(Catalog::allPrograms().size(), 28u);
}

TEST(CatalogTest, LookupAndAliases) {
  EXPECT_EQ(Catalog::byName("lu").Name, "lu");
  EXPECT_EQ(Catalog::byName("bscholes").Name, "blackscholes");
  EXPECT_EQ(Catalog::byName("btrack").Name, "bodytrack");
  EXPECT_EQ(Catalog::byName("fmine").Name, "freqmine");
  EXPECT_EQ(Catalog::byName("fft").Name, "ft");
  EXPECT_TRUE(Catalog::contains("cg"));
  EXPECT_FALSE(Catalog::contains("nonexistent"));
}

TEST(CatalogTest, EvaluationTargetsAndTrainingProgramsExist) {
  for (const std::string &Name : Catalog::evaluationTargets())
    EXPECT_TRUE(Catalog::contains(Name)) << Name;
  EXPECT_EQ(Catalog::trainingPrograms().size(), 8u);
  for (const std::string &Name : Catalog::trainingPrograms()) {
    EXPECT_TRUE(Catalog::contains(Name)) << Name;
    EXPECT_EQ(Catalog::byName(Name).Suite, "NAS") << Name;
  }
}

/// Structural invariants of every catalog program.
class CatalogProgramTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CatalogProgramTest, SpecIsWellFormed) {
  const ProgramSpec &Spec = Catalog::allPrograms()[GetParam()];
  EXPECT_FALSE(Spec.Name.empty());
  EXPECT_EQ(Spec.Regions.size(), 3u);
  EXPECT_GE(Spec.Iterations, 1u);
  EXPECT_GT(Spec.WorkingSetMb, 0.0);
  EXPECT_GT(Spec.totalWork(), 0.0);

  double ShareSum = 0.0;
  for (const RegionSpec &R : Spec.Regions) {
    EXPECT_GT(R.Work, 0.0);
    EXPECT_GT(R.ParallelFraction, 0.0);
    EXPECT_LE(R.ParallelFraction, 1.0);
    EXPECT_GE(R.SyncCost, 0.0);
    EXPECT_GE(R.MemIntensity, 0.0);
    EXPECT_LE(R.MemIntensity, 0.95);
    EXPECT_GT(R.Code.LoadStoreRatio, 0.0);
    EXPECT_LE(R.Code.LoadStoreRatio, 0.7);
    EXPECT_GE(R.Code.BranchRatio, 0.04);
    EXPECT_LE(R.Code.BranchRatio, 0.35);
    ShareSum += R.Code.InstructionWeight;
  }
  EXPECT_NEAR(ShareSum, 1.0, 1e-9);
}

TEST_P(CatalogProgramTest, IsolatedSpeedupSane) {
  const ProgramSpec &Spec = Catalog::allPrograms()[GetParam()];
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  double S = Spec.isolatedSpeedup(32, M);
  EXPECT_GE(S, 1.0);
  EXPECT_LE(S, 32.0);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CatalogProgramTest,
                         ::testing::Range<size_t>(0, 30));

TEST(CatalogTest, ScalabilityStructureMatchesSuiteBehaviour) {
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  auto Speedup = [&](const char *Name) {
    return Catalog::byName(Name).isolatedSpeedup(32, M);
  };
  // Embarrassingly parallel codes scale; irregular ones do not (P/4 = 8).
  EXPECT_GE(Speedup("ep"), 8.0);
  EXPECT_GE(Speedup("blackscholes"), 8.0);
  EXPECT_GE(Speedup("bt"), 8.0);
  EXPECT_LT(Speedup("cg"), 8.0);
  EXPECT_LT(Speedup("is"), 8.0);
  EXPECT_LT(Speedup("mg"), 8.0);
  EXPECT_LT(Speedup("art"), 8.0);
}

TEST(CatalogTest, HiddenMultipliersAffectBehaviourNotFeatures) {
  ProgramTraits Plain;
  Plain.Name = "plain";
  Plain.Suite = "NAS";
  ProgramTraits Irregular = Plain;
  Irregular.Name = "irregular";
  Irregular.SyncHidden = 2.0;
  Irregular.MemHidden = 1.5;

  ProgramSpec A = makeProgramSpec(Plain);
  ProgramSpec B = makeProgramSpec(Irregular);
  for (size_t R = 0; R < 3; ++R) {
    // Same observable features...
    EXPECT_DOUBLE_EQ(A.Regions[R].Code.LoadStoreRatio,
                     B.Regions[R].Code.LoadStoreRatio);
    EXPECT_DOUBLE_EQ(A.Regions[R].Code.BranchRatio,
                     B.Regions[R].Code.BranchRatio);
    // ...but worse executed behaviour.
    EXPECT_GT(B.Regions[R].SyncCost, A.Regions[R].SyncCost);
    EXPECT_GE(B.Regions[R].MemIntensity, A.Regions[R].MemIntensity);
  }
}

//===----------------------------------------------------------------------===//
// Program execution
//===----------------------------------------------------------------------===//

TEST(ProgramTest, CompletesWithExpectedSerialTime) {
  // One region, one iteration, fixed 1 thread on an idle machine: the
  // completion time must equal the serial work.
  ProgramSpec Spec;
  Spec.Name = "tiny";
  Spec.Suite = "test";
  Spec.Iterations = 1;
  RegionSpec R = simpleRegion(1.0, 0.0, 0.0);
  R.Work = 2.0;
  Spec.Regions = {R};

  Program P(Spec, fixedChooser(1), 32);
  sim::CpuAllocation A = idleAllocation();
  A.Now = 0.0;
  double T = 0.0;
  while (!P.finished()) {
    A.Now = T;
    P.step(0.1, A);
    T += 0.1;
  }
  EXPECT_NEAR(P.completionTime(), 2.0, 1e-9);
  EXPECT_NEAR(P.workCompleted(), 2.0, 1e-9);
}

TEST(ProgramTest, RegionSequencingAndObserver) {
  ProgramSpec Spec;
  Spec.Name = "seq";
  Spec.Suite = "test";
  Spec.Iterations = 2;
  RegionSpec R1 = simpleRegion(1.0, 0.0, 0.0);
  R1.Name = "first";
  R1.Work = 0.5;
  RegionSpec R2 = R1;
  R2.Name = "second";
  R2.Work = 0.25;
  Spec.Regions = {R1, R2};

  std::vector<std::string> Names;
  std::vector<unsigned> Threads;
  Program P(Spec, fixedChooser(2), 32);
  P.setRegionObserver([&](const RegionOutcome &O) {
    Names.push_back(O.Region->Name);
    Threads.push_back(O.Threads);
    EXPECT_GT(O.Duration, 0.0);
    EXPECT_GT(O.rate(), 0.0);
  });

  sim::CpuAllocation A = idleAllocation();
  double T = 0.0;
  while (!P.finished()) {
    A.Now = T;
    P.step(0.1, A);
    T += 0.1;
  }
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names, (std::vector<std::string>{"first", "second", "first",
                                             "second"}));
  EXPECT_EQ(Threads, (std::vector<unsigned>{2, 2, 2, 2}));
  EXPECT_EQ(P.regionsExecuted(), 4u);
}

TEST(ProgramTest, ChooserClamped) {
  ProgramSpec Spec;
  Spec.Name = "clamp";
  Spec.Suite = "test";
  Spec.Iterations = 1;
  Spec.Regions = {simpleRegion()};

  unsigned Seen = 0;
  Program P(
      Spec,
      [&](const RegionContext &Context) {
        Seen = Context.MaxThreads;
        return 10000u; // Absurd request.
      },
      16);
  sim::CpuAllocation A = idleAllocation();
  P.step(0.01, A);
  EXPECT_EQ(Seen, 16u);
  EXPECT_EQ(P.activeThreads(), 16u);
}

TEST(ProgramTest, LoopingRestartsAndCounts) {
  ProgramSpec Spec;
  Spec.Name = "loop";
  Spec.Suite = "test";
  Spec.Iterations = 1;
  RegionSpec R = simpleRegion(1.0, 0.0, 0.0);
  R.Work = 0.3;
  Spec.Regions = {R};

  Program P(Spec, fixedChooser(1), 32, /*Looping=*/true);
  sim::CpuAllocation A = idleAllocation();
  double T = 0.0;
  for (int I = 0; I < 20; ++I) {
    A.Now = T;
    P.step(0.1, A);
    T += 0.1;
  }
  EXPECT_FALSE(P.finished());
  EXPECT_GE(P.completedRuns(), 6u);
  EXPECT_NEAR(P.completionTime(), 0.3, 1e-9); // First run's completion.
  EXPECT_NEAR(P.workCompleted(), 2.0, 1e-9);  // 20 ticks of unit rate.
}

TEST(ProgramTest, MultipleRegionsCanCompleteInOneTick) {
  ProgramSpec Spec;
  Spec.Name = "fast";
  Spec.Suite = "test";
  Spec.Iterations = 3;
  RegionSpec R = simpleRegion(1.0, 0.0, 0.0);
  R.Work = 0.01;
  Spec.Regions = {R, R};

  Program P(Spec, fixedChooser(1), 32);
  sim::CpuAllocation A = idleAllocation();
  P.step(0.1, A); // 0.1s of unit rate covers all 6 * 0.01 work units.
  EXPECT_TRUE(P.finished());
  EXPECT_EQ(P.regionsExecuted(), 6u);
  EXPECT_EQ(P.activeThreads(), 0u);
}

TEST(ProgramTest, MemoryDemandTracksCurrentRegionAndThreads) {
  ProgramSpec Spec;
  Spec.Name = "demand";
  Spec.Suite = "test";
  Spec.Iterations = 1;
  RegionSpec R = simpleRegion(0.99, 0.0, 0.5);
  Spec.Regions = {R};
  Program P(Spec, fixedChooser(4), 32);
  sim::CpuAllocation A = idleAllocation();
  P.step(0.01, A); // Starts the region with 4 threads.
  EXPECT_NEAR(P.memoryDemand(), 4 * 0.5, 1e-12);
}

//===----------------------------------------------------------------------===//
// Thread patterns
//===----------------------------------------------------------------------===//

TEST(ThreadPatternTest, StaysInRange) {
  ThreadPattern P(123, 2, 16, 5.0);
  for (double T = 0.0; T < 500.0; T += 2.5) {
    unsigned N = P.threadsAt(T);
    EXPECT_GE(N, 2u);
    EXPECT_LE(N, 16u);
  }
}

TEST(ThreadPatternTest, DeterministicAndResettable) {
  ThreadPattern A(7, 2, 16, 5.0), B(7, 2, 16, 5.0);
  std::vector<unsigned> SeqA, SeqB;
  for (double T = 0.0; T < 100.0; T += 5.0) {
    SeqA.push_back(A.threadsAt(T));
    SeqB.push_back(B.threadsAt(T));
  }
  EXPECT_EQ(SeqA, SeqB);
  A.reset();
  for (size_t I = 0; I < SeqA.size(); ++I)
    EXPECT_EQ(A.threadsAt(5.0 * double(I)), SeqA[I]);
}

TEST(ThreadPatternTest, EventuallyVaries) {
  ThreadPattern P(99, 2, 16, 1.0);
  unsigned First = P.threadsAt(0.0);
  bool Varied = false;
  for (double T = 1.0; T < 100.0 && !Varied; T += 1.0)
    Varied = P.threadsAt(T) != First;
  EXPECT_TRUE(Varied);
}

TEST(ThreadPatternTest, ChooserUsesContextTime) {
  ThreadChooser C = ThreadPattern::makeChooser(5, 2, 16, 5.0);
  RegionContext Context;
  ProgramSpec Spec = Catalog::byName("cg");
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.MaxThreads = 32;
  Context.Now = 0.0;
  unsigned N0 = C(Context);
  EXPECT_GE(N0, 2u);
  EXPECT_LE(N0, 16u);
}

TEST(ThreadPatternTest, TraceChooserReplaysTrace) {
  ThreadChooser C = traceChooser({{0.0, 4}, {10.0, 12}});
  RegionContext Context;
  ProgramSpec Spec = Catalog::byName("cg");
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.MaxThreads = 32;
  Context.Now = 5.0;
  EXPECT_EQ(C(Context), 4u);
  Context.Now = 10.5;
  EXPECT_EQ(C(Context), 12u);
}

TEST(ThreadPatternTest, FixedChooser) {
  ThreadChooser C = fixedChooser(6);
  RegionContext Context;
  ProgramSpec Spec = Catalog::byName("cg");
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  EXPECT_EQ(C(Context), 6u);
}

//===----------------------------------------------------------------------===//
// Workload sets (Table 3)
//===----------------------------------------------------------------------===//

TEST(WorkloadSetsTest, Table3Structure) {
  const auto &Small = smallWorkloads();
  ASSERT_EQ(Small.size(), 2u);
  EXPECT_EQ(Small[0].Programs, (std::vector<std::string>{"is", "cg"}));
  EXPECT_EQ(Small[1].Programs, (std::vector<std::string>{"ammp", "ft"}));

  const auto &Large = largeWorkloads();
  ASSERT_EQ(Large.size(), 2u);
  EXPECT_EQ(Large[0].Programs.size(), 6u);
  EXPECT_EQ(Large[1].Programs.size(), 7u);
  // Aliases are canonicalised.
  EXPECT_EQ(Large[1].Programs[0], "blackscholes");
  EXPECT_EQ(Large[1].Programs[4], "freqmine");
}

TEST(WorkloadSetsTest, AllWorkloadProgramsExist) {
  for (const auto &Sets : {smallWorkloads(), largeWorkloads()})
    for (const WorkloadSet &Set : Sets)
      for (const std::string &Name : Set.Programs)
        EXPECT_TRUE(Catalog::contains(Name)) << Name;
}

TEST(WorkloadSetsTest, BySizeLookup) {
  EXPECT_EQ(workloadsBySize("small").size(), 2u);
  EXPECT_EQ(workloadsBySize("large").size(), 2u);
}

//===----------------------------------------------------------------------===//
// Live trace
//===----------------------------------------------------------------------===//

TEST(LiveTraceTest, FailureWindowHalvesCapacity) {
  LiveTraceData Data = generateLiveTrace(7, 32);
  sim::TraceAvailability A(Data.Availability);
  double Mid = 0.5 * Data.Duration;
  EXPECT_EQ(A.coresAt(Mid), 16u);
  EXPECT_EQ(A.coresAt(0.0), 32u);
  EXPECT_EQ(A.coresAt(Data.Duration * 0.99), 32u);
}

TEST(LiveTraceTest, WorkloadDemandBoundedAndVarying) {
  LiveTraceData Data = generateLiveTrace(11, 32);
  ASSERT_GT(Data.WorkloadThreads.size(), 5u);
  unsigned MinSeen = 1e9, MaxSeen = 0;
  for (const auto &[T, N] : Data.WorkloadThreads) {
    EXPECT_GE(T, 0.0);
    EXPECT_LE(T, Data.Duration + 1e-9);
    EXPECT_GE(N, 1u);
    EXPECT_LE(N, 64u);
    MinSeen = std::min(MinSeen, N);
    MaxSeen = std::max(MaxSeen, N);
  }
  EXPECT_LT(MinSeen, MaxSeen) << "trace should not be flat";
}

TEST(LiveTraceTest, Deterministic) {
  LiveTraceData A = generateLiveTrace(3, 32), B = generateLiveTrace(3, 32);
  EXPECT_EQ(A.WorkloadThreads, B.WorkloadThreads);
  EXPECT_EQ(A.Availability, B.Availability);
}

TEST(LiveTraceTest, ActivityLogShapedLikeFigure1) {
  std::vector<unsigned> Log = generateActivityLog(5, 5824, 2000);
  ASSERT_EQ(Log.size(), 2000u);
  unsigned MaxSeen = 0, MinSeen = 1e9;
  for (unsigned V : Log) {
    EXPECT_LE(V, 5824u);
    MaxSeen = std::max(MaxSeen, V);
    MinSeen = std::min(MinSeen, V);
  }
  // Bursty and quiet phases both occur.
  EXPECT_GT(MaxSeen, 5824u / 2);
  EXPECT_LT(MinSeen, 5824u / 4);
}

//===----------------------------------------------------------------------===//
// Work-conservation properties (randomised)
//===----------------------------------------------------------------------===//

/// Property: under arbitrary (random) allocations, a program's accumulated
/// work equals the sum of its completed regions' work plus the in-flight
/// region's partial progress, and it never exceeds the spec total.
class WorkConservationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkConservationTest, WorkedEqualsObservedPlusInFlight) {
  Rng R(GetParam());
  ProgramSpec Spec;
  Spec.Name = "fuzz";
  Spec.Suite = "test";
  Spec.Iterations = 1 + unsigned(R.uniformInt(1, 4));
  for (int I = 0; I < 3; ++I) {
    RegionSpec Region = simpleRegion(R.uniform(0.6, 1.0),
                                     R.uniform(0.0, 0.05),
                                     R.uniform(0.0, 0.9));
    Region.Name = "r" + std::to_string(I);
    Region.Work = R.uniform(0.05, 1.5);
    Spec.Regions.push_back(Region);
  }

  double ObservedWork = 0.0;
  Program P(
      Spec,
      [&R](const RegionContext &Context) {
        return unsigned(R.uniformInt(1, Context.MaxThreads));
      },
      32);
  P.setRegionObserver([&ObservedWork](const RegionOutcome &O) {
    ObservedWork += O.Work;
    EXPECT_GT(O.Duration, 0.0);
  });

  sim::CpuAllocation A = idleAllocation();
  double Now = 0.0;
  double LastWorked = 0.0;
  for (int Step = 0; Step < 400 && !P.finished(); ++Step) {
    A.CpuShare = R.uniform(0.05, 1.0);
    A.MemFactor = R.uniform(1.0, 3.0);
    A.BarrierFactor = R.uniform(1.0, 4.0);
    A.Now = Now;
    P.step(0.1, A);
    Now += 0.1;
    // Work accumulates monotonically and bounds hold each step.
    EXPECT_GE(P.workCompleted(), LastWorked - 1e-12);
    EXPECT_GE(P.workCompleted(), ObservedWork - 1e-9);
    EXPECT_LE(P.workCompleted(), Spec.totalWork() + 1e-9);
    LastWorked = P.workCompleted();
  }
  if (P.finished()) {
    EXPECT_NEAR(P.workCompleted(), Spec.totalWork(), 1e-9);
    EXPECT_NEAR(ObservedWork, Spec.totalWork(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkConservationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));
