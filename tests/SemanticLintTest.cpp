//===-- tests/SemanticLintTest.cpp - Interprocedural lint tests ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-phase semantic analyzer (DESIGN.md §12, §15): call-graph
/// linking and name resolution, the L7–L9 interprocedural rules and the
/// L10–L12 flow-sensitive rules on in-process snippets,
/// schedule-independence of the linked graph, the incremental cache and
/// its analyzer/rule-catalog fingerprint, baseline-key escaping and
/// stale-entry tracking, multi-line allow coverage, and CLI runs over
/// the seeded known-bad fixture trees.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Cache.h"
#include "medley-lint/Semantic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/wait.h>

using namespace medley::lint;

namespace {

FileIndex indexSrc(const std::string &Path, const std::string &Source) {
  return buildFileIndex(Path, Source, classifyPath(Path));
}

bool hasRule(const std::vector<Finding> &Findings, const std::string &Rule) {
  for (const Finding &F : Findings)
    if (F.Rule == Rule)
      return true;
  return false;
}

size_t countRule(const std::vector<Finding> &Findings,
                 const std::string &Rule) {
  size_t N = 0;
  for (const Finding &F : Findings)
    N += F.Rule == Rule;
  return N;
}

std::string messagesOf(const std::vector<Finding> &Findings) {
  std::string Out;
  for (const Finding &F : Findings)
    Out += renderText(F) + "\n";
  return Out;
}

bool hasEdge(const CallGraph &G, const std::string &FromQual,
             const std::string &ToQual) {
  auto From = G.ByQual.find(FromQual);
  auto To = G.ByQual.find(ToQual);
  if (From == G.ByQual.end() || To == G.ByQual.end())
    return false;
  const std::vector<size_t> &Succ = G.Edges[From->second];
  return std::find(Succ.begin(), Succ.end(), To->second) != Succ.end();
}

} // namespace

//===----------------------------------------------------------------------===//
// Call-graph linking and resolution
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, QualifiedNamesFromNamespacesAndClasses) {
  CallGraph G = linkCallGraph({indexSrc(
      "src/policy/Features.cpp",
      "namespace medley::policy {\n"
      "double helper(double X) { return X * 2.0; }\n"
      "double buildFeatures(double X) { return helper(X); }\n"
      "}\n")});
  ASSERT_TRUE(G.ByQual.count("medley::policy::helper"));
  ASSERT_TRUE(G.ByQual.count("medley::policy::buildFeatures"));
  EXPECT_TRUE(
      hasEdge(G, "medley::policy::buildFeatures", "medley::policy::helper"));
}

TEST(CallGraphTest, MemberCallResolvesAcrossFiles) {
  CallGraph G = linkCallGraph(
      {indexSrc("src/core/Registry.cpp",
                "class Registry { public: void flush(); };\n"
                "void Registry::flush() { }\n"),
       indexSrc("src/core/Tick.cpp",
                "class Registry;\n"
                "void tick(Registry &R) { R.flush(); }\n")});
  EXPECT_TRUE(hasEdge(G, "tick", "Registry::flush"));
}

TEST(CallGraphTest, QualifiedCallMatchesSuffixOnComponentBoundary) {
  CallGraph G = linkCallGraph(
      {indexSrc("src/support/Util.cpp",
                "namespace medley::util {\n"
                "double clamp(double X) { return X; }\n"
                "}\n"),
       indexSrc("src/core/Use.cpp",
                "double shape(double X) { return util::clamp(X); }\n")});
  EXPECT_TRUE(hasEdge(G, "shape", "medley::util::clamp"));
  // "il::clamp" would NOT match: suffixes bind at '::' boundaries only.
  CallGraph G2 = linkCallGraph(
      {indexSrc("src/support/Util.cpp",
                "namespace medley::util {\n"
                "double clamp(double X) { return X; }\n"
                "}\n"),
       indexSrc("src/core/Use.cpp",
                "double shape(double X) { return il::clamp(X); }\n")});
  EXPECT_FALSE(hasEdge(G2, "shape", "medley::util::clamp"));
}

TEST(CallGraphTest, OverloadsCollapseToOneNode) {
  CallGraph G = linkCallGraph({indexSrc(
      "src/core/Blend.cpp",
      "double blend(double A) { return A; }\n"
      "double blend(double A, double B) { return A + B; }\n")});
  size_t BlendNodes = 0;
  for (const CallGraph::Node &N : G.Nodes)
    BlendNodes += N.Qual == "blend";
  EXPECT_EQ(BlendNodes, 1u);
}

//===----------------------------------------------------------------------===//
// L7 on in-process snippets: recursion, suppression
//===----------------------------------------------------------------------===//

namespace {

/// A three-file tree where the decision entry reaches an allocation
/// through a helperA <-> helperB cycle; \p AllowAtSite plants an allow
/// annotation on the allocation line.
std::vector<FileIndex> recursiveEscapeTree(bool AllowAtSite) {
  std::string Gather = "int helperA(int N);\n"
                       "int helperB(int N) {\n"
                       "  std::vector<int> V;\n";
  if (AllowAtSite)
    Gather += "  // medley-lint: allow(hotpath-escape)\n";
  Gather += "  V.push_back(N);\n"
            "  return helperA(N - 1);\n"
            "}\n";
  return {indexSrc("src/core/Choose.cpp",
                   "class FooSelector { public: int choose(int N); };\n"
                   "int helperA(int N);\n"
                   "int FooSelector::choose(int N) { return helperA(N); }\n"),
          indexSrc("src/core/Helpers.cpp",
                   "int helperB(int N);\n"
                   "int helperA(int N) { return N > 0 ? helperB(N) : 0; }\n"),
          indexSrc("src/core/Gather.cpp", Gather)};
}

} // namespace

TEST(HotpathEscapeTest, PropagatesThroughCallCyclesAndReportsOnce) {
  auto Findings = runSemanticRules(linkCallGraph(recursiveEscapeTree(false)));
  EXPECT_EQ(countRule(Findings, "hotpath-escape"), 1u)
      << messagesOf(Findings);
  for (const Finding &F : Findings)
    if (F.Rule == "hotpath-escape") {
      EXPECT_EQ(F.File, "src/core/Gather.cpp");
      EXPECT_NE(
          F.Message.find("FooSelector::choose -> helperA -> helperB"),
          std::string::npos)
          << F.Message;
    }
}

TEST(HotpathEscapeTest, AllowAtTheAllocationSiteSuppresses) {
  auto Findings = runSemanticRules(linkCallGraph(recursiveEscapeTree(true)));
  EXPECT_FALSE(hasRule(Findings, "hotpath-escape")) << messagesOf(Findings);
}

TEST(HotpathEscapeTest, SoATickKernelsAreDecisionEntries) {
  // The SoA rewrite's tick kernels must anchor L7 reachability just like
  // the selector entries: an allocation in a helper reached from
  // TaskTable::refresh, Simulation::recomputeTickState or a stepSteady
  // fast path is a hot-path escape.
  std::vector<FileIndex> Tree = {
      indexSrc("src/sim/TaskTableRefresh.cpp",
               "class TaskTable { public: void refresh(int I); };\n"
               "int gatherColumns(int I);\n"
               "void TaskTable::refresh(int I) { gatherColumns(I); }\n"),
      indexSrc("src/sim/SimRecompute.cpp",
               "class Simulation { public: void recomputeTickState(int C); };\n"
               "int gatherColumns(int I);\n"
               "void Simulation::recomputeTickState(int C) {\n"
               "  gatherColumns(C);\n"
               "}\n"),
      indexSrc("src/workload/ProgSteady.cpp",
               "class Program { public: bool stepSteady(int N); };\n"
               "int gatherColumns(int I);\n"
               "bool Program::stepSteady(int N) {\n"
               "  return gatherColumns(N) != 0;\n"
               "}\n"),
      indexSrc("src/sim/Gather.cpp",
               "int gatherColumns(int I) {\n"
               "  std::vector<int> Staging;\n"
               "  Staging.push_back(I);\n"
               "  return Staging.back();\n"
               "}\n")};
  auto Findings = runSemanticRules(linkCallGraph(Tree));
  // One allocation site, reported once regardless of how many of the new
  // entries reach it.
  EXPECT_EQ(countRule(Findings, "hotpath-escape"), 1u)
      << messagesOf(Findings);
  for (const Finding &F : Findings) {
    if (F.Rule == "hotpath-escape") {
      EXPECT_EQ(F.File, "src/sim/Gather.cpp");
    }
  }
}

TEST(HotpathEscapeTest, TestTreeDefinitionsAreOutOfScope) {
  // The same shape, but the allocating helper lives under tests/: the
  // BFS must not cross out of src/.
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/core/Choose.cpp",
                "class FooSelector { public: int choose(int N); };\n"
                "int FooSelector::choose(int N) { return helperT(N); }\n"),
       indexSrc("tests/HelperTest.cpp",
                "int helperT(int N) {\n"
                "  std::vector<int> V;\n"
                "  V.push_back(N);\n"
                "  return 0;\n"
                "}\n")}));
  EXPECT_FALSE(hasRule(Findings, "hotpath-escape")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// L9 on an in-process snippet: taint through two functions
//===----------------------------------------------------------------------===//

TEST(DeterminismTaintTest, TaintCrossesTwoFunctionsIntoSeed) {
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/exp/Entropy.cpp",
                "unsigned pickEntropy() {\n"
                "  unsigned Raw = static_cast<unsigned>(rand());\n"
                "  return Raw;\n"
                "}\n"),
       indexSrc("src/exp/Seed.cpp",
                "unsigned pickEntropy();\n"
                "unsigned deriveSeed() {\n"
                "  unsigned Seed = pickEntropy();\n"
                "  return Seed;\n"
                "}\n"
                "void configure() {\n"
                "  std::mt19937 Gen(deriveSeed());\n"
                "}\n")}));
  EXPECT_EQ(countRule(Findings, "determinism-taint"), 1u)
      << messagesOf(Findings);
}

TEST(DeterminismTaintTest, SeedFromPlainParameterStaysQuiet) {
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/exp/Seed.cpp",
                "void configure(unsigned Seed) {\n"
                "  std::mt19937 Gen(Seed);\n"
                "}\n")}));
  EXPECT_FALSE(hasRule(Findings, "determinism-taint")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// L10 cross-thread-write: CFG + must-lock dataflow on in-process snippets
//===----------------------------------------------------------------------===//

namespace {

/// A pool type whose parallelFor marks its lambda a thread-task body.
const char *MiniPoolDecl =
    "struct MiniPool {\n"
    "  template <typename Fn> void parallelFor(unsigned long N, Fn &&B);\n"
    "};\n";

} // namespace

TEST(CrossThreadWriteTest, UnguardedWritesOnTaskPathsFire) {
  std::string Src = std::string(MiniPoolDecl) +
                    "class Agg {\n"
                    "public:\n"
                    "  void runAll(MiniPool &Pool, unsigned long N);\n"
                    "  void bump(long K);\n"
                    "private:\n"
                    "  long Hits = 0;\n"
                    "  long Mixed = 0;\n"
                    "  long Guarded = 0;\n"
                    "  std::atomic<long> Epoch{0};\n"
                    "  std::mutex Mu;\n"
                    "};\n"
                    "void Agg::runAll(MiniPool &Pool, unsigned long N) {\n"
                    "  Pool.parallelFor(N, [this](unsigned long I) {\n"
                    "    Hits += 1;\n"
                    "    Epoch = static_cast<long>(I);\n"
                    "    {\n"
                    "      std::lock_guard<std::mutex> G(Mu);\n"
                    "      Guarded += 1;\n"
                    "    }\n"
                    "    bump(static_cast<long>(I));\n"
                    "  });\n"
                    "}\n"
                    "void Agg::bump(long K) { Mixed += K; }\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Agg.cpp", Src)}));
  std::string Msgs = messagesOf(Findings);
  // `Hits` directly in the body; `Mixed` via the call — both lock-free.
  // The atomic `Epoch` and the guarded `Guarded` stay quiet, and the
  // guard released at the brace-scope end must NOT leak onto the
  // bump() call after it.
  EXPECT_EQ(countRule(Findings, "cross-thread-write"), 2u) << Msgs;
  EXPECT_NE(Msgs.find("'Hits'"), std::string::npos) << Msgs;
  EXPECT_NE(Msgs.find("'Mixed'"), std::string::npos) << Msgs;
  EXPECT_EQ(Msgs.find("'Guarded'"), std::string::npos) << Msgs;
  EXPECT_EQ(Msgs.find("'Epoch'"), std::string::npos) << Msgs;
}

TEST(CrossThreadWriteTest, ManualLockUnlockIsFlowSensitive) {
  std::string Src = std::string(MiniPoolDecl) +
                    "class Agg {\n"
                    "public:\n"
                    "  void runAll(MiniPool &Pool, unsigned long N);\n"
                    "private:\n"
                    "  long A = 0;\n"
                    "  long B = 0;\n"
                    "  std::mutex Mu;\n"
                    "};\n"
                    "void Agg::runAll(MiniPool &Pool, unsigned long N) {\n"
                    "  Pool.parallelFor(N, [this](unsigned long I) {\n"
                    "    Mu.lock();\n"
                    "    A += 1;\n"
                    "    Mu.unlock();\n"
                    "    B += 1;\n"
                    "  });\n"
                    "}\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Agg.cpp", Src)}));
  std::string Msgs = messagesOf(Findings);
  EXPECT_EQ(countRule(Findings, "cross-thread-write"), 1u) << Msgs;
  EXPECT_NE(Msgs.find("'B'"), std::string::npos) << Msgs;
}

TEST(CrossThreadWriteTest, WritesOutsideTaskBodiesStayQuiet) {
  // The same unguarded writes, but nothing ever spawns a task: the rule
  // anchors on thread-task bodies, not on writes per se.
  std::string Src = "class Agg {\n"
                    "public:\n"
                    "  void tick();\n"
                    "  void bump(long K);\n"
                    "private:\n"
                    "  long Hits = 0;\n"
                    "  long Mixed = 0;\n"
                    "};\n"
                    "void Agg::tick() {\n"
                    "  Hits += 1;\n"
                    "  bump(2);\n"
                    "}\n"
                    "void Agg::bump(long K) { Mixed += K; }\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Agg.cpp", Src)}));
  EXPECT_FALSE(hasRule(Findings, "cross-thread-write"))
      << messagesOf(Findings);
}

TEST(CrossThreadWriteTest, TaskLocalReceiverStaysQuiet) {
  // Calls on objects local to the task body are task-private state; the
  // BFS must not traverse into them.
  std::string Src = std::string(MiniPoolDecl) +
                    "class Agg {\n"
                    "public:\n"
                    "  void runAll(MiniPool &Pool, unsigned long N);\n"
                    "  void bump(long K);\n"
                    "private:\n"
                    "  long Mixed = 0;\n"
                    "};\n"
                    "void Agg::runAll(MiniPool &Pool, unsigned long N) {\n"
                    "  Pool.parallelFor(N, [](unsigned long I) {\n"
                    "    Agg Local;\n"
                    "    Local.bump(static_cast<long>(I));\n"
                    "  });\n"
                    "}\n"
                    "void Agg::bump(long K) { Mixed += K; }\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Agg.cpp", Src)}));
  EXPECT_FALSE(hasRule(Findings, "cross-thread-write"))
      << messagesOf(Findings);
}

TEST(CrossThreadWriteTest, FleetStepShardIsANamedThreadTaskRoot) {
  // No spawn lambda anywhere in this snippet: the root comes purely from
  // the FleetEngine::stepShard name anchor (the real engine drives it
  // from ThreadPool workers, one shard range each). The identically
  // shaped method on another class is the control and must stay quiet.
  std::string Src = "class FleetEngine {\n"
                    "public:\n"
                    "  void stepShard(unsigned long Shard, unsigned long N);\n"
                    "private:\n"
                    "  long TotalTicks = 0;\n"
                    "  std::atomic<long> Alive{0};\n"
                    "};\n"
                    "void FleetEngine::stepShard(unsigned long Shard,\n"
                    "                            unsigned long N) {\n"
                    "  TotalTicks += static_cast<long>(N);\n"
                    "  Alive = static_cast<long>(Shard);\n"
                    "}\n"
                    "class OtherEngine {\n"
                    "public:\n"
                    "  void stepShard(unsigned long Shard, unsigned long N);\n"
                    "private:\n"
                    "  long Quiet = 0;\n"
                    "};\n"
                    "void OtherEngine::stepShard(unsigned long Shard,\n"
                    "                            unsigned long N) {\n"
                    "  Quiet += static_cast<long>(N);\n"
                    "}\n";
  auto Findings = runSemanticRules(
      linkCallGraph({indexSrc("src/sim/FleetEngine.cpp", Src)}));
  std::string Msgs = messagesOf(Findings);
  EXPECT_EQ(countRule(Findings, "cross-thread-write"), 1u) << Msgs;
  EXPECT_NE(Msgs.find("'TotalTicks'"), std::string::npos) << Msgs;
  EXPECT_EQ(Msgs.find("'Alive'"), std::string::npos) << Msgs;
  EXPECT_EQ(Msgs.find("'Quiet'"), std::string::npos) << Msgs;
}

TEST(HotpathEscapeTest, FleetStepShardIsADecisionEntry) {
  // stepShard wraps Simulation::step on the steady tick path, so an
  // allocation reachable from it must trip L7 exactly like one under a
  // selector entry.
  std::string Src = "class FleetEngine {\n"
                    "public:\n"
                    "  void stepShard(unsigned long Shard, unsigned long N);\n"
                    "private:\n"
                    "  std::vector<long> TickLog;\n"
                    "};\n"
                    "void FleetEngine::stepShard(unsigned long Shard,\n"
                    "                            unsigned long N) {\n"
                    "  TickLog.push_back(static_cast<long>(N));\n"
                    "}\n";
  auto Findings = runSemanticRules(
      linkCallGraph({indexSrc("src/sim/FleetEngine.cpp", Src)}));
  std::string Msgs = messagesOf(Findings);
  EXPECT_TRUE(hasRule(Findings, "hotpath-escape")) << Msgs;
  EXPECT_NE(Msgs.find("FleetEngine::stepShard"), std::string::npos) << Msgs;
}

//===----------------------------------------------------------------------===//
// L11 snapshot-retention: acquire tracking on in-process snippets
//===----------------------------------------------------------------------===//

namespace {

/// The minimal registry definition that arms L11 (the rule activates
/// only when an `ExpertRegistry::acquire` node exists in the graph).
FileIndex registryIndex() {
  return indexSrc("src/core/Registry.cpp",
                  "struct ExpertSnapshot { unsigned long Version = 0; };\n"
                  "struct ReaderPin { const ExpertSnapshot *Held = nullptr; "
                  "};\n"
                  "class ExpertRegistry {\n"
                  "public:\n"
                  "  const ExpertSnapshot *acquire(ReaderPin &Reader);\n"
                  "  void maintain();\n"
                  "private:\n"
                  "  ExpertSnapshot Current;\n"
                  "};\n"
                  "const ExpertSnapshot *ExpertRegistry::acquire(ReaderPin "
                  "&Reader) {\n"
                  "  Reader.Held = &Current;\n"
                  "  return Reader.Held;\n"
                  "}\n"
                  "void ExpertRegistry::maintain() {}\n");
}

const char *HolderSrc =
    "struct ExpertSnapshot;\n"
    "struct ReaderPin { const ExpertSnapshot *Held = nullptr; };\n"
    "class ExpertRegistry {\n"
    "public:\n"
    "  const ExpertSnapshot *acquire(ReaderPin &Reader);\n"
    "  void maintain();\n"
    "};\n"
    "class Holder {\n"
    "public:\n"
    "  void stash(ExpertRegistry &Reg);\n"
    "  const ExpertSnapshot *pin(ExpertRegistry &Reg);\n"
    "  void across(ExpertRegistry &Reg);\n"
    "private:\n"
    "  const ExpertSnapshot *Cached = nullptr;\n"
    "  unsigned long Sink = 0;\n"
    "};\n"
    "void Holder::stash(ExpertRegistry &Reg) {\n"
    "  ReaderPin Pin;\n"
    "  const ExpertSnapshot *S = Reg.acquire(Pin);\n"
    "  Cached = S;\n"
    "}\n"
    "const ExpertSnapshot *Holder::pin(ExpertRegistry &Reg) {\n"
    "  ReaderPin Pin;\n"
    "  return Reg.acquire(Pin);\n"
    "}\n"
    "void Holder::across(ExpertRegistry &Reg) {\n"
    "  ReaderPin Pin;\n"
    "  const ExpertSnapshot *S = Reg.acquire(Pin);\n"
    "  Reg.maintain();\n"
    "  Sink = S->Version;\n"
    "}\n";

} // namespace

TEST(SnapshotRetentionTest, StoreReturnAndHoldAcrossFire) {
  auto Findings = runSemanticRules(linkCallGraph(
      {registryIndex(), indexSrc("src/core/Holder.cpp", HolderSrc)}));
  std::string Msgs = messagesOf(Findings);
  EXPECT_EQ(countRule(Findings, "snapshot-retention"), 3u) << Msgs;
  EXPECT_NE(Msgs.find("stored into a field/global"), std::string::npos)
      << Msgs;
  EXPECT_NE(Msgs.find("returned from the acquiring function"),
            std::string::npos)
      << Msgs;
  EXPECT_NE(Msgs.find("held across 'maintain'"), std::string::npos) << Msgs;
}

TEST(SnapshotRetentionTest, DisarmedWithoutRegistryAcquireDefinition) {
  // Identical holder code, but no ExpertRegistry::acquire definition in
  // the tree: other projects' acquire() methods must not trip the rule.
  auto Findings = runSemanticRules(
      linkCallGraph({indexSrc("src/core/Holder.cpp", HolderSrc)}));
  EXPECT_FALSE(hasRule(Findings, "snapshot-retention"))
      << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// L12 arena-escape: origin + liveness dataflow on in-process snippets
//===----------------------------------------------------------------------===//

namespace {

const char *ArenaDecl = "namespace support {\n"
                        "class Arena {\n"
                        "public:\n"
                        "  template <typename T> T *allocateArray(unsigned "
                        "long N);\n"
                        "  void reset();\n"
                        "};\n"
                        "} // namespace support\n";

} // namespace

TEST(ArenaEscapeTest, StoreReturnAndUseAfterResetFire) {
  std::string Src =
      std::string(ArenaDecl) +
      "class Ticker {\n"
      "public:\n"
      "  void tickStore(unsigned long N);\n"
      "  float *tickLeak(unsigned long N);\n"
      "  void tickBranch(unsigned long N, bool Flush);\n"
      "private:\n"
      "  support::Arena TickArena;\n"
      "  float *Stale = nullptr;\n"
      "};\n"
      "void Ticker::tickStore(unsigned long N) {\n"
      "  float *Buf = TickArena.allocateArray<float>(N);\n"
      "  Stale = Buf;\n"
      "}\n"
      "float *Ticker::tickLeak(unsigned long N) {\n"
      "  float *Buf = TickArena.allocateArray<float>(N);\n"
      "  return Buf;\n"
      "}\n"
      "void Ticker::tickBranch(unsigned long N, bool Flush) {\n"
      "  float *Buf = TickArena.allocateArray<float>(N);\n"
      "  Buf[0] = 1.0f;\n"
      "  if (Flush)\n"
      "    TickArena.reset();\n"
      "  Buf[0] = 2.0f;\n"
      "}\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Ticker.cpp", Src)}));
  std::string Msgs = messagesOf(Findings);
  EXPECT_EQ(countRule(Findings, "arena-escape"), 3u) << Msgs;
  EXPECT_NE(Msgs.find("stored into a field/global"), std::string::npos)
      << Msgs;
  EXPECT_NE(Msgs.find("returned to the caller"), std::string::npos) << Msgs;
  EXPECT_NE(Msgs.find("used after"), std::string::npos) << Msgs;
}

TEST(ArenaEscapeTest, ResetAfterLastUseStaysQuiet) {
  std::string Src = std::string(ArenaDecl) +
                    "class Ticker {\n"
                    "public:\n"
                    "  void tickClean(unsigned long N);\n"
                    "private:\n"
                    "  support::Arena TickArena;\n"
                    "};\n"
                    "void Ticker::tickClean(unsigned long N) {\n"
                    "  float *Buf = TickArena.allocateArray<float>(N);\n"
                    "  for (unsigned long I = 0; I < N; ++I)\n"
                    "    Buf[I] = 0.0f;\n"
                    "  TickArena.reset();\n"
                    "}\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Ticker.cpp", Src)}));
  EXPECT_FALSE(hasRule(Findings, "arena-escape")) << messagesOf(Findings);
}

TEST(ArenaEscapeTest, ResetOnLoopBackEdgeFlagsNextIterationUse) {
  // The reset flows around the loop back edge: the use at the top of
  // the next iteration reads freed storage even though the reset is
  // textually after it.
  std::string Src = std::string(ArenaDecl) +
                    "class Ticker {\n"
                    "public:\n"
                    "  void spin(unsigned long N);\n"
                    "private:\n"
                    "  support::Arena TickArena;\n"
                    "};\n"
                    "void Ticker::spin(unsigned long N) {\n"
                    "  float *Buf = TickArena.allocateArray<float>(N);\n"
                    "  for (unsigned long I = 0; I < N; ++I) {\n"
                    "    Buf[0] = 1.0f;\n"
                    "    TickArena.reset();\n"
                    "  }\n"
                    "}\n";
  auto Findings =
      runSemanticRules(linkCallGraph({indexSrc("src/core/Ticker.cpp", Src)}));
  EXPECT_EQ(countRule(Findings, "arena-escape"), 1u) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// Schedule independence
//===----------------------------------------------------------------------===//

TEST(AnalyzeTest, GraphAndFindingsIdenticalAcrossJobCounts) {
  std::vector<SourceFile> Files;
  // A dozen files with enough cross-references that an order-dependent
  // merge would show.
  for (int I = 0; I < 12; ++I) {
    std::string N = std::to_string(I);
    std::string Next = std::to_string((I + 1) % 12);
    Files.push_back({"src/core/F" + N + ".cpp",
                     "int chain" + Next + "(int X);\n"
                     "int chain" + N + "(int X) {\n"
                     "  std::vector<int> V;\n"
                     "  V.push_back(X);\n"
                     "  return chain" + Next + "(X - 1);\n"
                     "}\n"});
  }
  Files.push_back({"src/core/Entry.cpp",
                   "class ChainSelector { public: int select(int N); };\n"
                   "int chain0(int X);\n"
                   "int ChainSelector::select(int N) { return chain0(N); }\n"});

  AnalyzeOptions One;
  One.Jobs = 1;
  AnalyzeOptions Four;
  Four.Jobs = 4;
  AnalyzeResult A = analyzeSources(Files, One);
  AnalyzeResult B = analyzeSources(Files, Four);

  EXPECT_EQ(renderGraphJson(A.Graph), renderGraphJson(B.Graph));
  ASSERT_EQ(A.Findings.size(), B.Findings.size());
  for (size_t I = 0; I < A.Findings.size(); ++I)
    EXPECT_EQ(renderText(A.Findings[I]), renderText(B.Findings[I]));
  EXPECT_EQ(countRule(A.Findings, "hotpath-escape"), 12u)
      << messagesOf(A.Findings);
}

//===----------------------------------------------------------------------===//
// Baseline-key escaping
//===----------------------------------------------------------------------===//

TEST(BaselineEscapeTest, KeyWithPipesAndBackslashesRoundTrips) {
  Finding F;
  F.File = "src/odd|name.cpp";
  F.Rule = "float-equality";
  F.SourceLine = "bool B = (A || C) && Mask == 1.0; // \\ and | here";
  std::string Key = renderBaselineKey(F);

  std::string File, Rule, SourceLine;
  ASSERT_TRUE(parseBaselineKey(Key, File, Rule, SourceLine)) << Key;
  EXPECT_EQ(File, F.File);
  EXPECT_EQ(Rule, F.Rule);
  EXPECT_EQ(SourceLine, F.SourceLine);
}

TEST(BaselineEscapeTest, MalformedKeysAreRejected) {
  std::string File, Rule, SourceLine;
  EXPECT_FALSE(parseBaselineKey("only|two", File, Rule, SourceLine));
  EXPECT_FALSE(parseBaselineKey("a|b|c|d", File, Rule, SourceLine));
  EXPECT_FALSE(parseBaselineKey("a|b|trailing\\", File, Rule, SourceLine));
}

TEST(BaselineEscapeTest, BaselineSuppressesFindingOnPipeBearingLine) {
  std::string Source =
      "bool f(double X, bool A, bool C) { return (A || C) && X == 1.0; }\n";
  auto Findings = lintSource("src/core/Fixture.cpp", Source, FileKind::Src);
  ASSERT_EQ(countRule(Findings, "float-equality"), 1u)
      << messagesOf(Findings);
  auto Lines = renderBaseline(Findings);
  EXPECT_TRUE(applyBaseline(Findings, Lines).empty());
}

//===----------------------------------------------------------------------===//
// Baseline bookkeeping: used vs stale entries
//===----------------------------------------------------------------------===//

TEST(BaselineDetailedTest, TracksUsedAndStaleLines) {
  std::string Source = "bool f(double X) { return X == 1.0; }\n"
                       "bool g(double Y) { return Y == 2.0; }\n";
  auto Findings = lintSource("src/core/Fixture.cpp", Source, FileKind::Src);
  ASSERT_EQ(countRule(Findings, "float-equality"), 2u)
      << messagesOf(Findings);
  auto Keys = renderBaseline(Findings);
  ASSERT_EQ(Keys.size(), 2u);

  std::vector<std::string> Lines = {
      "# a comment line", Keys[0], "src/gone.cpp|float-equality|Z == 3.0",
      "", Keys[1]};
  BaselineResult BR = applyBaselineDetailed(Findings, Lines);
  // Both real findings suppressed; the fabricated entry is stale; the
  // comment and the blank line belong to neither list.
  EXPECT_TRUE(BR.Kept.empty()) << messagesOf(BR.Kept);
  EXPECT_EQ(BR.UsedLines, (std::vector<size_t>{1, 4}));
  EXPECT_EQ(BR.StaleLines, (std::vector<size_t>{2}));
}

TEST(BaselineDetailedTest, DuplicateKeysConsumeOnePerFinding) {
  std::string Source = "bool f(double X) { return X == 1.0; }\n";
  auto Findings = lintSource("src/core/Fixture.cpp", Source, FileKind::Src);
  ASSERT_EQ(Findings.size(), 1u);
  auto Keys = renderBaseline(Findings);
  ASSERT_EQ(Keys.size(), 1u);
  // The same key twice: one copy suppresses the finding, the other is
  // stale — the burn-down gate must notice the redundant line.
  std::vector<std::string> Lines = {Keys[0], Keys[0]};
  BaselineResult BR = applyBaselineDetailed(Findings, Lines);
  EXPECT_TRUE(BR.Kept.empty());
  EXPECT_EQ(BR.UsedLines, (std::vector<size_t>{0}));
  EXPECT_EQ(BR.StaleLines, (std::vector<size_t>{1}));
}

//===----------------------------------------------------------------------===//
// Cache fingerprint: analyzer/rule bumps invalidate warm entries
//===----------------------------------------------------------------------===//

TEST(CacheFingerprintTest, SaltChangesTheFingerprint) {
  EXPECT_EQ(cacheFingerprint(""), cacheFingerprint(""));
  EXPECT_NE(cacheFingerprint(""), cacheFingerprint("rule-bump"));
}

TEST(CacheFingerprintTest, FingerprintBumpInvalidatesWarmEntries) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "medley_fp_cache";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);

  std::vector<SourceFile> Files;
  for (int I = 0; I < 3; ++I) {
    std::string N = std::to_string(I);
    Files.push_back({"src/core/F" + N + ".cpp",
                     "bool eq" + N + "(double X) { return X == 1.0; }\n"});
  }
  AnalyzeOptions Opts;
  Opts.CachePath = (Dir / "cache.txt").string();

  AnalyzeResult Cold = analyzeSources(Files, Opts);
  EXPECT_EQ(Cold.CacheHits, 0u);
  AnalyzeResult Warm = analyzeSources(Files, Opts);
  EXPECT_EQ(Warm.CacheHits, Files.size());

  // A simulated rule-catalog bump: every warm entry must be discarded
  // even though no source byte changed, and the findings must come out
  // identical to the cold run.
  Opts.FingerprintSalt = "rule-bump";
  AnalyzeResult Bumped = analyzeSources(Files, Opts);
  EXPECT_EQ(Bumped.CacheHits, 0u);
  ASSERT_EQ(Bumped.Findings.size(), Cold.Findings.size());
  for (size_t I = 0; I < Cold.Findings.size(); ++I)
    EXPECT_EQ(renderText(Bumped.Findings[I]), renderText(Cold.Findings[I]));

  // And the bumped fingerprint is itself cached: the next run is warm.
  AnalyzeResult Rewarm = analyzeSources(Files, Opts);
  EXPECT_EQ(Rewarm.CacheHits, Files.size());

  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Multi-line allow coverage
//===----------------------------------------------------------------------===//

TEST(AllowCoverageTest, AnnotationAboveCoversWholeStatement) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  // medley-lint: allow(float-equality)\n"
                             "  bool B = pick(X,\n"
                             "                Y,\n"
                             "                X == 1.0);\n"
                             "  return B;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_FALSE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

TEST(AllowCoverageTest, AnnotationOnFirstStatementLineCoversTheRest) {
  auto Findings =
      lintSource("src/core/Fixture.cpp",
                 "bool f(double X, double Y) {\n"
                 "  bool B = pick(X, // medley-lint: allow(float-equality)\n"
                 "                Y,\n"
                 "                X == 1.0);\n"
                 "  return B;\n"
                 "}\n",
                 FileKind::Src);
  EXPECT_FALSE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

TEST(AllowCoverageTest, WithoutAnnotationTheSameStatementFires) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  bool B = pick(X,\n"
                             "                Y,\n"
                             "                X == 1.0);\n"
                             "  return B;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_TRUE(hasRule(Findings, "float-equality"));
}

TEST(AllowCoverageTest, CoverageEndsAtTheStatementSemicolon) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  // medley-lint: allow(float-equality)\n"
                             "  bool B = pick(X,\n"
                             "                Y);\n"
                             "  bool C = (X == 1.0);\n"
                             "  return B && C;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_TRUE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// CLI: fixture trees, --graph-json determinism, the cache
//===----------------------------------------------------------------------===//

#if defined(MEDLEY_LINT_BIN) && defined(MEDLEY_LINT_FIXTURE_DIR)

namespace {

int runLint(const std::string &Args) {
  std::string Cmd = std::string(MEDLEY_LINT_BIN) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

std::string fixture(const std::string &Rule) {
  return std::string(MEDLEY_LINT_FIXTURE_DIR) + "/" + Rule;
}

/// Per-test scratch dir (ctest -j runs each case in its own process, so
/// per-test naming keeps parallel runs apart).
class SemanticCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = std::filesystem::path(::testing::TempDir()) /
          (std::string("medley_semantic_cli_") + Info->name());
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  std::string path(const std::string &Rel) const {
    return (Dir / Rel).string();
  }

  std::filesystem::path Dir;
};

} // namespace

TEST_F(SemanticCliTest, HotpathEscapeFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("hotpath-escape") + " --json " + Json +
                    " " + fixture("hotpath-escape") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("hotpath-escape"), std::string::npos) << Report;
  EXPECT_NE(
      Report.find("RouteSelector::choose -> planRoute -> gatherCandidates"),
      std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, RegistryLockFixtureFiresOnTheAcquireEntry) {
  // The lifecycle entry points: a registry reader that locks and
  // allocates on the acquire path must trip both L7 (via the
  // ExpertRegistry::acquire decision entry) and L8 (sleep under the
  // publish mutex).
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("registry-lock") + " --json " + Json +
                    " " + fixture("registry-lock") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("hotpath-escape"), std::string::npos) << Report;
  EXPECT_NE(Report.find("ExpertRegistry::acquire -> repinSnapshot"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("held across blocking call"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("PublishMutex"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, LockOrderFixtureFiresForCycleAndBlockingCall) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("lock-order") + " --json " + Json +
                    " " + fixture("lock-order") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("lock-order cycle"), std::string::npos) << Report;
  EXPECT_NE(Report.find("held across blocking call"), std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, DeterminismTaintFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("determinism-taint") + " --json " +
                    Json + " " + fixture("determinism-taint") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("determinism-taint"), std::string::npos) << Report;
  EXPECT_NE(Report.find("deriveSeed"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, NoSemanticFlagDisablesInterproceduralRules) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--no-semantic --root " + fixture("hotpath-escape") +
                    " --json " + Json + " " + fixture("hotpath-escape") +
                    "/src"),
            0);
}

TEST_F(SemanticCliTest, GraphJsonIsByteIdenticalAcrossJobs) {
  std::string G1 = path("graph1.json"), G4 = path("graph4.json");
  EXPECT_EQ(runLint("--jobs 1 --root " + fixture("hotpath-escape") +
                    " --graph-json " + G1 + " " + fixture("hotpath-escape") +
                    "/src"),
            1);
  EXPECT_EQ(runLint("--jobs 4 --root " + fixture("hotpath-escape") +
                    " --graph-json " + G4 + " " + fixture("hotpath-escape") +
                    "/src"),
            1);
  std::string A = slurp(G1), B = slurp(G4);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"RouteSelector::choose\""), std::string::npos) << A;
}

TEST_F(SemanticCliTest, SarifReportCarriesRuleAndLocation) {
  std::string Sarif = path("report.sarif");
  EXPECT_EQ(runLint("--root " + fixture("hotpath-escape") + " --sarif " +
                    Sarif + " " + fixture("hotpath-escape") + "/src"),
            1);
  std::string Report = slurp(Sarif);
  EXPECT_NE(Report.find("\"version\": \"2.1.0\""), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("\"hotpath-escape\""), std::string::npos) << Report;
  EXPECT_NE(Report.find("src/Gather.cpp"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, WarmCacheRunIsByteIdenticalAndInvalidatesOnEdit) {
  // Work on a private copy: the invalidation step edits a file.
  std::filesystem::copy(fixture("hotpath-escape"), Dir / "tree",
                        std::filesystem::copy_options::recursive);
  std::string Tree = path("tree");
  std::string Cache = path("cache.txt");
  std::string R1 = path("r1.json"), R2 = path("r2.json");

  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R1 +
                    " " + Tree + "/src"),
            1);
  ASSERT_FALSE(slurp(Cache).empty());
  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R2 +
                    " " + Tree + "/src"),
            1);
  EXPECT_EQ(slurp(R1), slurp(R2));

  // Break the call chain: the cached entry for the edited file must be
  // discarded and the escape disappears with it.
  std::ofstream Out(Dir / "tree" / "src" / "Plan.cpp", std::ios::trunc);
  Out << "std::vector<int> planRoute(int Budget) { return {}; }\n";
  Out.close();
  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R1 +
                    " " + Tree + "/src"),
            0);
}

TEST_F(SemanticCliTest, CrossThreadWriteFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("cross-thread-write") + " --json " +
                    Json + " " + fixture("cross-thread-write") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("cross-thread-write"), std::string::npos) << Report;
  // Direct in the task body, via a same-TU call, and via the cross-TU
  // out-of-line definition in Worker.cpp.
  EXPECT_NE(Report.find("'Hits'"), std::string::npos) << Report;
  EXPECT_NE(Report.find("'Mixed'"), std::string::npos) << Report;
  EXPECT_NE(Report.find("'Sum'"), std::string::npos) << Report;
  EXPECT_NE(Report.find("Aggregator::bump"), std::string::npos) << Report;
  // The guarded, atomic, and task-local legs stay quiet.
  EXPECT_EQ(Report.find("'Guarded'"), std::string::npos) << Report;
  EXPECT_EQ(Report.find("'Epoch'"), std::string::npos) << Report;
  EXPECT_EQ(Report.find("'Notes'"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, FleetShardFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("fleet-shard") + " --json " + Json +
                    " " + fixture("fleet-shard") + "/src"),
            1);
  std::string Report = slurp(Json);
  // L10 via the named FleetEngine::stepShard root (no spawn lambda in the
  // tree): the shared aggregate directly in stepShard plus the cross-TU
  // leg through recordDecisions().
  EXPECT_NE(Report.find("cross-thread-write"), std::string::npos) << Report;
  EXPECT_NE(Report.find("'TotalTicks'"), std::string::npos) << Report;
  EXPECT_NE(Report.find("'TotalDecisions'"), std::string::npos) << Report;
  EXPECT_NE(Report.find("FleetEngine::recordDecisions"), std::string::npos)
      << Report;
  // L7 via the FleetEngine::stepShard decision entry.
  EXPECT_NE(Report.find("hotpath-escape"), std::string::npos) << Report;
  EXPECT_NE(Report.find("FleetEngine::stepShard"), std::string::npos)
      << Report;
  // The atomic, guarded, and task-local legs stay quiet.
  EXPECT_EQ(Report.find("'Alive'"), std::string::npos) << Report;
  EXPECT_EQ(Report.find("'GuardedTotal'"), std::string::npos) << Report;
  EXPECT_EQ(Report.find("'LocalTicks'"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, SnapshotRetentionFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("snapshot-retention") + " --json " +
                    Json + " " + fixture("snapshot-retention") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("snapshot-retention"), std::string::npos) << Report;
  EXPECT_NE(Report.find("stored into a field/global"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("returned from the acquiring function"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("held across 'maintain'"), std::string::npos)
      << Report;
  // The transitive may-block leg: helper() itself only sleeps.
  EXPECT_NE(Report.find("held across 'helper'"), std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, ArenaEscapeFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("arena-escape") + " --json " + Json +
                    " " + fixture("arena-escape") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("arena-escape"), std::string::npos) << Report;
  EXPECT_NE(Report.find("stored into a field/global"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("returned to the caller"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("used after"), std::string::npos) << Report;
  // The cross-TU leg: flush() resets TickArena over in Flush.cpp.
  EXPECT_NE(Report.find("still live across 'flush'"), std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, SarifCarriesCatalogRuleIndexAndFingerprints) {
  // Every report embeds the full twelve-rule catalog plus per-result
  // ruleIndex and stable partialFingerprints — over all the seeded
  // fixture trees (L7–L12).
  const char *Trees[] = {"hotpath-escape",     "registry-lock",
                         "lock-order",         "determinism-taint",
                         "cross-thread-write", "snapshot-retention",
                         "arena-escape",       "fleet-shard"};
  for (const char *Tree : Trees) {
    std::string Sarif = path(std::string(Tree) + ".sarif");
    EXPECT_EQ(runLint("--root " + fixture(Tree) + " --sarif " + Sarif + " " +
                      fixture(Tree) + "/src"),
              1)
        << Tree;
    std::string Report = slurp(Sarif);
    EXPECT_NE(Report.find("\"version\": \"2.1.0\""), std::string::npos)
        << Tree;
    for (const char *Name :
         {"\"Nondeterminism\"", "\"HotpathEscape\"", "\"LockOrder\"",
          "\"DeterminismTaint\"", "\"CrossThreadWrite\"",
          "\"SnapshotRetention\"", "\"ArenaEscape\""})
      EXPECT_NE(Report.find(Name), std::string::npos) << Tree << " " << Name;
    EXPECT_NE(Report.find("\"ruleIndex\""), std::string::npos) << Tree;
    EXPECT_NE(Report.find("\"partialFingerprints\""), std::string::npos)
        << Tree;
    EXPECT_NE(Report.find("\"medleyLintKey/v1\""), std::string::npos) << Tree;
  }
}

TEST_F(SemanticCliTest, StaleBaselineFailsWithExitThreeAndPruneRepairs) {
  std::string Base = path("baseline.txt");
  std::string Tree = fixture("arena-escape");

  // Findings still fail the run while the baseline is being written.
  EXPECT_EQ(runLint("--root " + Tree + " --write-baseline " + Base + " " +
                    Tree + "/src"),
            1);
  // A fully covering baseline turns the run green.
  EXPECT_EQ(runLint("--root " + Tree + " --baseline " + Base + " " + Tree +
                    "/src"),
            0);

  // Plant a stale entry (plus a comment that must survive pruning).
  {
    std::ofstream Out(Base, std::ios::app);
    Out << "# keep this comment\n";
    Out << "src/Gone.cpp|arena-escape|float *Dead = nullptr;\n";
  }
  // Default: stale entries warn but stay green (local burn-down).
  EXPECT_EQ(runLint("--root " + Tree + " --baseline " + Base + " " + Tree +
                    "/src"),
            0);
  // The CI gate: clean tree + stale baseline = exit 3.
  EXPECT_EQ(runLint("--root " + Tree + " --baseline " + Base +
                    " --fail-stale-baseline " + Tree + "/src"),
            3);
  // Pruning rewrites the file in place; the pruning run still reports
  // the staleness it repaired, the next run is clean.
  EXPECT_EQ(runLint("--root " + Tree + " --baseline " + Base +
                    " --prune-baseline --fail-stale-baseline " + Tree +
                    "/src"),
            3);
  std::string Pruned = slurp(Base);
  EXPECT_EQ(Pruned.find("src/Gone.cpp"), std::string::npos) << Pruned;
  EXPECT_NE(Pruned.find("# keep this comment"), std::string::npos) << Pruned;
  EXPECT_EQ(runLint("--root " + Tree + " --baseline " + Base +
                    " --fail-stale-baseline " + Tree + "/src"),
            0);
}

TEST_F(SemanticCliTest, FixtureReportsAreByteIdenticalAcrossJobsAndCache) {
  // The flow-sensitive rules ride phase 1 (cached, parallel): the JSON
  // report must not depend on worker count or cache temperature.
  std::string Tree = fixture("cross-thread-write");
  std::string Cache = path("cache.txt");
  std::string R1 = path("r1.json"), R4 = path("r4.json"),
              RW = path("rw.json");
  EXPECT_EQ(runLint("--jobs 1 --root " + Tree + " --json " + R1 + " " + Tree +
                    "/src"),
            1);
  EXPECT_EQ(runLint("--jobs 4 --cache " + Cache + " --root " + Tree +
                    " --json " + R4 + " " + Tree + "/src"),
            1);
  EXPECT_EQ(runLint("--jobs 4 --cache " + Cache + " --root " + Tree +
                    " --json " + RW + " " + Tree + "/src"),
            1);
  std::string A = slurp(R1);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, slurp(R4));
  EXPECT_EQ(A, slurp(RW));
}

#endif // MEDLEY_LINT_BIN && MEDLEY_LINT_FIXTURE_DIR
