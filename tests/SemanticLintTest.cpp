//===-- tests/SemanticLintTest.cpp - Interprocedural lint tests ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-phase semantic analyzer (DESIGN.md §12): call-graph linking
/// and name resolution, the L7–L9 interprocedural rules on in-process
/// snippets, schedule-independence of the linked graph, the incremental
/// cache, baseline-key escaping, multi-line allow coverage, and CLI runs
/// over the seeded known-bad fixture trees.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Semantic.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/wait.h>

using namespace medley::lint;

namespace {

FileIndex indexSrc(const std::string &Path, const std::string &Source) {
  return buildFileIndex(Path, Source, classifyPath(Path));
}

bool hasRule(const std::vector<Finding> &Findings, const std::string &Rule) {
  for (const Finding &F : Findings)
    if (F.Rule == Rule)
      return true;
  return false;
}

size_t countRule(const std::vector<Finding> &Findings,
                 const std::string &Rule) {
  size_t N = 0;
  for (const Finding &F : Findings)
    N += F.Rule == Rule;
  return N;
}

std::string messagesOf(const std::vector<Finding> &Findings) {
  std::string Out;
  for (const Finding &F : Findings)
    Out += renderText(F) + "\n";
  return Out;
}

bool hasEdge(const CallGraph &G, const std::string &FromQual,
             const std::string &ToQual) {
  auto From = G.ByQual.find(FromQual);
  auto To = G.ByQual.find(ToQual);
  if (From == G.ByQual.end() || To == G.ByQual.end())
    return false;
  const std::vector<size_t> &Succ = G.Edges[From->second];
  return std::find(Succ.begin(), Succ.end(), To->second) != Succ.end();
}

} // namespace

//===----------------------------------------------------------------------===//
// Call-graph linking and resolution
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, QualifiedNamesFromNamespacesAndClasses) {
  CallGraph G = linkCallGraph({indexSrc(
      "src/policy/Features.cpp",
      "namespace medley::policy {\n"
      "double helper(double X) { return X * 2.0; }\n"
      "double buildFeatures(double X) { return helper(X); }\n"
      "}\n")});
  ASSERT_TRUE(G.ByQual.count("medley::policy::helper"));
  ASSERT_TRUE(G.ByQual.count("medley::policy::buildFeatures"));
  EXPECT_TRUE(
      hasEdge(G, "medley::policy::buildFeatures", "medley::policy::helper"));
}

TEST(CallGraphTest, MemberCallResolvesAcrossFiles) {
  CallGraph G = linkCallGraph(
      {indexSrc("src/core/Registry.cpp",
                "class Registry { public: void flush(); };\n"
                "void Registry::flush() { }\n"),
       indexSrc("src/core/Tick.cpp",
                "class Registry;\n"
                "void tick(Registry &R) { R.flush(); }\n")});
  EXPECT_TRUE(hasEdge(G, "tick", "Registry::flush"));
}

TEST(CallGraphTest, QualifiedCallMatchesSuffixOnComponentBoundary) {
  CallGraph G = linkCallGraph(
      {indexSrc("src/support/Util.cpp",
                "namespace medley::util {\n"
                "double clamp(double X) { return X; }\n"
                "}\n"),
       indexSrc("src/core/Use.cpp",
                "double shape(double X) { return util::clamp(X); }\n")});
  EXPECT_TRUE(hasEdge(G, "shape", "medley::util::clamp"));
  // "il::clamp" would NOT match: suffixes bind at '::' boundaries only.
  CallGraph G2 = linkCallGraph(
      {indexSrc("src/support/Util.cpp",
                "namespace medley::util {\n"
                "double clamp(double X) { return X; }\n"
                "}\n"),
       indexSrc("src/core/Use.cpp",
                "double shape(double X) { return il::clamp(X); }\n")});
  EXPECT_FALSE(hasEdge(G2, "shape", "medley::util::clamp"));
}

TEST(CallGraphTest, OverloadsCollapseToOneNode) {
  CallGraph G = linkCallGraph({indexSrc(
      "src/core/Blend.cpp",
      "double blend(double A) { return A; }\n"
      "double blend(double A, double B) { return A + B; }\n")});
  size_t BlendNodes = 0;
  for (const CallGraph::Node &N : G.Nodes)
    BlendNodes += N.Qual == "blend";
  EXPECT_EQ(BlendNodes, 1u);
}

//===----------------------------------------------------------------------===//
// L7 on in-process snippets: recursion, suppression
//===----------------------------------------------------------------------===//

namespace {

/// A three-file tree where the decision entry reaches an allocation
/// through a helperA <-> helperB cycle; \p AllowAtSite plants an allow
/// annotation on the allocation line.
std::vector<FileIndex> recursiveEscapeTree(bool AllowAtSite) {
  std::string Gather = "int helperA(int N);\n"
                       "int helperB(int N) {\n"
                       "  std::vector<int> V;\n";
  if (AllowAtSite)
    Gather += "  // medley-lint: allow(hotpath-escape)\n";
  Gather += "  V.push_back(N);\n"
            "  return helperA(N - 1);\n"
            "}\n";
  return {indexSrc("src/core/Choose.cpp",
                   "class FooSelector { public: int choose(int N); };\n"
                   "int helperA(int N);\n"
                   "int FooSelector::choose(int N) { return helperA(N); }\n"),
          indexSrc("src/core/Helpers.cpp",
                   "int helperB(int N);\n"
                   "int helperA(int N) { return N > 0 ? helperB(N) : 0; }\n"),
          indexSrc("src/core/Gather.cpp", Gather)};
}

} // namespace

TEST(HotpathEscapeTest, PropagatesThroughCallCyclesAndReportsOnce) {
  auto Findings = runSemanticRules(linkCallGraph(recursiveEscapeTree(false)));
  EXPECT_EQ(countRule(Findings, "hotpath-escape"), 1u)
      << messagesOf(Findings);
  for (const Finding &F : Findings)
    if (F.Rule == "hotpath-escape") {
      EXPECT_EQ(F.File, "src/core/Gather.cpp");
      EXPECT_NE(
          F.Message.find("FooSelector::choose -> helperA -> helperB"),
          std::string::npos)
          << F.Message;
    }
}

TEST(HotpathEscapeTest, AllowAtTheAllocationSiteSuppresses) {
  auto Findings = runSemanticRules(linkCallGraph(recursiveEscapeTree(true)));
  EXPECT_FALSE(hasRule(Findings, "hotpath-escape")) << messagesOf(Findings);
}

TEST(HotpathEscapeTest, SoATickKernelsAreDecisionEntries) {
  // The SoA rewrite's tick kernels must anchor L7 reachability just like
  // the selector entries: an allocation in a helper reached from
  // TaskTable::refresh, Simulation::recomputeTickState or a stepSteady
  // fast path is a hot-path escape.
  std::vector<FileIndex> Tree = {
      indexSrc("src/sim/TaskTableRefresh.cpp",
               "class TaskTable { public: void refresh(int I); };\n"
               "int gatherColumns(int I);\n"
               "void TaskTable::refresh(int I) { gatherColumns(I); }\n"),
      indexSrc("src/sim/SimRecompute.cpp",
               "class Simulation { public: void recomputeTickState(int C); };\n"
               "int gatherColumns(int I);\n"
               "void Simulation::recomputeTickState(int C) {\n"
               "  gatherColumns(C);\n"
               "}\n"),
      indexSrc("src/workload/ProgSteady.cpp",
               "class Program { public: bool stepSteady(int N); };\n"
               "int gatherColumns(int I);\n"
               "bool Program::stepSteady(int N) {\n"
               "  return gatherColumns(N) != 0;\n"
               "}\n"),
      indexSrc("src/sim/Gather.cpp",
               "int gatherColumns(int I) {\n"
               "  std::vector<int> Staging;\n"
               "  Staging.push_back(I);\n"
               "  return Staging.back();\n"
               "}\n")};
  auto Findings = runSemanticRules(linkCallGraph(Tree));
  // One allocation site, reported once regardless of how many of the new
  // entries reach it.
  EXPECT_EQ(countRule(Findings, "hotpath-escape"), 1u)
      << messagesOf(Findings);
  for (const Finding &F : Findings)
    if (F.Rule == "hotpath-escape")
      EXPECT_EQ(F.File, "src/sim/Gather.cpp");
}

TEST(HotpathEscapeTest, TestTreeDefinitionsAreOutOfScope) {
  // The same shape, but the allocating helper lives under tests/: the
  // BFS must not cross out of src/.
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/core/Choose.cpp",
                "class FooSelector { public: int choose(int N); };\n"
                "int FooSelector::choose(int N) { return helperT(N); }\n"),
       indexSrc("tests/HelperTest.cpp",
                "int helperT(int N) {\n"
                "  std::vector<int> V;\n"
                "  V.push_back(N);\n"
                "  return 0;\n"
                "}\n")}));
  EXPECT_FALSE(hasRule(Findings, "hotpath-escape")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// L9 on an in-process snippet: taint through two functions
//===----------------------------------------------------------------------===//

TEST(DeterminismTaintTest, TaintCrossesTwoFunctionsIntoSeed) {
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/exp/Entropy.cpp",
                "unsigned pickEntropy() {\n"
                "  unsigned Raw = static_cast<unsigned>(rand());\n"
                "  return Raw;\n"
                "}\n"),
       indexSrc("src/exp/Seed.cpp",
                "unsigned pickEntropy();\n"
                "unsigned deriveSeed() {\n"
                "  unsigned Seed = pickEntropy();\n"
                "  return Seed;\n"
                "}\n"
                "void configure() {\n"
                "  std::mt19937 Gen(deriveSeed());\n"
                "}\n")}));
  EXPECT_EQ(countRule(Findings, "determinism-taint"), 1u)
      << messagesOf(Findings);
}

TEST(DeterminismTaintTest, SeedFromPlainParameterStaysQuiet) {
  auto Findings = runSemanticRules(linkCallGraph(
      {indexSrc("src/exp/Seed.cpp",
                "void configure(unsigned Seed) {\n"
                "  std::mt19937 Gen(Seed);\n"
                "}\n")}));
  EXPECT_FALSE(hasRule(Findings, "determinism-taint")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// Schedule independence
//===----------------------------------------------------------------------===//

TEST(AnalyzeTest, GraphAndFindingsIdenticalAcrossJobCounts) {
  std::vector<SourceFile> Files;
  // A dozen files with enough cross-references that an order-dependent
  // merge would show.
  for (int I = 0; I < 12; ++I) {
    std::string N = std::to_string(I);
    std::string Next = std::to_string((I + 1) % 12);
    Files.push_back({"src/core/F" + N + ".cpp",
                     "int chain" + Next + "(int X);\n"
                     "int chain" + N + "(int X) {\n"
                     "  std::vector<int> V;\n"
                     "  V.push_back(X);\n"
                     "  return chain" + Next + "(X - 1);\n"
                     "}\n"});
  }
  Files.push_back({"src/core/Entry.cpp",
                   "class ChainSelector { public: int select(int N); };\n"
                   "int chain0(int X);\n"
                   "int ChainSelector::select(int N) { return chain0(N); }\n"});

  AnalyzeOptions One;
  One.Jobs = 1;
  AnalyzeOptions Four;
  Four.Jobs = 4;
  AnalyzeResult A = analyzeSources(Files, One);
  AnalyzeResult B = analyzeSources(Files, Four);

  EXPECT_EQ(renderGraphJson(A.Graph), renderGraphJson(B.Graph));
  ASSERT_EQ(A.Findings.size(), B.Findings.size());
  for (size_t I = 0; I < A.Findings.size(); ++I)
    EXPECT_EQ(renderText(A.Findings[I]), renderText(B.Findings[I]));
  EXPECT_EQ(countRule(A.Findings, "hotpath-escape"), 12u)
      << messagesOf(A.Findings);
}

//===----------------------------------------------------------------------===//
// Baseline-key escaping
//===----------------------------------------------------------------------===//

TEST(BaselineEscapeTest, KeyWithPipesAndBackslashesRoundTrips) {
  Finding F;
  F.File = "src/odd|name.cpp";
  F.Rule = "float-equality";
  F.SourceLine = "bool B = (A || C) && Mask == 1.0; // \\ and | here";
  std::string Key = renderBaselineKey(F);

  std::string File, Rule, SourceLine;
  ASSERT_TRUE(parseBaselineKey(Key, File, Rule, SourceLine)) << Key;
  EXPECT_EQ(File, F.File);
  EXPECT_EQ(Rule, F.Rule);
  EXPECT_EQ(SourceLine, F.SourceLine);
}

TEST(BaselineEscapeTest, MalformedKeysAreRejected) {
  std::string File, Rule, SourceLine;
  EXPECT_FALSE(parseBaselineKey("only|two", File, Rule, SourceLine));
  EXPECT_FALSE(parseBaselineKey("a|b|c|d", File, Rule, SourceLine));
  EXPECT_FALSE(parseBaselineKey("a|b|trailing\\", File, Rule, SourceLine));
}

TEST(BaselineEscapeTest, BaselineSuppressesFindingOnPipeBearingLine) {
  std::string Source =
      "bool f(double X, bool A, bool C) { return (A || C) && X == 1.0; }\n";
  auto Findings = lintSource("src/core/Fixture.cpp", Source, FileKind::Src);
  ASSERT_EQ(countRule(Findings, "float-equality"), 1u)
      << messagesOf(Findings);
  auto Lines = renderBaseline(Findings);
  EXPECT_TRUE(applyBaseline(Findings, Lines).empty());
}

//===----------------------------------------------------------------------===//
// Multi-line allow coverage
//===----------------------------------------------------------------------===//

TEST(AllowCoverageTest, AnnotationAboveCoversWholeStatement) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  // medley-lint: allow(float-equality)\n"
                             "  bool B = pick(X,\n"
                             "                Y,\n"
                             "                X == 1.0);\n"
                             "  return B;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_FALSE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

TEST(AllowCoverageTest, AnnotationOnFirstStatementLineCoversTheRest) {
  auto Findings =
      lintSource("src/core/Fixture.cpp",
                 "bool f(double X, double Y) {\n"
                 "  bool B = pick(X, // medley-lint: allow(float-equality)\n"
                 "                Y,\n"
                 "                X == 1.0);\n"
                 "  return B;\n"
                 "}\n",
                 FileKind::Src);
  EXPECT_FALSE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

TEST(AllowCoverageTest, WithoutAnnotationTheSameStatementFires) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  bool B = pick(X,\n"
                             "                Y,\n"
                             "                X == 1.0);\n"
                             "  return B;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_TRUE(hasRule(Findings, "float-equality"));
}

TEST(AllowCoverageTest, CoverageEndsAtTheStatementSemicolon) {
  auto Findings = lintSource("src/core/Fixture.cpp",
                             "bool f(double X, double Y) {\n"
                             "  // medley-lint: allow(float-equality)\n"
                             "  bool B = pick(X,\n"
                             "                Y);\n"
                             "  bool C = (X == 1.0);\n"
                             "  return B && C;\n"
                             "}\n",
                             FileKind::Src);
  EXPECT_TRUE(hasRule(Findings, "float-equality")) << messagesOf(Findings);
}

//===----------------------------------------------------------------------===//
// CLI: fixture trees, --graph-json determinism, the cache
//===----------------------------------------------------------------------===//

#if defined(MEDLEY_LINT_BIN) && defined(MEDLEY_LINT_FIXTURE_DIR)

namespace {

int runLint(const std::string &Args) {
  std::string Cmd = std::string(MEDLEY_LINT_BIN) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

std::string fixture(const std::string &Rule) {
  return std::string(MEDLEY_LINT_FIXTURE_DIR) + "/" + Rule;
}

/// Per-test scratch dir (ctest -j runs each case in its own process, so
/// per-test naming keeps parallel runs apart).
class SemanticCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = std::filesystem::path(::testing::TempDir()) /
          (std::string("medley_semantic_cli_") + Info->name());
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  std::string path(const std::string &Rel) const {
    return (Dir / Rel).string();
  }

  std::filesystem::path Dir;
};

} // namespace

TEST_F(SemanticCliTest, HotpathEscapeFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("hotpath-escape") + " --json " + Json +
                    " " + fixture("hotpath-escape") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("hotpath-escape"), std::string::npos) << Report;
  EXPECT_NE(
      Report.find("RouteSelector::choose -> planRoute -> gatherCandidates"),
      std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, RegistryLockFixtureFiresOnTheAcquireEntry) {
  // The lifecycle entry points: a registry reader that locks and
  // allocates on the acquire path must trip both L7 (via the
  // ExpertRegistry::acquire decision entry) and L8 (sleep under the
  // publish mutex).
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("registry-lock") + " --json " + Json +
                    " " + fixture("registry-lock") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("hotpath-escape"), std::string::npos) << Report;
  EXPECT_NE(Report.find("ExpertRegistry::acquire -> repinSnapshot"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("held across blocking call"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("PublishMutex"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, LockOrderFixtureFiresForCycleAndBlockingCall) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("lock-order") + " --json " + Json +
                    " " + fixture("lock-order") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("lock-order cycle"), std::string::npos) << Report;
  EXPECT_NE(Report.find("held across blocking call"), std::string::npos)
      << Report;
}

TEST_F(SemanticCliTest, DeterminismTaintFixtureFires) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + fixture("determinism-taint") + " --json " +
                    Json + " " + fixture("determinism-taint") + "/src"),
            1);
  std::string Report = slurp(Json);
  EXPECT_NE(Report.find("determinism-taint"), std::string::npos) << Report;
  EXPECT_NE(Report.find("deriveSeed"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, NoSemanticFlagDisablesInterproceduralRules) {
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--no-semantic --root " + fixture("hotpath-escape") +
                    " --json " + Json + " " + fixture("hotpath-escape") +
                    "/src"),
            0);
}

TEST_F(SemanticCliTest, GraphJsonIsByteIdenticalAcrossJobs) {
  std::string G1 = path("graph1.json"), G4 = path("graph4.json");
  EXPECT_EQ(runLint("--jobs 1 --root " + fixture("hotpath-escape") +
                    " --graph-json " + G1 + " " + fixture("hotpath-escape") +
                    "/src"),
            1);
  EXPECT_EQ(runLint("--jobs 4 --root " + fixture("hotpath-escape") +
                    " --graph-json " + G4 + " " + fixture("hotpath-escape") +
                    "/src"),
            1);
  std::string A = slurp(G1), B = slurp(G4);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("\"RouteSelector::choose\""), std::string::npos) << A;
}

TEST_F(SemanticCliTest, SarifReportCarriesRuleAndLocation) {
  std::string Sarif = path("report.sarif");
  EXPECT_EQ(runLint("--root " + fixture("hotpath-escape") + " --sarif " +
                    Sarif + " " + fixture("hotpath-escape") + "/src"),
            1);
  std::string Report = slurp(Sarif);
  EXPECT_NE(Report.find("\"version\": \"2.1.0\""), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("\"hotpath-escape\""), std::string::npos) << Report;
  EXPECT_NE(Report.find("src/Gather.cpp"), std::string::npos) << Report;
}

TEST_F(SemanticCliTest, WarmCacheRunIsByteIdenticalAndInvalidatesOnEdit) {
  // Work on a private copy: the invalidation step edits a file.
  std::filesystem::copy(fixture("hotpath-escape"), Dir / "tree",
                        std::filesystem::copy_options::recursive);
  std::string Tree = path("tree");
  std::string Cache = path("cache.txt");
  std::string R1 = path("r1.json"), R2 = path("r2.json");

  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R1 +
                    " " + Tree + "/src"),
            1);
  ASSERT_FALSE(slurp(Cache).empty());
  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R2 +
                    " " + Tree + "/src"),
            1);
  EXPECT_EQ(slurp(R1), slurp(R2));

  // Break the call chain: the cached entry for the edited file must be
  // discarded and the escape disappears with it.
  std::ofstream Out(Dir / "tree" / "src" / "Plan.cpp", std::ios::trunc);
  Out << "std::vector<int> planRoute(int Budget) { return {}; }\n";
  Out.close();
  EXPECT_EQ(runLint("--cache " + Cache + " --root " + Tree + " --json " + R1 +
                    " " + Tree + "/src"),
            0);
}

#endif // MEDLEY_LINT_BIN && MEDLEY_LINT_FIXTURE_DIR
