//===-- tests/SupportTest.cpp - support library tests -------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Csv.h"
#include "support/Error.h"
#include "support/FaultStats.h"
#include "support/Histogram.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

using namespace medley;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double X = R.uniform();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double X = R.uniform(-3.5, 2.5);
    EXPECT_GE(X, -3.5);
    EXPECT_LT(X, 2.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t X = R.uniformInt(1, 6);
    EXPECT_GE(X, 1);
    EXPECT_LE(X, 6);
    SawLo |= X == 1;
    SawHi |= X == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng R(11);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.uniformInt(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng R(13);
  RunningStat Stat;
  for (int I = 0; I < 20000; ++I)
    Stat.add(R.normal(10.0, 2.0));
  EXPECT_NEAR(Stat.mean(), 10.0, 0.1);
  EXPECT_NEAR(Stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, BernoulliProbability) {
  Rng R(17);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.bernoulli(0.3);
  EXPECT_NEAR(Hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(19);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Original = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Original);
}

TEST(RngTest, PickReturnsElement) {
  Rng R(23);
  std::vector<int> V = {10, 20, 30};
  for (int I = 0; I < 50; ++I) {
    int X = R.pick(V);
    EXPECT_TRUE(X == 10 || X == 20 || X == 30);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng A(31);
  Rng B = A.split();
  // The split stream should not just mirror the parent.
  bool AnyDifferent = false;
  for (int I = 0; I < 16 && !AnyDifferent; ++I)
    AnyDifferent = A.next() != B.next();
  EXPECT_TRUE(AnyDifferent);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatisticsTest, HarmonicMeanBasics) {
  EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
  EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
}

TEST(StatisticsTest, GeometricMeanBasics) {
  EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({3.0}), 3.0, 1e-12);
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(StatisticsTest, StddevKnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(StatisticsTest, MinMax) {
  EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
}

/// Property: for positive data, hmean <= gmean <= mean.
class MeanInequalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeanInequalityTest, HarmonicLeqGeometricLeqArithmetic) {
  Rng R(GetParam());
  std::vector<double> V;
  for (int I = 0; I < 50; ++I)
    V.push_back(R.uniform(0.1, 100.0));
  double H = harmonicMean(V), G = geometricMean(V), A = mean(V);
  EXPECT_LE(H, G + 1e-9);
  EXPECT_LE(G, A + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeanInequalityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(RunningStatTest, MatchesBatchStatistics) {
  std::vector<double> V = {1.5, 2.5, 3.5, 10.0, -4.0};
  RunningStat Stat;
  for (double X : V)
    Stat.add(X);
  EXPECT_EQ(Stat.count(), V.size());
  EXPECT_NEAR(Stat.mean(), mean(V), 1e-12);
  EXPECT_NEAR(Stat.stddev(), stddev(V), 1e-12);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat Stat;
  EXPECT_EQ(Stat.count(), 0u);
  EXPECT_DOUBLE_EQ(Stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(Stat.variance(), 0.0);
}

TEST(EmaTest, PrimesOnFirstSample) {
  Ema E(60.0);
  EXPECT_FALSE(E.primed());
  E.update(5.0, 1.0);
  EXPECT_TRUE(E.primed());
  EXPECT_DOUBLE_EQ(E.value(), 5.0);
}

TEST(EmaTest, ConvergesTowardConstantInput) {
  Ema E(10.0);
  E.update(0.0, 1.0);
  for (int I = 0; I < 100; ++I)
    E.update(8.0, 1.0);
  EXPECT_NEAR(E.value(), 8.0, 0.01);
}

TEST(EmaTest, TimeConstantControlsSpeed) {
  Ema Fast(5.0), Slow(100.0);
  Fast.update(0.0, 1.0);
  Slow.update(0.0, 1.0);
  for (int I = 0; I < 10; ++I) {
    Fast.update(10.0, 1.0);
    Slow.update(10.0, 1.0);
  }
  EXPECT_GT(Fast.value(), Slow.value());
}

TEST(EmaTest, ResetClearsState) {
  Ema E(10.0);
  E.update(3.0, 1.0);
  E.reset();
  EXPECT_FALSE(E.primed());
  EXPECT_DOUBLE_EQ(E.value(), 0.0);
}

//===----------------------------------------------------------------------===//
// StringUtils / Table / Csv
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
  EXPECT_EQ(padRight("abcdef", 4), "abcdef");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilsTest, AsciiBar) {
  EXPECT_EQ(asciiBar(2.0, 3.0), "######");
  EXPECT_EQ(asciiBar(0.0, 3.0), "");
  EXPECT_EQ(asciiBar(-1.0, 3.0), "");
  EXPECT_EQ(asciiBar(100.0, 3.0, 5).size(), 5u);
}

TEST(TableTest, AlignsColumnsAndPrintsRule) {
  Table T("Title");
  T.addRow({"name", "value"});
  T.addRow();
  T.addCell("x");
  T.addCell(1.5, 1);
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("Title"), std::string::npos);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("1.5"), std::string::npos);
  EXPECT_NE(Out.find("-----"), std::string::npos);
}

TEST(TableTest, NumericCellHelpers) {
  Table T;
  T.addRow();
  T.addCell(3);
  T.addCell(4u);
  T.addCell(2.25, 2);
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("3"), std::string::npos);
  EXPECT_NE(OS.str().find("2.25"), std::string::npos);
  EXPECT_EQ(T.numRows(), 1u);
}

TEST(CsvTest, PlainRow) {
  std::ostringstream OS;
  CsvWriter W(OS);
  W.writeRow({"a", "b", "c"});
  EXPECT_EQ(OS.str(), "a,b,c\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  std::ostringstream OS;
  CsvWriter W(OS);
  W.writeRow({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(OS.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvTest, LabelledNumericRow) {
  std::ostringstream OS;
  CsvWriter W(OS);
  W.writeRow("series", {1.0, 2.5}, 1);
  EXPECT_EQ(OS.str(), "series,1.0,2.5\n");
}

TEST(CsvTest, BufferedRowsLandOnFlush) {
  std::ostringstream OS;
  {
    CsvWriter W(OS, /*BufferBytes=*/1 << 16);
    W.writeRow({"a", "b"});
    W.writeRow("s", {1.5}, 1);
    // Below the threshold: nothing has reached the stream yet.
    EXPECT_EQ(OS.str(), "");
    W.flush();
    EXPECT_EQ(OS.str(), "a,b\ns,1.5\n");
    W.writeRow({"c"});
  } // Destructor drains the tail.
  EXPECT_EQ(OS.str(), "a,b\ns,1.5\nc\n");
}

TEST(CsvTest, BufferedModeAutoFlushesPastThreshold) {
  std::ostringstream OS;
  CsvWriter W(OS, /*BufferBytes=*/8);
  W.writeRow({"0123456789"}); // One row already exceeds the threshold.
  EXPECT_EQ(OS.str(), "0123456789\n");
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, CountsAndFrequencies) {
  Histogram H;
  H.add(2);
  H.add(2);
  H.add(5);
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.count(2), 2u);
  EXPECT_EQ(H.count(5), 1u);
  EXPECT_EQ(H.count(7), 0u);
  EXPECT_NEAR(H.frequency(2), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(H.frequency(9), 0.0);
}

TEST(HistogramTest, MaxMeanMode) {
  Histogram H;
  for (unsigned V : {1u, 3u, 3u, 8u})
    H.add(V);
  EXPECT_EQ(H.maxValue(), 8u);
  EXPECT_EQ(H.mode(), 3u);
  EXPECT_NEAR(H.meanValue(), 15.0 / 4.0, 1e-12);
}

TEST(HistogramTest, EmptyDefaults) {
  Histogram H;
  EXPECT_EQ(H.total(), 0u);
  EXPECT_EQ(H.maxValue(), 0u);
  EXPECT_DOUBLE_EQ(H.meanValue(), 0.0);
  EXPECT_EQ(H.mode(), 0u);
}

TEST(HistogramTest, BucketizeGroupsThreadCounts) {
  Histogram H;
  for (unsigned V : {1u, 4u, 5u, 8u, 9u, 32u, 40u})
    H.add(V);
  // Width-4 buckets over values 1..16: [1-4], [5-8], [9-12], [13-16+].
  std::vector<size_t> B = H.bucketize(4, 16);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B[0], 2u); // 1, 4
  EXPECT_EQ(B[1], 2u); // 5, 8
  EXPECT_EQ(B[2], 1u); // 9
  EXPECT_EQ(B[3], 2u); // 32, 40 overflow into the last bucket
}

TEST(HistogramTest, ClearResets) {
  Histogram H;
  H.add(3);
  H.clear();
  EXPECT_EQ(H.total(), 0u);
  EXPECT_EQ(H.count(3), 0u);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  support::ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::vector<std::atomic<int>> Seen(1000);
  Pool.parallelFor(Seen.size(), [&](size_t I) { ++Seen[I]; });
  for (size_t I = 0; I < Seen.size(); ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, SizeOneRunsInlineInOrder) {
  support::ThreadPool Pool(1);
  std::vector<size_t> Order;
  Pool.parallelFor(8, [&](size_t I) { Order.push_back(I); });
  std::vector<size_t> Expected(8);
  std::iota(Expected.begin(), Expected.end(), 0u);
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  support::ThreadPool Pool(4);
  std::atomic<int> Completed{0};
  EXPECT_THROW(Pool.parallelFor(64,
                                [&](size_t I) {
                                  if (I == 17)
                                    throw std::runtime_error("cell failed");
                                  ++Completed;
                                }),
               std::runtime_error);
  // The remaining indices are still drained before the rethrow.
  EXPECT_EQ(Completed.load(), 63);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  support::ThreadPool Pool(2);
  std::atomic<int> Total{0};
  Pool.parallelFor(4, [&](size_t) {
    // Re-entering the pool from a body must not deadlock.
    Pool.parallelFor(4, [&](size_t) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 16);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  std::atomic<bool> Ran{false};
  {
    support::ThreadPool Pool(2);
    Pool.submit([&] { Ran = true; });
    // Destructor drains the queue before joining.
  }
  EXPECT_TRUE(Ran.load());
}

//===----------------------------------------------------------------------===//
// ThreadPool MEDLEY_JOBS hardening
//===----------------------------------------------------------------------===//

namespace {

/// RAII override of MEDLEY_JOBS; restores the previous value on exit.
class ScopedJobsEnv {
public:
  explicit ScopedJobsEnv(const char *Value) {
    const char *Old = std::getenv("MEDLEY_JOBS");
    if (Old) {
      HadOld = true;
      OldValue = Old;
    }
    if (Value)
      setenv("MEDLEY_JOBS", Value, /*overwrite=*/1);
    else
      unsetenv("MEDLEY_JOBS");
  }
  ~ScopedJobsEnv() {
    if (HadOld)
      setenv("MEDLEY_JOBS", OldValue.c_str(), 1);
    else
      unsetenv("MEDLEY_JOBS");
  }

private:
  bool HadOld = false;
  std::string OldValue;
};

/// What defaultJobs must fall back to when MEDLEY_JOBS is unusable.
unsigned hardwareFallback() {
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware == 0 ? 1 : Hardware;
}

} // namespace

TEST(ThreadPoolTest, JobsEnvSaneValueIsUsed) {
  ScopedJobsEnv Env("7");
  EXPECT_EQ(support::ThreadPool::defaultJobs(), 7u);
}

TEST(ThreadPoolTest, JobsEnvUnsetFallsBackToHardware) {
  ScopedJobsEnv Env(nullptr);
  EXPECT_EQ(support::ThreadPool::defaultJobs(), hardwareFallback());
}

TEST(ThreadPoolTest, JobsEnvNonNumericFallsBack) {
  for (const char *Bad : {"", "abc", "12abc", "1e3", " 4x", "--2"}) {
    ScopedJobsEnv Env(Bad);
    EXPECT_EQ(support::ThreadPool::defaultJobs(), hardwareFallback())
        << "MEDLEY_JOBS='" << Bad << "'";
  }
}

TEST(ThreadPoolTest, JobsEnvNonPositiveFallsBack) {
  for (const char *Bad : {"0", "-3"}) {
    ScopedJobsEnv Env(Bad);
    EXPECT_EQ(support::ThreadPool::defaultJobs(), hardwareFallback())
        << "MEDLEY_JOBS='" << Bad << "'";
  }
}

TEST(ThreadPoolTest, JobsEnvAbsurdFallsBack) {
  // Above the sanity cap and beyond long's range (strtol ERANGE).
  for (const char *Bad : {"1000000", "999999999999999999999999"}) {
    ScopedJobsEnv Env(Bad);
    EXPECT_EQ(support::ThreadPool::defaultJobs(), hardwareFallback())
        << "MEDLEY_JOBS='" << Bad << "'";
  }
}

//===----------------------------------------------------------------------===//
// Error taxonomy
//===----------------------------------------------------------------------===//

TEST(ErrorTest, DefaultIsSuccess) {
  support::Error E;
  EXPECT_FALSE(E);
  EXPECT_EQ(E.code(), support::ErrorCode::None);
}

TEST(ErrorTest, ReportCarriesCodeAndMessage) {
  support::Error E;
  support::reportError(&E, support::ErrorCode::TruncatedInput,
                       "file ended early");
  EXPECT_TRUE(E);
  EXPECT_EQ(E.code(), support::ErrorCode::TruncatedInput);
  EXPECT_EQ(E.message(), "file ended early");
  EXPECT_EQ(E.str(), "truncated-input: file ended early");
}

TEST(ErrorTest, NullSinkIsIgnored) {
  support::reportError(nullptr, support::ErrorCode::IoFailure, "dropped");
}

TEST(ErrorTest, CodeNamesAreStable) {
  EXPECT_STREQ(support::errorCodeName(support::ErrorCode::None), "none");
  EXPECT_STREQ(support::errorCodeName(support::ErrorCode::CorruptInput),
               "corrupt-input");
  EXPECT_STREQ(support::errorCodeName(support::ErrorCode::NonFiniteValue),
               "non-finite-value");
}

//===----------------------------------------------------------------------===//
// FaultStats
//===----------------------------------------------------------------------===//

TEST(FaultStatsTest, FreshIsClean) {
  support::FaultStats S;
  EXPECT_TRUE(S.clean());
  EXPECT_EQ(S.summary(), "");
}

TEST(FaultStatsTest, MergeAddsEveryCounter) {
  support::FaultStats A, B;
  A.SensorDropouts = 2;
  A.Quarantines = 1;
  B.SensorDropouts = 3;
  B.CellFailures = 4;
  A.merge(B);
  EXPECT_EQ(A.SensorDropouts, 5u);
  EXPECT_EQ(A.Quarantines, 1u);
  EXPECT_EQ(A.CellFailures, 4u);
  EXPECT_FALSE(A.clean());
}

TEST(FaultStatsTest, SummaryListsNonZeroCountersOnly) {
  support::FaultStats S;
  S.SensorCorruptions = 7;
  S.DefaultFallbacks = 2;
  std::string Text = S.summary();
  EXPECT_NE(Text.find("corruptions=7"), std::string::npos) << Text;
  EXPECT_NE(Text.find("fallbacks=2"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("dropouts"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  support::Arena A(/*ChunkBytes=*/128);
  double *D = A.allocateArray<double>(3);
  uint32_t *U = A.allocateArray<uint32_t>(5);
  ASSERT_NE(D, nullptr);
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(D) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(U) % alignof(uint32_t), 0u);
  // Writing one region must not disturb the other.
  for (int I = 0; I < 3; ++I)
    D[I] = 1.5 * I;
  for (int I = 0; I < 5; ++I)
    U[I] = 100u + static_cast<uint32_t>(I);
  EXPECT_EQ(D[2], 3.0);
  EXPECT_EQ(U[4], 104u);
}

TEST(ArenaTest, ResetRetainsCapacityAndReusesMemory) {
  support::Arena A(/*ChunkBytes=*/64);
  // Overflow the first chunk so the arena grows.
  for (int I = 0; I < 32; ++I)
    A.allocateArray<double>(4);
  size_t Grown = A.capacity();
  EXPECT_GT(Grown, size_t(64));
  A.reset();
  EXPECT_EQ(A.used(), 0u);
  EXPECT_EQ(A.capacity(), Grown);
  // A steady-state cycle (same demand every tick) allocates no new chunks.
  size_t Chunks = A.numChunks();
  for (int Tick = 0; Tick < 10; ++Tick) {
    A.reset();
    for (int I = 0; I < 32; ++I)
      A.allocateArray<double>(4);
  }
  EXPECT_EQ(A.numChunks(), Chunks);
  EXPECT_EQ(A.capacity(), Grown);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  support::Arena A(/*ChunkBytes=*/32);
  // Far larger than the chunk size: must still succeed and be usable.
  uint8_t *P = A.allocateArray<uint8_t>(4096);
  ASSERT_NE(P, nullptr);
  P[0] = 1;
  P[4095] = 2;
  EXPECT_GE(A.capacity(), size_t(4096));
}
