//===-- tests/MlTest.cpp - ml library tests ------------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "ml/CrossValidation.h"
#include "ml/Dataset.h"
#include "ml/FeatureImpact.h"
#include "ml/FeatureScaler.h"
#include "ml/FeatureSelection.h"
#include "ml/KnnModel.h"
#include "ml/SvrModel.h"
#include "ml/LinearModel.h"
#include "support/Random.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace medley;

namespace {

/// Builds a dataset where y = 3*x0 - 2*x1 + group-independent noise, with
/// a third pure-noise feature, spread over \p NumGroups groups.
Dataset makeLinearDataset(uint64_t Seed, size_t NumGroups = 4,
                          size_t PerGroup = 40, double Noise = 0.0) {
  Rng R(Seed);
  Dataset Data({"x0", "x1", "noise"});
  for (size_t G = 0; G < NumGroups; ++G)
    for (size_t I = 0; I < PerGroup; ++I) {
      Vec X = {R.uniform(-2, 2), R.uniform(-2, 2), R.uniform(-2, 2)};
      double Y = 3.0 * X[0] - 2.0 * X[1] + R.normal(0.0, Noise);
      Data.add(std::move(X), Y, "g" + std::to_string(G));
    }
  return Data;
}

} // namespace

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, AddAndAccess) {
  Dataset Data({"a", "b"});
  EXPECT_TRUE(Data.empty());
  Data.add({1.0, 2.0}, 3.0, "p");
  EXPECT_EQ(Data.size(), 1u);
  EXPECT_EQ(Data.numFeatures(), 2u);
  EXPECT_EQ(Data.sample(0).Y, 3.0);
  EXPECT_EQ(Data.sample(0).Group, "p");
}

TEST(DatasetTest, GroupsInFirstSeenOrder) {
  Dataset Data({"a"});
  Data.add({1}, 0, "z");
  Data.add({2}, 0, "a");
  Data.add({3}, 0, "z");
  EXPECT_EQ(Data.groups(), (std::vector<std::string>{"z", "a"}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  Dataset Data({"a"});
  for (int I = 0; I < 10; ++I)
    Data.add({double(I)}, I, "g");
  Dataset Even =
      Data.filter([](const Sample &S) { return int(S.Y) % 2 == 0; });
  EXPECT_EQ(Even.size(), 5u);
}

TEST(DatasetTest, WithoutFeatureDropsColumn) {
  Dataset Data({"a", "b", "c"});
  Data.add({1, 2, 3}, 0, "g");
  Dataset Reduced = Data.withoutFeature(1);
  EXPECT_EQ(Reduced.featureNames(), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Reduced.sample(0).X, (Vec{1, 3}));
}

TEST(DatasetTest, SplitByGroup) {
  Dataset Data({"a"});
  Data.add({1}, 0, "p");
  Data.add({2}, 0, "q");
  Data.add({3}, 0, "p");
  auto [In, Rest] = Data.splitByGroup("p");
  EXPECT_EQ(In.size(), 2u);
  EXPECT_EQ(Rest.size(), 1u);
  EXPECT_EQ(Rest.sample(0).Group, "q");
}

TEST(DatasetTest, DesignMatrixAndTargets) {
  Dataset Data({"a", "b"});
  Data.add({1, 2}, 10, "g");
  Data.add({3, 4}, 20, "g");
  EXPECT_EQ(Data.designMatrix().size(), 2u);
  EXPECT_EQ(Data.targets(), (Vec{10, 20}));
}

TEST(DatasetTest, AppendMergesSamples) {
  Dataset A({"a"}), B({"a"});
  A.add({1}, 1, "g");
  B.add({2}, 2, "h");
  A.append(B);
  EXPECT_EQ(A.size(), 2u);
  EXPECT_EQ(A.sample(1).Group, "h");
}

//===----------------------------------------------------------------------===//
// FeatureScaler
//===----------------------------------------------------------------------===//

TEST(FeatureScalerTest, IdentityPassesThrough) {
  FeatureScaler S = FeatureScaler::identity(3);
  Vec X = {1.5, -2.0, 7.0};
  EXPECT_EQ(S.transform(X), X);
}

TEST(FeatureScalerTest, FitStandardises) {
  std::vector<Vec> Rows = {{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}};
  FeatureScaler S = FeatureScaler::fit(Rows);
  EXPECT_NEAR(S.means()[0], 2.0, 1e-12);
  // Standardised values have zero mean.
  double Sum = 0.0;
  for (const Vec &Row : S.transformAll(Rows))
    Sum += Row[0];
  EXPECT_NEAR(Sum, 0.0, 1e-12);
}

TEST(FeatureScalerTest, ZeroVarianceFeaturePassesCentred) {
  std::vector<Vec> Rows = {{5.0}, {5.0}, {5.0}};
  FeatureScaler S = FeatureScaler::fit(Rows);
  EXPECT_DOUBLE_EQ(S.transform({5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(S.transform({6.0})[0], 1.0);
}

//===----------------------------------------------------------------------===//
// LinearModel
//===----------------------------------------------------------------------===//

TEST(LinearModelTest, TrainsAndPredicts) {
  Dataset Data = makeLinearDataset(3);
  auto Model = trainLinearModel(Data, "test");
  ASSERT_TRUE(Model.has_value());
  EXPECT_EQ(Model->name(), "test");
  EXPECT_EQ(Model->dimension(), 3u);
  EXPECT_NEAR(Model->predict({1.0, 1.0, 0.0}), 1.0, 1e-6);
  EXPECT_GT(Model->trainingR2(), 0.999);
}

TEST(LinearModelTest, EmptyDatasetFails) {
  Dataset Data({"a"});
  EXPECT_FALSE(trainLinearModel(Data, "empty").has_value());
}

TEST(LinearModelTest, SharedScalerPredictionsMatchOwnScaler) {
  // OLS predictions are affine-equivariant: with negligible ridge, the
  // scaler choice must not change predictions.
  Dataset Data = makeLinearDataset(5);
  FeatureScaler Shared = FeatureScaler::fit(Data.designMatrix());
  LinearModelOptions WithShared;
  WithShared.SharedScaler = &Shared;
  auto A = trainLinearModel(Data, "own");
  auto B = trainLinearModel(Data, "shared", WithShared);
  ASSERT_TRUE(A && B);
  Vec Probe = {0.3, -0.7, 1.1};
  EXPECT_NEAR(A->predict(Probe), B->predict(Probe), 1e-6);
}

TEST(LinearModelTest, RidgeBiasesTowardMean) {
  Dataset Data = makeLinearDataset(7);
  LinearModelOptions Heavy;
  Heavy.Ridge = 1e6;
  auto Model = trainLinearModel(Data, "heavy", Heavy);
  ASSERT_TRUE(Model.has_value());
  double TargetMean = mean(Data.targets());
  // With overwhelming ridge, every prediction collapses to the mean.
  EXPECT_NEAR(Model->predict({2.0, 2.0, 2.0}), TargetMean, 0.05);
}

//===----------------------------------------------------------------------===//
// Cross-validation
//===----------------------------------------------------------------------===//

TEST(CrossValidationTest, PerfectDataScoresPerfectly) {
  Dataset Data = makeLinearDataset(11);
  CrossValidationResult Result = leaveOneGroupOut(Data);
  EXPECT_EQ(Result.NumFolds, 4u);
  EXPECT_EQ(Result.NumSamples, Data.size());
  EXPECT_NEAR(Result.Accuracy, 1.0, 1e-9);
  EXPECT_NEAR(Result.Mae, 0.0, 1e-6);
}

TEST(CrossValidationTest, HeldOutGroupIsExcludedFromTraining) {
  // One adversarial group whose labels contradict the others: CV accuracy
  // on it must be poor, proving it was not trained on.
  Rng R(13);
  Dataset Data({"x"});
  for (int I = 0; I < 50; ++I) {
    double X = R.uniform(-1, 1);
    Data.add({X}, X, "normal");
  }
  for (int I = 0; I < 50; ++I) {
    double X = R.uniform(-1, 1);
    Data.add({X}, 100.0 - X, "adversarial");
  }
  AccuracyOptions Tight;
  Tight.RelativeTolerance = 0.05;
  Tight.AbsoluteTolerance = 0.5;
  CrossValidationResult Result = leaveOneGroupOut(Data, {}, Tight);
  // The adversarial half is unpredictable from the normal half and vice
  // versa, so overall accuracy must be well below 1.
  EXPECT_LT(Result.Accuracy, 0.6);
}

TEST(CrossValidationTest, ModelAccuracyToleranceSemantics) {
  Dataset Data({"x"});
  Data.add({1.0}, 10.0, "g");
  auto Model = trainLinearModel(Data, "m", {1e-3, true, nullptr});
  ASSERT_TRUE(Model.has_value());
  Dataset Probe({"x"});
  Probe.add({1.0}, 10.5, "g"); // Within 20% relative tolerance.
  Probe.add({1.0}, 20.0, "g"); // Outside.
  EXPECT_NEAR(modelAccuracy(*Model, Probe), 0.5, 1e-12);
}

TEST(CrossValidationTest, MaeOnKnownModel) {
  Dataset Train({"x"});
  for (int I = 0; I < 10; ++I)
    Train.add({double(I)}, 2.0 * I, "g");
  auto Model = trainLinearModel(Train, "m");
  ASSERT_TRUE(Model.has_value());
  Dataset Probe({"x"});
  Probe.add({1.0}, 3.0, "h"); // Model predicts 2 -> error 1.
  Probe.add({2.0}, 4.0, "h"); // Model predicts 4 -> error 0.
  EXPECT_NEAR(modelMae(*Model, Probe), 0.5, 1e-6);
}

//===----------------------------------------------------------------------===//
// Feature selection (information gain)
//===----------------------------------------------------------------------===//

TEST(FeatureSelectionTest, InformativeFeatureRanksFirst) {
  Rng R(17);
  Dataset Data({"signal", "noise"});
  for (int I = 0; I < 400; ++I) {
    double S = R.uniform(0, 1);
    Data.add({S, R.uniform(0, 1)}, 10.0 * S, "g");
  }
  auto Ranked = rankFeaturesByInformationGain(Data);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Ranked[0].Name, "signal");
  EXPECT_GT(Ranked[0].Gain, Ranked[1].Gain);
}

TEST(FeatureSelectionTest, SelectTopFeaturesPreservesColumnOrder) {
  Rng R(19);
  Dataset Data({"noise1", "signal", "noise2"});
  for (int I = 0; I < 400; ++I) {
    double S = R.uniform(0, 1);
    Data.add({R.uniform(0, 1), S, R.uniform(0, 1)}, 5.0 * S, "g");
  }
  auto [Reduced, Kept] = selectTopFeatures(Data, 2);
  EXPECT_EQ(Reduced.numFeatures(), 2u);
  EXPECT_EQ(Kept.size(), 2u);
  // "signal" must be among the survivors.
  bool HasSignal = false;
  for (const FeatureScore &S : Kept)
    HasSignal |= S.Name == "signal";
  EXPECT_TRUE(HasSignal);
  // Surviving columns stay in original order.
  EXPECT_LT(Kept[0].Index, Kept[1].Index);
}

TEST(FeatureSelectionTest, KLargerThanFeaturesKeepsAll) {
  Dataset Data({"a", "b"});
  for (int I = 0; I < 20; ++I)
    Data.add({double(I), double(-I)}, I, "g");
  auto [Reduced, Kept] = selectTopFeatures(Data, 10);
  EXPECT_EQ(Reduced.numFeatures(), 2u);
  EXPECT_EQ(Kept.size(), 2u);
}

TEST(FeatureSelectionTest, EmptyDatasetYieldsNoScores) {
  Dataset Data({"a"});
  EXPECT_TRUE(rankFeaturesByInformationGain(Data).empty());
}

//===----------------------------------------------------------------------===//
// Feature impact (π)
//===----------------------------------------------------------------------===//

TEST(FeatureImpactTest, CrucialFeatureHasLargestImpact) {
  Rng R(23);
  Dataset Data({"crucial", "noise"});
  for (size_t G = 0; G < 4; ++G)
    for (int I = 0; I < 60; ++I) {
      double S = R.uniform(-1, 1);
      Data.add({S, R.uniform(-1, 1)}, 8.0 * S, "g" + std::to_string(G));
    }
  auto Impacts = computeFeatureImpacts(Data);
  ASSERT_EQ(Impacts.size(), 2u);
  EXPECT_EQ(Impacts[0].Name, "crucial");
  EXPECT_GT(Impacts[0].Normalized, Impacts[1].Normalized);
}

TEST(FeatureImpactTest, NormalizedValuesSumToOne) {
  Dataset Data = makeLinearDataset(29, 4, 30, 0.2);
  auto Impacts = computeFeatureImpacts(Data);
  double Sum = 0.0;
  for (const FeatureImpact &I : Impacts)
    Sum += I.Normalized;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(FeatureImpactTest, EmptyDataset) {
  Dataset Data({"a"});
  EXPECT_TRUE(computeFeatureImpacts(Data).empty());
}

//===----------------------------------------------------------------------===//
// k-NN model
//===----------------------------------------------------------------------===//

TEST(KnnModelTest, ExactOnTrainingPoints) {
  Dataset Data({"x", "y"});
  Data.add({0.0, 0.0}, 1.0, "g");
  Data.add({1.0, 0.0}, 2.0, "g");
  Data.add({0.0, 1.0}, 3.0, "g");
  KnnOptions Options;
  Options.K = 1;
  auto Model = trainKnnModel(Data, "knn", Options);
  ASSERT_TRUE(Model.has_value());
  EXPECT_NEAR(Model->predict({1.0, 0.0}), 2.0, 1e-6);
  EXPECT_NEAR(Model->predict({0.0, 1.0}), 3.0, 1e-6);
}

TEST(KnnModelTest, InterpolatesSmoothFunctions) {
  Rng R(31);
  Dataset Data({"x"});
  for (int I = 0; I < 500; ++I) {
    double X = R.uniform(0, 10);
    Data.add({X}, X * X, "g");
  }
  auto Model = trainKnnModel(Data, "knn");
  ASSERT_TRUE(Model.has_value());
  EXPECT_NEAR(Model->predict({5.0}), 25.0, 2.5);
  EXPECT_NEAR(Model->predict({2.0}), 4.0, 2.0);
}

TEST(KnnModelTest, CapturesNonLinearStructureLinearModelsCannot) {
  // y = |x|: a linear model fits slope ~0; k-NN nails it.
  Rng R(37);
  Dataset Data({"x"});
  for (int I = 0; I < 400; ++I) {
    double X = R.uniform(-5, 5);
    Data.add({X}, std::fabs(X), "g");
  }
  auto Knn = trainKnnModel(Data, "knn");
  auto Linear = trainLinearModel(Data, "lin");
  ASSERT_TRUE(Knn && Linear);
  EXPECT_NEAR(Knn->predict({4.0}), 4.0, 0.5);
  EXPECT_NEAR(Knn->predict({-4.0}), 4.0, 0.5);
  EXPECT_LT(Linear->predict({4.0}), 3.2); // The linear fit is near-flat.
}

TEST(KnnModelTest, SubsamplesLargeCorpora) {
  Dataset Data({"x"});
  for (int I = 0; I < 10000; ++I)
    Data.add({double(I)}, double(I), "g");
  KnnOptions Options;
  Options.MaxStoredSamples = 100;
  auto Model = trainKnnModel(Data, "knn", Options);
  ASSERT_TRUE(Model.has_value());
  EXPECT_LE(Model->storedSamples(), 101u);
  // Still roughly correct despite subsampling.
  EXPECT_NEAR(Model->predict({5000.0}), 5000.0, 300.0);
}

TEST(KnnModelTest, RejectsEmptyAndZeroK) {
  Dataset Empty({"x"});
  EXPECT_FALSE(trainKnnModel(Empty, "knn").has_value());
  Dataset One({"x"});
  One.add({1.0}, 1.0, "g");
  KnnOptions Options;
  Options.K = 0;
  EXPECT_FALSE(trainKnnModel(One, "knn", Options).has_value());
}

//===----------------------------------------------------------------------===//
// Linear epsilon-SVR
//===----------------------------------------------------------------------===//

TEST(SvrModelTest, RecoversLinearSignalWithinTube) {
  Rng R(41);
  Dataset Data({"x0", "x1"});
  for (int I = 0; I < 400; ++I) {
    Vec X = {R.uniform(-2, 2), R.uniform(-2, 2)};
    double Y = 4.0 * X[0] - 2.0 * X[1] + 10.0;
    Data.add(std::move(X), Y, "g");
  }
  SvrOptions Options;
  Options.Epsilon = 0.5;
  Options.Epochs = 60;
  auto Model = trainSvrModel(Data, "svr", Options);
  ASSERT_TRUE(Model.has_value());
  EXPECT_NEAR(Model->predict({1.0, 0.0}), 14.0, 0.8);
  EXPECT_NEAR(Model->predict({0.0, 1.0}), 8.0, 0.8);
  // Most points should be inside the tube after training.
  EXPECT_LT(Model->supportFraction(), 0.5);
}

TEST(SvrModelTest, EpsilonInsensitivityIgnoresSmallNoise) {
  Rng R(43);
  Dataset Data({"x"});
  for (int I = 0; I < 400; ++I) {
    double X = R.uniform(-2, 2);
    Data.add({X}, 3.0 * X + R.uniform(-0.4, 0.4), "g");
  }
  SvrOptions Options;
  Options.Epsilon = 0.5; // Noise fits inside the tube.
  Options.Epochs = 60;
  auto Model = trainSvrModel(Data, "svr", Options);
  ASSERT_TRUE(Model.has_value());
  EXPECT_NEAR(Model->predict({1.0}) - Model->predict({0.0}), 3.0, 0.4);
}

TEST(SvrModelTest, RobustToOutliersWhereLeastSquaresIsNot) {
  // A few wild outliers: squared loss chases them, epsilon loss does not.
  Rng R(47);
  Dataset Data({"x"});
  for (int I = 0; I < 300; ++I) {
    double X = R.uniform(-2, 2);
    Data.add({X}, 2.0 * X, "g");
  }
  for (int I = 0; I < 12; ++I)
    Data.add({R.uniform(-2, 2)}, 500.0, "g"); // Outliers.
  SvrOptions Options;
  Options.Epochs = 60;
  auto Svr = trainSvrModel(Data, "svr", Options);
  auto Ls = trainLinearModel(Data, "ls");
  ASSERT_TRUE(Svr && Ls);
  double SvrError = std::fabs(Svr->predict({1.0}) - 2.0);
  double LsError = std::fabs(Ls->predict({1.0}) - 2.0);
  EXPECT_LT(SvrError, LsError);
  EXPECT_LT(SvrError, 3.0);
}

TEST(SvrModelTest, DeterministicTraining) {
  Dataset Data({"x"});
  Rng R(51);
  for (int I = 0; I < 100; ++I) {
    double X = R.uniform(-1, 1);
    Data.add({X}, X, "g");
  }
  auto A = trainSvrModel(Data, "a");
  auto B = trainSvrModel(Data, "b");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->weights(), B->weights());
  EXPECT_DOUBLE_EQ(A->intercept(), B->intercept());
}

TEST(SvrModelTest, RejectsEmpty) {
  Dataset Empty({"x"});
  EXPECT_FALSE(trainSvrModel(Empty, "svr").has_value());
}
