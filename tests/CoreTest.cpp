//===-- tests/CoreTest.cpp - mixture-of-experts core tests ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Expert.h"
#include "core/ExpertBuilder.h"
#include "core/ExpertSelector.h"
#include "core/MixtureOfExperts.h"
#include "core/MoeStats.h"
#include "core/Oracle.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace medley;
using namespace medley::core;

namespace {

/// Trains a linear model that predicts a constant \p Value over the
/// 10-feature space.
LinearModel constantModel(double Value, const std::string &Name) {
  Dataset Data(policy::featureNames());
  Rng R(11);
  for (int I = 0; I < 60; ++I) {
    Vec X(policy::NumFeatures);
    for (double &V : X)
      V = R.uniform(0, 10);
    Data.add(std::move(X), Value, "g");
  }
  auto Model = trainLinearModel(Data, Name, {1e-3, true, nullptr});
  EXPECT_TRUE(Model.has_value());
  return *Model;
}

Expert makeConstantExpert(const std::string &Name, double Threads,
                          double EnvNorm) {
  return Expert(Name, "test", constantModel(Threads, "w:" + Name),
                constantModel(EnvNorm, "m:" + Name), EnvNorm);
}

policy::FeatureVector makeFeatures(double EnvNorm = 1.0,
                                   double Processors = 32.0,
                                   double RunQueue = 10.0,
                                   unsigned MaxThreads = 32) {
  policy::FeatureVector F;
  F.Values = {0.3, 0.4, 0.1, 5.0, Processors, RunQueue, 8.0, 8.0, 0.9, 0.01};
  F.EnvNorm = EnvNorm;
  F.MaxThreads = MaxThreads;
  return F;
}

FeatureScaler tenDimScaler() { return FeatureScaler::identity(10); }

} // namespace

//===----------------------------------------------------------------------===//
// Expert
//===----------------------------------------------------------------------===//

TEST(ExpertTest, PredictsAndClamps) {
  Expert E = makeConstantExpert("E1", 12.0, 1.5);
  policy::FeatureVector F = makeFeatures();
  EXPECT_EQ(E.predictThreads(F), 12u);
  F.MaxThreads = 8;
  EXPECT_EQ(E.predictThreads(F), 8u);
  EXPECT_NEAR(E.predictEnvNorm(F), 1.5, 0.05);
  EXPECT_EQ(E.name(), "E1");
  EXPECT_DOUBLE_EQ(E.meanTrainingEnv(), 1.5);
}

TEST(ExpertTest, NegativePredictionsClampToOneAndZero) {
  Expert E = makeConstantExpert("low", -5.0, -2.0);
  policy::FeatureVector F = makeFeatures();
  EXPECT_EQ(E.predictThreads(F), 1u);
  EXPECT_GE(E.predictEnvNorm(F), 0.0);
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(OracleTest, BestThreadsIsActuallyBest) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("cg");
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  OracleEnv Env;
  Env.AvailableCores = 16;
  Env.ExternalThreads = 24;
  Env.ExternalMemDemand = 10.0;
  for (const workload::RegionSpec &R : Spec.Regions) {
    unsigned Best = oracleBestThreads(R, Env, M);
    double BestRate = oracleRegionRate(R, Best, Env, M);
    for (unsigned N = 1; N <= 32; ++N)
      EXPECT_LE(oracleRegionRate(R, N, Env, M), BestRate + 1e-12)
          << "n=" << N << " beats claimed optimum " << Best;
  }
}

TEST(OracleTest, IsolatedScalableRegionWantsEverything) {
  workload::RegionSpec R;
  R.ParallelFraction = 0.999;
  R.SyncCost = 0.0002;
  R.MemIntensity = 0.05;
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  OracleEnv Idle;
  Idle.AvailableCores = 32;
  EXPECT_GE(oracleBestThreads(R, Idle, M), 28u);
}

TEST(OracleTest, ContentionShrinksOptimum) {
  const workload::RegionSpec &R = workload::Catalog::byName("lu").Regions[2];
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  OracleEnv Idle;
  Idle.AvailableCores = 32;
  OracleEnv Busy;
  Busy.AvailableCores = 16;
  Busy.ExternalThreads = 48;
  Busy.ExternalMemDemand = 12.0;
  EXPECT_LT(oracleBestThreads(R, Busy, M), oracleBestThreads(R, Idle, M));
}

TEST(OracleTest, RateMatchesSchedulerArithmetic) {
  workload::RegionSpec R;
  R.ParallelFraction = 1.0;
  R.SyncCost = 0.0;
  R.MemIntensity = 0.0;
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  OracleEnv Env;
  Env.AvailableCores = 32;
  Env.ExternalThreads = 32; // Ratio 2 with 32 own threads... use 32 ext.
  // With 8 own threads: runnable 40, ratio 1.25, share = (1/1.25)/(1+.35*.25).
  double Share = (1.0 / 1.25) / (1.0 + M.ContextSwitchOverhead * 0.25);
  EXPECT_NEAR(oracleRegionRate(R, 8, Env, M), 8.0 * Share, 1e-9);
}

TEST(OracleTest, EmpiricalLabelsStayOnGridAndNearOracle) {
  const workload::RegionSpec &R = workload::Catalog::byName("sp").Regions[0];
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  OracleEnv Env;
  Env.AvailableCores = 24;
  Env.ExternalThreads = 20;
  Env.ExternalMemDemand = 6.0;
  unsigned Exact = oracleBestThreads(R, Env, M);
  Rng Gen(5);
  for (int I = 0; I < 20; ++I) {
    unsigned Label = empiricalBestThreads(R, Env, M, Gen);
    EXPECT_GE(Label, 1u);
    EXPECT_LE(Label, 32u);
    // Within a factor ~2 of the exact optimum (flat-top + grid + noise).
    EXPECT_LE(Label, Exact * 2 + 4);
    EXPECT_GE(Label + Label, Exact / 2);
  }
}

//===----------------------------------------------------------------------===//
// Selectors
//===----------------------------------------------------------------------===//

TEST(SelectorTest, WinnerOf) {
  EXPECT_EQ(ExpertSelector::winnerOf({0.3, 0.1, 0.5}), 1u);
  EXPECT_EQ(ExpertSelector::winnerOf({0.1, 0.1}), 0u); // Tie -> lowest.
}

TEST(SelectorTest, SoftmaxWeightsProperties) {
  Vec W = ExpertSelector::softmaxOfErrors({0.1, 0.2, 0.9, 0.9});
  ASSERT_EQ(W.size(), 4u);
  double Sum = 0.0;
  for (double X : W)
    Sum += X;
  EXPECT_NEAR(Sum, 1.0, 1e-12);
  EXPECT_GT(W[0], W[1]);
  EXPECT_GT(W[1], W[2]);
  EXPECT_NEAR(W[2], W[3], 1e-12);
}

TEST(SelectorTest, SoftmaxDegenerateEqualErrors) {
  Vec W = ExpertSelector::softmaxOfErrors({0.5, 0.5});
  EXPECT_NEAR(W[0], 0.5, 1e-9);
  EXPECT_NEAR(W[1], 0.5, 1e-9);
}

TEST(AccuracySelectorTest, ConvergesToBestExpert) {
  AccuracySelector S(3);
  Vec F = makeFeatures().Values;
  for (int I = 0; I < 20; ++I)
    S.update(F, {0.5, 0.1, 0.9});
  EXPECT_EQ(S.select(F), 1u);
  Vec W;
  ASSERT_TRUE(S.blendWeights(F, W));
  EXPECT_GT(W[1], W[0]);
  EXPECT_GT(W[1], W[2]);
}

TEST(AccuracySelectorTest, AdaptsToRegimeChange) {
  AccuracySelector S(2, /*Alpha=*/0.4);
  Vec F = makeFeatures().Values;
  for (int I = 0; I < 10; ++I)
    S.update(F, {0.1, 0.9});
  EXPECT_EQ(S.select(F), 0u);
  for (int I = 0; I < 10; ++I)
    S.update(F, {0.9, 0.1});
  EXPECT_EQ(S.select(F), 1u);
}

TEST(AccuracySelectorTest, NoBlendBeforeTraining) {
  AccuracySelector S(2);
  Vec W;
  EXPECT_FALSE(S.blendWeights(makeFeatures().Values, W));
}

TEST(BinnedAccuracySelectorTest, PerBinSpecialisation) {
  BinnedAccuracySelector S(2, tenDimScaler(), /*NumBins=*/4, /*Alpha=*/0.5);
  // Two very different feature magnitudes land in different norm bins.
  Vec Low(10, 0.1), High(10, 2.0);
  for (int I = 0; I < 10; ++I) {
    S.update(Low, {0.1, 0.9});  // Expert 0 wins in the low bin.
    S.update(High, {0.9, 0.1}); // Expert 1 wins in the high bin.
  }
  EXPECT_EQ(S.select(Low), 0u);
  EXPECT_EQ(S.select(High), 1u);
}

TEST(BinnedAccuracySelectorTest, UntouchedBinFallsBackToGlobal) {
  BinnedAccuracySelector S(2, tenDimScaler(), 8, 0.5);
  Vec Low(10, 0.1);
  for (int I = 0; I < 10; ++I)
    S.update(Low, {0.9, 0.1}); // Global: expert 1.
  Vec Unseen(10, 3.0);
  EXPECT_EQ(S.select(Unseen), 1u);
}

TEST(HyperplaneSelectorTest, EvenInitialPartition) {
  HyperplaneSelector S(4, tenDimScaler());
  ASSERT_EQ(S.boundaries().size(), 3u);
  EXPECT_GT(S.boundaries()[0], 0.0);
  EXPECT_LT(S.boundaries()[0], S.boundaries()[1]);
  EXPECT_LT(S.boundaries()[1], S.boundaries()[2]);
  // A small-norm point maps to the first region, a huge one to the last.
  EXPECT_EQ(S.select(Vec(10, 0.01)), 0u);
  EXPECT_EQ(S.select(Vec(10, 100.0)), 3u);
}

TEST(HyperplaneSelectorTest, BoundariesMoveTowardMisclassifiedPoints) {
  HyperplaneSelector S(2, tenDimScaler(), 0.5);
  Vec Mid(10, 0.9); // Below the initial single boundary (sqrt(10) ~ 3.16).
  ASSERT_EQ(S.select(Mid), 0u);
  // Supervision says expert 1 is better there: boundary must move down.
  Vec Errors = {0.9, 0.1};
  for (int I = 0; I < 20; ++I)
    S.update(Mid, Errors);
  EXPECT_EQ(S.select(Mid), 1u);
}

TEST(HyperplaneSelectorTest, BoundariesStayOrdered) {
  HyperplaneSelector S(4, tenDimScaler(), 0.9);
  Rng R(3);
  for (int I = 0; I < 200; ++I) {
    Vec F(10, R.uniform(0, 4));
    Vec Errors = {R.uniform(0, 1), R.uniform(0, 1), R.uniform(0, 1),
                  R.uniform(0, 1)};
    S.update(F, Errors);
    for (size_t B = 1; B < S.boundaries().size(); ++B)
      EXPECT_LE(S.boundaries()[B - 1], S.boundaries()[B] + 1e-12);
  }
}

TEST(PerceptronSelectorTest, LearnsLinearlySeparableRouting) {
  PerceptronSelector S(2, tenDimScaler(), 0.5);
  Vec Low(10, 0.0), High(10, 2.0);
  for (int I = 0; I < 50; ++I) {
    S.update(Low, {0.1, 0.9});
    S.update(High, {0.9, 0.1});
  }
  EXPECT_EQ(S.select(Low), 0u);
  EXPECT_EQ(S.select(High), 1u);
}

TEST(RegimeSelectorTest, GatesByObservableContention) {
  // Experts 0/1 uncontended, 2/3 contended.
  RegimeSelector S({0, 0, 1, 1});
  // Errors make expert 1 globally best among uncontended, 2 among
  // contended.
  Vec AnyF = makeFeatures().Values;
  for (int I = 0; I < 10; ++I)
    S.update(AnyF, {0.5, 0.2, 0.1, 0.6});

  policy::FeatureVector Idle = makeFeatures(1.0, 32.0, /*RunQueue=*/8.0);
  policy::FeatureVector Busy = makeFeatures(2.0, 16.0, /*RunQueue=*/50.0);
  EXPECT_EQ(S.select(Idle.Values), 1u) << "uncontended half must be used";
  EXPECT_EQ(S.select(Busy.Values), 2u) << "contended half must be used";

  Vec W;
  ASSERT_TRUE(S.blendWeights(Idle.Values, W));
  EXPECT_DOUBLE_EQ(W[2] + W[3], 0.0) << "contended experts get no weight";
  EXPECT_NEAR(W[0] + W[1], 1.0, 1e-12);
}

TEST(RegimeSelectorTest, AnyTaggedExpertAlwaysCandidate) {
  RegimeSelector S({-1, 1});
  Vec AnyF = makeFeatures().Values;
  for (int I = 0; I < 5; ++I)
    S.update(AnyF, {0.1, 0.9});
  policy::FeatureVector Idle = makeFeatures(1.0, 32.0, 8.0);
  EXPECT_EQ(S.select(Idle.Values), 0u);
}

TEST(RandomSelectorTest, DeterministicAndInRange) {
  RandomSelector A(4, 9), B(4, 9);
  Vec F = makeFeatures().Values;
  for (int I = 0; I < 50; ++I) {
    size_t SA = A.select(F);
    EXPECT_EQ(SA, B.select(F));
    EXPECT_LT(SA, 4u);
  }
  A.reset();
  RandomSelector C(4, 9);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(A.select(F), C.select(F));
}

TEST(FixedSelectorTest, AlwaysSameExpert) {
  FixedSelector S(4, 2);
  EXPECT_EQ(S.select(makeFeatures().Values), 2u);
  S.update(makeFeatures().Values, {0, 0, 9, 9});
  EXPECT_EQ(S.select(makeFeatures().Values), 2u);
}

TEST(SelectorTest, ClonesStartFresh) {
  AccuracySelector S(2);
  Vec F = makeFeatures().Values;
  for (int I = 0; I < 5; ++I)
    S.update(F, {0.9, 0.1});
  auto Clone = S.clone();
  // The trained original prefers expert 1; the clone is untrained and
  // must not blend yet.
  Vec W;
  EXPECT_FALSE(Clone->blendWeights(F, W));
  EXPECT_EQ(Clone->numExperts(), 2u);
}

//===----------------------------------------------------------------------===//
// MoeStats
//===----------------------------------------------------------------------===//

TEST(MoeStatsTest, FrequencyAndAccuracyAccounting) {
  MoeStats Stats(2);
  Stats.SelectionCounts[0] = 3;
  Stats.SelectionCounts[1] = 1;
  EXPECT_NEAR(Stats.selectionFrequency(0), 0.75, 1e-12);
  Stats.EnvAccurate = {8, 1};
  Stats.EnvTotal = {10, 10};
  EXPECT_NEAR(Stats.envAccuracy(0), 0.8, 1e-12);
  Stats.MixtureEnvAccurate = 9;
  Stats.MixtureEnvTotal = 10;
  EXPECT_NEAR(Stats.mixtureEnvAccuracy(), 0.9, 1e-12);
  Stats.clear();
  EXPECT_DOUBLE_EQ(Stats.selectionFrequency(0), 0.0);
  EXPECT_DOUBLE_EQ(Stats.envAccuracy(0), 0.0);
}

//===----------------------------------------------------------------------===//
// MixtureOfExperts (with synthetic experts)
//===----------------------------------------------------------------------===//

namespace {

std::shared_ptr<const std::vector<Expert>> twoConstantExperts() {
  auto Experts = std::make_shared<std::vector<Expert>>();
  // Expert 0 predicts 8 threads and env 1.0; expert 1 predicts 24 / 3.0.
  Experts->push_back(makeConstantExpert("E1", 8.0, 1.0));
  Experts->push_back(makeConstantExpert("E2", 24.0, 3.0));
  return Experts;
}

} // namespace

TEST(MixtureTest, RoutesToExpertWhoseEnvPredictionHolds) {
  auto Experts = twoConstantExperts();
  MixtureOptions Options;
  Options.SoftBlend = false;
  MixtureOfExperts Mix(Experts,
                       std::make_unique<AccuracySelector>(2, 0.5), nullptr,
                       Options);
  // The observed environment stays near 1.0: expert 0's predictions are
  // vindicated at every step, so selection converges to it.
  for (int I = 0; I < 10; ++I)
    Mix.select(makeFeatures(/*EnvNorm=*/1.05));
  EXPECT_EQ(Mix.lastExpert(), 0u);
  unsigned N = Mix.select(makeFeatures(1.05));
  EXPECT_EQ(N, 8u);

  // Now the environment jumps to 3.0: expert 1 becomes the accurate one.
  for (int I = 0; I < 10; ++I)
    Mix.select(makeFeatures(3.0));
  EXPECT_EQ(Mix.lastExpert(), 1u);
}

TEST(MixtureTest, SoftBlendLandsBetweenExperts) {
  auto Experts = twoConstantExperts();
  MixtureOfExperts Mix(Experts,
                       std::make_unique<AccuracySelector>(2, 0.5));
  // Environment at 2.0 sits exactly between both env models: weights stay
  // balanced and the blended thread count lies between 8 and 24.
  unsigned Last = 0;
  for (int I = 0; I < 10; ++I)
    Last = Mix.select(makeFeatures(2.0));
  EXPECT_GT(Last, 8u);
  EXPECT_LT(Last, 24u);
}

TEST(MixtureTest, StatsAreRecorded) {
  auto Experts = twoConstantExperts();
  auto Stats = std::make_shared<MoeStats>(2);
  MixtureOfExperts Mix(Experts, std::make_unique<AccuracySelector>(2),
                       Stats);
  for (int I = 0; I < 12; ++I)
    Mix.select(makeFeatures(1.0));
  EXPECT_EQ(Stats->SelectionCounts[0] + Stats->SelectionCounts[1], 12u);
  // 11 judged decisions (the last is still pending).
  EXPECT_EQ(Stats->EnvTotal[0], 11u);
  EXPECT_EQ(Stats->MixtureEnvTotal, 11u);
  EXPECT_EQ(Stats->MixtureThreads.total(), 12u);
  EXPECT_EQ(Stats->ExpertThreads[1].total(), 12u);
  // Expert 0 (env model = 1.0) is accurate at tolerance 0.2.
  EXPECT_GT(Stats->envAccuracy(0), 0.9);
  EXPECT_LT(Stats->envAccuracy(1), 0.1);
}

TEST(MixtureTest, ResetClearsPendingAndSelector) {
  auto Experts = twoConstantExperts();
  auto Stats = std::make_shared<MoeStats>(2);
  MixtureOfExperts Mix(Experts, std::make_unique<AccuracySelector>(2),
                       Stats);
  Mix.select(makeFeatures(1.0));
  size_t JudgedBefore = Stats->MixtureEnvTotal;
  Mix.reset();
  Mix.select(makeFeatures(1.0));
  // The pending prediction from before the reset must not be judged.
  EXPECT_EQ(Stats->MixtureEnvTotal, JudgedBefore);
  EXPECT_EQ(Mix.name(), "mixture");
}

TEST(MixtureTest, RespectsMaxThreads) {
  auto Experts = twoConstantExperts();
  MixtureOfExperts Mix(Experts, std::make_unique<FixedSelector>(2, 1));
  unsigned N = Mix.select(makeFeatures(1.0, 32.0, 10.0, /*MaxThreads=*/6));
  EXPECT_LE(N, 6u);
  EXPECT_GE(N, 1u);
}

//===----------------------------------------------------------------------===//
// Golden decision sequence
//===----------------------------------------------------------------------===//

namespace {

/// Builds one golden expert from a deterministically generated corpus. The
/// construction (and the sequence below) reproduces exactly what the
/// pre-refactor code computed; the expected decisions were captured from it
/// and pinned. Any change to FP operation order on the decision path —
/// selector scoring, standardisation, blending — shows up here as a
/// mismatch, which is the bit-identity contract of DESIGN.md §11.
Expert makeGoldenExpert(const std::string &Name, double ThreadBias,
                        double EnvBias, uint64_t Seed) {
  Dataset ThreadData(policy::featureNames());
  Dataset EnvData(policy::featureNames());
  Rng Gen(Seed);
  for (int I = 0; I < 200; ++I) {
    Vec X = {Gen.uniform(0.1, 1.0),  Gen.uniform(0.2, 1.0),
             Gen.uniform(0.05, 0.5), Gen.uniform(0.0, 24.0),
             Gen.uniform(4.0, 32.0), Gen.uniform(0.0, 48.0),
             Gen.uniform(0.0, 32.0), Gen.uniform(0.0, 32.0),
             Gen.uniform(0.0, 1.0),  Gen.uniform(0.0, 0.1)};
    double Threads = ThreadBias + 0.4 * X[4] - 0.2 * X[5] +
                     2.0 * X[0] + Gen.normal(0.0, 0.5);
    double EnvNorm = EnvBias + 0.05 * X[5] + 0.02 * X[3] +
                     Gen.normal(0.0, 0.1);
    ThreadData.add(X, Threads);
    EnvData.add(X, EnvNorm);
  }
  auto ThreadModel = trainLinearModel(ThreadData, Name + ".w");
  auto EnvModel = trainLinearModel(EnvData, Name + ".m");
  return Expert(Name, "golden", *ThreadModel, *EnvModel, EnvBias);
}

std::vector<unsigned> goldenDecisionSequence() {
  auto Experts = std::make_shared<std::vector<Expert>>();
  Experts->push_back(makeGoldenExpert("e0", 4.0, 0.3, 101));
  Experts->push_back(makeGoldenExpert("e1", 10.0, 0.8, 202));
  Experts->push_back(makeGoldenExpert("e2", 16.0, 1.4, 303));
  Experts->push_back(makeGoldenExpert("e3", 24.0, 2.0, 404));
  auto Selector =
      std::make_unique<RegimeSelector>(std::vector<int>{0, 0, 1, 1});
  MixtureOfExperts Mixture(Experts, std::move(Selector));

  Rng Gen(0x601D);
  std::vector<unsigned> Decisions;
  for (int I = 0; I < 64; ++I) {
    policy::FeatureVector F;
    F.Values = {Gen.uniform(0.1, 1.0),  Gen.uniform(0.2, 1.0),
                Gen.uniform(0.05, 0.5), Gen.uniform(0.0, 24.0),
                Gen.uniform(4.0, 32.0), Gen.uniform(0.0, 48.0),
                Gen.uniform(0.0, 32.0), Gen.uniform(0.0, 32.0),
                Gen.uniform(0.0, 1.0),  Gen.uniform(0.0, 0.1)};
    F.EnvNorm = Gen.uniform(0.2, 2.0);
    F.Now = 0.1 * I;
    F.MaxThreads = 32;
    Decisions.push_back(Mixture.select(F));
  }
  return Decisions;
}

} // namespace

TEST(MixtureTest, GoldenDecisionSequenceIsByteIdentical) {
  // Captured from the pre-refactor implementation; every element must match
  // exactly. If an intentional semantics change ever invalidates this,
  // regenerate by printing goldenDecisionSequence() from the old code.
  const std::vector<unsigned> Expected = {
      18, 20, 19, 20, 21, 15, 18, 22, 12, 17, 18, 15, 21, 22, 13, 13,
      23, 12, 23, 15, 12, 18, 17, 22, 19, 12, 21, 11, 18, 17, 14, 24,
      24, 12, 18, 13, 17, 24, 14, 10, 12, 15, 14, 18, 13, 15, 22, 25,
      19, 18, 13, 16, 15, 17, 23, 26, 13, 18, 14, 14, 14, 13, 22, 11};
  EXPECT_EQ(goldenDecisionSequence(), Expected);
}

//===----------------------------------------------------------------------===//
// ExpertBuilder (small config to keep runtime bounded)
//===----------------------------------------------------------------------===//

namespace {

/// A reduced training matrix: 3 programs, the 32-core platform only.
TrainingConfig smallTraining() {
  TrainingConfig Config;
  Config.Programs = {"cg", "ep", "lu"};
  Config.Platforms = {sim::MachineConfig::evaluationPlatform()};
  Config.SplitPlatformIndex = 0;
  Config.RunDuration = 60.0;
  Config.Seed = 0xABCD;
  return Config;
}

} // namespace

TEST(ExpertBuilderTest, CollectsLabelledSamples) {
  ExpertBuilder Builder(smallTraining());
  const auto &Samples = Builder.samples();
  ASSERT_GT(Samples.size(), 500u);
  size_t WithNext = 0;
  for (const TrainingSample &S : Samples) {
    EXPECT_EQ(S.Features.size(), policy::NumFeatures);
    EXPECT_GE(S.BestThreads, 1.0);
    EXPECT_LE(S.BestThreads, 32.0);
    EXPECT_EQ(S.PlatformCores, 32u);
    EXPECT_GT(S.ScalabilityFraction, 0.0);
    EXPECT_FALSE(S.Program.empty());
    WithNext += S.HasNextEnv;
    if (S.HasNextEnv) {
      EXPECT_GT(S.NextEnvNorm, 0.0);
    }
  }
  EXPECT_GT(WithNext, Samples.size() / 2);
}

TEST(ExpertBuilderTest, DeterministicAcrossInstances) {
  ExpertBuilder A(smallTraining()), B(smallTraining());
  ASSERT_EQ(A.samples().size(), B.samples().size());
  for (size_t I = 0; I < A.samples().size(); I += 97) {
    EXPECT_EQ(A.samples()[I].BestThreads, B.samples()[I].BestThreads);
    EXPECT_EQ(A.samples()[I].Features, B.samples()[I].Features);
  }
}

TEST(ExpertBuilderTest, BuildsRequestedGranularities) {
  ExpertBuilder Builder(smallTraining());
  for (unsigned K : {1u, 2u, 4u, 8u}) {
    auto Built = Builder.build(K);
    ASSERT_EQ(Built.size(), K) << "K=" << K;
    for (size_t I = 0; I < Built.size(); ++I) {
      EXPECT_EQ(Built[I].E.name(), "E" + std::to_string(I + 1));
      EXPECT_FALSE(Built[I].E.description().empty());
      EXPECT_GT(Built[I].ThreadData.size(), 0u);
    }
    // Ordered by the calmness of the training regime.
    for (size_t I = 1; I < Built.size(); ++I)
      EXPECT_LE(Built[I - 1].E.meanTrainingEnv(),
                Built[I].E.meanTrainingEnv() + 1e-9);
  }
}

TEST(ExpertBuilderTest, FourExpertSplitCoversBothAxes) {
  ExpertBuilder Builder(smallTraining());
  auto Built = Builder.build(4);
  std::set<std::string> Descriptions;
  for (const auto &B : Built)
    Descriptions.insert(B.E.description());
  EXPECT_TRUE(Descriptions.count("uncontended/scalable"));
  EXPECT_TRUE(Descriptions.count("uncontended/non-scalable"));
  EXPECT_TRUE(Descriptions.count("contended/scalable"));
  EXPECT_TRUE(Descriptions.count("contended/non-scalable"));
}

TEST(ExpertBuilderTest, ScalabilityTableUsesPaperCriterion) {
  ExpertBuilder Builder(smallTraining());
  auto Table = Builder.scalabilityTable();
  ASSERT_EQ(Table.size(), 3u);
  for (const ScalabilityEntry &E : Table) {
    EXPECT_EQ(E.PlatformCores, 32u);
    EXPECT_EQ(E.Scalable, E.IsolatedSpeedup >= 8.0);
  }
}

TEST(ExpertBuilderTest, MonolithicModelTrains) {
  ExpertBuilder Builder(smallTraining());
  LinearModel Model = Builder.monolithicThreadModel();
  EXPECT_EQ(Model.dimension(), policy::NumFeatures);
  // Predictions over in-corpus features are within machine bounds after
  // clamping; raw predictions must at least be finite and sane.
  double P = Model.predict(Builder.samples().front().Features);
  EXPECT_TRUE(std::isfinite(P));
  EXPECT_GT(P, -40.0);
  EXPECT_LT(P, 80.0);
}

TEST(ExpertBuilderTest, FeatureScalerCoversCorpus) {
  ExpertBuilder Builder(smallTraining());
  FeatureScaler Scaler = Builder.featureScaler();
  EXPECT_EQ(Scaler.dimension(), policy::NumFeatures);
  // Standardised corpus features should be O(1) on average.
  double Total = 0.0;
  size_t Count = 0;
  for (size_t I = 0; I < Builder.samples().size(); I += 23) {
    Total += norm2(Scaler.transform(Builder.samples()[I].Features));
    ++Count;
  }
  double MeanNorm = Total / double(Count);
  EXPECT_GT(MeanNorm, 0.5);
  EXPECT_LT(MeanNorm, 10.0);
}

//===----------------------------------------------------------------------===//
// External experts (Section 9 extensions)
//===----------------------------------------------------------------------===//

#include "core/ExternalExperts.h"

TEST(ExternalExpertTest, FunctionBackedExpertPredicts) {
  Expert E("fn", "custom",
           [](const Vec &X) { return X[4] / 2.0; },  // Half the processors.
           [](const Vec &) { return 1.5; }, 1.5);
  policy::FeatureVector F = makeFeatures(1.0, 24.0);
  EXPECT_EQ(E.predictThreads(F), 12u);
  EXPECT_NEAR(E.predictEnvNorm(F), 1.5, 1e-12);
  EXPECT_EQ(E.threadModel(), nullptr) << "no linear model to introspect";
}

TEST(ExternalExpertTest, LinearExpertExposesItsModels) {
  Expert E = makeConstantExpert("E1", 10.0, 1.0);
  EXPECT_NE(E.threadModel(), nullptr);
  EXPECT_NE(E.envModel(), nullptr);
}

TEST(OnlineEnvModelTest, LearnsPerRegimeEstimates) {
  OnlineEnvModel Model(/*Prior=*/1.0, /*Alpha=*/0.5);
  Vec Idle = makeFeatures(0.0, 32.0, /*RunQueue=*/8.0).Values;
  Vec Busy = makeFeatures(0.0, 16.0, /*RunQueue=*/50.0).Values;
  EXPECT_NEAR(Model.predict(Idle), 1.0, 1e-12);
  for (int I = 0; I < 20; ++I) {
    Model.observe(Idle, 1.4);
    Model.observe(Busy, 2.6);
  }
  EXPECT_NEAR(Model.predict(Idle), 1.4, 0.05);
  EXPECT_NEAR(Model.predict(Busy), 2.6, 0.05);
  EXPECT_EQ(Model.observations(), 40u);
}

TEST(ExternalExpertTest, HandcraftedExpertHeuristics) {
  Expert E = makeHandcraftedExpert(sim::MachineConfig::evaluationPlatform(),
                                   "hand");
  // Idle machine, low branch ratio: claim everything.
  policy::FeatureVector Idle = makeFeatures(1.0, 32.0, 4.0);
  Idle.Values[2] = 0.05; // branches
  Idle.Values[3] = 0.0;  // no workload
  EXPECT_GE(E.predictThreads(Idle), 30u);
  // Branchy loop: stay within one socket (8 cores).
  policy::FeatureVector Branchy = Idle;
  Branchy.Values[2] = 0.30;
  EXPECT_LE(E.predictThreads(Branchy), 8u);
  // Loaded machine: claim only the slack.
  policy::FeatureVector Loaded = Idle;
  Loaded.Values[3] = 40.0;
  EXPECT_LE(E.predictThreads(Loaded), 14u);
}

TEST(ExternalExpertTest, HandcraftedEnvModelLearnsFromFeedback) {
  Expert E = makeHandcraftedExpert(sim::MachineConfig::evaluationPlatform(),
                                   "hand");
  policy::FeatureVector F = makeFeatures(2.4, 16.0, 50.0);
  double Before = E.predictEnvNorm(F);
  for (int I = 0; I < 30; ++I)
    E.observeEnvironment(F.Values, 2.4);
  double After = E.predictEnvNorm(F);
  EXPECT_GT(std::fabs(2.4 - Before), std::fabs(2.4 - After));
  EXPECT_NEAR(After, 2.4, 0.1);
}

TEST(ExternalExpertTest, KnnExpertFromCorpus) {
  ExpertBuilder Builder(smallTraining());
  Expert Knn = makeKnnExpert(Builder, "E-knn");
  EXPECT_EQ(Knn.name(), "E-knn");
  EXPECT_EQ(Knn.threadModel(), nullptr);
  // Predictions over in-corpus features are sane thread counts.
  policy::FeatureVector F;
  F.Values = Builder.samples().front().Features;
  F.MaxThreads = 32;
  unsigned N = Knn.predictThreads(F);
  EXPECT_GE(N, 1u);
  EXPECT_LE(N, 32u);
  EXPECT_GT(Knn.predictEnvNorm(F), 0.0);
}

TEST(ExpertBuilderTest, SubsampledBuildShrinksData) {
  ExpertBuilder Builder(smallTraining());
  auto Full = Builder.build(2);
  auto Quarter = Builder.buildSubsampled(2, 0.25);
  ASSERT_EQ(Quarter.size(), 2u);
  size_t FullSamples = Full[0].ThreadData.size() + Full[1].ThreadData.size();
  size_t QuarterSamples =
      Quarter[0].ThreadData.size() + Quarter[1].ThreadData.size();
  EXPECT_LT(QuarterSamples, FullSamples / 3);
  EXPECT_GT(QuarterSamples, FullSamples / 6);
}

TEST(MixtureTest, FeedsObservationsToOnlineExperts) {
  auto Shared = std::make_shared<size_t>(0);
  auto Experts = std::make_shared<std::vector<Expert>>();
  Experts->push_back(Expert(
      "obs", "observing", [](const Vec &) { return 8.0; },
      [](const Vec &) { return 1.0; }, 1.0,
      [Shared](const Vec &, double) { ++*Shared; }));
  MixtureOfExperts Mix(Experts, std::make_unique<FixedSelector>(1, 0));
  for (int I = 0; I < 5; ++I)
    Mix.select(makeFeatures(1.0));
  EXPECT_EQ(*Shared, 4u); // Every decision but the last was judged.
}

//===----------------------------------------------------------------------===//
// Expert serialisation
//===----------------------------------------------------------------------===//

#include "core/ExpertIo.h"

#include <sstream>

TEST(ExpertIoTest, RoundTripsLinearExperts) {
  std::vector<Expert> Original = {
      makeConstantExpert("E1", 8.0, 1.2),
      makeConstantExpert("E2", 24.0, 2.4),
  };
  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Original));
  auto Loaded = readExperts(SS);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), 2u);

  policy::FeatureVector F = makeFeatures(1.0, 24.0, 30.0);
  for (size_t I = 0; I < 2; ++I) {
    EXPECT_EQ((*Loaded)[I].name(), Original[I].name());
    EXPECT_EQ((*Loaded)[I].description(), Original[I].description());
    EXPECT_DOUBLE_EQ((*Loaded)[I].meanTrainingEnv(),
                     Original[I].meanTrainingEnv());
    EXPECT_EQ((*Loaded)[I].predictThreads(F), Original[I].predictThreads(F));
    EXPECT_DOUBLE_EQ((*Loaded)[I].predictEnvNorm(F),
                     Original[I].predictEnvNorm(F));
  }
}

TEST(ExpertIoTest, TrainedExpertsRoundTripExactly) {
  ExpertBuilder Builder(smallTraining());
  auto Built = Builder.build(2);
  std::vector<Expert> Experts;
  for (auto &B : Built)
    Experts.push_back(B.E);

  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Experts));
  auto Loaded = readExperts(SS);
  ASSERT_TRUE(Loaded.has_value());

  // Bit-exact predictions on real corpus features (max_digits10 output).
  for (size_t I = 0; I < Builder.samples().size(); I += 137) {
    policy::FeatureVector F;
    F.Values = Builder.samples()[I].Features;
    F.MaxThreads = 32;
    for (size_t K = 0; K < Experts.size(); ++K) {
      EXPECT_EQ((*Loaded)[K].predictThreads(F), Experts[K].predictThreads(F));
      EXPECT_DOUBLE_EQ((*Loaded)[K].predictEnvNorm(F),
                       Experts[K].predictEnvNorm(F));
    }
  }
}

TEST(ExpertIoTest, RejectsExternalExperts) {
  std::vector<Expert> Experts = {
      Expert("fn", "custom", [](const Vec &) { return 8.0; },
             [](const Vec &) { return 1.0; }, 1.0)};
  std::stringstream SS;
  EXPECT_FALSE(writeExperts(SS, Experts));
}

TEST(ExpertIoTest, RejectsMalformedInput) {
  auto Try = [](const std::string &Text) {
    std::stringstream SS(Text);
    return readExperts(SS).has_value();
  };
  EXPECT_FALSE(Try(""));
  EXPECT_FALSE(Try("wrong-magic 1\n"));
  EXPECT_FALSE(Try("medley-experts 99\nexperts 1 features 10\n"));
  EXPECT_FALSE(Try("medley-experts 1\nexperts 1 features 3\n"));
  // Truncated body.
  EXPECT_FALSE(Try("medley-experts 1\nexperts 1 features 10\nexpert E1 "
                   "1.0\ndescription d\nw means 1 2 3\n"));
}

TEST(ExpertIoTest, WritesChecksummedV2Header) {
  std::vector<Expert> Experts = {makeConstantExpert("E1", 8.0, 1.2)};
  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Experts));
  const std::string Text = SS.str();
  EXPECT_EQ(Text.rfind("medley-experts 2\nchecksum ", 0), 0u);
  // The checksum token is exactly 16 lowercase hex digits.
  const size_t CkStart = Text.find("checksum ") + 9;
  const std::string Ck = Text.substr(CkStart, Text.find('\n', CkStart) - CkStart);
  ASSERT_EQ(Ck.size(), 16u);
  for (char C : Ck)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Ck;
}

TEST(ExpertIoTest, RejectsBitFlippedPayloadAsChecksumMismatch) {
  std::vector<Expert> Experts = {makeConstantExpert("E1", 8.0, 1.2),
                                 makeConstantExpert("E2", 24.0, 2.4)};
  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Experts));
  std::string Text = SS.str();

  // Flip one digit deep in the payload; the v2 checksum must catch it
  // before any parsing.
  const size_t Pos = Text.rfind('7') != std::string::npos
                         ? Text.rfind('7')
                         : Text.size() - 2;
  Text[Pos] = Text[Pos] == '7' ? '8' : '7';
  std::stringstream Damaged(Text);
  support::Error Err;
  EXPECT_FALSE(readExperts(Damaged, &Err).has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::ChecksumMismatch);
}

TEST(ExpertIoTest, ReadsLegacyV1FilesWithoutChecksum) {
  std::vector<Expert> Experts = {makeConstantExpert("E1", 8.0, 1.2)};
  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Experts));
  std::string Text = SS.str();

  // Strip the v2 header down to the v1 form: old magic, no checksum line.
  const size_t PayloadStart = Text.find('\n', Text.find("checksum ")) + 1;
  std::stringstream Legacy("medley-experts 1\n" + Text.substr(PayloadStart));
  auto Loaded = readExperts(Legacy);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), 1u);
  policy::FeatureVector F = makeFeatures(1.0, 24.0, 30.0);
  EXPECT_EQ((*Loaded)[0].predictThreads(F), Experts[0].predictThreads(F));
  EXPECT_DOUBLE_EQ((*Loaded)[0].predictEnvNorm(F),
                   Experts[0].predictEnvNorm(F));
}

TEST(ExpertIoTest, TruncatedV2PayloadFailsChecksum) {
  std::vector<Expert> Experts = {makeConstantExpert("E1", 8.0, 1.2)};
  std::stringstream SS;
  ASSERT_TRUE(writeExperts(SS, Experts));
  std::string Text = SS.str();
  std::stringstream Truncated(Text.substr(0, Text.size() * 2 / 3));
  support::Error Err;
  EXPECT_FALSE(readExperts(Truncated, &Err).has_value());
  EXPECT_EQ(Err.code(), support::ErrorCode::ChecksumMismatch);
}

TEST(ExpertIoTest, FileHelpersWork) {
  std::vector<Expert> Experts = {makeConstantExpert("E1", 8.0, 1.2)};
  std::string Path = ::testing::TempDir() + "/medley_experts_test.txt";
  ASSERT_TRUE(saveExpertsToFile(Path, Experts));
  auto Loaded = loadExpertsFromFile(Path);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_EQ(Loaded->size(), 1u);
  EXPECT_FALSE(loadExpertsFromFile("/nonexistent/dir/file").has_value());
}
