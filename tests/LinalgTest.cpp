//===-- tests/LinalgTest.cpp - linalg library tests ----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "linalg/LeastSquares.h"
#include "linalg/Matrix.h"
#include "linalg/Solve.h"
#include "linalg/Vector.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace medley;

//===----------------------------------------------------------------------===//
// Vector operations
//===----------------------------------------------------------------------===//

TEST(VectorTest, ZerosAndDot) {
  Vec Z = zeros(4);
  EXPECT_EQ(Z.size(), 4u);
  EXPECT_DOUBLE_EQ(dot(Z, Z), 0.0);
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(VectorTest, Norm) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2(zeros(3)), 0.0);
}

TEST(VectorTest, AddSubScale) {
  Vec A = {1, 2}, B = {3, 5};
  EXPECT_EQ(add(A, B), (Vec{4, 7}));
  EXPECT_EQ(sub(B, A), (Vec{2, 3}));
  EXPECT_EQ(scale(A, 2.0), (Vec{2, 4}));
}

TEST(VectorTest, Axpy) {
  Vec Y = {1, 1};
  axpy(Y, 2.0, {3, 4});
  EXPECT_EQ(Y, (Vec{7, 9}));
}

//===----------------------------------------------------------------------===//
// Allocation-free kernels: each must be bit-identical to its value-returning
// counterpart — same values, same accumulation order — including the empty
// and dim-1 edges. Comparisons use exact bit equality, not tolerances.
//===----------------------------------------------------------------------===//

namespace {

/// Irrational-ish values whose sums/products are not exactly representable,
/// so any reordering or extra rounding would flip low bits.
Vec awkward(size_t N, double Seed) {
  Vec V(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = Seed / 3.0 + static_cast<double>(I) * 0.1 / 7.0;
  return V;
}

bool bitEqual(const Vec &A, const Vec &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::memcmp(&A[I], &B[I], sizeof(double)) != 0)
      return false;
  return true;
}

} // namespace

TEST(VectorKernelTest, AddIntoBitIdentical) {
  for (size_t N : {size_t(0), size_t(1), size_t(10), size_t(33)}) {
    Vec A = awkward(N, 1.7), B = awkward(N, -2.3);
    Vec Out(4, 99.0); // Stale contents and a mismatched size must not leak.
    addInto(A, B, Out);
    EXPECT_TRUE(bitEqual(Out, add(A, B))) << "N=" << N;
  }
}

TEST(VectorKernelTest, SubIntoBitIdentical) {
  for (size_t N : {size_t(0), size_t(1), size_t(10), size_t(33)}) {
    Vec A = awkward(N, 0.9), B = awkward(N, 5.1);
    Vec Out;
    subInto(A, B, Out);
    EXPECT_TRUE(bitEqual(Out, sub(A, B))) << "N=" << N;
  }
}

TEST(VectorKernelTest, ScaleIntoBitIdentical) {
  for (size_t N : {size_t(0), size_t(1), size_t(10), size_t(33)}) {
    Vec A = awkward(N, -3.3);
    Vec Out(1, -1.0);
    scaleInto(A, 1.0 / 3.0, Out);
    EXPECT_TRUE(bitEqual(Out, scale(A, 1.0 / 3.0))) << "N=" << N;
  }
}

TEST(VectorKernelTest, ScaleIntoAliasingOutIsSafe) {
  Vec A = awkward(5, 2.2);
  Vec Expected = scale(A, 0.7);
  scaleInto(A, 0.7, A); // Out aliases A, as documented.
  EXPECT_TRUE(bitEqual(A, Expected));
}

TEST(VectorKernelTest, DotSpanBitIdentical) {
  for (size_t N : {size_t(0), size_t(1), size_t(10), size_t(33)}) {
    Vec A = awkward(N, 4.1), B = awkward(N, -0.6);
    double Expected = dot(A, B);
    double Got = dotSpan(A.data(), B.data(), N);
    EXPECT_EQ(std::memcmp(&Got, &Expected, sizeof(double)), 0) << "N=" << N;
  }
}

TEST(VectorKernelTest, AxpySpanBitIdentical) {
  for (size_t N : {size_t(0), size_t(1), size_t(10), size_t(33)}) {
    Vec Y1 = awkward(N, 1.1), Y2 = Y1, X = awkward(N, -7.7);
    axpy(Y1, 0.3, X);
    axpySpan(Y2.data(), 0.3, X.data(), N);
    EXPECT_TRUE(bitEqual(Y1, Y2)) << "N=" << N;
  }
}

TEST(VectorKernelTest, GemvMatchesPerRowDots) {
  // K separate dot() calls over the rows of a flat row-major matrix must
  // bit-match one gemv — that equivalence is what lets the selectors score
  // all experts from flat weights.
  for (size_t Rows : {size_t(1), size_t(4)}) {
    for (size_t Cols : {size_t(1), size_t(11)}) {
      Vec FlatM = awkward(Rows * Cols, 0.4);
      Vec X = awkward(Cols, -1.9);
      Vec Out(2, 123.0);
      gemv(FlatM, Rows, Cols, X, Out);
      ASSERT_EQ(Out.size(), Rows);
      for (size_t R = 0; R < Rows; ++R) {
        Vec Row(FlatM.begin() + static_cast<long>(R * Cols),
                FlatM.begin() + static_cast<long>((R + 1) * Cols));
        double Expected = dot(Row, X);
        EXPECT_EQ(std::memcmp(&Out[R], &Expected, sizeof(double)), 0)
            << "R=" << R << " Cols=" << Cols;
      }
    }
  }
}

TEST(VectorKernelTest, GemvEmptyColumns) {
  Vec FlatM, X, Out;
  gemv(FlatM, 0, 0, X, Out);
  EXPECT_TRUE(Out.empty());
}

TEST(VectorTest, DistanceAndHadamard) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_EQ(hadamard({1, 2, 3}, {4, 5, 6}), (Vec{4, 10, 18}));
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(M.at(0, 1), 7.0);
}

TEST(MatrixTest, FromRowsAndAccessors) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.row(1), (Vec{3, 4}));
  EXPECT_EQ(M.col(0), (Vec{1, 3, 5}));
}

TEST(MatrixTest, IdentityApply) {
  Matrix I = Matrix::identity(3);
  Vec X = {1, 2, 3};
  EXPECT_EQ(I.apply(X), X);
}

TEST(MatrixTest, ApplyKnownProduct) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(M.apply({1, 1}), (Vec{3, 7}));
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix T = M.transposed();
  EXPECT_EQ(T.rows(), 3u);
  EXPECT_EQ(T.cols(), 2u);
  EXPECT_DOUBLE_EQ(T.at(2, 1), 6.0);
  Matrix TT = T.transposed();
  for (size_t R = 0; R < M.rows(); ++R)
    for (size_t C = 0; C < M.cols(); ++C)
      EXPECT_DOUBLE_EQ(TT.at(R, C), M.at(R, C));
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyAgreesWithApply) {
  Rng R(5);
  Matrix A(4, 3), B(3, 2);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = R.uniform(-1, 1);
  for (size_t I = 0; I < 3; ++I)
    for (size_t J = 0; J < 2; ++J)
      B.at(I, J) = R.uniform(-1, 1);
  Matrix AB = A.multiply(B);
  for (size_t C = 0; C < 2; ++C) {
    Vec Col = AB.col(C);
    Vec Expected = A.apply(B.col(C));
    for (size_t I = 0; I < 4; ++I)
      EXPECT_NEAR(Col[I], Expected[I], 1e-12);
  }
}

TEST(MatrixTest, PlusDiagonal) {
  Matrix M = Matrix::identity(2);
  Matrix P = M.plusDiagonal(0.5);
  EXPECT_DOUBLE_EQ(P.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(P.at(0, 1), 0.0);
}

//===----------------------------------------------------------------------===//
// Solvers
//===----------------------------------------------------------------------===//

TEST(SolveTest, CholeskySolvesKnownSystem) {
  // A = [[4, 2], [2, 3]] is SPD; A x = b with x = (1, 2) -> b = (8, 8).
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  auto X = solveCholesky(A, {8, 8});
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 1.0, 1e-10);
  EXPECT_NEAR((*X)[1], 2.0, 1e-10);
}

TEST(SolveTest, CholeskyRejectsIndefinite) {
  Matrix A = Matrix::fromRows({{0, 1}, {1, 0}});
  EXPECT_FALSE(solveCholesky(A, {1, 1}).has_value());
}

/// Property: Cholesky recovers x for random SPD systems built as
/// B^T B + I.
class CholeskyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CholeskyPropertyTest, RecoversSolution) {
  Rng R(GetParam());
  const size_t N = 6;
  Matrix B(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      B.at(I, J) = R.uniform(-1, 1);
  Matrix A = B.transposed().multiply(B).plusDiagonal(1.0);
  Vec XTrue(N);
  for (size_t I = 0; I < N; ++I)
    XTrue[I] = R.uniform(-2, 2);
  Vec Rhs = A.apply(XTrue);
  auto X = solveCholesky(A, Rhs);
  ASSERT_TRUE(X.has_value());
  for (size_t I = 0; I < N; ++I)
    EXPECT_NEAR((*X)[I], XTrue[I], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskyPropertyTest,
                         ::testing::Values(1, 7, 21, 99, 1234));

TEST(SolveTest, QrSolvesExactSquareSystem) {
  Matrix A = Matrix::fromRows({{2, 0}, {0, 3}});
  auto X = solveLeastSquaresQr(A, {4, 9});
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 2.0, 1e-10);
  EXPECT_NEAR((*X)[1], 3.0, 1e-10);
}

TEST(SolveTest, QrRejectsUnderdetermined) {
  Matrix A(1, 2, 1.0);
  EXPECT_FALSE(solveLeastSquaresQr(A, {1.0}).has_value());
}

TEST(SolveTest, QrRejectsRankDeficient) {
  Matrix A = Matrix::fromRows({{1, 1}, {2, 2}, {3, 3}});
  EXPECT_FALSE(solveLeastSquaresQr(A, {1, 2, 3}).has_value());
}

TEST(SolveTest, QrMinimisesResidualOnOverdetermined) {
  // Fit y = 2x through noisy points; LS solution is known analytically:
  // x = sum(t*y)/sum(t^2).
  Matrix A = Matrix::fromRows({{1}, {2}, {3}});
  Vec Y = {2.1, 3.9, 6.2};
  auto X = solveLeastSquaresQr(A, Y);
  ASSERT_TRUE(X.has_value());
  double Expected = (1 * 2.1 + 2 * 3.9 + 3 * 6.2) / (1.0 + 4.0 + 9.0);
  EXPECT_NEAR((*X)[0], Expected, 1e-10);
}

//===----------------------------------------------------------------------===//
// Least squares
//===----------------------------------------------------------------------===//

TEST(LeastSquaresTest, RecoversPlantedLinearModel) {
  Rng R(77);
  Vec W = {2.0, -1.0, 0.5};
  double B = 3.0;
  std::vector<Vec> X;
  Vec Y;
  for (int I = 0; I < 60; ++I) {
    Vec Row = {R.uniform(-1, 1), R.uniform(-1, 1), R.uniform(-1, 1)};
    Y.push_back(dot(W, Row) + B);
    X.push_back(std::move(Row));
  }
  auto Fit = fitLeastSquares(X, Y);
  ASSERT_TRUE(Fit.has_value());
  for (size_t I = 0; I < 3; ++I)
    EXPECT_NEAR(Fit->Weights[I], W[I], 1e-8);
  EXPECT_NEAR(Fit->Intercept, B, 1e-8);
  EXPECT_NEAR(Fit->R2, 1.0, 1e-9);
}

/// Property: planted models of varying dimension are recovered with noise
/// bounded error.
class LeastSquaresPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(LeastSquaresPropertyTest, NoisyRecoveryWithinTolerance) {
  auto [Dim, Seed] = GetParam();
  Rng R(Seed);
  Vec W(Dim);
  for (double &V : W)
    V = R.uniform(-3, 3);
  std::vector<Vec> X;
  Vec Y;
  for (size_t I = 0; I < 50 * Dim; ++I) {
    Vec Row(Dim);
    for (double &V : Row)
      V = R.uniform(-1, 1);
    Y.push_back(dot(W, Row) + 1.0 + R.normal(0.0, 0.05));
    X.push_back(std::move(Row));
  }
  auto Fit = fitLeastSquares(X, Y);
  ASSERT_TRUE(Fit.has_value());
  for (size_t I = 0; I < Dim; ++I)
    EXPECT_NEAR(Fit->Weights[I], W[I], 0.1);
  EXPECT_GT(Fit->R2, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, LeastSquaresPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(1, 3, 10),
                       ::testing::Values<uint64_t>(11, 22, 33)));

TEST(LeastSquaresTest, NoInterceptOption) {
  std::vector<Vec> X = {{1.0}, {2.0}, {3.0}};
  Vec Y = {2.0, 4.0, 6.0};
  LeastSquaresOptions Options;
  Options.FitIntercept = false;
  auto Fit = fitLeastSquares(X, Y, Options);
  ASSERT_TRUE(Fit.has_value());
  EXPECT_NEAR(Fit->Weights[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(Fit->Intercept, 0.0);
}

TEST(LeastSquaresTest, RidgeShrinksWeights) {
  Rng R(5);
  std::vector<Vec> X;
  Vec Y;
  for (int I = 0; I < 30; ++I) {
    Vec Row = {R.uniform(-1, 1)};
    Y.push_back(5.0 * Row[0]);
    X.push_back(std::move(Row));
  }
  auto Plain = fitLeastSquares(X, Y);
  LeastSquaresOptions Options;
  Options.Ridge = 100.0;
  auto Ridged = fitLeastSquares(X, Y, Options);
  ASSERT_TRUE(Plain && Ridged);
  EXPECT_LT(std::fabs(Ridged->Weights[0]), std::fabs(Plain->Weights[0]));
}

TEST(LeastSquaresTest, FallsBackToRidgeWhenCollinear) {
  // Two identical columns defeat plain QR; the ridge fallback must still
  // produce a usable fit.
  std::vector<Vec> X;
  Vec Y;
  for (int I = 0; I < 20; ++I) {
    double T = 0.1 * I;
    X.push_back({T, T});
    Y.push_back(4.0 * T);
  }
  auto Fit = fitLeastSquares(X, Y);
  ASSERT_TRUE(Fit.has_value());
  // The two collinear weights must jointly act like slope 4.
  EXPECT_NEAR(Fit->Weights[0] + Fit->Weights[1], 4.0, 1e-2);
}

TEST(LeastSquaresTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(fitLeastSquares({}, {}).has_value());
  EXPECT_FALSE(fitLeastSquares({{1.0}}, {1.0, 2.0}).has_value());
}

TEST(LeastSquaresTest, ConstantTargetGivesR2One) {
  std::vector<Vec> X = {{1.0}, {2.0}, {3.0}};
  Vec Y = {5.0, 5.0, 5.0};
  auto Fit = fitLeastSquares(X, Y);
  ASSERT_TRUE(Fit.has_value());
  EXPECT_NEAR(Fit->predict({9.0}), 5.0, 1e-8);
  EXPECT_NEAR(Fit->R2, 1.0, 1e-9);
}
