//===-- tests/DriverParallelTest.cpp - pooled experiment engine tests ---------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The determinism contract of the parallel experiment engine: a cell plan
// executed across the thread pool must produce bit-identical results to
// the sequential path at every job count, and baseline cells must be
// served from the process-wide cache instead of being recomputed for
// every policy.
//
//===----------------------------------------------------------------------===//

#include "exp/BaselineCache.h"
#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"

#include <gtest/gtest.h>

using namespace medley;
using namespace medley::exp;

namespace {

/// A seed of its own keeps these tests' baseline-cache keys disjoint from
/// every other test in the binary.
DriverOptions gridOptions(unsigned Jobs) {
  DriverOptions Options;
  Options.Repeats = 2;
  Options.Seed = 0x9A11E7;
  Options.Jobs = Jobs;
  return Options;
}

SpeedupMatrix runGrid(unsigned Jobs) {
  Driver D(gridOptions(Jobs));
  // Pooled and sequential passes must both *compute* their baselines for
  // the comparison to exercise the full plan.
  D.clearCache();
  // The analytic policy's factory hands out seeds in instantiation order,
  // so it is the policy most sensitive to plan-order mistakes.
  return computeSpeedupMatrix(D, PolicySet::instance(), {"cg", "lu"},
                              {"online", "analytic"}, Scenario::smallLow());
}

} // namespace

TEST(DriverParallelTest, PooledMatrixIsBitIdenticalToSequential) {
  SpeedupMatrix Sequential = runGrid(1);
  SpeedupMatrix Pooled = runGrid(4);

  ASSERT_EQ(Sequential.Targets, Pooled.Targets);
  ASSERT_EQ(Sequential.Policies, Pooled.Policies);
  ASSERT_EQ(Sequential.Values.size(), Pooled.Values.size());
  for (size_t T = 0; T < Sequential.Values.size(); ++T) {
    ASSERT_EQ(Sequential.Values[T].size(), Pooled.Values[T].size());
    for (size_t P = 0; P < Sequential.Values[T].size(); ++P)
      // EXPECT_EQ, not EXPECT_NEAR: the contract is bit-identity.
      EXPECT_EQ(Sequential.Values[T][P], Pooled.Values[T][P])
          << Sequential.Targets[T] << " under " << Sequential.Policies[P];
  }
}

TEST(DriverParallelTest, PooledMeasureMatchesSequential) {
  Scenario S = Scenario::smallLow();
  const workload::WorkloadSet &Set = S.workloadSets()[0];
  PolicySet &Policies = PolicySet::instance();

  Driver Sequential(gridOptions(1));
  Driver Pooled(gridOptions(4));
  Measurement A = Sequential.measure("mg", Policies.factory("online"), S, &Set);
  Measurement B = Pooled.measure("mg", Policies.factory("online"), S, &Set);

  EXPECT_EQ(A.MeanTargetTime, B.MeanTargetTime);
  EXPECT_EQ(A.MeanWorkloadThroughput, B.MeanWorkloadThroughput);
  ASSERT_EQ(A.Runs.size(), B.Runs.size());
  for (size_t R = 0; R < A.Runs.size(); ++R) {
    EXPECT_EQ(A.Runs[R].TargetTime, B.Runs[R].TargetTime);
    EXPECT_EQ(A.Runs[R].WorkloadThroughput, B.Runs[R].WorkloadThroughput);
  }
}

TEST(DriverParallelTest, BaselineComputedOnceAcrossPolicies) {
  DriverOptions Options = gridOptions(2);
  Options.Seed = 0x7E57CACE; // Fresh keys: every baseline starts uncached.
  Driver D(Options);
  PolicySet &Policies = PolicySet::instance();
  Scenario S = Scenario::smallLow();
  size_t NumSets = S.workloadSets().size();
  ASSERT_GT(NumSets, 0u);

  BaselineCache &Cache = BaselineCache::instance();
  Cache.resetCounters();

  double First = D.speedup("cg", Policies.factory("online"), S);
  EXPECT_EQ(Cache.misses(), NumSets);
  EXPECT_EQ(Cache.hits(), 0u);

  // A second policy over the same cells must hit every baseline instead
  // of recomputing it.
  double Second = D.speedup("cg", Policies.factory("analytic"), S);
  EXPECT_EQ(Cache.misses(), NumSets);
  EXPECT_EQ(Cache.hits(), NumSets);

  EXPECT_GT(First, 0.0);
  EXPECT_GT(Second, 0.0);
}

TEST(DriverParallelTest, BatchDeduplicatesBaselineCells) {
  DriverOptions Options = gridOptions(2);
  Options.Seed = 0xDEDD0B; // Distinct from every other test's seed.
  Driver D(Options);
  Scenario S = Scenario::isolatedStatic();

  // The same baseline cell three times in one batch: one computation, one
  // shared result object.
  CellSpec Base;
  Base.Target = "cg";
  Base.Scen = &S;
  std::vector<CellSpec> Cells = {Base, Base, Base};

  BaselineCache &Cache = BaselineCache::instance();
  Cache.resetCounters();
  auto Results = D.measureCells(Cells);
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_EQ(Results[0].get(), Results[1].get());
  EXPECT_EQ(Results[0].get(), Results[2].get());
  EXPECT_EQ(Cache.misses(), 1u); // Duplicates alias within the batch.
}
