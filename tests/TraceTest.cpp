//===-- tests/TraceTest.cpp - Columnar trace tests ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The columnar binary trace format (DESIGN.md §13): write -> read round
// trips reproduce every column bit for bit, the CSV export post-pass is
// byte-identical to emitting the same rows through support's CsvWriter
// directly, and malformed inputs (truncation anywhere, corrupt magic /
// version / schema) surface the right support::Error instead of garbage.
//
//===----------------------------------------------------------------------===//

#include "trace/Columnar.h"
#include "trace/TickTrace.h"

#include "support/Csv.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

using namespace medley;
using namespace medley::trace;

namespace {

/// A deterministic trace with non-trivial doubles (fractions that do not
/// round-trip through short decimal strings, so any text-based detour in
/// the binary path would show).
TickTrace makeTrace(size_t Rows) {
  TickTrace T;
  T.reserve(Rows);
  for (size_t I = 0; I < Rows; ++I) {
    TracePoint P;
    P.Time = 0.1 * static_cast<double>(I + 1) + 1.0 / 3.0;
    P.AvailableCores = static_cast<unsigned>(8 + (I * 7) % 25);
    P.WorkloadThreads = static_cast<unsigned>((I * 3) % 17);
    P.TargetThreads = static_cast<unsigned>(1 + (I * 5) % 31);
    P.EnvNorm = 1.0 + std::sin(static_cast<double>(I)) * 0.75;
    T.append(P);
  }
  return T;
}

/// Serialises \p T into a string.
std::string toBytes(const TickTrace &T) {
  std::ostringstream OS(std::ios::binary);
  support::Error E = ColumnarWriter::write(T, OS);
  EXPECT_FALSE(E) << E.str();
  return OS.str();
}

/// Reads a trace back out of \p Bytes.
bool fromBytes(const std::string &Bytes, TickTrace &Out,
               support::Error *Err = nullptr) {
  std::istringstream IS(Bytes, std::ios::binary);
  return ColumnarReader::read(IS, Out, Err);
}

} // namespace

TEST(ColumnarTrace, RoundTripPreservesEveryColumn) {
  TickTrace T = makeTrace(257); // odd count exercises inter-column padding
  TickTrace Back;
  ASSERT_TRUE(fromBytes(toBytes(T), Back));
  EXPECT_TRUE(Back == T);
  ASSERT_EQ(Back.size(), 257u);
  // Spot-check a materialised row against the source.
  TracePoint P = Back[100];
  EXPECT_EQ(P.Time, T.times()[100]);
  EXPECT_EQ(P.AvailableCores, T.availableCores()[100]);
  EXPECT_EQ(P.EnvNorm, T.envNorms()[100]);
}

TEST(ColumnarTrace, RoundTripEmptyTrace) {
  TickTrace Empty;
  TickTrace Back = makeTrace(3); // pre-populated: read must replace it
  ASSERT_TRUE(fromBytes(toBytes(Empty), Back));
  EXPECT_TRUE(Back.empty());
}

TEST(ColumnarTrace, RoundTripThroughFile) {
  std::string Path = testing::TempDir() + "medley_trace_roundtrip.mtrc";
  TickTrace T = makeTrace(64);
  support::Error E = ColumnarWriter::writeFile(T, Path);
  ASSERT_FALSE(E) << E.str();
  TickTrace Back;
  ASSERT_TRUE(ColumnarReader::readFile(Path, Back, &E)) << E.str();
  EXPECT_TRUE(Back == T);
  std::remove(Path.c_str());
}

TEST(ColumnarTrace, CsvExportMatchesCsvWriterByteForByte) {
  TickTrace T = makeTrace(41);

  std::ostringstream Exported;
  exportCsv(T, Exported);

  // The golden: the same rows emitted through CsvWriter directly, the way
  // a per-tick CSV emitter would have produced them.
  std::ostringstream Golden;
  {
    CsvWriter W(Golden);
    W.writeRow({"time", "available_cores", "workload_threads",
                "target_threads", "env_norm"});
    for (size_t I = 0; I < T.size(); ++I)
      W.writeRow({formatDouble(T.times()[I], 6),
                  std::to_string(T.availableCores()[I]),
                  std::to_string(T.workloadThreads()[I]),
                  std::to_string(T.targetThreads()[I]),
                  formatDouble(T.envNorms()[I], 6)});
  }
  EXPECT_EQ(Exported.str(), Golden.str());
}

TEST(ColumnarTrace, CsvExportSurvivesExportedRoundTrip) {
  // Record binary, read back, export: the post-pass pipeline end to end.
  TickTrace T = makeTrace(16);
  TickTrace Back;
  ASSERT_TRUE(fromBytes(toBytes(T), Back));
  std::ostringstream A, B;
  exportCsv(T, A);
  exportCsv(Back, B);
  EXPECT_EQ(A.str(), B.str());
}

TEST(ColumnarTrace, TruncatedHeaderIsTruncatedInput) {
  std::string Bytes = toBytes(makeTrace(8));
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes.substr(0, 10), Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::TruncatedInput);
}

TEST(ColumnarTrace, TruncatedDescriptorsIsTruncatedInput) {
  std::string Bytes = toBytes(makeTrace(8));
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes.substr(0, 40), Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::TruncatedInput);
}

TEST(ColumnarTrace, TruncatedPayloadIsTruncatedInput) {
  std::string Bytes = toBytes(makeTrace(8));
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes.substr(0, Bytes.size() - 4), Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::TruncatedInput);
}

TEST(ColumnarTrace, BadMagicIsCorruptInput) {
  std::string Bytes = toBytes(makeTrace(4));
  Bytes[0] = 'X';
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes, Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::CorruptInput);
}

TEST(ColumnarTrace, UnsupportedVersionIsCorruptInput) {
  std::string Bytes = toBytes(makeTrace(4));
  Bytes[8] = 9; // version field
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes, Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::CorruptInput);
}

TEST(ColumnarTrace, CorruptColumnNameIsCorruptInput) {
  std::string Bytes = toBytes(makeTrace(4));
  Bytes[32] = 'z'; // first byte of the first column descriptor's name
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(fromBytes(Bytes, Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::CorruptInput);
}

TEST(ColumnarTrace, MissingFileIsIoFailure) {
  TickTrace Out;
  support::Error Err;
  EXPECT_FALSE(ColumnarReader::readFile(
      testing::TempDir() + "medley_trace_does_not_exist.mtrc", Out, &Err));
  EXPECT_EQ(Err.code(), support::ErrorCode::IoFailure);
}
