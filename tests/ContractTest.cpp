//===-- tests/ContractTest.cpp - cross-cutting contracts and properties ---------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contracts every policy must honour regardless of implementation, and
/// consistency properties tying the oracle's analytic model to the live
/// simulation. Parameterised over all policies / programs so regressions
/// in any one implementation are caught by the same suite.
///
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "exp/PolicySet.h"
#include "runtime/CoExecution.h"
#include "workload/Catalog.h"
#include "workload/WorkloadSets.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace medley;

namespace {

runtime::CoExecutionConfig dynamicConfig() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [] {
    return sim::PeriodicAvailability::standardLadder(32, 12.0, 0xC0);
  };
  Config.WorkloadSeed = 0xC0;
  Config.WorkloadMaxThreads = 10;
  Config.MaxTime = 900.0;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Policy contracts: every policy, same dynamic run.
//===----------------------------------------------------------------------===//

class PolicyContractTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PolicyContractTest, DecisionsAreValidAndTargetFinishes) {
  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto Policy = Policies.factory(GetParam())();
  runtime::CoExecutionResult Result = runCoExecution(
      dynamicConfig(), workload::Catalog::byName("lu"), *Policy,
      runtime::patternWorkload({"cg", "ft"}));

  EXPECT_TRUE(Result.TargetFinished) << GetParam();
  ASSERT_FALSE(Result.TargetDecisions.empty());
  for (const runtime::Decision &D : Result.TargetDecisions) {
    EXPECT_GE(D.Threads, 1u) << GetParam();
    EXPECT_LE(D.Threads, 32u) << GetParam();
    EXPECT_GE(D.EnvNorm, 0.0) << GetParam();
  }
  // Decision timestamps are non-decreasing.
  for (size_t I = 1; I < Result.TargetDecisions.size(); ++I)
    EXPECT_GE(Result.TargetDecisions[I].Time,
              Result.TargetDecisions[I - 1].Time);
}

TEST_P(PolicyContractTest, DeterministicAcrossRuns) {
  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto P1 = Policies.factory(GetParam())();
  auto P2 = Policies.factory(GetParam())();
  double T1 = runCoExecution(dynamicConfig(),
                             workload::Catalog::byName("mg"), *P1,
                             runtime::patternWorkload({"is"}))
                  .TargetTime;
  double T2 = runCoExecution(dynamicConfig(),
                             workload::Catalog::byName("mg"), *P2,
                             runtime::patternWorkload({"is"}))
                  .TargetTime;
  EXPECT_DOUBLE_EQ(T1, T2) << GetParam();
}

TEST_P(PolicyContractTest, ResetMakesInstancesReusable) {
  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto Policy = Policies.factory(GetParam())();
  double First = runCoExecution(dynamicConfig(),
                                workload::Catalog::byName("cg"), *Policy,
                                runtime::patternWorkload({"lu"}))
                     .TargetTime;
  Policy->reset();
  double Second = runCoExecution(dynamicConfig(),
                                 workload::Catalog::byName("cg"), *Policy,
                                 runtime::patternWorkload({"lu"}))
                      .TargetTime;
  EXPECT_DOUBLE_EQ(First, Second) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyContractTest,
                         ::testing::Values("default", "online", "offline",
                                           "analytic", "mixture"));

//===----------------------------------------------------------------------===//
// Oracle vs live simulation consistency.
//===----------------------------------------------------------------------===//

/// Property: the oracle's predicted rate for a frozen environment matches
/// what the simulator actually delivers for a single program running at a
/// fixed thread count with a constant co-runner.
class OracleConsistencyTest
    : public ::testing::TestWithParam<std::tuple<const char *, unsigned>> {};

TEST_P(OracleConsistencyTest, PredictedRateMatchesSimulatedRate) {
  auto [Name, Threads] = GetParam();
  const workload::ProgramSpec &Spec = workload::Catalog::byName(Name);
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();

  // A constant synthetic co-runner: fixed threads, fixed memory demand.
  const unsigned CoThreads = 20;
  workload::ProgramSpec CoSpec = workload::Catalog::byName("swim");

  sim::Simulation Simulation(
      Machine, std::make_unique<sim::StaticAvailability>(32), 0.1);
  auto CoRunner = std::make_shared<workload::Program>(
      CoSpec, workload::fixedChooser(CoThreads), 32, /*Looping=*/true);
  auto Target = std::make_shared<workload::Program>(
      Spec, workload::fixedChooser(Threads), 32, /*Looping=*/true);
  Simulation.addTask(CoRunner);
  Simulation.addTask(Target);

  // Warm up, then measure the target's aggregate work rate over a window.
  Simulation.runUntil([] { return false; }, 10.0);
  double WorkBefore = Target->workCompleted();
  Simulation.runUntil([] { return false; }, 40.0);
  double MeasuredRate = (Target->workCompleted() - WorkBefore) / 30.0;

  // The oracle's prediction: work-weighted rate over the three regions,
  // using the co-runner's true thread count and memory demand. The
  // co-runner's demand varies by its current region; bound it instead of
  // pinning it.
  double TotalWork = 0.0, TotalTime = 0.0;
  for (const workload::RegionSpec &R : Spec.Regions) {
    core::OracleEnv Env;
    Env.AvailableCores = 32;
    Env.ExternalThreads = CoThreads;
    Env.ExternalMemDemand = CoThreads * 0.7; // Mid-range swim demand.
    double Rate = core::oracleRegionRate(R, Threads, Env, Machine);
    TotalWork += R.Work;
    TotalTime += R.Work / Rate;
  }
  double PredictedRate = TotalWork / TotalTime;

  // Region interleaving between the two programs makes the environment
  // breathe, so allow a generous band — the point is that the oracle is
  // the right model, not an unrelated formula.
  EXPECT_GT(MeasuredRate, 0.55 * PredictedRate)
      << Name << " at " << Threads << " threads";
  EXPECT_LT(MeasuredRate, 1.8 * PredictedRate)
      << Name << " at " << Threads << " threads";
}

INSTANTIATE_TEST_SUITE_P(
    ProgramsAndThreads, OracleConsistencyTest,
    ::testing::Combine(::testing::Values("lu", "cg", "ep", "ft"),
                       ::testing::Values(4u, 12u, 24u)));

//===----------------------------------------------------------------------===//
// Fatal-error paths.
//===----------------------------------------------------------------------===//

TEST(FatalErrorTest, UnknownProgramAborts) {
  EXPECT_DEATH(workload::Catalog::byName("no-such-program"),
               "unknown program");
}

TEST(FatalErrorTest, UnknownWorkloadSizeAborts) {
  EXPECT_DEATH(workload::workloadsBySize("gigantic"),
               "unknown workload size");
}

TEST(FatalErrorTest, UnknownPolicyAborts) {
  EXPECT_DEATH(exp::PolicySet::instance().factory("clairvoyant"),
               "unknown policy");
}

TEST(FatalErrorTest, UnsupportedExpertCountAborts) {
  core::TrainingConfig Config;
  Config.Programs = {"cg", "ep"};
  Config.Platforms = {sim::MachineConfig::evaluationPlatform()};
  Config.SplitPlatformIndex = 0;
  Config.RunDuration = 5.0;
  core::ExpertBuilder Builder(Config);
  EXPECT_DEATH(Builder.build(3), "unsupported expert count");
}

TEST(FatalErrorTest, BadSubsampleFractionAborts) {
  core::TrainingConfig Config;
  Config.Programs = {"cg", "ep"};
  Config.Platforms = {sim::MachineConfig::evaluationPlatform()};
  Config.SplitPlatformIndex = 0;
  Config.RunDuration = 5.0;
  core::ExpertBuilder Builder(Config);
  EXPECT_DEATH(Builder.buildSubsampled(2, 0.0), "fraction");
}
