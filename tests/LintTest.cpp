//===-- tests/LintTest.cpp - medley-lint rule & CLI tests ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each rule family is exercised on a known-bad fixture (must fire) and
/// a known-good one (must stay quiet); the allow-annotation and baseline
/// escape hatches round-trip; and the CLI's exit-code contract
/// (0 clean, 1 findings, 2 usage error) is checked end to end against
/// the real binary.
///
//===----------------------------------------------------------------------===//

#include "medley-lint/Lint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/wait.h>

using namespace medley::lint;

namespace {

/// Lints \p Source as if it lived at src/core/Fixture.cpp.
std::vector<Finding> lintAsSrc(const std::string &Source) {
  return lintSource("src/core/Fixture.cpp", Source, FileKind::Src);
}

/// The rule names present in \p Findings, joined for diagnostics.
std::string rulesOf(const std::vector<Finding> &Findings) {
  std::string Out;
  for (const Finding &F : Findings)
    Out += F.Rule + ";";
  return Out;
}

bool hasRule(const std::vector<Finding> &Findings, const std::string &Rule) {
  for (const Finding &F : Findings)
    if (F.Rule == Rule)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LintLexerTest, TracksLinesAndColumns) {
  LexedFile L = lex("int a;\n  foo(1.5);\n");
  ASSERT_GE(L.Tokens.size(), 7u);
  EXPECT_EQ(L.Tokens[0].Text, "int");
  EXPECT_EQ(L.Tokens[0].Line, 1u);
  EXPECT_EQ(L.Tokens[3].Text, "foo");
  EXPECT_EQ(L.Tokens[3].Line, 2u);
  EXPECT_EQ(L.Tokens[3].Col, 3u);
  EXPECT_EQ(L.Tokens[5].Text, "1.5");
  EXPECT_EQ(L.Tokens[5].K, Token::Number);
}

TEST(LintLexerTest, BannedNamesInsideStringsAndCommentsAreNotTokens) {
  // "rand(" in a string literal or comment must not produce Ident
  // tokens, or every log message would trip the lint.
  LexedFile L = lex("auto S = \"rand() time()\"; // rand() here too\n"
                    "/* std::rand() */ int X;\n");
  for (const Token &T : L.Tokens)
    if (T.K == Token::Ident) {
      EXPECT_NE(T.Text, "rand");
    }
}

TEST(LintLexerTest, RawStringsAreOpaque) {
  LexedFile L = lex("auto S = R\"(srand(1) random_device)\"; int Y;\n");
  for (const Token &T : L.Tokens)
    if (T.K == Token::Ident) {
      EXPECT_NE(T.Text, "srand");
      EXPECT_NE(T.Text, "random_device");
    }
}

TEST(LintLexerTest, AllowAnnotationsParse) {
  LexedFile L = lex("int A; // medley-lint: allow(float-equality)\n"
                    "// medley-lint: allow(nondeterminism, raw-concurrency)\n"
                    "int B;\n");
  ASSERT_TRUE(L.AllowedByLine.count(1));
  EXPECT_TRUE(L.AllowedByLine[1].count("float-equality"));
  ASSERT_TRUE(L.AllowedByLine.count(2));
  EXPECT_TRUE(L.AllowedByLine[2].count("nondeterminism"));
  EXPECT_TRUE(L.AllowedByLine[2].count("raw-concurrency"));
}

//===----------------------------------------------------------------------===//
// Path classification
//===----------------------------------------------------------------------===//

TEST(LintPathTest, ClassifiesTreePositions) {
  EXPECT_EQ(classifyPath("src/core/Expert.cpp"), FileKind::Src);
  EXPECT_EQ(classifyPath("/abs/repo/src/exp/Driver.cpp"), FileKind::Src);
  EXPECT_EQ(classifyPath("src/support/ThreadPool.cpp"), FileKind::SrcSupport);
  EXPECT_EQ(classifyPath("apps/medley.cpp"), FileKind::Apps);
  EXPECT_EQ(classifyPath("bench/bench_fig08_summary.cpp"), FileKind::Bench);
  EXPECT_EQ(classifyPath("tests/CoreTest.cpp"), FileKind::Tests);
  EXPECT_EQ(classifyPath("docs/example.cpp"), FileKind::Other);
}

//===----------------------------------------------------------------------===//
// L1: nondeterminism
//===----------------------------------------------------------------------===//

TEST(LintNondeterminismTest, FiresOnEachBannedSource) {
  const char *Bad[] = {
      "int f() { return std::rand(); }",
      "int f() { return rand(); }",
      "void f() { srand(42); }",
      "long f() { return time(nullptr); }",
      "auto f() { return std::chrono::system_clock::now(); }",
      "auto f() { return std::chrono::steady_clock::now(); }",
      "auto f() { return std::chrono::high_resolution_clock::now(); }",
      "unsigned f() { std::random_device D; return D(); }",
  };
  for (const char *Source : Bad) {
    auto Findings = lintAsSrc(Source);
    EXPECT_TRUE(hasRule(Findings, "nondeterminism"))
        << "expected a finding for: " << Source;
  }
}

TEST(LintNondeterminismTest, QuietOnSeededRngAndLookalikes) {
  const char *Good[] = {
      "double f(Rng &R) { return R.uniform(0.0, 1.0); }",
      "double f(const Trace &T) { return T.time(); }",   // member named time
      "int f() { return mylib::rand(); }",               // other namespace
      "double sleepTime(int N) { return N * 0.5; }",     // suffix lookalike
      "using Clock = std::chrono::steady_clock;",        // alias, no read
  };
  for (const char *Source : Good) {
    auto Findings = lintAsSrc(Source);
    EXPECT_FALSE(hasRule(Findings, "nondeterminism"))
        << "unexpected finding " << rulesOf(Findings) << " for: " << Source;
  }
}

TEST(LintNondeterminismTest, OnlyAppliesUnderSrc) {
  std::string Source = "auto f() { return std::chrono::steady_clock::now(); }";
  EXPECT_TRUE(hasRule(lintAsSrc(Source), "nondeterminism"));
  EXPECT_FALSE(hasRule(
      lintSource("bench/bench_x.cpp", Source, FileKind::Bench),
      "nondeterminism"));
  EXPECT_FALSE(hasRule(lintSource("tests/XTest.cpp", Source, FileKind::Tests),
                       "nondeterminism"));
}

//===----------------------------------------------------------------------===//
// L2: unordered-reduction
//===----------------------------------------------------------------------===//

TEST(LintUnorderedReductionTest, FiresOnRangeForAccumulation) {
  auto Findings = lintAsSrc(
      "double total(const std::unordered_map<std::string, double> &M) {\n"
      "  double Sum = 0;\n"
      "  for (const auto &[K, V] : M)\n"
      "    Sum += V;\n"
      "  return Sum;\n"
      "}\n");
  EXPECT_TRUE(hasRule(Findings, "unordered-reduction"));
}

TEST(LintUnorderedReductionTest, FiresOnIteratorLoopPushBack) {
  auto Findings = lintAsSrc(
      "std::vector<int> keys(const std::unordered_set<int> &S) {\n"
      "  std::vector<int> Out;\n"
      "  for (auto It = S.begin(); It != S.end(); ++It)\n"
      "    Out.push_back(*It);\n"
      "  return Out;\n"
      "}\n");
  EXPECT_TRUE(hasRule(Findings, "unordered-reduction"));
}

TEST(LintUnorderedReductionTest, QuietOnOrderedMapAndNonReductions) {
  const char *Good[] = {
      // Ordered container: iteration order is the key order.
      "double total(const std::map<std::string, double> &M) {\n"
      "  double Sum = 0;\n"
      "  for (const auto &[K, V] : M) Sum += V;\n"
      "  return Sum;\n}\n",
      // Unordered, but the body only reads.
      "bool anyNeg(const std::unordered_map<int, int> &M) {\n"
      "  for (const auto &[K, V] : M) if (V < 0) return true;\n"
      "  return false;\n}\n",
      // Counting loop over a vector that merely checks size.
      "int f(const std::vector<int> &V) {\n"
      "  int N = 0;\n"
      "  for (size_t I = 0; I < V.size(); ++I) N += V[I];\n"
      "  return N;\n}\n",
  };
  for (const char *Source : Good) {
    auto Findings = lintAsSrc(Source);
    EXPECT_FALSE(hasRule(Findings, "unordered-reduction"))
        << "unexpected finding for: " << Source;
  }
}

//===----------------------------------------------------------------------===//
// L3: raw-concurrency
//===----------------------------------------------------------------------===//

TEST(LintRawConcurrencyTest, FiresOnThreadDetachAndRawLock) {
  const char *Bad[] = {
      "void f() { std::thread T([] {}); T.join(); }",
      "void f(std::thread &T) { T.detach(); }",
      "void f(std::mutex &M) { M.lock(); }",
  };
  for (const char *Source : Bad) {
    auto Findings = lintAsSrc(Source);
    EXPECT_TRUE(hasRule(Findings, "raw-concurrency"))
        << "expected a finding for: " << Source;
  }
}

TEST(LintRawConcurrencyTest, QuietOnPoolQueriesAndGuards) {
  const char *Good[] = {
      "unsigned f() { return std::thread::hardware_concurrency(); }",
      "void f(std::mutex &M) { std::lock_guard<std::mutex> G(M); }",
      "void f(support::ThreadPool &P) { P.parallelFor(8, [](size_t) {}); }",
  };
  for (const char *Source : Good) {
    auto Findings = lintAsSrc(Source);
    EXPECT_FALSE(hasRule(Findings, "raw-concurrency"))
        << "unexpected finding " << rulesOf(Findings) << " for: " << Source;
  }
}

TEST(LintRawConcurrencyTest, SupportTreeIsExempt) {
  std::string Source = "void f() { std::thread T([] {}); T.join(); }";
  EXPECT_TRUE(hasRule(lintAsSrc(Source), "raw-concurrency"));
  EXPECT_FALSE(hasRule(lintSource("src/support/ThreadPool.cpp", Source,
                                  FileKind::SrcSupport),
                       "raw-concurrency"));
}

//===----------------------------------------------------------------------===//
// L4: float-equality
//===----------------------------------------------------------------------===//

TEST(LintFloatEqualityTest, FiresOnLiteralComparisons) {
  const char *Bad[] = {
      "bool f(double X) { return X == 1.0; }",
      "bool f(double X) { return 0.5 != X; }",
      "bool f(double X) { return X == -2.5; }",
      "bool f(double X) { return X == 1e-6; }",
  };
  for (const char *Source : Bad) {
    auto Findings = lintAsSrc(Source);
    EXPECT_TRUE(hasRule(Findings, "float-equality"))
        << "expected a finding for: " << Source;
  }
}

TEST(LintFloatEqualityTest, QuietOnIntegersToleranceAndAssertions) {
  const char *Good[] = {
      "bool f(int X) { return X == 1; }",
      "bool f(unsigned X) { return X == 0x10; }",
      "bool f(double X) { return std::abs(X - 1.0) < 1e-9; }",
      "void t(double X) { EXPECT_EQ(X, 1.0); }",
      "void t(double X) { ASSERT_TRUE(X == 1.0); }",
      "void t(double X) { EXPECT_TRUE(near(X == 1.0 ? X : 0.0, 0.0)); }",
  };
  for (const char *Source : Good) {
    auto Findings =
        lintSource("tests/XTest.cpp", Source, FileKind::Tests);
    EXPECT_FALSE(hasRule(Findings, "float-equality"))
        << "unexpected finding for: " << Source;
  }
}

TEST(LintFloatEqualityTest, BareComparisonStillFiresInTests) {
  auto Findings = lintSource("tests/XTest.cpp",
                             "bool f(double X) { return X == 1.0; }",
                             FileKind::Tests);
  EXPECT_TRUE(hasRule(Findings, "float-equality"));
}

//===----------------------------------------------------------------------===//
// L5: error-check
//===----------------------------------------------------------------------===//

TEST(LintErrorCheckTest, FiresOnIgnoredOutParam) {
  auto Findings = lintAsSrc(
      "std::optional<int> load(const std::string &Path, Error *Err) {\n"
      "  if (Path.empty())\n"
      "    return std::nullopt;\n"
      "  return 42;\n"
      "}\n");
  EXPECT_TRUE(hasRule(Findings, "error-check"));
}

TEST(LintErrorCheckTest, QuietWhenParamIsUsedOrDeclarationOnly) {
  const char *Good[] = {
      // Forwarded to the reporting helper.
      "std::optional<int> load(const std::string &P, Error *Err) {\n"
      "  reportError(Err, ErrorCode::IoFailure, \"cannot open\");\n"
      "  return std::nullopt;\n}\n",
      // Assigned directly.
      "bool f(support::Error *Err) {\n"
      "  if (Err) *Err = Error(ErrorCode::CorruptInput, \"bad\");\n"
      "  return false;\n}\n",
      // Declaration: no body to check.
      "std::optional<int> load(const std::string &Path, Error *Err = nullptr);",
      // Out-param with an unrelated name is outside the heuristic.
      "void g(Error *Sink) { (void)0; }",
  };
  for (const char *Source : Good) {
    auto Findings = lintAsSrc(Source);
    EXPECT_FALSE(hasRule(Findings, "error-check"))
        << "unexpected finding for: " << Source;
  }
}

//===----------------------------------------------------------------------===//
// Allow annotations
//===----------------------------------------------------------------------===//

TEST(LintAllowTest, SameLineAndLineAboveSuppress) {
  EXPECT_TRUE(lintAsSrc("bool f(double X) { return X == 1.0; } "
                        "// medley-lint: allow(float-equality)\n")
                  .empty());
  EXPECT_TRUE(lintAsSrc("// medley-lint: allow(float-equality)\n"
                        "bool f(double X) { return X == 1.0; }\n")
                  .empty());
}

TEST(LintAllowTest, WrongRuleDoesNotSuppress) {
  auto Findings = lintAsSrc("bool f(double X) { return X == 1.0; } "
                            "// medley-lint: allow(nondeterminism)\n");
  EXPECT_TRUE(hasRule(Findings, "float-equality"));
}

TEST(LintAllowTest, AllSuppressesEverything) {
  EXPECT_TRUE(lintAsSrc("// medley-lint: allow(all)\n"
                        "int f() { return std::rand(); }\n")
                  .empty());
}

TEST(LintAllowTest, DoesNotLeakPastTheNextLine) {
  auto Findings = lintAsSrc("// medley-lint: allow(float-equality)\n"
                            "int A;\n"
                            "bool f(double X) { return X == 1.0; }\n");
  EXPECT_TRUE(hasRule(Findings, "float-equality"));
}

//===----------------------------------------------------------------------===//
// L6: hotpath-alloc
//===----------------------------------------------------------------------===//

TEST(LintHotpathAllocTest, FiresOnValueReturningLinalgCalls) {
  auto Findings = lintAsSrc("void f(const Vec &A, const Vec &B) {\n"
                            "  Vec S = add(A, B);\n"
                            "  Vec D = sub(A, B);\n"
                            "  Vec H = hadamard(A, scale(B, 2.0));\n"
                            "  return medley::add(A, B);\n"
                            "}\n");
  size_t Hits = 0;
  for (const Finding &F : Findings)
    if (F.Rule == "hotpath-alloc")
      ++Hits;
  EXPECT_EQ(Hits, 5u) << rulesOf(Findings);
}

TEST(LintHotpathAllocTest, QuietOnMembersDeclarationsAndKernels) {
  auto Findings = lintAsSrc(
      "Vec add(const Vec &A, const Vec &B);\n"       // declaration
      "void g(Dataset &D, const Vec &X, Vec &Out) {\n"
      "  D.add(X, 1.0);\n"                           // member call
      "  Stats->Histogram.add(3);\n"                 // member call
      "  addInto(X, X, Out);\n"                      // the kernel itself
      "  std::add(X);\n"                             // foreign namespace
      "}\n");
  EXPECT_FALSE(hasRule(Findings, "hotpath-alloc")) << rulesOf(Findings);
}

TEST(LintHotpathAllocTest, OnlyAppliesToHotPathFiles) {
  std::string Source = "void f(const Vec &A) { Vec S = add(A, A); }\n";
  EXPECT_TRUE(hasRule(
      lintSource("src/core/ExpertSelector.cpp", Source, FileKind::Src),
      "hotpath-alloc"));
  EXPECT_TRUE(hasRule(
      lintSource("src/policy/Features.cpp", Source, FileKind::Src),
      "hotpath-alloc"));
  EXPECT_TRUE(hasRule(
      lintSource("src/sim/Simulation.cpp", Source, FileKind::Src),
      "hotpath-alloc"));
  // Off the hot path the value-returning helpers are fine: training code
  // in src/ml and the linalg library itself are not per-decision.
  EXPECT_FALSE(hasRule(
      lintSource("src/ml/LinearModel.cpp", Source, FileKind::Src),
      "hotpath-alloc"));
  EXPECT_FALSE(hasRule(
      lintSource("src/linalg/Vector.cpp", Source, FileKind::Src),
      "hotpath-alloc"));
  EXPECT_FALSE(hasRule(
      lintSource("tests/CoreTest.cpp", Source, FileKind::Tests),
      "hotpath-alloc"));
}

TEST(LintHotpathAllocTest, AllowAnnotationSuppresses) {
  auto Findings =
      lintAsSrc("void f(const Vec &A) {\n"
                "  // medley-lint: allow(hotpath-alloc)\n"
                "  Vec S = add(A, A);\n"
                "}\n");
  EXPECT_FALSE(hasRule(Findings, "hotpath-alloc")) << rulesOf(Findings);
}

//===----------------------------------------------------------------------===//
// Diagnostics, baseline, JSON
//===----------------------------------------------------------------------===//

TEST(LintReportTest, TextFormatIsGccStyle) {
  auto Findings = lintAsSrc("bool f(double X) { return X == 1.0; }\n");
  ASSERT_EQ(Findings.size(), 1u);
  std::string Text = renderText(Findings[0]);
  EXPECT_EQ(Text.rfind("src/core/Fixture.cpp:1:", 0), 0u) << Text;
  EXPECT_NE(Text.find("[float-equality]"), std::string::npos) << Text;
}

TEST(LintReportTest, FindingsAreSortedByPosition) {
  auto Findings = lintAsSrc("bool g(double X) { return X == 2.0; }\n"
                            "int h() { return std::rand(); }\n"
                            "bool i(double X) { return X != 3.0; }\n");
  ASSERT_EQ(Findings.size(), 3u);
  EXPECT_LT(Findings[0].Line, Findings[1].Line);
  EXPECT_LT(Findings[1].Line, Findings[2].Line);
}

TEST(LintBaselineTest, RoundTripSuppressesExactlyOnce) {
  std::string Source = "bool f(double X) { return X == 1.0; }\n"
                       "bool g(double X) { return X == 1.0; }\n";
  auto Findings = lintAsSrc(Source);
  ASSERT_EQ(Findings.size(), 2u);

  // A full baseline silences the file...
  auto Lines = renderBaseline(Findings);
  EXPECT_TRUE(applyBaseline(Findings, Lines).empty());

  // ...and one entry forgives exactly one of two identical findings.
  // (Both source lines differ here, so drop one suppression.)
  Lines.pop_back();
  EXPECT_EQ(applyBaseline(Findings, Lines).size(), 1u);
}

TEST(LintBaselineTest, SurvivesLineNumberDrift) {
  auto Before = lintAsSrc("bool f(double X) { return X == 1.0; }\n");
  auto Lines = renderBaseline(Before);
  // The same finding two lines further down still matches: the key is
  // the source text, not the position.
  auto After = lintAsSrc("int A;\nint B;\n"
                         "bool f(double X) { return X == 1.0; }\n");
  EXPECT_TRUE(applyBaseline(After, Lines).empty());
}

TEST(LintBaselineTest, CommentsAndBlanksIgnored) {
  auto Findings = lintAsSrc("bool f(double X) { return X == 1.0; }\n");
  EXPECT_EQ(applyBaseline(Findings, {"# comment", "", "  "}).size(), 1u);
}

TEST(LintReportTest, JsonIsStableAndComplete) {
  auto Findings = lintAsSrc("bool f(double X) { return X == 1.0; }\n"
                            "int g() { return std::rand(); }\n");
  std::string Json = renderJson(Findings);
  EXPECT_EQ(Json, renderJson(Findings)); // deterministic
  EXPECT_NE(Json.find("\"float-equality\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"nondeterminism\": 1"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"total\": 2"), std::string::npos) << Json;
  EXPECT_EQ(renderJson({}).find("\"total\": 0") == std::string::npos, false);
}

//===----------------------------------------------------------------------===//
// CLI exit codes (drives the real binary)
//===----------------------------------------------------------------------===//

#ifdef MEDLEY_LINT_BIN

namespace {

/// Runs the medley-lint binary and returns its exit status (-1 when the
/// shell invocation itself failed).
int runLint(const std::string &Args) {
  std::string Cmd = std::string(MEDLEY_LINT_BIN) + " " + Args +
                    " > /dev/null 2> /dev/null";
  int Status = std::system(Cmd.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

/// A scratch tree under the gtest temp dir with one good and one bad
/// source file laid out like the real repo.
class LintCliTest : public ::testing::Test {
protected:
  void SetUp() override {
    // One scratch tree per test case: ctest -j runs each case as its
    // own process, so a shared directory would race.
    const auto *Info = ::testing::UnitTest::GetInstance()->current_test_info();
    Dir = std::filesystem::path(::testing::TempDir()) /
          (std::string("medley_lint_cli_") + Info->name());
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir / "src" / "core");
    write("src/core/Good.cpp",
          "int add(int A, int B) { return A + B; }\n");
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }

  void write(const std::string &Rel, const std::string &Contents) {
    std::ofstream Out(Dir / Rel);
    Out << Contents;
  }

  std::string path(const std::string &Rel = "") const {
    return (Dir / Rel).string();
  }

  std::filesystem::path Dir;
};

} // namespace

TEST_F(LintCliTest, ExitsZeroOnCleanTree) {
  EXPECT_EQ(runLint(path("src")), 0);
}

TEST_F(LintCliTest, ExitsOneOnFindings) {
  write("src/core/Bad.cpp", "int f() { return std::rand(); }\n");
  EXPECT_EQ(runLint(path("src")), 1);
}

TEST_F(LintCliTest, ExitsTwoOnUsageErrors) {
  EXPECT_EQ(runLint(""), 2);                        // no paths
  EXPECT_EQ(runLint("--frobnicate " + path("src")), 2); // unknown flag
  EXPECT_EQ(runLint(path("no/such/dir")), 2);       // missing path
  EXPECT_EQ(runLint("--baseline " + path("missing.txt") + " " + path("src")),
            2); // unreadable baseline
}

TEST_F(LintCliTest, BaselineRoundTripThroughFiles) {
  write("src/core/Bad.cpp", "int f() { return std::rand(); }\n");
  std::string Baseline = path("baseline.txt");
  // Write the baseline (still exits 1: the findings exist)...
  EXPECT_EQ(runLint("--write-baseline " + Baseline + " " + path("src")), 1);
  // ...then a run against it is clean,
  EXPECT_EQ(runLint("--baseline " + Baseline + " " + path("src")), 0);
  // and a *new* finding still fails against the old baseline.
  write("src/core/Worse.cpp", "void g() { srand(7); }\n");
  EXPECT_EQ(runLint("--baseline " + Baseline + " " + path("src")), 1);
}

TEST_F(LintCliTest, WritesJsonReport) {
  write("src/core/Bad.cpp", "int f() { return std::rand(); }\n");
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--json " + Json + " " + path("src")), 1);
  std::ifstream In(Json);
  ASSERT_TRUE(In.good());
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("\"nondeterminism\""), std::string::npos);
}

TEST_F(LintCliTest, RootStripsPathPrefix) {
  write("src/core/Bad.cpp", "int f() { return std::rand(); }\n");
  std::string Json = path("report.json");
  EXPECT_EQ(runLint("--root " + path() + " --json " + Json + " " + path("src")),
            1);
  std::ifstream In(Json);
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("\"src/core/Bad.cpp\""), std::string::npos)
      << Contents;
}

#endif // MEDLEY_LINT_BIN
