//===-- tests/FleetTest.cpp - Fleet engine determinism / chaos tests ----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The fleet suite (DESIGN.md §16): the sharded engine's deterministic
// half — per-shard stats, decision counts and checksums, and the
// two-level reduction — must be bit-identical at any worker count, any
// shard→slot plan, and with decision memoization on or off; unplug
// storms and sensor dropout confined to a leading subset of shards must
// leave every healthy shard's results untouched. Plus unit coverage of
// the fixed-bucket latency histogram the engine records into. Runs under
// the `chaos` ctest label (`make chaos`), clean under ASan/TSan.
//
//===----------------------------------------------------------------------===//

#include "exp/Fleet.h"
#include "exp/PolicySet.h"
#include "runtime/CoExecution.h"
#include "sim/AvailabilityPattern.h"
#include "support/Histogram.h"
#include "workload/Catalog.h"

#include <gtest/gtest.h>

#include <vector>

using namespace medley;
using namespace medley::exp;
using support::LatencyHistogram;

namespace {

/// A fleet small enough for a unit test but big enough that every moving
/// part engages: multiple shards per slot, churn with migration, bursts,
/// and (where enabled) storms on a strict prefix of the shards.
FleetScenarioConfig smallFleet() {
  FleetScenarioConfig Config;
  Config.Shards = 4;
  Config.Tenants = 1200;
  Config.Rounds = 3;
  Config.TicksPerRound = 10;
  Config.ChurnRate = 0.02;
  Config.BurstEvery = 2;
  Config.Seed = 0xF1EE7;
  return Config;
}

/// The deterministic half of two results must match bit for bit; the
/// wall-clock half (latency, rates) is intentionally not compared.
void expectDeterministicHalvesEqual(const FleetResult &A,
                                    const FleetResult &B,
                                    const std::string &What) {
  EXPECT_EQ(A.Stats.Checksum, B.Stats.Checksum) << What;
  EXPECT_EQ(A.DecisionChecksum, B.DecisionChecksum) << What;
  EXPECT_EQ(A.DecisionsTotal, B.DecisionsTotal) << What;
  ASSERT_EQ(A.Stats.Shards.size(), B.Stats.Shards.size()) << What;
  ASSERT_EQ(A.Decisions.size(), B.Decisions.size()) << What;
  for (size_t S = 0; S < A.Stats.Shards.size(); ++S) {
    const sim::FleetShardStats &SA = A.Stats.Shards[S];
    const sim::FleetShardStats &SB = B.Stats.Shards[S];
    EXPECT_EQ(SA.Ticks, SB.Ticks) << What << " shard " << S;
    EXPECT_EQ(SA.ArrivalsDelivered, SB.ArrivalsDelivered)
        << What << " shard " << S;
    EXPECT_EQ(SA.DeparturesSent, SB.DeparturesSent) << What << " shard " << S;
    EXPECT_EQ(SA.TasksAlive, SB.TasksAlive) << What << " shard " << S;
    EXPECT_EQ(SA.RunnableThreads, SB.RunnableThreads)
        << What << " shard " << S;
    EXPECT_EQ(A.Decisions[S].Count, B.Decisions[S].Count)
        << What << " shard " << S;
    EXPECT_EQ(A.Decisions[S].Checksum, B.Decisions[S].Checksum)
        << What << " shard " << S;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// LatencyHistogram: buckets, percentiles, merge, saturation
//===----------------------------------------------------------------------===//

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndEdgesRoundTrip) {
  // Indices never decrease as values grow, and every bucket's inclusive
  // upper edge maps back into that bucket.
  size_t Prev = 0;
  for (uint64_t Ns = 0; Ns < 4096; ++Ns) {
    size_t Index = LatencyHistogram::bucketIndex(Ns);
    EXPECT_GE(Index, Prev) << Ns;
    Prev = Index;
  }
  uint64_t PrevEdge = 0;
  for (size_t I = 0; I + 1 < LatencyHistogram::NumBuckets; ++I) {
    uint64_t Edge = LatencyHistogram::bucketUpperEdge(I);
    EXPECT_EQ(LatencyHistogram::bucketIndex(Edge), I);
    EXPECT_EQ(LatencyHistogram::bucketIndex(Edge + 1), I + 1);
    if (I > 0) {
      EXPECT_GT(Edge, PrevEdge) << I;
    }
    PrevEdge = Edge;
  }
}

TEST(LatencyHistogramTest, PercentilesBoundKnownDataWithinBucketError) {
  // 1..1000 ns uniformly: the reported quantile is the upper edge of the
  // bucket holding the exact quantile, so it is >= the exact value and
  // within the documented 12.5% relative bucket error.
  LatencyHistogram H;
  for (uint64_t Ns = 1; Ns <= 1000; ++Ns)
    H.record(Ns);
  EXPECT_EQ(H.total(), 1000u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.sum(), 500500u);
  EXPECT_DOUBLE_EQ(H.meanNs(), 500.5);
  EXPECT_GE(H.p50(), 500u);
  EXPECT_LE(H.p50(), 563u); // 500 * 1.125
  EXPECT_GE(H.p95(), 950u);
  EXPECT_LE(H.p95(), 1069u);
  EXPECT_EQ(H.percentileNs(0.0), 1u); // first occupied bucket's edge >= 1
  LatencyHistogram Empty;
  EXPECT_EQ(Empty.percentileNs(0.5), 0u);
  EXPECT_EQ(Empty.total(), 0u);
}

TEST(LatencyHistogramTest, MergeMatchesSequentialRecording) {
  LatencyHistogram Left, Right, Together;
  for (uint64_t Ns = 0; Ns < 500; ++Ns) {
    uint64_t Value = Ns * 37 % 100000;
    (Ns % 2 ? Left : Right).record(Value);
    Together.record(Value);
  }
  Left.merge(Right);
  EXPECT_EQ(Left.total(), Together.total());
  EXPECT_EQ(Left.sum(), Together.sum());
  EXPECT_EQ(Left.max(), Together.max());
  for (double Q : {0.5, 0.95, 0.99, 0.999})
    EXPECT_EQ(Left.percentileNs(Q), Together.percentileNs(Q)) << Q;
}

TEST(LatencyHistogramTest, TailSaturatesIntoLastBucketAndReportsExactMax) {
  // Values past the last bucket edge all land in the final bucket; the
  // extreme quantile reports the exact maximum rather than the (smaller)
  // saturated bucket edge.
  uint64_t Huge = ~0ULL / 2;
  EXPECT_EQ(LatencyHistogram::bucketIndex(Huge),
            LatencyHistogram::NumBuckets - 1);
  LatencyHistogram H;
  H.record(1);
  H.record(Huge);
  EXPECT_EQ(H.max(), Huge);
  EXPECT_EQ(H.percentileNs(1.0), Huge);
}

//===----------------------------------------------------------------------===//
// Fleet determinism: jobs, placement, memoization
//===----------------------------------------------------------------------===//

TEST(FleetDeterminismTest, BitIdenticalAcrossWorkerCounts) {
  // The whole deterministic half — stats, per-shard decision logs, both
  // fleet-level checksums — must not depend on how many workers execute
  // the fixed shard→slot plan. Storms on to exercise the fault path too.
  std::vector<FleetResult> Results;
  for (unsigned Jobs : {1u, 4u, 16u}) {
    FleetScenarioConfig Config = smallFleet();
    Config.StormShards = 2;
    Config.Jobs = Jobs;
    Results.push_back(runFleetScenario(Config));
  }
  ASSERT_EQ(Results.size(), 3u);
  EXPECT_GT(Results[0].DecisionsTotal, 0u);
  EXPECT_GT(Results[0].Stats.Totals.Ticks, 0u);
  expectDeterministicHalvesEqual(Results[0], Results[1], "jobs 1 vs 4");
  expectDeterministicHalvesEqual(Results[0], Results[2], "jobs 1 vs 16");
}

TEST(FleetDeterminismTest, InvariantUnderShardToSlotPlacement) {
  // PlanSlots changes which shards share a slot (and hence a worker); the
  // per-shard streams are derived from (fleet seed, shard id) only, so
  // every grouping must produce the same deterministic half.
  std::vector<FleetResult> Results;
  for (unsigned Slots : {1u, 2u, 3u, 4u}) {
    FleetScenarioConfig Config = smallFleet();
    Config.Jobs = 4;
    Config.PlanSlots = Slots;
    Results.push_back(runFleetScenario(Config));
  }
  for (size_t I = 1; I < Results.size(); ++I)
    expectDeterministicHalvesEqual(Results[0], Results[I],
                                   "slots 1 vs " + std::to_string(I + 1));
}

TEST(FleetDeterminismTest, DecisionMemoizationIsBitIdentical) {
  // The binding-level memo and the mixture's pure-part memo may only skip
  // recomputation that provably reproduces the same bits: decisions and
  // stats match exactly with the memo on and off.
  FleetScenarioConfig Plain = smallFleet();
  FleetScenarioConfig Memo = smallFleet();
  Memo.Memoize = true;
  FleetResult A = runFleetScenario(Plain);
  FleetResult B = runFleetScenario(Memo);
  EXPECT_GT(A.DecisionsTotal, 0u);
  expectDeterministicHalvesEqual(A, B, "memo off vs on");
}

TEST(FleetDeterminismTest, CoExecutionMemoizationPreservesDecisions) {
  // The same memo switch at the co-execution level: identical decision
  // sequences (time, thread count, clamp) with MemoizeDecisions on/off.
  runtime::CoExecutionConfig Config;
  Config.Availability = [] {
    return sim::PeriodicAvailability::standardLadder(32, 20.0, 42);
  };
  const workload::ProgramSpec &Target = workload::Catalog::byName("cg");
  std::vector<std::string> Workload = {"bt", "is"};

  auto runWith = [&](bool Memoize) {
    Config.MemoizeDecisions = Memoize;
    auto Policy = PolicySet::instance().factory("mixture")();
    return runCoExecution(Config, Target, *Policy,
                          runtime::patternWorkload(Workload));
  };
  runtime::CoExecutionResult Off = runWith(false);
  runtime::CoExecutionResult On = runWith(true);
  ASSERT_EQ(Off.TargetDecisions.size(), On.TargetDecisions.size());
  ASSERT_GT(Off.TargetDecisions.size(), 0u);
  for (size_t I = 0; I < Off.TargetDecisions.size(); ++I) {
    EXPECT_EQ(Off.TargetDecisions[I].Threads, On.TargetDecisions[I].Threads)
        << I;
    EXPECT_DOUBLE_EQ(Off.TargetDecisions[I].Time, On.TargetDecisions[I].Time)
        << I;
    EXPECT_EQ(Off.TargetDecisions[I].Clamped, On.TargetDecisions[I].Clamped)
        << I;
  }
  EXPECT_DOUBLE_EQ(Off.TargetTime, On.TargetTime);
}

//===----------------------------------------------------------------------===//
// Chaos: storm blast radius confined to the shard prefix
//===----------------------------------------------------------------------===//

TEST(FleetChaosTest, StormBlastRadiusStaysInsideTheShardPrefix) {
  // Storms and sensor dropout on shards [0, 2) of 4. Membership flow
  // (churn draws, migrations, bursts) is availability-independent, so a
  // stormy fleet delivers the exact same arrival streams as a healthy
  // one — every healthy shard must come out bit-identical to its
  // counterpart in the stormless run, while the storm shards' decision
  // streams must actually feel the faults.
  FleetScenarioConfig Healthy = smallFleet();
  FleetScenarioConfig Stormy = smallFleet();
  Stormy.StormShards = 2;

  FleetResult H = runFleetScenario(Healthy);
  FleetResult S = runFleetScenario(Stormy);
  ASSERT_EQ(H.Stats.Shards.size(), 4u);
  ASSERT_EQ(S.Stats.Shards.size(), 4u);

  for (size_t Shard = 2; Shard < 4; ++Shard) {
    const sim::FleetShardStats &HS = H.Stats.Shards[Shard];
    const sim::FleetShardStats &SS = S.Stats.Shards[Shard];
    EXPECT_EQ(HS.Ticks, SS.Ticks) << Shard;
    EXPECT_EQ(HS.ArrivalsDelivered, SS.ArrivalsDelivered) << Shard;
    EXPECT_EQ(HS.DeparturesSent, SS.DeparturesSent) << Shard;
    EXPECT_EQ(HS.TasksAlive, SS.TasksAlive) << Shard;
    EXPECT_EQ(HS.RunnableThreads, SS.RunnableThreads) << Shard;
    EXPECT_EQ(H.Decisions[Shard].Count, S.Decisions[Shard].Count) << Shard;
    EXPECT_EQ(H.Decisions[Shard].Checksum, S.Decisions[Shard].Checksum)
        << Shard;
  }
  // The faults must have had an observable effect somewhere in the storm
  // prefix — otherwise this test would pass vacuously.
  bool StormPrefixDiffers = false;
  for (size_t Shard = 0; Shard < 2; ++Shard)
    StormPrefixDiffers =
        StormPrefixDiffers ||
        H.Decisions[Shard].Checksum != S.Decisions[Shard].Checksum ||
        H.Stats.Shards[Shard].RunnableThreads !=
            S.Stats.Shards[Shard].RunnableThreads;
  EXPECT_TRUE(StormPrefixDiffers);
}

TEST(FleetChaosTest, ChurnConservesTenantsUpToMigrationInFlight) {
  // Seeded tenants minus permanent departures plus delivered arrivals
  // equals the population still alive plus mail still in flight. The
  // engine's counters must reconcile exactly — a lost or duplicated
  // token would show up here.
  FleetScenarioConfig Config = smallFleet();
  Config.StormShards = 1;
  FleetResult R = runFleetScenario(Config);

  uint64_t Alive = R.Stats.Totals.TasksAlive;
  uint64_t Sent = R.Stats.Totals.DeparturesSent;
  uint64_t Delivered = R.Stats.Totals.ArrivalsDelivered;
  // Every delivered arrival was previously sent; what was sent but not
  // delivered is still sitting in an inbox (the final churn phase posts
  // mail that no later round drains).
  EXPECT_LE(Delivered, Sent);
  EXPECT_GT(Alive, 0u);
  EXPECT_EQ(R.Stats.Totals.Ticks,
            uint64_t(Config.Shards) * Config.Rounds * Config.TicksPerRound);
}
