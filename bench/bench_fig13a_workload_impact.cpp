//===-- bench/bench_fig13a_workload_impact.cpp - Figure 13(a) -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 13(a): effect of the target's policy on the *external workload*.
// Paper: all schemes improve the workload relative to the default on
// average (online degrades it in some cases); the mixture never degrades
// workloads and improves them by 1.19x — a win-win from reduced
// system-wide contention.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 13(a) (impact on external workloads)",
      "the mixture never degrades the co-executing workload and improves "
      "it by 1.19x on average");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &PolicyNames = exp::PolicySet::standardPolicies();

  Table T("Workload throughput relative to running against a default-"
          "policy target (hmean over all benchmarks)");
  T.addRow();
  T.addCell("scenario");
  for (const std::string &P : PolicyNames)
    T.addCell(P);

  std::vector<std::vector<double>> All(PolicyNames.size());
  double MixtureMin = 1e9;
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
    T.addRow();
    T.addCell(S.Name);
    for (size_t P = 0; P < PolicyNames.size(); ++P) {
      std::vector<double> Impacts;
      for (const std::string &Target :
           workload::Catalog::evaluationTargets()) {
        double I = Driver.workloadImpact(
            Target, Policies.factory(PolicyNames[P]), S);
        Impacts.push_back(I);
        All[P].push_back(I);
        if (PolicyNames[P] == "mixture")
          MixtureMin = std::min(MixtureMin, I);
      }
      T.addCell(harmonicMean(Impacts));
    }
  }
  T.addRow();
  T.addCell("overall");
  for (auto &V : All)
    T.addCell(harmonicMean(V));
  T.print(std::cout);

  std::cout << "\nmixture worst-case workload impact: " << MixtureMin
            << "x (paper: never below 1.0)\n";
  return 0;
}
