//===-- bench/bench_fig03_motivation_speedup.cpp - Figure 3 ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 3: "Selecting an optimal policy at runtime improves program
// performance" — the Figure-2 scenario's end-to-end performance for the
// OpenMP default, the analytic model, the two single experts and the
// two-expert mixture.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/CoExecution.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

runtime::CoExecutionConfig figure3Config() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [] {
    return std::make_unique<sim::TraceAvailability>(
        std::vector<std::pair<double, unsigned>>{
            {0.0, 32}, {15.0, 16}, {35.0, 32}, {50.0, 8}, {65.0, 24}});
  };
  Config.WorkloadSeed = 0xF162;
  Config.WorkloadMaxThreads = 12;
  Config.MaxTime = 600.0;
  return Config;
}

double runTime(const policy::PolicyFactory &Factory) {
  auto Policy = Factory();
  return runCoExecution(figure3Config(), workload::Catalog::byName("lu"),
                        *Policy, runtime::patternWorkload({"mg"}))
      .TargetTime;
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 3 (motivation performance bars)",
      "analytic improves over the default but both single experts beat it; "
      "dynamically switching experts improves further still");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  double Default = runTime(Policies.factory("default"));

  std::vector<std::string> Labels = {"default", "analytic", "expert E1",
                                     "expert E2", "mixture"};
  std::vector<double> Speedups = {
      1.0,
      Default / runTime(Policies.factory("analytic")),
      Default / runTime(Policies.singleExpertFactory(2, 0)),
      Default / runTime(Policies.singleExpertFactory(2, 1)),
      Default / runTime(Policies.mixtureFactory(2, "regime")),
  };
  exp::printBars(std::cout, "Speedup over OpenMP default (lu vs mg)",
                 Labels, Speedups);
  return 0;
}
