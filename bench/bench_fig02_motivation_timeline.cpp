//===-- bench/bench_fig02_motivation_timeline.cpp - Figure 2 --------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 2: a snapshot of the dynamic system — target lu co-executing with
// workload mg while workload threads and available processors vary. The
// paper plots the thread counts chosen over time by the analytic policy,
// two single experts E1/E2, and the mixture, highlighting the analytic
// policy's delayed reaction and the mixture's expert switching.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/CoExecution.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>
#include <map>

using namespace medley;

namespace {

/// The Figure-2 environment: availability drops mid-run (t0), recovers,
/// and drops again — replayed identically for every policy.
runtime::CoExecutionConfig figure2Config() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [] {
    return std::make_unique<sim::TraceAvailability>(
        std::vector<std::pair<double, unsigned>>{
            {0.0, 32}, {15.0, 16}, {35.0, 32}, {50.0, 8}, {65.0, 24}});
  };
  Config.WorkloadSeed = 0xF162;
  Config.WorkloadMaxThreads = 12;
  Config.RecordTraces = true;
  Config.MaxTime = 300.0;
  return Config;
}

/// Runs lu + mg under \p Factory and samples the chosen thread count every
/// \p Step seconds.
std::vector<unsigned> timeline(const policy::PolicyFactory &Factory,
                               double Horizon, double Step,
                               trace::TickTrace *Trace) {
  runtime::CoExecutionConfig Config = figure2Config();
  auto Policy = Factory();
  runtime::CoExecutionResult Result = runCoExecution(
      Config, workload::Catalog::byName("lu"), *Policy,
      runtime::patternWorkload({"mg"}));

  std::vector<unsigned> Samples;
  size_t D = 0;
  for (double T = 0.0; T < Horizon; T += Step) {
    while (D + 1 < Result.TargetDecisions.size() &&
           Result.TargetDecisions[D + 1].Time <= T)
      ++D;
    Samples.push_back(
        Result.TargetDecisions.empty() ? 0
                                       : Result.TargetDecisions[D].Threads);
  }
  if (Trace)
    *Trace = std::move(Result.Trace);
  return Samples;
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 2 (motivation timeline: lu vs mg)",
      "analytic reacts late to the availability drop at t0; the mixture "
      "switches between experts at the change points t1/t2");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const double Horizon = 70.0, Step = 2.5;

  std::map<std::string, std::vector<unsigned>> Rows;
  trace::TickTrace Trace;
  Rows["analytic"] = timeline(Policies.factory("analytic"), Horizon, Step,
                              &Trace);
  // Section 3 uses the two-expert mixture: E1 and E2 individually, then
  // the mixture switching between them.
  Rows["expert E1"] =
      timeline(Policies.singleExpertFactory(2, 0), Horizon, Step, nullptr);
  Rows["expert E2"] =
      timeline(Policies.singleExpertFactory(2, 1), Horizon, Step, nullptr);
  Rows["mixture"] =
      timeline(Policies.mixtureFactory(2, "regime"), Horizon, Step, nullptr);

  // Top graph: workload threads and available cores over time.
  Table T("Environment and selected thread counts vs time (s)");
  T.addRow();
  T.addCell("t");
  for (double X = 0.0; X < Horizon; X += Step)
    T.addCell(formatDouble(X, 0));
  auto addEnvRow = [&](const std::string &Label, auto Extract) {
    T.addRow();
    T.addCell(Label);
    size_t I = 0;
    for (double X = 0.0; X < Horizon; X += Step) {
      while (I + 1 < Trace.size() && Trace[I + 1].Time <= X)
        ++I;
      T.addCell(Trace.empty() ? 0u : Extract(Trace[I]));
    }
  };
  addEnvRow("cores", [](const runtime::TracePoint &P) {
    return P.AvailableCores;
  });
  addEnvRow("workload", [](const runtime::TracePoint &P) {
    return P.WorkloadThreads;
  });
  for (const auto &[Name, Samples] : Rows) {
    T.addRow();
    T.addCell(Name);
    for (unsigned N : Samples)
      T.addCell(N);
  }
  T.print(std::cout);

  std::cout << "\nchange points: t0=15s (32->16 cores), t1=35s (recovery), "
               "t2=50s (32->8 cores)\n";
  return 0;
}
