//===-- bench/BenchUtil.cpp - Shared bench helpers ------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;
using namespace medley::bench;

void medley::bench::printBanner(const std::string &FigureId,
                                const std::string &Claim) {
  std::string Title = "Medley reproduction of " + FigureId +
                      " (Emani & O'Boyle, PLDI 2015)";
  std::cout << Title << '\n' << std::string(Title.size(), '=') << '\n';
  std::cout << "paper: " << Claim << "\n\n";
}

exp::SpeedupMatrix
medley::bench::runSpeedupFigure(const std::string &FigureId,
                                const std::string &Claim,
                                const exp::Scenario &Scen) {
  printBanner(FigureId, Claim);
  exp::Driver Driver;
  std::cout << "experiment engine: " << Driver.jobs()
            << " job(s) (set MEDLEY_JOBS to override; results are "
               "identical at any value)\n\n";
  exp::PolicySet &Policies = exp::PolicySet::instance();
  exp::SpeedupMatrix Matrix = exp::computeSpeedupMatrix(
      Driver, Policies, workload::Catalog::evaluationTargets(),
      exp::PolicySet::standardPolicies(), Scen);
  exp::printSpeedupMatrix(
      std::cout, "Speedup over OpenMP default (" + Scen.Name + ")", Matrix);

  auto H = Matrix.hmeanPerPolicy();
  std::cout << "measured (hmean):";
  for (size_t P = 0; P < Matrix.Policies.size(); ++P)
    std::cout << "  " << Matrix.Policies[P] << "=" << formatDouble(H[P], 2)
              << "x";
  std::cout << "\n";
  return Matrix;
}
