//===-- bench/bench_fig15c_num_experts.cpp - Figure 15(c) -----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 15(c): single experts vs the mixture. Paper (large/low): single
// experts give 1.15-1.27x; the 4-expert mixture reaches 1.55x (1.22x over
// the best single expert). The deeper claim is robustness — no single
// expert is right everywhere — so we report both a matched scenario and a
// mismatched one: a specialist can top its home scenario, but its
// worst-scenario performance collapses, while the mixture stays near the
// per-scenario best.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

double hmeanOverTargets(exp::Driver &D, const policy::PolicyFactory &F,
                        const exp::Scenario &S) {
  std::vector<double> V;
  for (const std::string &Target : workload::Catalog::evaluationTargets())
    V.push_back(D.speedup(Target, F, S));
  return harmonicMean(V);
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 15(c) (single experts vs the mixture)",
      "single experts reach 1.15-1.27x in large/low; the mixture reaches "
      "1.55x — and no single expert is best across scenarios");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(4);
  exp::Scenario Large = exp::Scenario::largeLow();
  exp::Scenario Small = exp::Scenario::smallLow();

  Table T("Speedup over OpenMP default");
  T.addRow({"policy", "large/low", "small/low", "worst of the two"});
  double BestSingleWorst = 0.0;
  for (size_t K = 0; K < 4; ++K) {
    double L = hmeanOverTargets(Driver, Policies.singleExpertFactory(4, K),
                                Large);
    double S = hmeanOverTargets(Driver, Policies.singleExpertFactory(4, K),
                                Small);
    T.addRow();
    T.addCell(Built[K].E.name() + " alone (" + Built[K].E.description() +
              ")");
    T.addCell(L);
    T.addCell(S);
    T.addCell(std::min(L, S));
    BestSingleWorst = std::max(BestSingleWorst, std::min(L, S));
  }
  double MixL = hmeanOverTargets(Driver, Policies.factory("mixture"), Large);
  double MixS = hmeanOverTargets(Driver, Policies.factory("mixture"), Small);
  T.addRow();
  T.addCell("mixture of all 4");
  T.addCell(MixL);
  T.addCell(MixS);
  T.addCell(std::min(MixL, MixS));
  T.print(std::cout);

  std::cout << "\nmixture worst-scenario / best single expert's "
               "worst-scenario: "
            << std::min(MixL, MixS) / BestSingleWorst << "x\n";
  return 0;
}
