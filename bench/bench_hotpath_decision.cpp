//===-- bench/bench_hotpath_decision.cpp - Decision hot-path latency ------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Microbenchmark of the per-region decision hot path: ns/decision and
// decisions/sec for every selector kind (one decision = select + update,
// the steady-state work a selector does per judged region), the full
// mixture policy (judge + gate + expert predictions), and ticks/sec for
// the simulation loop. Results are written to BENCH_hotpath.json in the
// working directory.
//
//   bench_hotpath_decision [--smoke] [--golden FILE] [--grid FILE]
//                          [--jobs N]
//
// --smoke        tiny pass end-to-end; used by the `bench-smoke` ctest
//                label as a fast check that the hot path still runs
// --golden FILE  write the deterministic mixture decision sequence (one
//                thread count per line) instead of timing; byte-comparing
//                two builds' files proves the decision path unchanged
// --grid FILE    write a full-precision (17 significant digits) smallLow
//                speedup grid instead of timing; --jobs sets the worker
//                count so grids can be compared across job counts
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ExpertRegistry.h"
#include "core/ExpertSelector.h"
#include "policy/Features.h"
#include "runtime/CoExecution.h"
#include "sim/AvailabilityPattern.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "workload/Catalog.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <vector>

using namespace medley;

// Counting global allocator: every operator new in the process bumps the
// counter, so the bench can assert how many heap allocations a
// steady-state simulation tick performs (the acceptance gate is zero).
// Sanitizer builds keep the stock allocator — ASan/TSan intercept
// malloc/new themselves and a user replacement produces alloc-dealloc
// mismatches; the counter then stays at zero, which is harmless because
// the perf gate only runs on plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MEDLEY_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MEDLEY_COUNTING_ALLOC 0
#else
#define MEDLEY_COUNTING_ALLOC 1
#endif
#else
#define MEDLEY_COUNTING_ALLOC 1
#endif

static std::atomic<size_t> GAllocCount{0};

#if MEDLEY_COUNTING_ALLOC
static void *countedAlloc(std::size_t Size) {
  ++GAllocCount;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

static void *countedAlignedAlloc(std::size_t Size, std::size_t Align) {
  ++GAllocCount;
  std::size_t Rounded = (Size + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

void *operator new(std::size_t Size) { return countedAlloc(Size); }
void *operator new[](std::size_t Size) { return countedAlloc(Size); }
void *operator new(std::size_t Size, std::align_val_t Align) {
  return countedAlignedAlloc(Size, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return countedAlignedAlloc(Size, static_cast<std::size_t>(Align));
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
#endif // MEDLEY_COUNTING_ALLOC

namespace {

constexpr size_t NumExperts = 4;

/// Deterministic synthetic feature stream with realistic ranges (code
/// features in [0, 1], environment features on the evaluation platform's
/// scales). The same seed always produces the same stream.
std::vector<policy::FeatureVector> makeFeatureStream(size_t N,
                                                     uint64_t Seed) {
  Rng Gen(Seed);
  std::vector<policy::FeatureVector> Stream;
  Stream.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    policy::FeatureVector F;
    F.Values = {Gen.uniform(0.1, 1.0),  Gen.uniform(0.2, 1.0),
                Gen.uniform(0.05, 0.5), Gen.uniform(0.0, 24.0),
                Gen.uniform(4.0, 32.0), Gen.uniform(0.0, 48.0),
                Gen.uniform(0.0, 32.0), Gen.uniform(0.0, 32.0),
                Gen.uniform(0.0, 1.0),  Gen.uniform(0.0, 0.1)};
    F.EnvNorm = Gen.uniform(0.2, 2.0);
    F.Now = static_cast<double>(I) * 0.1;
    F.MaxThreads = 32;
    Stream.push_back(std::move(F));
  }
  return Stream;
}

/// Per-stream-entry synthetic environment-prediction errors fed to the
/// selectors' update step (precomputed so the timed loop measures only
/// the selector).
std::vector<Vec> makeErrorStream(size_t N, uint64_t Seed) {
  Rng Gen(Seed);
  std::vector<Vec> Errors;
  Errors.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    Vec E(NumExperts);
    for (double &X : E)
      X = Gen.uniform(0.0, 1.5);
    Errors.push_back(std::move(E));
  }
  return Errors;
}

/// A memo-friendly stream: the stream above with every feature vector
/// repeated \p Repeat times in a row — the shape the fleet engine's
/// environment epochs produce (long runs of bit-identical inputs). The
/// pure-part memo hits on every repeat; the unmemoized policy recomputes.
std::vector<policy::FeatureVector>
makeRepeatStream(size_t N, uint64_t Seed, size_t Repeat) {
  std::vector<policy::FeatureVector> Unique =
      makeFeatureStream((N + Repeat - 1) / Repeat, Seed);
  std::vector<policy::FeatureVector> Stream;
  Stream.reserve(N);
  for (const policy::FeatureVector &F : Unique)
    for (size_t R = 0; R < Repeat && Stream.size() < N; ++R)
      Stream.push_back(F);
  return Stream;
}

/// A plausible 10-feature scaler so standardisation does real arithmetic
/// (the identity scaler would undersell the transform cost).
FeatureScaler benchScaler() {
  return FeatureScaler::fromMoments(
      {0.5, 0.6, 0.25, 12.0, 16.0, 20.0, 8.0, 8.0, 0.5, 0.05},
      {0.3, 0.3, 0.15, 8.0, 10.0, 14.0, 6.0, 6.0, 0.3, 0.03});
}

std::unique_ptr<core::ExpertSelector>
makeSelector(const std::string &Kind) {
  if (Kind == "perceptron")
    return std::make_unique<core::PerceptronSelector>(NumExperts,
                                                      benchScaler());
  if (Kind == "hyperplane")
    return std::make_unique<core::HyperplaneSelector>(NumExperts,
                                                      benchScaler());
  if (Kind == "accuracy")
    return std::make_unique<core::AccuracySelector>(NumExperts);
  if (Kind == "binned")
    return std::make_unique<core::BinnedAccuracySelector>(NumExperts,
                                                          benchScaler());
  if (Kind == "regime")
    return std::make_unique<core::RegimeSelector>(
        std::vector<int>{0, 0, 1, 1});
  if (Kind == "random")
    return std::make_unique<core::RandomSelector>(NumExperts, 42);
  std::cerr << "unknown selector kind " << Kind << '\n';
  std::exit(2);
}

struct Rate {
  double NsPerOp = 0.0;
  double OpsPerSec = 0.0;
};

Rate rateOf(double Seconds, size_t Ops) {
  Rate R;
  R.NsPerOp = Seconds * 1e9 / static_cast<double>(Ops);
  R.OpsPerSec = static_cast<double>(Ops) / Seconds;
  return R;
}

/// Times select + update sweeps of one selector over the stream and keeps
/// the fastest sweep: the minimum is robust against scheduler interference
/// on shared machines, where an average would absorb every preemption. The
/// checksum keeps the compiler from hollowing out the loop.
Rate timeSelector(core::ExpertSelector &S,
                  const std::vector<policy::FeatureVector> &Stream,
                  const std::vector<Vec> &Errors, int Sweeps,
                  size_t &Checksum) {
  double Best = std::numeric_limits<double>::infinity();
  for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
    S.reset();
    auto Start = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Stream.size(); ++I) {
      Checksum += S.select(Stream[I].Values);
      S.update(Stream[I].Values, Errors[I]);
    }
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Best = std::min(Best, Elapsed.count());
  }
  return rateOf(Best, Stream.size());
}

/// Times full mixture-policy decisions (judge previous + gate + expert
/// predictions) over the stream; fastest sweep, as above.
Rate timeMixture(policy::ThreadPolicy &Policy,
                 const std::vector<policy::FeatureVector> &Stream,
                 int Sweeps, size_t &Checksum) {
  double Best = std::numeric_limits<double>::infinity();
  for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
    Policy.reset();
    auto Start = std::chrono::steady_clock::now();
    for (const policy::FeatureVector &F : Stream)
      Checksum += Policy.select(F);
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Best = std::min(Best, Elapsed.count());
  }
  return rateOf(Best, Stream.size());
}

/// Times the steady-path registry acquire: after the first pin, every
/// call is one atomic epoch load plus a compare, so this tracks the cost
/// the lifecycle machinery adds to each decision epoch. Fastest sweep, as
/// above.
Rate timeRegistryAcquire(const core::ExpertRegistry &Registry, size_t Iters,
                         int Sweeps, size_t &Checksum) {
  core::ExpertRegistry::ReaderEpoch Reader;
  double Best = std::numeric_limits<double>::infinity();
  for (int Sweep = 0; Sweep < Sweeps; ++Sweep) {
    auto Start = std::chrono::steady_clock::now();
    for (size_t I = 0; I < Iters; ++I)
      Checksum += Registry.acquire(Reader)->Version;
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Best = std::min(Best, Elapsed.count());
  }
  return rateOf(Best, Iters);
}

/// Heap allocations per steady-path acquire (the gate is zero): warmed
/// reader, then a counted batch.
size_t acquireAllocs(const core::ExpertRegistry &Registry) {
  core::ExpertRegistry::ReaderEpoch Reader;
  size_t Sink = 0;
  for (int I = 0; I < 8; ++I)
    Sink += Registry.acquire(Reader)->Version;
  size_t Before = GAllocCount.load();
  for (int I = 0; I < 1024; ++I)
    Sink += Registry.acquire(Reader)->Version;
  size_t Allocs = GAllocCount.load() - Before;
  // Keep the loop honest without polluting the JSON.
  if (Sink == 0)
    std::cerr << "";
  return Allocs / 1024;
}

runtime::CoExecutionConfig tickLoopConfig() {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [] {
    return sim::PeriodicAvailability::standardLadder(32, 20.0, 42);
  };
  Config.WorkloadSeed = 42;
  return Config;
}

/// Times the simulation tick loop end-to-end: repeated co-executions of
/// the target under the mixture policy, reported as simulated ticks per
/// wall-clock second. With \p RecordTraces the loop additionally appends
/// one columnar trace row per tick (the sim_loop_traced metric).
Rate timeTickLoop(int Runs, size_t &Checksum, bool RecordTraces = false,
                  const std::string &PolicyName = "mixture") {
  runtime::CoExecutionConfig Config = tickLoopConfig();
  Config.RecordTraces = RecordTraces;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const workload::ProgramSpec &Target = workload::Catalog::byName("cg");
  std::vector<std::string> Workload = {"bt", "is"};

  double Best = std::numeric_limits<double>::infinity();
  for (int Run = 0; Run < Runs; ++Run) {
    auto Policy = Policies.factory(PolicyName)();
    auto Start = std::chrono::steady_clock::now();
    runtime::CoExecutionResult R = runCoExecution(
        Config, Target, *Policy, runtime::patternWorkload(Workload));
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    double Ticks = R.TargetTime / Config.Tick;
    Best = std::min(Best, Elapsed.count() / Ticks);
    Checksum += R.TargetRegions + R.Trace.size();
  }
  return rateOf(Best, 1); // ns/tick, ticks/s
}

/// Heap allocations performed by one steady-state tick of the same
/// co-execution the tick loop times. The scenario is rebuilt from public
/// pieces (simulation + policy-bound target + pattern workloads, exactly
/// runCoExecution's construction), warmed up past the sticky-capacity
/// phase, then stepped tick by tick; the minimum per-tick count is the
/// steady-state figure — ticks that cross a region boundary or an
/// availability epoch may legitimately do more work.
size_t steadyTickAllocs() {
  runtime::CoExecutionConfig Config = tickLoopConfig();
  sim::Simulation Sim(Config.Machine, Config.Availability(), Config.Tick);
  unsigned TotalCores = Config.Machine.TotalCores;

  auto Policy = exp::PolicySet::instance().factory("mixture")();
  auto Target = std::make_shared<workload::Program>(
      workload::Catalog::byName("cg"),
      runtime::bindPolicy(*Policy, TotalCores), TotalCores,
      /*Looping=*/false);
  Target->setRegionObserver(runtime::bindObserver(*Policy));
  Sim.addTask(Target);

  uint64_t Seed = Config.WorkloadSeed;
  for (const char *Name : {"bt", "is"}) {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    auto Prog = std::make_shared<workload::Program>(
        workload::Catalog::byName(Name),
        workload::ThreadPattern::makeChooser(
            Seed, Config.WorkloadMinThreads, Config.WorkloadMaxThreads,
            Config.WorkloadChangePeriod),
        TotalCores, /*Looping=*/true);
    Sim.addTask(Prog);
  }

  for (int I = 0; I < 32; ++I)
    Sim.step();
  size_t Min = std::numeric_limits<size_t>::max();
  for (int I = 0; I < 64; ++I) {
    size_t Before = GAllocCount.load();
    Sim.step();
    Min = std::min(Min, GAllocCount.load() - Before);
  }
  return Min;
}

int writeGolden(const std::string &Path) {
  // A fresh mixture instance driven over the deterministic stream: any
  // change to feature assembly, gating, blending or expert prediction
  // shows up as a different thread count somewhere in 512 decisions.
  auto Policy = exp::PolicySet::instance().factory("mixture")();
  std::vector<policy::FeatureVector> Stream =
      makeFeatureStream(512, 0x5EEDULL);
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "cannot write " << Path << '\n';
    return 2;
  }
  for (const policy::FeatureVector &F : Stream)
    Out << Policy->select(F) << '\n';
  std::cout << "wrote " << Path << " (512 mixture decisions)\n";
  return 0;
}

int writeGrid(const std::string &Path, unsigned Jobs) {
  // The acceptance check for the allocation-free refactor: the smallLow
  // speedup grid, dumped at full precision, must stay byte-identical at
  // any --jobs value.
  exp::DriverOptions Options;
  Options.Jobs = Jobs;
  exp::Driver Driver(Options);
  exp::SpeedupMatrix Matrix = exp::computeSpeedupMatrix(
      Driver, exp::PolicySet::instance(),
      workload::Catalog::evaluationTargets(),
      exp::PolicySet::standardPolicies(), exp::Scenario::smallLow());

  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "cannot write " << Path << '\n';
    return 2;
  }
  Out << std::setprecision(17);
  for (size_t T = 0; T < Matrix.Targets.size(); ++T)
    for (size_t P = 0; P < Matrix.Policies.size(); ++P)
      Out << Matrix.Targets[T] << ',' << Matrix.Policies[P] << ','
          << Matrix.Values[T][P] << '\n';
  std::vector<double> Hmean = Matrix.hmeanPerPolicy();
  for (size_t P = 0; P < Matrix.Policies.size(); ++P)
    Out << "hmean," << Matrix.Policies[P] << ',' << Hmean[P] << '\n';
  std::cout << "wrote " << Path << " (jobs=" << Jobs << ")\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  unsigned Jobs = 4;
  std::string GoldenPath, GridPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--golden" && I + 1 < Argc)
      GoldenPath = Argv[++I];
    else if (Arg == "--grid" && I + 1 < Argc)
      GridPath = Argv[++I];
    else if (Arg == "--jobs" && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
    else {
      std::cerr << "usage: bench_hotpath_decision [--smoke] "
                   "[--golden FILE] [--grid FILE] [--jobs N]\n";
      return 1;
    }
  }

  if (!GoldenPath.empty())
    return writeGolden(GoldenPath);
  if (!GridPath.empty())
    return writeGrid(GridPath, Jobs);

  const size_t StreamLen = Smoke ? 256 : 4096;
  const int SelectorSweeps = Smoke ? 2 : 200;
  const int MixtureSweeps = Smoke ? 1 : 25;
  // Each tick-loop run is only ~100us of wall clock; a deep min flattens
  // scheduler noise on shared machines.
  const int TickRuns = Smoke ? 1 : 20;

  bench::printBanner(
      "decision hot-path latency",
      "not a paper claim — tracks ns/decision of the mapping hot path");

  std::vector<policy::FeatureVector> Stream =
      makeFeatureStream(StreamLen, 0xDECADEULL);
  std::vector<Vec> Errors = makeErrorStream(StreamLen, 0xE44044ULL);

  const std::vector<std::string> Kinds = {"perceptron", "hyperplane",
                                          "accuracy",   "binned",
                                          "regime",     "random"};
  size_t Checksum = 0;
  std::vector<Rate> SelectorRates;
  for (const std::string &Kind : Kinds) {
    auto S = makeSelector(Kind);
    Rate R = timeSelector(*S, Stream, Errors, SelectorSweeps, Checksum);
    SelectorRates.push_back(R);
    std::cout << "  " << padRight(Kind, 11) << "  "
              << padLeft(formatDouble(R.NsPerOp, 1), 9) << " ns/decision  "
              << padLeft(formatDouble(R.OpsPerSec / 1e6, 2), 7)
              << " Mdecisions/s\n";
  }

  // The real trained mixture (training is a one-off untimed process cost).
  auto Mixture = exp::PolicySet::instance().factory("mixture")();
  Rate MixtureRate = timeMixture(*Mixture, Stream, MixtureSweeps, Checksum);
  std::cout << "  " << padRight("mixture", 11) << "  "
            << padLeft(formatDouble(MixtureRate.NsPerOp, 1), 9)
            << " ns/decision  "
            << padLeft(formatDouble(MixtureRate.OpsPerSec / 1e6, 2), 7)
            << " Mdecisions/s\n";

  // The pure-part memo under a repeat-heavy stream (the fleet engine's
  // epoch mechanism makes consecutive bit-identical features the common
  // case). The decision sequences with the memo on and off must match
  // exactly — the memo may only skip arithmetic that provably reproduces
  // the same bits.
  std::vector<policy::FeatureVector> RepeatStream =
      makeRepeatStream(StreamLen, 0xDECADEULL, 8);
  core::MixtureOptions MemoOptions;
  MemoOptions.Memoize = true;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto MemoOff = Policies.mixtureFactory(4, "regime")();
  auto MemoOn = Policies.mixtureFactory(4, "regime", nullptr, MemoOptions)();
  {
    std::vector<unsigned> SeqOff, SeqOn;
    SeqOff.reserve(RepeatStream.size());
    SeqOn.reserve(RepeatStream.size());
    for (const policy::FeatureVector &F : RepeatStream) {
      SeqOff.push_back(MemoOff->select(F));
      SeqOn.push_back(MemoOn->select(F));
    }
    if (SeqOff != SeqOn) {
      std::cerr << "FAIL: memoized mixture diverged from the unmemoized "
                   "decision sequence\n";
      return 1;
    }
  }
  Rate MemoOffRate = timeMixture(*MemoOff, RepeatStream, MixtureSweeps,
                                 Checksum);
  Rate MemoOnRate = timeMixture(*MemoOn, RepeatStream, MixtureSweeps,
                                Checksum);
  std::cout << "  " << padRight("mix repeat", 11) << "  "
            << padLeft(formatDouble(MemoOffRate.NsPerOp, 1), 9)
            << " ns/decision  "
            << padLeft(formatDouble(MemoOffRate.OpsPerSec / 1e6, 2), 7)
            << " Mdecisions/s\n";
  std::cout << "  " << padRight("mix memo", 11) << "  "
            << padLeft(formatDouble(MemoOnRate.NsPerOp, 1), 9)
            << " ns/decision  "
            << padLeft(formatDouble(MemoOnRate.OpsPerSec / 1e6, 2), 7)
            << " Mdecisions/s  (bit-identical sequences)\n";

  Rate TickRate = timeTickLoop(TickRuns, Checksum);
  std::cout << "  " << padRight("sim loop", 11) << "  "
            << padLeft(formatDouble(TickRate.NsPerOp, 1), 9) << " ns/tick      "
            << padLeft(formatDouble(TickRate.OpsPerSec / 1e3, 2), 7)
            << " Kticks/s\n";

  Rate TracedRate = timeTickLoop(TickRuns, Checksum, /*RecordTraces=*/true);
  std::cout << "  " << padRight("sim traced", 11) << "  "
            << padLeft(formatDouble(TracedRate.NsPerOp, 1), 9)
            << " ns/tick      "
            << padLeft(formatDouble(TracedRate.OpsPerSec / 1e3, 2), 7)
            << " Kticks/s\n";

  // The same loop under the trivial OpenMP-default policy: no gating, no
  // expert predictions, so this isolates the tick machinery (SoA columns,
  // reduction caches, steady fast path) from decision latency.
  Rate MachineryRate = timeTickLoop(TickRuns, Checksum,
                                    /*RecordTraces=*/false, "default");
  std::cout << "  " << padRight("sim steady", 11) << "  "
            << padLeft(formatDouble(MachineryRate.NsPerOp, 1), 9)
            << " ns/tick      "
            << padLeft(formatDouble(MachineryRate.OpsPerSec / 1e3, 2), 7)
            << " Kticks/s\n";

  size_t TickAllocs = steadyTickAllocs();
  std::cout << "  " << padRight("steady tick", 11) << "  "
            << padLeft(std::to_string(TickAllocs), 9)
            << " heap allocations\n";

  // The lifecycle registry's steady acquire path (DESIGN.md §14.2).
  auto Registry = exp::PolicySet::instance().liveRegistry();
  Rate AcquireRate = timeRegistryAcquire(*Registry, StreamLen * 16,
                                         SelectorSweeps, Checksum);
  size_t AcquireAllocs = acquireAllocs(*Registry);
  std::cout << "  " << padRight("registry", 11) << "  "
            << padLeft(formatDouble(AcquireRate.NsPerOp, 1), 9)
            << " ns/acquire   "
            << padLeft(formatDouble(AcquireRate.OpsPerSec / 1e6, 2), 7)
            << " Macquires/s  " << AcquireAllocs << " allocs/acquire\n";

  // Smoke runs are single noisy sweeps for sanitizer/CI coverage; writing
  // their numbers out would clobber the JSON the bench-compare gate reads.
  if (Smoke) {
    std::cout << "\nsmoke run -- BENCH_hotpath.json not written\n";
    return Checksum == 0 ? 1 : 0;
  }

  std::ofstream Json("BENCH_hotpath.json");
  Json << "{\n  \"bench\": \"hotpath_decision\",\n  \"selectors\": {\n";
  for (size_t I = 0; I < Kinds.size(); ++I)
    Json << "    \"" << Kinds[I]
         << "\": {\"ns_per_decision\": " << SelectorRates[I].NsPerOp
         << ", \"decisions_per_sec\": " << SelectorRates[I].OpsPerSec
         << "}" << (I + 1 < Kinds.size() ? "," : "") << "\n";
  Json << "  },\n"
       << "  \"mixture\": {\"ns_per_decision\": " << MixtureRate.NsPerOp
       << ", \"decisions_per_sec\": " << MixtureRate.OpsPerSec << "},\n"
       << "  \"mixture_repeat\": {\"ns_per_decision\": " << MemoOffRate.NsPerOp
       << ", \"decisions_per_sec\": " << MemoOffRate.OpsPerSec << "},\n"
       << "  \"mixture_memoized\": {\"ns_per_decision\": " << MemoOnRate.NsPerOp
       << ", \"decisions_per_sec\": " << MemoOnRate.OpsPerSec << "},\n"
       << "  \"sim_loop\": {\"ns_per_tick\": " << TickRate.NsPerOp
       << ", \"ticks_per_sec\": " << TickRate.OpsPerSec
       << ", \"allocs_per_steady_tick\": " << TickAllocs << "},\n"
       << "  \"sim_loop_traced\": {\"ns_per_tick\": " << TracedRate.NsPerOp
       << ", \"ticks_per_sec\": " << TracedRate.OpsPerSec << "},\n"
       << "  \"sim_machinery\": {\"ns_per_tick\": " << MachineryRate.NsPerOp
       << ", \"ticks_per_sec\": " << MachineryRate.OpsPerSec << "},\n"
       << "  \"registry\": {\"registry_acquire_ns\": " << AcquireRate.NsPerOp
       << ", \"acquires_per_sec\": " << AcquireRate.OpsPerSec
       << ", \"allocs_per_acquire\": " << AcquireAllocs << "},\n"
       << "  \"checksum\": " << Checksum << "\n}\n";
  std::cout << "\nwrote BENCH_hotpath.json\n";
  return Checksum == 0 ? 1 : 0;
}
