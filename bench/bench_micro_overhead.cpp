//===-- bench/bench_micro_overhead.cpp - Decision-latency microbenchmark --------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Supports Result 1 ("the mixtures approach adds no overhead"): measures
// the per-decision latency of every policy's select() with google-
// benchmark. A parallel region in the evaluation runs for hundreds of
// milliseconds; decisions in the nanosecond-to-microsecond range are
// negligible, including the mixture's extra environment predictions and
// selector update.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "exp/PolicySet.h"
#include "policy/Features.h"
#include "workload/Catalog.h"
#include "sim/Simulation.h"
#include "workload/ThreadPattern.h"

#include <benchmark/benchmark.h>

using namespace medley;

namespace {

policy::FeatureVector sampleFeatures() {
  policy::FeatureVector F;
  F.Values = {0.3, 0.4, 0.1, 20.0, 24.0, 35.0, 30.0, 28.0, 0.85, 0.02};
  F.EnvNorm = 1.8;
  F.Now = 10.0;
  F.MaxThreads = 32;
  return F;
}

void policySelect(benchmark::State &State, const std::string &Name) {
  auto Policy = exp::PolicySet::instance().factory(Name)();
  policy::FeatureVector F = sampleFeatures();
  for (auto _ : State) {
    benchmark::DoNotOptimize(Policy->select(F));
    F.EnvNorm += 0.001; // Vary the judged environment slightly.
    if (F.EnvNorm > 3.0)
      F.EnvNorm = 1.0;
  }
}

void BM_DefaultSelect(benchmark::State &State) {
  policySelect(State, "default");
}
void BM_OnlineSelect(benchmark::State &State) {
  policySelect(State, "online");
}
void BM_OfflineSelect(benchmark::State &State) {
  policySelect(State, "offline");
}
void BM_AnalyticSelect(benchmark::State &State) {
  policySelect(State, "analytic");
}
void BM_MixtureSelect(benchmark::State &State) {
  policySelect(State, "mixture");
}

void BM_MixtureSelect8Experts(benchmark::State &State) {
  auto Policy = exp::PolicySet::instance().mixtureFactory(8, "regime")();
  policy::FeatureVector F = sampleFeatures();
  for (auto _ : State)
    benchmark::DoNotOptimize(Policy->select(F));
}

// Substrate throughput: one scheduler tick of an 8-program machine. Puts
// the policy latencies above in context (a tick covers 100 ms of simulated
// time).
void BM_SimulationTick(benchmark::State &State) {
  sim::Simulation Simulation(
      sim::MachineConfig::evaluationPlatform(),
      std::make_unique<sim::StaticAvailability>(32), 0.1);
  uint64_t Seed = 7;
  for (const char *Name : {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}) {
    ++Seed;
    Simulation.addTask(std::make_shared<workload::Program>(
        workload::Catalog::byName(Name),
        workload::ThreadPattern::makeChooser(Seed, 2, 16, 5.0), 32,
        /*Looping=*/true));
  }
  for (auto _ : State)
    Simulation.step();
}

// Labelling cost: one empirical best-thread search (the training loop's
// inner step).
void BM_EmpiricalLabel(benchmark::State &State) {
  const workload::RegionSpec &R = workload::Catalog::byName("lu").Regions[1];
  sim::MachineConfig M = sim::MachineConfig::evaluationPlatform();
  core::OracleEnv Env;
  Env.AvailableCores = 24;
  Env.ExternalThreads = 30;
  Env.ExternalMemDemand = 12.0;
  Rng Generator(3);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        core::empiricalBestThreads(R, Env, M, Generator));
}

void BM_FeatureAssembly(benchmark::State &State) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName("lu");
  workload::RegionContext Context;
  Context.Program = &Spec;
  Context.Region = &Spec.Regions[0];
  Context.Env.Processors = 24;
  Context.Env.RunQueue = 30;
  Context.MaxThreads = 32;
  for (auto _ : State)
    benchmark::DoNotOptimize(policy::buildFeatures(Context, 32));
}

} // namespace

BENCHMARK(BM_DefaultSelect);
BENCHMARK(BM_OnlineSelect);
BENCHMARK(BM_OfflineSelect);
BENCHMARK(BM_AnalyticSelect);
BENCHMARK(BM_MixtureSelect);
BENCHMARK(BM_MixtureSelect8Experts);
BENCHMARK(BM_SimulationTick);
BENCHMARK(BM_EmpiricalLabel);
BENCHMARK(BM_FeatureAssembly);

BENCHMARK_MAIN();
