//===-- bench/bench_fig15a_env_accuracy.cpp - Figure 15(a) ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 15(a): environment-predictor accuracy — how often each expert's
// prediction of the next environment is close to what is then observed,
// averaged across all experiments, plus the accuracy of the expert the
// mixture selected. Paper: individual experts 79-82%, the mixture's chosen
// expert 87%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 15(a) (environment-predictor accuracy)",
      "each expert predicts the next environment accurately 79-82% of the "
      "time; the mixture's chosen expert reaches 87%");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  auto Stats = std::make_shared<core::MoeStats>(4);
  auto Factory = Policies.mixtureFactory(4, "regime", Stats);

  exp::Driver Driver;
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    for (const std::string &Target : workload::Catalog::evaluationTargets())
      for (const workload::WorkloadSet &Set : S.workloadSets())
        Driver.measure(Target, Factory, S, &Set);

  std::vector<std::string> Labels;
  std::vector<double> Values;
  const auto &Built = Policies.builtExperts(4);
  for (size_t K = 0; K < 4; ++K) {
    Labels.push_back(Built[K].E.name() + " (" + Built[K].E.description() +
                     ")");
    Values.push_back(100.0 * Stats->envAccuracy(K));
  }
  Labels.push_back("mixture (chosen expert)");
  Values.push_back(100.0 * Stats->mixtureEnvAccuracy());
  exp::printBars(std::cout,
                 "Environment predictions within 20% of the observed "
                 "norm, over " +
                     std::to_string(Stats->MixtureEnvTotal) + " decisions",
                 Labels, Values, "%");
  return 0;
}
