//===-- bench/bench_fig08_summary.cpp - Figure 8 --------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 8: the headline summary — speedup per scheme for each of the four
// dynamic workload/hardware scenarios, averaged over all benchmarks.
// Paper: online 1.23x, offline 1.33x, analytic 1.39x, mixture 1.66x mean
// (1.54x median).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 8 (summary across dynamic scenarios)",
      "online 1.23x, offline 1.33x, analytic 1.39x, mixture 1.66x mean "
      "(1.54x median) over the OpenMP default");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &PolicyNames = exp::PolicySet::standardPolicies();

  Table T("Speedup over OpenMP default (hmean over all benchmarks)");
  T.addRow();
  T.addCell("scenario");
  for (const std::string &P : PolicyNames)
    T.addCell(P);

  // Per-policy collection of every (scenario, target) speedup for the
  // overall mean/median row.
  std::vector<std::vector<double>> All(PolicyNames.size());

  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
    exp::SpeedupMatrix M = exp::computeSpeedupMatrix(
        Driver, Policies, workload::Catalog::evaluationTargets(),
        PolicyNames, S);
    auto H = M.hmeanPerPolicy();
    T.addRow();
    T.addCell(S.Name);
    for (size_t P = 0; P < PolicyNames.size(); ++P) {
      T.addCell(H[P]);
      for (size_t R = 0; R < M.Targets.size(); ++R)
        All[P].push_back(M.Values[R][P]);
    }
  }

  T.addRow();
  T.addCell("overall hmean");
  for (auto &V : All)
    T.addCell(harmonicMean(V));
  T.addRow();
  T.addCell("overall median");
  for (auto &V : All)
    T.addCell(median(V));
  T.print(std::cout);

  std::cout << "\npaper shape check: mixture must be the best policy in "
               "every scenario row.\n";
  return 0;
}
