//===-- bench/bench_fig13b_adaptive_workloads.cpp - Figure 13(b) ----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 13(b): smart/adaptive workloads (Section 7.4) — both programs of
// a co-executing pair adopt the *same* scheduling policy; the metric is the
// pair's combined execution time against both-use-default. Paper: online/
// online 1.08x, offline/offline 1.27x, analytic/analytic 1.42x,
// mixture/mixture 1.81x — smart policies cooperate instead of fighting.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "runtime/CoExecution.h"
#include "support/Statistics.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

runtime::CoExecutionConfig pairConfig(uint64_t Seed) {
  runtime::CoExecutionConfig Config;
  Config.Machine = sim::MachineConfig::evaluationPlatform();
  Config.Availability = [Seed] {
    return sim::PeriodicAvailability::standardLadder(32, 20.0, Seed);
  };
  Config.MaxTime = 900.0;
  return Config;
}

/// Combined time of the pair when both sides use \p Factory.
double pairTime(const policy::PolicyFactory &Factory,
                const workload::ProgramSpec &A,
                const workload::ProgramSpec &B, uint64_t Seed) {
  auto PolicyA = Factory();
  auto PolicyB = Factory();
  return runPairExecution(pairConfig(Seed), A, *PolicyA, B, *PolicyB)
      .CombinedTime;
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 13(b) (adaptive workloads: both programs are smart)",
      "both-online 1.08x, both-offline 1.27x, both-analytic 1.42x, "
      "both-mixture 1.81x combined speedup over both-default");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const std::vector<std::pair<std::string, std::string>> Pairs = {
      {"lu", "mg"}, {"bt", "cg"},     {"sp", "is"},
      {"ep", "ft"}, {"equake", "lu"}, {"blackscholes", "cg"},
  };

  std::vector<std::string> Labels;
  std::vector<double> Speedups;
  for (const std::string &Name : exp::PolicySet::standardPolicies()) {
    std::vector<double> PerPair;
    uint64_t Seed = 0x13B;
    for (const auto &[A, B] : Pairs) {
      ++Seed;
      const workload::ProgramSpec &SpecA = workload::Catalog::byName(A);
      const workload::ProgramSpec &SpecB = workload::Catalog::byName(B);
      double Default =
          pairTime(Policies.factory("default"), SpecA, SpecB, Seed);
      double Smart = pairTime(Policies.factory(Name), SpecA, SpecB, Seed);
      PerPair.push_back(Default / Smart);
    }
    Labels.push_back("both-" + Name);
    Speedups.push_back(harmonicMean(PerPair));
  }

  exp::printBars(std::cout,
                 "Combined pair speedup over both-default (hmean over " +
                     std::to_string(Pairs.size()) + " pairs)",
                 Labels, Speedups);
  return 0;
}
