//===-- bench/bench_fig06_feature_impact.cpp - Figure 6 -------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 6: "Impact of selected features on the experts" — per expert, the
// drop in prediction accuracy when one feature is removed (pi), normalised
// into the pie-chart slices. The paper finds feature importance varies by
// expert (run-queue size critical to one expert, #processors similar for
// all).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ml/FeatureImpact.h"
#include "support/Table.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 6 (feature impact pi per expert)",
      "feature importance differs across experts; e.g. runq-sz is critical "
      "to one expert and minor to the others, #processors matters to all");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(4);

  Table T("Normalised feature impact (pie-chart slices) per expert's "
          "thread predictor");
  T.addRow();
  T.addCell("feature");
  for (const core::BuiltExpert &B : Built)
    T.addCell(B.E.name());
  T.addCell("mean pi");

  std::vector<std::vector<FeatureImpact>> PerExpert;
  for (const core::BuiltExpert &B : Built)
    PerExpert.push_back(computeFeatureImpacts(B.ThreadData));

  size_t NumFeatures = PerExpert.front().size();
  for (size_t F = 0; F < NumFeatures; ++F) {
    T.addRow();
    T.addCell(PerExpert.front()[F].Name);
    double Sum = 0.0;
    for (const auto &Impacts : PerExpert) {
      T.addCell(Impacts[F].Normalized, 3);
      Sum += Impacts[F].Normalized;
    }
    T.addCell(Sum / double(PerExpert.size()), 3);
  }
  T.print(std::cout);

  // The paper's qualitative observation: importance varies across experts.
  double MaxSpread = 0.0;
  std::string SpreadFeature;
  for (size_t F = 0; F < NumFeatures; ++F) {
    double Lo = 1.0, Hi = 0.0;
    for (const auto &Impacts : PerExpert) {
      Lo = std::min(Lo, Impacts[F].Normalized);
      Hi = std::max(Hi, Impacts[F].Normalized);
    }
    if (Hi - Lo > MaxSpread) {
      MaxSpread = Hi - Lo;
      SpreadFeature = PerExpert.front()[F].Name;
    }
  }
  std::cout << "\nlargest cross-expert spread: '" << SpreadFeature << "' ("
            << MaxSpread << ")\n";
  return 0;
}
