//===-- bench/BenchUtil.h - Shared bench helpers ----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: a standard banner with
/// the paper reference, the per-benchmark speedup-figure runner, and the
/// evaluation target list.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_BENCH_BENCHUTIL_H
#define MEDLEY_BENCH_BENCHUTIL_H

#include "exp/Driver.h"
#include "exp/PolicySet.h"
#include "exp/Reporter.h"

#include <string>

namespace medley::bench {

/// Prints the standard bench banner: which paper element this regenerates
/// and what the paper reported.
void printBanner(const std::string &FigureId, const std::string &Claim);

/// Runs one per-benchmark speedup figure (the Figs 7/9/10/11/12 shape):
/// every evaluation target under the four adaptive policies in \p Scen,
/// printed as a matrix with an hmean row. Returns the matrix for further
/// summarising.
exp::SpeedupMatrix runSpeedupFigure(const std::string &FigureId,
                                    const std::string &Claim,
                                    const exp::Scenario &Scen);

} // namespace medley::bench

#endif // MEDLEY_BENCH_BENCHUTIL_H
