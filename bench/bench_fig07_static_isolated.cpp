//===-- bench/bench_fig07_static_isolated.cpp - Figure 7 ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 7: evaluation in an isolated static system. Paper: the online
// scheme slows some programs; the mixture "never slows down the target and
// improves mg, cg, art" — no overhead, 1.11x over default on average.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <iostream>

using namespace medley;

int main() {
  exp::SpeedupMatrix M = bench::runSpeedupFigure(
      "Figure 7 (isolated static system)",
      "mixture 1.11x over default, never slows the target; improves the "
      "irregular programs mg/cg/art",
      exp::Scenario::isolatedStatic());

  size_t Mix = M.policyIndex("mixture");
  double Min = 1e9;
  std::string MinTarget;
  for (size_t T = 0; T < M.Targets.size(); ++T)
    if (M.Values[T][Mix] < Min) {
      Min = M.Values[T][Mix];
      MinTarget = M.Targets[T];
    }
  std::cout << "mixture worst case: " << Min << "x on " << MinTarget
            << " (paper: never below 1.0)\n";
  return 0;
}
