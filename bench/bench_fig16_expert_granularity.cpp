//===-- bench/bench_fig16_expert_granularity.cpp - Figure 16 --------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 16: finer expert granularity (Section 8.4) — the monolithic
// model against mixtures of 2, 4 and 8 experts. Paper (small/low):
// monolithic < 4 experts (1.55x) < 8 experts (1.63x). We report all four
// dynamic scenarios: the benefit of granularity concentrates where the
// regimes are most diverse (large workloads, fast hardware change).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

double hmeanOverTargets(exp::Driver &D, const policy::PolicyFactory &F,
                        const exp::Scenario &S) {
  std::vector<double> V;
  for (const std::string &Target : workload::Catalog::evaluationTargets())
    V.push_back(D.speedup(Target, F, S));
  return harmonicMean(V);
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 16 (expert granularity: 1 vs 2 vs 4 vs 8 experts)",
      "more, finer-grained experts help: monolithic < 4 experts (1.55x) < "
      "8 experts (1.63x)");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();

  Table T("Speedup over OpenMP default (hmean over all benchmarks)");
  T.addRow();
  T.addCell("experts");
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    T.addCell(S.Name);
  T.addCell("overall");

  struct Config {
    const char *Label;
    unsigned K;
    const char *Selector;
  };
  const Config Configs[] = {
      {"monolithic (1)", 1, "accuracy"},
      {"2 experts", 2, "regime"},
      {"4 experts", 4, "regime"},
      {"8 experts", 8, "regime"},
  };
  for (const Config &C : Configs) {
    T.addRow();
    T.addCell(C.Label);
    std::vector<double> All;
    for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
      double V = hmeanOverTargets(
          Driver, Policies.mixtureFactory(C.K, C.Selector), S);
      All.push_back(V);
      T.addCell(V);
    }
    T.addCell(harmonicMean(All));
  }
  T.print(std::cout);
  return 0;
}
