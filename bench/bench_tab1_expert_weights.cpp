//===-- bench/bench_tab1_expert_weights.cpp - Table 1 and Figure 5 --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Table 1: the learned regression weights of each expert's thread
// predictor w and environment predictor m over the 10 features, plus the
// regression constant beta. Figure 5: how the training data is split into
// the four experts (program scaling behaviour x hardware state).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "policy/Features.h"
#include "support/Table.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Table 1 + Figure 5 (expert weights and training split)",
      "10 selected features with per-expert least-squares weights for the "
      "thread predictor w and environment predictor m");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(4);

  // Figure 5: the training split.
  Table Split("Figure 5: training-program scalability split (>= P/4 rule)");
  Split.addRow({"program", "cores", "isolated speedup", "set"});
  for (const core::ScalabilityEntry &E :
       Policies.builder().scalabilityTable()) {
    Split.addRow();
    Split.addCell(E.Program);
    Split.addCell(E.PlatformCores);
    Split.addCell(E.IsolatedSpeedup);
    Split.addCell(E.Scalable ? "scalable" : "non-scalable");
  }
  Split.print(std::cout);
  std::cout << '\n';

  for (const core::BuiltExpert &B : Built)
    std::cout << B.E.name() << ": " << B.E.description() << " ("
              << B.ThreadData.size() << " thread samples, "
              << B.EnvData.size() << " environment samples)\n";
  std::cout << '\n';

  // Table 1: weights in standardised feature space.
  Table Weights("Table 1: regression weights per expert (standardised "
                "feature space)");
  Weights.addRow();
  Weights.addCell("feature");
  for (const core::BuiltExpert &B : Built) {
    Weights.addCell(B.E.name() + ".w");
    Weights.addCell(B.E.name() + ".m");
  }
  const auto &Names = policy::featureNames();
  for (size_t F = 0; F < Names.size(); ++F) {
    Weights.addRow();
    Weights.addCell("f" + std::to_string(F + 1) + " " + Names[F]);
    for (const core::BuiltExpert &B : Built) {
      Weights.addCell(B.E.threadModel()->weights()[F]);
      Weights.addCell(B.E.envModel()->weights()[F]);
    }
  }
  Weights.addRow();
  Weights.addCell("beta (regression constant)");
  for (const core::BuiltExpert &B : Built) {
    Weights.addCell(B.E.threadModel()->intercept());
    Weights.addCell(B.E.envModel()->intercept());
  }
  Weights.print(std::cout);

  std::cout << "\ntraining R^2:";
  for (const core::BuiltExpert &B : Built)
    std::cout << "  " << B.E.name() << ": w=" << B.E.threadModel()->trainingR2()
              << " m=" << B.E.envModel()->trainingR2();
  std::cout << '\n';
  return 0;
}
