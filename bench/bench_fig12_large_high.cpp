//===-- bench/bench_fig12_large_high.cpp - Figure 12 ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 12 (large workload, high-frequency hardware change). Paper: mixture 1.62x over default, 1.34x over online, 1.22x over offline, 1.15x over analytic.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace medley;

int main() {
  bench::runSpeedupFigure(
      "Figure 12 (large workload, high-frequency hardware change)",
      "mixture 1.62x over default, 1.34x over online, 1.22x over offline, 1.15x over analytic",
      exp::Scenario::largeHigh());
  return 0;
}
