//===-- bench/bench_ext_data_vs_experts.cpp - Data-size trade-off ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Paper Section 9 (future work): "the trade-off in number of experts vs
// training data size". With a fixed total corpus, more experts means
// fewer samples per expert: this bench sweeps corpus fractions x expert
// counts in the large/low scenario to chart where specialisation stops
// paying for the data it costs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/MixtureOfExperts.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

policy::PolicyFactory
mixtureOf(std::vector<core::BuiltExpert> Built, const FeatureScaler &Scaler) {
  auto Experts = std::make_shared<std::vector<core::Expert>>();
  std::vector<int> Tags;
  for (core::BuiltExpert &B : Built) {
    Experts->push_back(B.E);
    const std::string &D = B.E.description();
    Tags.push_back(D.rfind("uncontended", 0) == 0   ? 0
                   : D.rfind("contended", 0) == 0 ? 1
                                                  : -1);
  }
  (void)Scaler;
  std::shared_ptr<const std::vector<core::Expert>> Shared = Experts;
  return [Shared, Tags]() {
    return std::make_unique<core::MixtureOfExperts>(
        Shared, std::make_unique<core::RegimeSelector>(Tags));
  };
}

} // namespace

int main() {
  bench::printBanner(
      "Extension: experts vs training-data size (Section 9)",
      "with a fixed corpus, more experts fragment the data; the sweet spot "
      "shifts with how much data is available");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  core::ExpertBuilder &Builder = Policies.builder();
  FeatureScaler Scaler = Builder.featureScaler();
  exp::Scenario S = exp::Scenario::largeLow();

  Table T("Speedup over OpenMP default (hmean over all benchmarks, "
          "large/low)");
  T.addRow({"corpus", "1 expert", "2 experts", "4 experts", "8 experts"});
  for (double Fraction : {0.1, 0.25, 1.0}) {
    T.addRow();
    T.addCell(formatDouble(100.0 * Fraction, 0) + "% (" +
              std::to_string(static_cast<unsigned>(
                  Fraction * Builder.samples().size())) +
              " samples)");
    for (unsigned K : {1u, 2u, 4u, 8u}) {
      exp::Driver Driver;
      auto Factory =
          mixtureOf(Builder.buildSubsampled(K, Fraction), Scaler);
      std::vector<double> V;
      for (const std::string &Target :
           workload::Catalog::evaluationTargets())
        V.push_back(Driver.speedup(Target, Factory, S));
      T.addCell(harmonicMean(V));
    }
  }
  T.print(std::cout);
  return 0;
}
