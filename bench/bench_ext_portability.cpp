//===-- bench/bench_ext_portability.cpp - Alternative platforms -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Paper Section 9 (future work): "to ensure portability and robustness of
// our approach, we also plan to evaluate on alternative hardware
// platforms". The experts stay trained on the 12- and 32-core machines;
// this bench deploys them — untouched — on a 16-core/2-socket desktop and
// a 64-core/8-socket server and checks whether the orderings survive the
// platform shift.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

sim::MachineConfig desktop16() {
  sim::MachineConfig M;
  M.TotalCores = 16;
  M.MemoryBandwidth = 0.45 * 16;
  M.TotalMemoryMb = 32.0 * 1024.0;
  M.SocketCount = 2;
  return M;
}

sim::MachineConfig server64() {
  sim::MachineConfig M;
  M.TotalCores = 64;
  M.MemoryBandwidth = 0.45 * 64;
  M.TotalMemoryMb = 128.0 * 1024.0;
  M.SocketCount = 8;
  return M;
}

} // namespace

int main() {
  bench::printBanner(
      "Extension: portability to alternative platforms (Section 9)",
      "experts trained on the 12/32-core machines, deployed unmodified on "
      "16- and 64-core machines; orderings should survive");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &PolicyNames = exp::PolicySet::standardPolicies();
  exp::Scenario S = exp::Scenario::largeLow();

  Table T("Speedup over OpenMP default (hmean over all benchmarks, "
          "large/low)");
  T.addRow();
  T.addCell("platform");
  for (const std::string &P : PolicyNames)
    T.addCell(P);

  struct Platform {
    const char *Label;
    sim::MachineConfig Machine;
  };
  const Platform Platforms[] = {
      {"16-core / 2-socket (unseen)", desktop16()},
      {"32-core / 4-socket (native)", sim::MachineConfig::evaluationPlatform()},
      {"64-core / 8-socket (unseen)", server64()},
  };

  for (const Platform &P : Platforms) {
    exp::DriverOptions Options;
    Options.Machine = P.Machine;
    exp::Driver Driver(Options);
    T.addRow();
    T.addCell(P.Label);
    for (const std::string &Name : PolicyNames) {
      std::vector<double> V;
      for (const std::string &Target :
           workload::Catalog::evaluationTargets())
        V.push_back(Driver.speedup(Target, Policies.factory(Name), S));
      T.addCell(harmonicMean(V));
    }
  }
  T.print(std::cout);

  std::cout << "\nNote: on the 64-core machine the linear experts "
               "extrapolate beyond their\ntraining range (clamped at the "
               "machine width); transfer quality is the point.\n";
  return 0;
}
