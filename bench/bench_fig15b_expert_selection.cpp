//===-- bench/bench_fig15b_expert_selection.cpp - Figure 15(b) ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 15(b): how often each expert is chosen in each scenario. Paper:
// one expert dominates each scenario (60%+), yet every expert is selected
// at some point in every scenario — experts transfer to scenarios they
// were not trained for.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 15(b) (expert selection frequency per scenario)",
      "a different expert dominates each scenario, but all experts are "
      "selected at some point everywhere");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(4);

  Table T("Fraction of decisions attributed to each expert");
  T.addRow();
  T.addCell("scenario");
  for (const core::BuiltExpert &B : Built)
    T.addCell(B.E.name());
  T.addCell("dominant");

  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
    auto Stats = std::make_shared<core::MoeStats>(4);
    auto Factory = Policies.mixtureFactory(4, "regime", Stats);
    exp::Driver Driver;
    for (const std::string &Target : workload::Catalog::evaluationTargets())
      for (const workload::WorkloadSet &Set : S.workloadSets())
        Driver.measure(Target, Factory, S, &Set);

    T.addRow();
    T.addCell(S.Name);
    size_t Dominant = 0;
    for (size_t K = 0; K < 4; ++K) {
      T.addCell(Stats->selectionFrequency(K), 3);
      if (Stats->selectionFrequency(K) >
          Stats->selectionFrequency(Dominant))
        Dominant = K;
    }
    T.addCell(Built[Dominant].E.name() + " (" +
              Built[Dominant].E.description() + ")");
  }
  T.print(std::cout);

  std::cout << "\nexpert roles:";
  for (const core::BuiltExpert &B : Built)
    std::cout << "  " << B.E.name() << "=" << B.E.description();
  std::cout << "\n";
  return 0;
}
