//===-- bench/bench_driver_throughput.cpp - Experiment-engine throughput --------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Wall-clock throughput of the parallel experiment engine: executes one
// fig08-style cell grid sequentially (jobs=1) and pooled (jobs=N) and
// reports cells/sec for each, so the perf trajectory of the engine is
// tracked across PRs. Results are written to BENCH_driver.json in the
// working directory.
//
//   bench_driver_throughput [--jobs N] [--smoke]
//
// --jobs N   pooled worker count (default: 4, the CI reference point)
// --smoke    tiny figure end-to-end instead of the timed dual pass; used
//            by the `bench-smoke` ctest label as a fast e2e check
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "workload/Catalog.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace medley;

namespace {

struct GridShape {
  std::vector<std::string> Targets;
  std::vector<std::string> Policies;
  exp::Scenario Scen = exp::Scenario::smallLow();
  unsigned Repeats = 3;

  /// Simulated co-execution runs in the grid: per target, one baseline
  /// per set plus one cell per (policy, set), each repeated.
  size_t runCount() const {
    size_t Sets = Scen.workloadSets().size();
    return Targets.size() * (Policies.size() + 1) * Sets * Repeats;
  }
};

/// Grid sweeps per timed pass; one sweep is only tens of milliseconds, so
/// several are timed together to push the region well above clock noise.
constexpr int SweepsPerPass = 5;

/// Executes SweepsPerPass grid sweeps at \p Jobs workers and returns the
/// total wall-clock seconds. The baseline cache is cleared before every
/// sweep so each one does identical work.
double timeGrid(const GridShape &Grid, unsigned Jobs) {
  exp::DriverOptions Options;
  Options.Repeats = Grid.Repeats;
  Options.Jobs = Jobs;
  exp::Driver Driver(Options);
  auto Start = std::chrono::steady_clock::now();
  for (int Sweep = 0; Sweep < SweepsPerPass; ++Sweep) {
    Driver.clearCache();
    exp::computeSpeedupMatrix(Driver, exp::PolicySet::instance(),
                              Grid.Targets, Grid.Policies, Grid.Scen);
  }
  std::chrono::duration<double> Elapsed =
      std::chrono::steady_clock::now() - Start;
  return Elapsed.count();
}

int runSmoke() {
  // One tiny figure end-to-end: plan, pooled execution, baseline cache,
  // reduction and reporting all on the real path, small enough for CI.
  exp::SpeedupMatrix Matrix = bench::runSpeedupFigure(
      "bench-smoke (tiny Figure 9-style grid)",
      "smoke check only — exercises the parallel experiment engine, not a "
      "paper claim",
      exp::Scenario::smallLow());
  return Matrix.Values.empty() ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Jobs = 4;
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--jobs" && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
    else {
      std::cerr << "usage: bench_driver_throughput [--jobs N] [--smoke]\n";
      return 1;
    }
  }

  if (Smoke)
    return runSmoke();

  bench::printBanner(
      "experiment-engine throughput",
      "not a paper claim — tracks cells/sec of the harness itself");

  GridShape Grid;
  Grid.Targets = workload::Catalog::evaluationTargets();
  Grid.Policies = exp::PolicySet::standardPolicies();
  size_t Runs = Grid.runCount() * SweepsPerPass;

  // Train the policies outside the timed region (one-off process cost).
  for (const std::string &Policy : Grid.Policies)
    exp::PolicySet::instance().factory(Policy);

  std::cout << "grid: " << Grid.Targets.size() << " targets x "
            << Grid.Policies.size() << " policies (+default baseline) x "
            << Grid.Scen.workloadSets().size() << " sets x " << Grid.Repeats
            << " repeats x " << SweepsPerPass << " sweeps = " << Runs
            << " cell runs\n\n";

  double Seq = timeGrid(Grid, 1);
  double SeqRate = Runs / Seq;
  std::cout << "jobs=1: " << formatDouble(Seq, 2) << " s  ("
            << formatDouble(SeqRate, 1) << " cells/sec)\n";

  double Par = timeGrid(Grid, Jobs);
  double ParRate = Runs / Par;
  std::cout << "jobs=" << Jobs << ": " << formatDouble(Par, 2) << " s  ("
            << formatDouble(ParRate, 1) << " cells/sec)\n";

  double Speedup = Seq / Par;
  std::cout << "pool speedup: " << formatDouble(Speedup, 2) << "x ("
            << support::ThreadPool::defaultJobs()
            << " hardware job(s) available)\n";

  std::ofstream Json("BENCH_driver.json");
  Json << "{\n"
       << "  \"bench\": \"driver_throughput\",\n"
       << "  \"cell_runs\": " << Runs << ",\n"
       << "  \"jobs1\": {\"seconds\": " << Seq
       << ", \"cells_per_sec\": " << SeqRate << "},\n"
       << "  \"jobsN\": {\"jobs\": " << Jobs << ", \"seconds\": " << Par
       << ", \"cells_per_sec\": " << ParRate << "},\n"
       << "  \"speedup\": " << Speedup << ",\n"
       << "  \"hardware_jobs\": " << support::ThreadPool::defaultJobs()
       << "\n}\n";
  std::cout << "\nwrote BENCH_driver.json\n";
  return 0;
}
