//===-- bench/bench_fleet.cpp - Fleet-scale throughput & tail latency ----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The scale benchmark of the sharded fleet engine (DESIGN.md §16): 10^5
// tenants across 16 share-nothing shards, reporting simulated ticks/sec,
// policy decisions/sec, per-tick tail latency (p50/p95/p99/p99.9) and the
// steady-tick heap-allocation count. Results land in BENCH_fleet.json for
// the bench-compare perf gate; the gated metrics are fleet.ns_per_tick
// (>15% regression fails) and fleet.allocs_per_steady_tick (any increase
// fails — the zero-allocation contract).
//
//   bench_fleet [--smoke] [--shards N] [--tenants N] [--rounds N]
//               [--ticks N] [--jobs N]
//
// --smoke   small fleet, still asserting the determinism and memo
//           bit-identity invariants end-to-end; no JSON written
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "exp/Fleet.h"
#include "support/StringUtils.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <new>
#include <string>

using namespace medley;

// Counting global allocator, as in bench_hotpath_decision: every operator
// new bumps the counter so the steady-tick allocation gate can count heap
// traffic exactly. Sanitizer builds keep the stock allocator (their
// interceptors conflict with a user replacement); the gate only runs on
// plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MEDLEY_COUNTING_ALLOC 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MEDLEY_COUNTING_ALLOC 0
#else
#define MEDLEY_COUNTING_ALLOC 1
#endif
#else
#define MEDLEY_COUNTING_ALLOC 1
#endif

static std::atomic<size_t> GAllocCount{0};

#if MEDLEY_COUNTING_ALLOC
static void *countedAlloc(std::size_t Size) {
  ++GAllocCount;
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

static void *countedAlignedAlloc(std::size_t Size, std::size_t Align) {
  ++GAllocCount;
  std::size_t Rounded = (Size + Align - 1) / Align * Align;
  if (void *P = std::aligned_alloc(Align, Rounded ? Rounded : Align))
    return P;
  throw std::bad_alloc();
}

void *operator new(std::size_t Size) { return countedAlloc(Size); }
void *operator new[](std::size_t Size) { return countedAlloc(Size); }
void *operator new(std::size_t Size, std::align_val_t Align) {
  return countedAlignedAlloc(Size, static_cast<std::size_t>(Align));
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return countedAlignedAlloc(Size, static_cast<std::size_t>(Align));
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
#endif // MEDLEY_COUNTING_ALLOC

namespace {

/// Heap allocations of one steady fleet tick: a churn-free single-shard
/// engine, warmed past every sticky-capacity phase, then metered tick by
/// tick. The minimum is the steady-state figure; the gate is zero.
size_t steadyTickAllocs(bool Memoize) {
  exp::FleetScenarioConfig Config;
  Config.Shards = 1;
  Config.Tenants = 512;
  Config.ChurnRate = 0.0;
  Config.BurstEvery = 0;
  Config.StormShards = 0;
  Config.Memoize = Memoize;
  exp::FleetScenario Scenario(Config);
  Scenario.seed();

  sim::FleetEngine &Engine = Scenario.engine();
  Engine.stepShard(0, 128); // Warm-up: capacities and memo tables settle.
  size_t Min = std::numeric_limits<size_t>::max();
  for (int I = 0; I < 64; ++I) {
    size_t Before = GAllocCount.load();
    Engine.stepShard(0, 1);
    Min = std::min(Min, GAllocCount.load() - Before);
  }
  return Min;
}

void printResult(const char *Label, const exp::FleetResult &R) {
  const support::LatencyHistogram &H = R.TickLatency;
  std::cout << "  " << padRight(Label, 10) << "  "
            << padLeft(formatDouble(R.WallSeconds, 2), 7) << " s   "
            << padLeft(formatDouble(R.TicksPerSec / 1e3, 1), 8)
            << " Kticks/s  "
            << padLeft(formatDouble(R.DecisionsPerSec / 1e6, 2), 6)
            << " Mdec/s   tick p50/p95/p99/p99.9 "
            << H.p50() << '/' << H.p95() << '/' << H.p99() << '/' << H.p999()
            << " ns\n";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  exp::FleetScenarioConfig Config;
  Config.Shards = 16;
  Config.Tenants = 100000;
  Config.Rounds = 8;
  Config.TicksPerRound = 25;
  Config.StormShards = 4;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--smoke")
      Smoke = true;
    else if (Arg == "--shards" && I + 1 < Argc)
      Config.Shards = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--tenants" && I + 1 < Argc)
      Config.Tenants = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--rounds" && I + 1 < Argc)
      Config.Rounds = std::stoul(Argv[++I]);
    else if (Arg == "--ticks" && I + 1 < Argc)
      Config.TicksPerRound = static_cast<unsigned>(std::stoul(Argv[++I]));
    else if (Arg == "--jobs" && I + 1 < Argc)
      Config.Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
    else {
      std::cerr << "usage: bench_fleet [--smoke] [--shards N] [--tenants N]"
                   " [--rounds N] [--ticks N] [--jobs N]\n";
      return 1;
    }
  }
  if (Smoke) {
    Config.Shards = 4;
    Config.Tenants = 2000;
    Config.Rounds = 2;
    Config.TicksPerRound = 10;
    Config.StormShards = 1;
  }

  bench::printBanner(
      "fleet-scale mapping throughput",
      "not a paper claim — 10^5 concurrent tenants across share-nothing "
      "shards with deterministic reduction");

  std::cout << "  " << Config.Tenants << " tenants, " << Config.Shards
            << " shards, " << Config.Rounds << " rounds x "
            << Config.TicksPerRound << " ticks, policy '" << Config.Policy
            << "'\n\n";

  // The timed run, memo off.
  exp::FleetResult Plain = exp::runFleetScenario(Config);
  printResult("fleet", Plain);

  // Memoized run: the deterministic half must be bit-identical — the memo
  // may only skip arithmetic that provably reproduces the same bits.
  exp::FleetScenarioConfig MemoConfig = Config;
  MemoConfig.Memoize = true;
  exp::FleetResult Memo = exp::runFleetScenario(MemoConfig);
  printResult("memoized", Memo);
  if (Memo.DecisionChecksum != Plain.DecisionChecksum ||
      Memo.DecisionsTotal != Plain.DecisionsTotal ||
      Memo.Stats.Checksum != Plain.Stats.Checksum) {
    std::cerr << "FAIL: memoized run diverged from the plain run "
                 "(decision checksum "
              << Memo.DecisionChecksum << " vs " << Plain.DecisionChecksum
              << ")\n";
    return 1;
  }
  std::cout << "  memo bit-identity: decision+stats checksums match\n";

  size_t TickAllocs = steadyTickAllocs(/*Memoize=*/false);
  size_t TickAllocsMemo = steadyTickAllocs(/*Memoize=*/true);
  std::cout << "  steady tick: " << TickAllocs << " heap allocations ("
            << TickAllocsMemo << " memoized)\n";

  if (Smoke) {
    std::cout << "\nsmoke run -- BENCH_fleet.json not written\n";
    return Plain.DecisionsTotal == 0 ? 1 : 0;
  }

  double NsPerTick =
      Plain.WallSeconds * 1e9 /
      static_cast<double>(std::max<uint64_t>(1, Plain.Stats.Totals.Ticks));
  double NsPerTickMemo =
      Memo.WallSeconds * 1e9 /
      static_cast<double>(std::max<uint64_t>(1, Memo.Stats.Totals.Ticks));
  const support::LatencyHistogram &H = Plain.TickLatency;

  std::ofstream Json("BENCH_fleet.json");
  Json << "{\n  \"bench\": \"fleet\",\n"
       << "  \"shape\": {\"shards\": " << Config.Shards
       << ", \"tenants\": " << Config.Tenants
       << ", \"rounds\": " << Config.Rounds
       << ", \"ticks_per_round\": " << Config.TicksPerRound << "},\n"
       << "  \"fleet\": {\"ns_per_tick\": " << NsPerTick
       << ", \"ticks_per_sec\": " << Plain.TicksPerSec
       << ", \"decisions_per_sec\": " << Plain.DecisionsPerSec
       << ", \"allocs_per_steady_tick\": " << TickAllocs << "},\n"
       << "  \"fleet_memoized\": {\"ns_per_tick\": " << NsPerTickMemo
       << ", \"decisions_per_sec\": " << Memo.DecisionsPerSec
       << ", \"allocs_per_steady_tick\": " << TickAllocsMemo << "},\n"
       << "  \"tick_latency\": {\"p50_ns\": " << H.p50()
       << ", \"p95_ns\": " << H.p95() << ", \"p99_ns\": " << H.p99()
       << ", \"p999_ns\": " << H.p999() << ", \"max_ns\": " << H.max()
       << "},\n"
       << "  \"determinism\": {\"stats_checksum\": " << Plain.Stats.Checksum
       << ", \"decision_checksum\": " << Plain.DecisionChecksum
       << ", \"decisions_total\": " << Plain.DecisionsTotal << "}\n}\n";
  std::cout << "\nwrote BENCH_fleet.json\n";
  return Plain.DecisionsTotal == 0 ? 1 : 0;
}
