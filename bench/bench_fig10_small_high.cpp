//===-- bench/bench_fig10_small_high.cpp - Figure 10 ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 10 (small workload, high-frequency hardware change). Paper: mixture 1.51x over default, 1.41x over online, 1.19x over offline, 1.12x over analytic.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace medley;

int main() {
  bench::runSpeedupFigure(
      "Figure 10 (small workload, high-frequency hardware change)",
      "mixture 1.51x over default, 1.41x over online, 1.19x over offline, 1.12x over analytic",
      exp::Scenario::smallHigh());
  return 0;
}
