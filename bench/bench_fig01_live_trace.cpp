//===-- bench/bench_fig01_live_trace.cpp - Figure 1 -----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 1: "Highly dynamic system activity observed in a live system
// showing number of threads vs. time" — 50 hours of a 2912-core /
// 5824-context HPC machine. We regenerate the trace from the regime-
// switching generator that replaces the (unavailable) production log and
// print a down-sampled sketch plus the scaled-down replay window used by
// the Section-7.5 case study.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "workload/LiveTrace.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 1 (live-system activity trace)",
      "50 h of live activity on a 2912-core system; highly dynamic "
      "thread counts with bursts, plateaus and quiet phases");

  // The full-scale log: one sample per minute over 50 hours.
  constexpr unsigned Contexts = 5824;
  constexpr size_t Samples = 50 * 60;
  std::vector<unsigned> Log =
      workload::generateActivityLog(0x51CE, Contexts, Samples);

  std::vector<double> AsDouble(Log.begin(), Log.end());
  std::cout << "samples: " << Log.size() << "  contexts: " << Contexts
            << "\n";
  std::cout << "threads: min=" << minOf(AsDouble)
            << " median=" << median(AsDouble) << " mean=" << mean(AsDouble)
            << " max=" << maxOf(AsDouble) << "\n\n";

  // Down-sampled sketch (one row per hour, averaged).
  std::cout << "hour  threads  activity\n";
  std::cout << "------------------------------------------------------\n";
  for (size_t Hour = 0; Hour < 50; ++Hour) {
    double Sum = 0.0;
    for (size_t I = 0; I < 60; ++I)
      Sum += Log[Hour * 60 + I];
    double Avg = Sum / 60.0;
    std::cout << padLeft(std::to_string(Hour), 4) << "  "
              << padLeft(formatDouble(Avg, 0), 7) << "  "
              << asciiBar(Avg / Contexts, 50.0) << "\n";
  }

  // The scaled-down replay window (Section 7.5): workload demand and the
  // half-capacity failure on the 32-core evaluation machine.
  workload::LiveTraceData Replay = workload::generateLiveTrace(0x51CE, 32);
  std::cout << "\nscaled 32-core replay window (" << Replay.Duration
            << " s):\n";
  std::cout << "  workload demand breakpoints: "
            << Replay.WorkloadThreads.size() << "\n";
  std::cout << "  availability:";
  for (const auto &[T, C] : Replay.Availability)
    std::cout << "  t=" << formatDouble(T, 0) << "s->" << C << " cores";
  std::cout << "\n";
  return 0;
}
