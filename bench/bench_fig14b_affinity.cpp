//===-- bench/bench_fig14b_affinity.cpp - Figure 14(b) --------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 14(b): thread affinity (Section 7.6) — affinity scheduling
// combined with each policy in the small-workload scenario. Both the
// policy run and its baseline use the pinned machine, and speedups are
// reported against the *non-affinity* default so the affinity benefit is
// visible. Paper: every scheme improves with affinity; the mixture gains
// the most (+26%, 2.1x overall).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

/// Speedup of (policy, machine-with/without-affinity) over the plain
/// (non-affinity) default baseline, hmean over targets and workload sets.
double speedupVsPlainDefault(exp::Driver &D, exp::PolicySet &Policies,
                             const std::string &Policy, bool Affinity) {
  exp::Scenario Plain = exp::Scenario::smallLow();
  exp::Scenario Scen = Affinity ? Plain.withAffinity() : Plain;
  std::vector<double> V;
  for (const std::string &Target : workload::Catalog::evaluationTargets())
    for (const workload::WorkloadSet &Set : Plain.workloadSets()) {
      std::shared_ptr<const exp::Measurement> Base =
          D.defaultMeasurement(Target, Plain, &Set);
      exp::Measurement M =
          D.measure(Target, Policies.factory(Policy), Scen, &Set);
      V.push_back(Base->MeanTargetTime / M.MeanTargetTime);
    }
  return harmonicMean(V);
}

} // namespace

int main() {
  bench::printBanner(
      "Figure 14(b) (thread affinity x policy, small workload)",
      "affinity scheduling improves every policy; the mixture improves the "
      "most (by 26%, reaching 2.1x overall)");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();

  Table T("Speedup over the non-affinity OpenMP default (small/low)");
  T.addRow({"policy", "no affinity", "with affinity", "affinity gain"});
  std::vector<std::string> Names = {"default"};
  for (const std::string &P : exp::PolicySet::standardPolicies())
    Names.push_back(P);
  for (const std::string &Name : Names) {
    double Plain = speedupVsPlainDefault(Driver, Policies, Name, false);
    double Affine = speedupVsPlainDefault(Driver, Policies, Name, true);
    T.addRow();
    T.addCell(Name);
    T.addCell(Plain);
    T.addCell(Affine);
    T.addCell(formatDouble(100.0 * (Affine / Plain - 1.0), 1) + "%");
  }
  T.print(std::cout);
  return 0;
}
