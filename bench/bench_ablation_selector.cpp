//===-- bench/bench_ablation_selector.cpp - Selector ablation -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Beyond the paper: an ablation over the online expert-selector design.
// All selectors learn from the same signal (last-timestep environment
// error); they differ in how they partition the feature space and whether
// they gate hard or blend. "random" is the control: any learned selector
// must beat it for the selection mechanism to be doing work.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Selector ablation (DESIGN.md design-choice validation)",
      "the regime-gated accuracy selector is the default; every learned "
      "selector must beat random selection");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  const std::vector<std::string> Kinds = {
      "regime", "accuracy", "binned", "perceptron", "hyperplane", "random"};

  Table T("Speedup over OpenMP default (hmean over all benchmarks)");
  T.addRow();
  T.addCell("selector");
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    T.addCell(S.Name);
  T.addCell("overall");

  for (const std::string &Kind : Kinds) {
    T.addRow();
    T.addCell(Kind);
    std::vector<double> All;
    for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
      std::vector<double> V;
      for (const std::string &Target :
           workload::Catalog::evaluationTargets())
        V.push_back(
            Driver.speedup(Target, Policies.mixtureFactory(4, Kind), S));
      All.insert(All.end(), V.begin(), V.end());
      T.addCell(harmonicMean(V));
    }
    T.addCell(harmonicMean(All));
  }
  T.print(std::cout);
  return 0;
}
