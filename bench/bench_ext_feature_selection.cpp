//===-- bench/bench_ext_feature_selection.cpp - Section 5.2.2 -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Section 5.2.2: "During the training phase 134 features were collected
// ... From these, 10 features were chosen that were found to be critical
// to the models based on the quality of information gain." This bench
// reruns that selection over our extended candidate sweep (40 candidates:
// the deployed ten, derived compiler/OS counters, and deliberately
// uninformative ones) and reports where the deployed features rank.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Oracle.h"
#include "ml/FeatureSelection.h"
#include "policy/ExtendedFeatures.h"
#include "sim/Simulation.h"
#include "support/Table.h"
#include "workload/Catalog.h"
#include "workload/ThreadPattern.h"

#include <algorithm>
#include <cmath>
#include <iostream>

using namespace medley;

namespace {

/// Collects (extended features -> best thread count) samples from a few
/// co-execution runs, mirroring ExpertBuilder's harness but with the wide
/// candidate vector.
Dataset collectExtendedCorpus() {
  Dataset Data(policy::extendedFeatureNames());
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();

  uint64_t Seed = 0x134;
  for (const std::string &Target : workload::Catalog::trainingPrograms())
    for (const char *Workload : {"cg", "ep", "ft"}) {
      if (Target == Workload)
        continue;
      Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;

      sim::Simulation Simulation(
          Machine,
          sim::PeriodicAvailability::standardLadder(32, 8.0, Seed ^ 0xA),
          0.1);
      Simulation.addTask(std::make_shared<workload::Program>(
          workload::Catalog::byName(Workload),
          workload::ThreadPattern::makeChooser(Seed ^ 0xB, 2, 48, 5.0), 32,
          /*Looping=*/true));

      auto Generator = std::make_shared<Rng>(Seed ^ 0xC);
      auto Chooser = [&Data, Generator,
                      Machine](const workload::RegionContext &Context) {
        core::OracleEnv Env;
        Env.AvailableCores = std::max(
            1u, static_cast<unsigned>(std::lround(Context.Env.Processors)));
        Env.ExternalThreads = static_cast<unsigned>(
            std::lround(Context.Env.WorkloadThreads));
        Env.ExternalMemDemand = 0.5 * Context.Env.WorkloadThreads;
        unsigned Label = core::empiricalBestThreads(*Context.Region, Env,
                                                    Machine, *Generator);
        Data.add(policy::buildExtendedFeatures(Context, 32),
                 static_cast<double>(Label), Context.Program->Name);
        return static_cast<unsigned>(Generator->uniformInt(1, 32));
      };
      auto Target2 = std::make_shared<workload::Program>(
          workload::Catalog::byName(Target), Chooser, 32, /*Looping=*/true);
      Simulation.addTask(Target2);
      Simulation.runUntil([] { return false; }, 60.0);
    }
  return Data;
}

} // namespace

int main() {
  bench::printBanner(
      "Extension: information-gain feature selection (Section 5.2.2)",
      "the paper collected 134 candidate features and kept the 10 with the "
      "highest information gain; the deployed ten should dominate our "
      "40-candidate sweep and the uninformative counters should sink");

  Dataset Corpus = collectExtendedCorpus();
  std::cout << "corpus: " << Corpus.size() << " decisions, "
            << Corpus.numFeatures() << " candidate features\n\n";

  auto Ranked = rankFeaturesByInformationGain(Corpus);
  Table T("Information-gain ranking (top 20 of " +
          std::to_string(Ranked.size()) + ")");
  T.addRow({"rank", "feature", "gain", "deployed?"});
  const auto &Deployed = policy::deployedFeatureIndices();
  for (size_t R = 0; R < std::min<size_t>(20, Ranked.size()); ++R) {
    T.addRow();
    T.addCell(static_cast<unsigned>(R + 1));
    T.addCell(Ranked[R].Name);
    T.addCell(Ranked[R].Gain, 3);
    bool IsDeployed =
        std::find(Deployed.begin(), Deployed.end(), Ranked[R].Index) !=
        Deployed.end();
    T.addCell(IsDeployed ? "yes" : "");
  }
  T.print(std::cout);

  // Summary statistics of the reproduction claim.
  size_t DeployedInTop15 = 0;
  for (size_t R = 0; R < std::min<size_t>(15, Ranked.size()); ++R)
    if (std::find(Deployed.begin(), Deployed.end(), Ranked[R].Index) !=
        Deployed.end())
      ++DeployedInTop15;
  double WorstUseless = 0.0;
  for (const FeatureScore &S : Ranked)
    if (S.Name.find("const") != std::string::npos ||
        S.Name.find("zero") != std::string::npos)
      WorstUseless = std::max(WorstUseless, S.Gain);

  std::cout << "\ndeployed features in the top 15: " << DeployedInTop15
            << " of 10\n";
  std::cout << "best gain among the constant/zero counters: "
            << WorstUseless << " (should be ~0)\n";

  // Where each deployed (Table 1) feature lands in the full ranking. Many
  // derived candidates are transforms of the deployed signals, so they
  // crowd the top ranks — exactly why the paper needed a selection step.
  Table D("Rank of each deployed feature among all 40 candidates");
  D.addRow({"feature", "rank", "gain"});
  for (size_t Index : Deployed)
    for (size_t R = 0; R < Ranked.size(); ++R)
      if (Ranked[R].Index == Index) {
        D.addRow();
        D.addCell(Ranked[R].Name);
        D.addCell(static_cast<unsigned>(R + 1));
        D.addCell(Ranked[R].Gain, 3);
      }
  std::cout << '\n';
  D.print(std::cout);

  std::cout
      << "\nNote: information gain is univariate — the environment "
         "features score low\nhere because the best thread count varies "
         "strongly with the loop's code at\nany fixed environment, yet "
         "Figure 6's model-based impact (pi) shows\n'processors' is the "
         "single most important feature once a model holds the\nother "
         "features fixed. Selecting on gain alone would still keep them "
         "over\nthe constant/noise counters, which score exactly zero.\n";
  return 0;
}
