//===-- bench/bench_fig17_thread_distribution.cpp - Figure 17 -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 17: the distribution of thread numbers predicted by each expert
// and by the mixture, per scenario. Paper: experts' predicted ranges
// differ systematically (one prefers large teams, another small) and the
// mixture picks the appropriate one per case.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 17 (distribution of predicted thread numbers)",
      "experts predict systematically different thread ranges; the mixture "
      "follows whichever suits the scenario");

  exp::PolicySet &Policies = exp::PolicySet::instance();
  const auto &Built = Policies.builtExperts(4);

  for (const exp::Scenario &S :
       {exp::Scenario::smallLow(), exp::Scenario::largeHigh()}) {
    auto Stats = std::make_shared<core::MoeStats>(4);
    auto Factory = Policies.mixtureFactory(4, "regime", Stats);
    exp::Driver Driver;
    for (const std::string &Target : workload::Catalog::evaluationTargets())
      for (const workload::WorkloadSet &Set : S.workloadSets())
        Driver.measure(Target, Factory, S, &Set);

    Table T("Thread-count buckets, scenario " + S.Name);
    T.addRow({"predictor", "1-8", "9-16", "17-24", "25-32", "mean"});
    auto addRow = [&](const std::string &Label, const Histogram &H) {
      std::vector<size_t> B = H.bucketize(8, 32);
      T.addRow();
      T.addCell(Label);
      for (size_t Count : B)
        T.addCell(formatDouble(
            H.total() ? 100.0 * double(Count) / double(H.total()) : 0.0,
            1) + "%");
      T.addCell(H.meanValue());
    };
    for (size_t K = 0; K < 4; ++K)
      addRow(Built[K].E.name() + " (" + Built[K].E.description() + ")",
             Stats->ExpertThreads[K]);
    addRow("mixture M", Stats->MixtureThreads);
    T.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
