//===-- bench/bench_fig11_large_low.cpp - Figure 11 ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 11 (large workload, low-frequency hardware change). Paper: mixture 1.74x over default, 1.31x over online, 1.23x over offline, 1.13x over analytic.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace medley;

int main() {
  bench::runSpeedupFigure(
      "Figure 11 (large workload, low-frequency hardware change)",
      "mixture 1.74x over default, 1.31x over online, 1.23x over offline, 1.13x over analytic",
      exp::Scenario::largeLow());
  return 0;
}
