//===-- bench/bench_ext_expert_types.cpp - Other modelling techniques -----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Paper Section 9 (future work): "investigate whether other modeling
// techniques such as SVMs trained on the same data or hand written
// analytic models can be selected by a mixtures approach". This bench adds
// two non-linear experts to the standard four:
//   * a k-NN (instance-based) expert trained on the same corpus, and
//   * a hand-written analytic expert whose environment predictor is
//     learned online from the mixture's feedback (Section 4.1's retrofit
//     path for experts that ship without one).
// The selector decides, per decision, whether the newcomers' expertise
// applies — nothing is retrained.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/ExternalExperts.h"
#include "core/MixtureOfExperts.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

namespace {

double hmeanOverTargets(exp::Driver &D, const policy::PolicyFactory &F,
                        const exp::Scenario &S) {
  std::vector<double> V;
  for (const std::string &Target : workload::Catalog::evaluationTargets())
    V.push_back(D.speedup(Target, F, S));
  return harmonicMean(V);
}

policy::PolicyFactory
mixtureOf(std::shared_ptr<const std::vector<core::Expert>> Experts) {
  return [Experts]() {
    return std::make_unique<core::MixtureOfExperts>(
        Experts, std::make_unique<core::AccuracySelector>(Experts->size()));
  };
}

} // namespace

int main() {
  bench::printBanner(
      "Extension: other expert modelling techniques (Section 9)",
      "the mixture should accept and exploit non-linear and hand-written "
      "experts without retraining the existing ones");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();

  core::Expert Knn = core::makeKnnExpert(Policies.builder(), "E-knn");
  core::Expert Svr = core::makeSvrExpert(Policies.builder(), "E-svr");
  core::Expert Hand = core::makeHandcraftedExpert(Machine, "E-hand");

  auto Linear4 = Policies.experts(4);
  auto Plus = std::make_shared<std::vector<core::Expert>>(*Linear4);
  Plus->push_back(Knn);
  Plus->push_back(Svr);
  Plus->push_back(Hand);
  auto KnnOnly = std::make_shared<std::vector<core::Expert>>(
      std::vector<core::Expert>{Knn});
  auto SvrOnly = std::make_shared<std::vector<core::Expert>>(
      std::vector<core::Expert>{Svr});
  auto HandOnly = std::make_shared<std::vector<core::Expert>>(
      std::vector<core::Expert>{Hand});

  Table T("Speedup over OpenMP default (hmean over all benchmarks)");
  T.addRow();
  T.addCell("expert set");
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
    T.addCell(S.Name);

  struct Row {
    const char *Label;
    policy::PolicyFactory Factory;
  };
  std::vector<Row> Rows;
  Rows.push_back({"k-NN expert alone", mixtureOf(KnnOnly)});
  Rows.push_back({"SVR expert alone", mixtureOf(SvrOnly)});
  Rows.push_back({"hand-written expert alone", mixtureOf(HandOnly)});
  Rows.push_back({"4 linear experts", Policies.mixtureFactory(4, "accuracy")});
  Rows.push_back({"4 linear + kNN + SVR + hand", mixtureOf(Plus)});

  for (Row &R : Rows) {
    T.addRow();
    T.addCell(R.Label);
    for (const exp::Scenario &S : exp::Scenario::dynamicScenarios())
      T.addCell(hmeanOverTargets(Driver, R.Factory, S));
  }
  T.print(std::cout);

  std::cout << "\nThe hand-written expert started with no environment "
               "predictor;\nits online model was built from the mixture's "
               "own feedback.\n";
  return 0;
}
