//===-- bench/bench_fig14a_case_study.cpp - Figure 14(a) ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 14(a): the real-world case study (Section 7.5) — the Figure-1
// live pattern replayed on the evaluation machine, including a hardware
// failure that removes half the processors. Paper: online 1.19x, offline
// 1.34x, analytic 1.43x, mixture 1.61x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace medley;

int main() {
  bench::runSpeedupFigure(
      "Figure 14(a) (live-system case study with hardware failure)",
      "online 1.19x, offline 1.34x, analytic 1.43x, mixture 1.61x; the "
      "mixture continuously adapts to rapidly changing conditions",
      exp::Scenario::liveStudy());
  return 0;
}
