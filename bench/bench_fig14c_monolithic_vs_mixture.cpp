//===-- bench/bench_fig14c_monolithic_vs_mixture.cpp - Figure 14(c) -------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 14(c): "Evaluation of monolithic model vs mixture of experts" —
// one aggregate model trained on the union of all the experts' training
// data against the 4-expert mixture. Paper: the mixture improves 1.22x
// over the aggregate; the one-size-fits-all model fails to cover the
// regimes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "policy/OfflinePolicy.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workload/Catalog.h"

#include <iostream>

using namespace medley;

int main() {
  bench::printBanner(
      "Figure 14(c) (monolithic aggregate model vs mixture)",
      "a single model with the same total training data loses 22% to the "
      "mixture — the failure of one-size-fits-all");

  exp::Driver Driver;
  exp::PolicySet &Policies = exp::PolicySet::instance();

  // The aggregate model: one thread predictor over the experts' full
  // corpus (both platforms, dynamic availability).
  LinearModel Aggregate = Policies.builder().monolithicThreadModel();
  policy::PolicyFactory AggregateFactory = [Aggregate] {
    return std::make_unique<policy::OfflinePolicy>(Aggregate, "aggregate");
  };
  policy::PolicyFactory Mixture = Policies.factory("mixture");

  Table T("Speedup over OpenMP default (hmean over all benchmarks)");
  T.addRow({"scenario", "aggregate", "mixture", "mixture/aggregate"});
  std::vector<double> AggAll, MixAll;
  for (const exp::Scenario &S : exp::Scenario::dynamicScenarios()) {
    std::vector<double> Agg, Mix;
    for (const std::string &Target :
         workload::Catalog::evaluationTargets()) {
      Agg.push_back(Driver.speedup(Target, AggregateFactory, S));
      Mix.push_back(Driver.speedup(Target, Mixture, S));
    }
    AggAll.insert(AggAll.end(), Agg.begin(), Agg.end());
    MixAll.insert(MixAll.end(), Mix.begin(), Mix.end());
    T.addRow();
    T.addCell(S.Name);
    T.addCell(harmonicMean(Agg));
    T.addCell(harmonicMean(Mix));
    T.addCell(harmonicMean(Mix) / harmonicMean(Agg));
  }
  T.addRow();
  T.addCell("overall");
  T.addCell(harmonicMean(AggAll));
  T.addCell(harmonicMean(MixAll));
  T.addCell(harmonicMean(MixAll) / harmonicMean(AggAll));
  T.print(std::cout);
  return 0;
}
