//===-- bench/bench_fig09_small_low.cpp - Figure 9 ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// Figure 9 (small workload, low-frequency hardware change). Paper: mixture 1.5x over default, 1.3x over online, 1.22x over offline, 1.09x over analytic.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace medley;

int main() {
  bench::runSpeedupFigure(
      "Figure 9 (small workload, low-frequency hardware change)",
      "mixture 1.5x over default, 1.3x over online, 1.22x over offline, 1.09x over analytic",
      exp::Scenario::smallLow());
  return 0;
}
