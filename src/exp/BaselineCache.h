//===-- exp/BaselineCache.h - Shared default-policy cache -------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide cache of default-policy (baseline) measurements. Every
/// speedup and workload-impact number divides by the same baseline cell,
/// so across the policies of a bench run each baseline is worth computing
/// exactly once. Keys fold in the cell identity (scenario, set, target),
/// the derived repeat-0 cell seed and the driver-option fingerprint, so
/// drivers with different options never share entries. Entries are
/// immutable shared_ptrs: callers can hold a baseline across later
/// measurements (or a clear()) without dangling — the fix for the old
/// per-driver map that handed out references into itself.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_BASELINECACHE_H
#define MEDLEY_EXP_BASELINECACHE_H

#include "exp/Cell.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

namespace medley::exp {

/// Mutex-protected insert-once map of baseline measurements.
class BaselineCache {
public:
  /// The process-wide instance.
  static BaselineCache &instance();

  /// The cached measurement for \p Key, or null. Counts a hit or a miss.
  std::shared_ptr<const Measurement> lookup(const std::string &Key);

  /// Inserts \p M for \p Key if absent and returns the stored entry. If
  /// another thread inserted first, its entry wins and \p M is discarded
  /// — with deterministic cells both hold identical values, so the race
  /// is benign.
  std::shared_ptr<const Measurement> insert(const std::string &Key,
                                            Measurement M);

  /// Drops every entry (outstanding shared_ptrs stay valid).
  void clear();

  size_t size() const;

  /// Lookup counters, for tests and bench instrumentation.
  uint64_t hits() const;
  uint64_t misses() const;
  void resetCounters();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::shared_ptr<const Measurement>> Entries;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace medley::exp

#endif // MEDLEY_EXP_BASELINECACHE_H
