//===-- exp/Cell.h - Experiment cell plan types -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vocabulary of the experiment engine's cell plan. A *cell* is one
/// (target, policy, scenario, workload-set) measurement, averaged over the
/// driver's repeats; a *run* is a single repeat of a cell. Every run's
/// environment is seeded purely by (scenario, set, target, repeat), so the
/// cells of a plan are independent and can execute in any order — the
/// basis of the pooled driver's determinism contract (see DESIGN.md,
/// "Experiment engine").
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_CELL_H
#define MEDLEY_EXP_CELL_H

#include "exp/Scenario.h"
#include "policy/ThreadPolicy.h"
#include "runtime/CoExecution.h"

namespace medley::exp {

/// One repeat that exhausted its retry budget. The run still contributes
/// a MaxTime penalty to the cell means, so the plan's arithmetic stays
/// deterministic; the record preserves what went wrong.
struct CellFailure {
  unsigned Repeat = 0;   ///< Repeat index within the cell.
  unsigned Attempts = 0; ///< Attempts made (1 + retries).
  std::string Error;     ///< what() of the last failure.
};

/// Mean results of the repeats of one (target, policy, scenario, set) cell.
struct Measurement {
  double MeanTargetTime = 0.0;
  double MeanWorkloadThroughput = 0.0;
  std::vector<runtime::CoExecutionResult> Runs;

  /// Repeats that failed even after retrying (empty in healthy runs).
  std::vector<CellFailure> Failures;

  /// Injected-fault and degradation counters merged across the repeats.
  support::FaultStats Faults;
};

/// One cell of an experiment plan. A null \p Factory marks a baseline
/// cell: it runs under the OpenMP default policy and is served from /
/// inserted into the process-wide BaselineCache.
struct CellSpec {
  std::string Target;
  /// Policy under test; null = default-policy baseline (cached). Must stay
  /// alive until the plan executes.
  const policy::PolicyFactory *Factory = nullptr;
  const Scenario *Scen = nullptr;
  /// External workload (null = isolated).
  const workload::WorkloadSet *Set = nullptr;
  /// Optional adaptive policy for the workload programs (Section 7.4).
  const policy::PolicyFactory *WorkloadPolicy = nullptr;
};

} // namespace medley::exp

#endif // MEDLEY_EXP_CELL_H
