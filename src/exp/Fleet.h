//===-- exp/Fleet.h - The fleet scenario ------------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles sim::FleetEngine into the runnable fleet scenario (DESIGN.md
/// §16): tenant catalog drawn from the workload catalog's program specs
/// (shared, not copied, across tens of thousands of tenants), a per-shard
/// policy instance bound through runtime::bindPolicy with optional decision
/// memoization, per-round migration/departure churn with bursty arrivals,
/// and unplug-storm fault plans confined to a leading subset of shards.
///
/// Results split cleanly into a deterministic half (tick counts, arrival /
/// departure counters, per-shard decision counts and checksums — all
/// bit-identical at any worker count and shard placement) and a wall-clock
/// half (tick-latency percentiles, rates) that tests must never gate on.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_FLEET_H
#define MEDLEY_EXP_FLEET_H

#include "sim/FleetEngine.h"

#include <string>
#include <vector>

namespace medley::exp {

/// Knobs of the fleet scenario (EXPERIMENTS.md documents the CLI mapping).
struct FleetScenarioConfig {
  unsigned Shards = 16;       ///< Share-nothing machine shards.
  unsigned Tenants = 100000;  ///< Fleet-wide tenant count at seed time.
  uint64_t Rounds = 8;        ///< Churn rounds to run.
  unsigned TicksPerRound = 25;///< Simulation ticks per shard per round.

  /// Per-round fraction of a shard's tenants that churn (half migrate to a
  /// random shard, half depart for good).
  double ChurnRate = 0.01;

  /// Every this-many rounds each shard posts a burst of fresh arrivals
  /// (0 = no bursts); burst size is BurstFraction of the shard's seed-time
  /// tenant share.
  unsigned BurstEvery = 4;
  double BurstFraction = 0.05;

  uint64_t Seed = 0xF1EE7;

  /// Shards [0, StormShards) run under a fault plan of repeated unplug
  /// storms and sensor-dropout windows; the rest stay healthy. The chaos
  /// tests assert the blast radius stays inside this prefix.
  unsigned StormShards = 0;

  /// Policy driving every tenant ("default", "online", "offline",
  /// "analytic", "mixture"); each shard gets its own instance.
  std::string Policy = "mixture";

  /// Decision memoization: BindOptions::Memoize on every shard binding
  /// and, for the mixture, MixtureOptions::Memoize. Decision sequences
  /// are bit-identical either way.
  bool Memoize = false;

  /// Thread-count ceiling per tenant (fleet tenants are small jobs, not
  /// whole-machine programs).
  unsigned TenantMaxThreads = 8;

  unsigned Jobs = 0;      ///< Worker pool size (0 = MEDLEY_JOBS/hardware).
  unsigned PlanSlots = 0; ///< Shard→slot plan override (0 = one per worker).
};

/// Per-shard decision aggregate: count plus an order-sensitive FNV-1a
/// checksum over the chosen thread counts (the full Decision vectors would
/// be gigabytes at fleet scale).
struct FleetShardDecisions {
  uint64_t Count = 0;
  uint64_t Checksum = 0;
};

/// Outcome of one fleet scenario run.
struct FleetResult {
  // --- Deterministic half: bit-identical at any --jobs and placement. ---
  sim::FleetStats Stats;
  std::vector<FleetShardDecisions> Decisions; ///< Shard-id order.
  uint64_t DecisionsTotal = 0;
  uint64_t DecisionChecksum = 0; ///< Ordered combine over the shards.

  // --- Wall-clock half: never gate tests on these. ---
  support::LatencyHistogram TickLatency; ///< Per-tick latency, all shards.
  double WallSeconds = 0.0;
  double TicksPerSec = 0.0;
  double DecisionsPerSec = 0.0;
};

/// The assembled scenario. Splitting construction / seeding / running lets
/// bench_fleet warm an engine up and then meter single ticks (the
/// zero-allocation gate) with the same assembly the full run uses.
class FleetScenario {
public:
  explicit FleetScenario(FleetScenarioConfig Config);
  ~FleetScenario();

  FleetScenario(const FleetScenario &) = delete;
  FleetScenario &operator=(const FleetScenario &) = delete;

  sim::FleetEngine &engine() { return *Engine; }
  const FleetScenarioConfig &config() const { return Config; }

  /// Populates every shard with its seed-time tenants (deterministic,
  /// caller thread).
  void seed();

  /// Runs the configured rounds on a fresh pool of Config.Jobs workers and
  /// returns the reduced result (wall-clock half included).
  FleetResult run();

  /// Reduces the current engine state without running anything further;
  /// \p WallSeconds (0 = unknown) feeds the rate fields.
  FleetResult collect(double WallSeconds) const;

  /// The machine model one shard gets: enough cores and bandwidth that
  /// \p TenantsPerShard small tenants keep a CPU share near one — fleet
  /// shards model rack-scale hosts, not the paper's 32-core testbed.
  static sim::MachineConfig shardMachine(unsigned TenantsPerShard,
                                         unsigned TenantMaxThreads);

private:
  struct Binding;

  FleetScenarioConfig Config;
  std::unique_ptr<sim::FleetEngine> Engine;
  /// Per-shard policy instance + memo-aware chooser + decision log; index
  /// = shard id. Stable storage: choosers hold references into it.
  std::shared_ptr<std::vector<Binding>> Bindings;
  /// Token → tenant mapping, shared between seeding and the engine's
  /// mailbox deliveries so both arrival paths build identical tenants.
  std::function<std::shared_ptr<sim::Task>(unsigned Shard, uint64_t Token)>
      MakeTenant;
};

/// Convenience: construct, seed, run.
FleetResult runFleetScenario(const FleetScenarioConfig &Config);

} // namespace medley::exp

#endif // MEDLEY_EXP_FLEET_H
