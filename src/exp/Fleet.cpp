//===-- exp/Fleet.cpp - The fleet scenario -------------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Fleet.h"

#include "exp/PolicySet.h"
#include "runtime/PolicyBinding.h"
#include "sim/AvailabilityPattern.h"
#include "support/Error.h"
#include "workload/Catalog.h"

#include <algorithm>
#include <chrono>
#include <cmath>

using namespace medley;
using namespace medley::exp;

namespace {

/// Order-sensitive FNV-1a step over one 64-bit word (the same scheme the
/// engine uses for its stats checksum, kept local to each layer).
uint64_t fnvStep(uint64_t Hash, uint64_t Value) {
  for (unsigned Byte = 0; Byte < 8; ++Byte) {
    Hash ^= (Value >> (Byte * 8)) & 0xFF;
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

constexpr uint64_t FnvBasis = 14695981039346656037ULL;

} // namespace

/// Per-shard policy plumbing. The policy instance, the memo-aware chooser
/// every tenant of the shard copies, and the decision log the chooser
/// appends to — all touched only by the shard's worker during a run.
struct FleetScenario::Binding {
  std::unique_ptr<policy::ThreadPolicy> Policy;
  workload::ThreadChooser Chooser;
  workload::RegionObserver Observer;
  FleetShardDecisions Log;
};

sim::MachineConfig FleetScenario::shardMachine(unsigned TenantsPerShard,
                                               unsigned TenantMaxThreads) {
  // A fleet shard models a rack-scale host, not the paper's 32-core
  // testbed: enough cores that the tenant population keeps a CPU share
  // near one (regions finish, decisions flow), bandwidth and memory
  // scaled with the same ratios the evaluation platform uses.
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();
  unsigned Cores =
      std::max(32u, TenantsPerShard * std::max(1u, TenantMaxThreads));
  Machine.TotalCores = Cores;
  Machine.MemoryBandwidth = 0.45 * static_cast<double>(Cores);
  Machine.TotalMemoryMb =
      std::max(64.0 * 1024.0, 512.0 * static_cast<double>(TenantsPerShard));
  return Machine;
}

FleetScenario::FleetScenario(FleetScenarioConfig InConfig)
    : Config(InConfig) {
  if (Config.Shards == 0)
    reportFatalError("fleet scenario with zero shards");
  if (Config.TicksPerRound == 0)
    reportFatalError("fleet scenario with zero ticks per round");

  const unsigned PerShard =
      std::max(1u, Config.Tenants / std::max(1u, Config.Shards));

  sim::FleetConfig Fleet;
  Fleet.NumShards = Config.Shards;
  Fleet.Seed = Config.Seed;
  Fleet.Tick = 0.1;
  Fleet.Machine = shardMachine(PerShard, Config.TenantMaxThreads);

  const unsigned Cores = Fleet.Machine.TotalCores;
  Fleet.Availability = [Cores](unsigned, uint64_t ShardSeed) {
    return sim::PeriodicAvailability::standardLadder(Cores, 20.0, ShardSeed);
  };

  if (Config.StormShards > 0) {
    const double Horizon = static_cast<double>(Config.Rounds) *
                           Config.TicksPerRound * Fleet.Tick;
    const unsigned Storms = Config.StormShards;
    Fleet.Faults = [Storms, Horizon,
                    Cores](unsigned Shard,
                           uint64_t ShardSeed) -> std::unique_ptr<sim::FaultInjector> {
      if (Shard >= Storms)
        return nullptr; // Healthy shard: blast radius ends here.
      sim::FaultPlan Plan;
      // Two unplug storms and one dropout window per run, staggered so
      // every storm shard sees degradation early and late. Half the cores
      // stay up: a total outage would just freeze the shard's tenants.
      Plan.UnplugStorm.push_back({0.20 * Horizon, 0.30 * Horizon});
      Plan.UnplugStorm.push_back({0.60 * Horizon, 0.70 * Horizon});
      Plan.StormCores = Cores / 2;
      Plan.SensorDropout.push_back({0.35 * Horizon, 0.55 * Horizon});
      return std::make_unique<sim::FaultInjector>(Plan, ShardSeed);
    };
  }

  // Shared tenant catalog: every catalog program once, held by
  // shared_ptr so a hundred thousand tenants share the specs instead of
  // copying region vectors.
  auto Specs = std::make_shared<
      std::vector<std::shared_ptr<const workload::ProgramSpec>>>();
  for (const workload::ProgramSpec &Spec : workload::Catalog::allPrograms())
    Specs->push_back(std::make_shared<const workload::ProgramSpec>(Spec));

  // Per-shard policy instances. The factory is resolved once; mixture
  // instances get the pure-part memo when the scenario memoizes.
  PolicySet &Policies = PolicySet::instance();
  policy::PolicyFactory Factory;
  if (Config.Policy == "mixture" && Config.Memoize) {
    core::MixtureOptions Options;
    Options.Memoize = true;
    Factory = Policies.mixtureFactory(4, "regime", nullptr, Options);
  } else {
    Factory = Policies.factory(Config.Policy);
  }

  Bindings = std::make_shared<std::vector<Binding>>();
  Bindings->reserve(Config.Shards);
  for (unsigned S = 0; S < Config.Shards; ++S) {
    Binding B;
    B.Policy = Factory();
    Bindings->push_back(std::move(B));
  }
  // Second pass, after the vector stopped growing: choosers and observers
  // hold references to their Binding's policy, so storage must be final.
  for (unsigned S = 0; S < Config.Shards; ++S) {
    Binding &B = (*Bindings)[S];
    runtime::BindOptions Options;
    Options.Memoize = Config.Memoize;
    workload::ThreadChooser Inner =
        runtime::bindPolicy(*B.Policy, Cores, Options);
    FleetShardDecisions *Log = &B.Log;
    B.Chooser = [Inner, Log](const workload::RegionContext &Ctx) {
      unsigned Threads = Inner(Ctx);
      ++Log->Count;
      Log->Checksum = fnvStep(Log->Checksum == 0 ? FnvBasis : Log->Checksum,
                              Threads);
      return Threads;
    };
    B.Observer = runtime::bindObserver(*B.Policy);
  }

  // Tokens carry only a spec choice; the tenant is materialised on the
  // destination shard against that shard's own chooser and observer.
  auto BindingsRef = Bindings;
  unsigned MaxThreads = Config.TenantMaxThreads;
  MakeTenant = [Specs, BindingsRef, MaxThreads](
                   unsigned Shard,
                   uint64_t Token) -> std::shared_ptr<sim::Task> {
    const Binding &B = (*BindingsRef)[Shard];
    auto Tenant = std::make_shared<workload::Program>(
        (*Specs)[Token % Specs->size()], B.Chooser, MaxThreads,
        /*Looping=*/true);
    Tenant->setRegionObserver(B.Observer);
    return Tenant;
  };
  Fleet.TenantFactory = MakeTenant;

  Engine = std::make_unique<sim::FleetEngine>(std::move(Fleet));

  // Per-round churn: a ChurnRate fraction of the shard's tenants leave
  // (half migrating to a uniformly random shard, half departing), plus a
  // periodic burst of fresh arrivals scattered across the fleet. All
  // draws come from the shard's own churn stream.
  const unsigned NumShards = Config.Shards;
  const double Rate = Config.ChurnRate;
  const unsigned BurstEvery = Config.BurstEvery;
  const auto BurstSize = static_cast<uint64_t>(
      std::max(1.0, Config.BurstFraction * static_cast<double>(PerShard)));
  Engine->setChurnHook([NumShards, Rate, BurstEvery, BurstSize](
                           unsigned, uint64_t Round, Rng &R,
                           sim::Simulation &Sim, support::Arena &,
                           sim::MailSink &Sink) {
    double Want = Rate * static_cast<double>(Sim.numTasks());
    auto Leavers = static_cast<uint64_t>(Want);
    if (R.bernoulli(Want - static_cast<double>(Leavers)))
      ++Leavers;
    for (uint64_t I = 0; I < Leavers && Sim.numTasks() > 0; ++I) {
      auto Victim = static_cast<size_t>(
          R.uniformInt(0, static_cast<int64_t>(Sim.numTasks()) - 1));
      Sim.removeTask(Sim.tasks()[Victim].get());
      if (R.bernoulli(0.5))
        Sink.send(static_cast<unsigned>(R.uniformInt(0, NumShards - 1)),
                  R.next());
    }
    if (BurstEvery != 0 && (Round + 1) % BurstEvery == 0)
      for (uint64_t I = 0; I < BurstSize; ++I)
        Sink.send(static_cast<unsigned>(R.uniformInt(0, NumShards - 1)),
                  R.next());
  });
}

FleetScenario::~FleetScenario() = default;

void FleetScenario::seed() {
  const unsigned Shards = Config.Shards;
  const unsigned Base = Config.Tenants / Shards;
  const unsigned Extra = Config.Tenants % Shards;
  Engine->seedTenants([&](unsigned Shard, Rng &R, sim::Simulation &Sim) {
    const unsigned Count = Base + (Shard < Extra ? 1 : 0);
    // Seed-time arrivals take the exact token → tenant path mailbox
    // arrivals take, with tokens drawn from the shard's churn stream.
    for (unsigned I = 0; I < Count; ++I)
      Sim.addTask(MakeTenant(Shard, R.next()));
  });
}

FleetResult FleetScenario::run() {
  support::ThreadPool Pool(Config.Jobs);
  // Wall-clock timing feeds only the throughput half of the result
  // (WallSeconds and the rates derived from it), which is documented
  // non-deterministic; the checksummed half never sees it.
  // medley-lint: allow(nondeterminism) — host throughput measurement.
  auto Start = std::chrono::steady_clock::now();
  Engine->run(Pool, Config.Rounds, Config.TicksPerRound, Config.PlanSlots);
  std::chrono::duration<double> Elapsed =
      // medley-lint: allow(nondeterminism) — host throughput measurement.
      std::chrono::steady_clock::now() - Start;
  return collect(Elapsed.count());
}

FleetResult FleetScenario::collect(double WallSeconds) const {
  FleetResult Result;
  Result.Stats = Engine->reduce();
  Result.Decisions.reserve(Bindings->size());
  uint64_t Hash = FnvBasis;
  for (const Binding &B : *Bindings) {
    Result.Decisions.push_back(B.Log);
    Result.DecisionsTotal += B.Log.Count;
    Hash = fnvStep(Hash, B.Log.Count);
    Hash = fnvStep(Hash, B.Log.Checksum);
  }
  Result.DecisionChecksum = Hash;
  Result.TickLatency = Engine->mergedLatency();
  Result.WallSeconds = WallSeconds;
  if (WallSeconds > 0.0) {
    Result.TicksPerSec =
        static_cast<double>(Result.Stats.Totals.Ticks) / WallSeconds;
    Result.DecisionsPerSec =
        static_cast<double>(Result.DecisionsTotal) / WallSeconds;
  }
  return Result;
}

FleetResult medley::exp::runFleetScenario(const FleetScenarioConfig &Config) {
  FleetScenario Scenario(Config);
  Scenario.seed();
  return Scenario.run();
}
