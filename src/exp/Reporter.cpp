//===-- exp/Reporter.cpp - Figure/table reporters ----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Reporter.h"

#include "support/Csv.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

using namespace medley;
using namespace medley::exp;

std::vector<double> SpeedupMatrix::hmeanPerPolicy() const {
  std::vector<double> Result;
  for (size_t P = 0; P < Policies.size(); ++P) {
    std::vector<double> Column;
    Column.reserve(Targets.size());
    for (size_t T = 0; T < Targets.size(); ++T)
      Column.push_back(Values[T][P]);
    Result.push_back(harmonicMean(Column));
  }
  return Result;
}

size_t SpeedupMatrix::policyIndex(const std::string &Policy) const {
  for (size_t P = 0; P < Policies.size(); ++P)
    if (Policies[P] == Policy)
      return P;
  reportFatalError("policy '" + Policy + "' not in matrix");
}

SpeedupMatrix
medley::exp::computeSpeedupMatrix(Driver &D, PolicySet &Policies,
                                  const std::vector<std::string> &Targets,
                                  const std::vector<std::string> &PolicyNames,
                                  const Scenario &Scen) {
  SpeedupMatrix Matrix;
  Matrix.Targets = Targets;
  Matrix.Policies = PolicyNames;

  // Plan the whole figure as one cell batch: per (target, policy) one
  // fresh factory (matching the sequential loop's factory call sequence)
  // and one cell per workload set, with the baseline cells alongside so
  // the driver deduplicates them and executes everything in one pool
  // sweep. Cell layout: for each target, for each policy, the per-set
  // (baseline, policy) pairs in set order.
  const std::vector<workload::WorkloadSet> &Sets = Scen.workloadSets();
  std::vector<const workload::WorkloadSet *> SetPtrs;
  if (Sets.empty())
    SetPtrs.push_back(nullptr);
  else
    for (const workload::WorkloadSet &Set : Sets)
      SetPtrs.push_back(&Set);

  std::vector<policy::PolicyFactory> Factories;
  Factories.reserve(Targets.size() * PolicyNames.size()); // Stable pointers.
  std::vector<CellSpec> Cells;
  for (const std::string &Target : Targets)
    for (const std::string &Policy : PolicyNames) {
      Factories.push_back(Policies.factory(Policy));
      for (const workload::WorkloadSet *Set : SetPtrs) {
        CellSpec Base;
        Base.Target = Target;
        Base.Scen = &Scen;
        Base.Set = Set;
        Cells.push_back(Base);
        CellSpec Cell = Base;
        Cell.Factory = &Factories.back();
        Cells.push_back(Cell);
      }
    }

  auto Results = D.measureCells(Cells);

  // Reduce in plan order: per-set time ratios, harmonically averaged.
  size_t Next = 0;
  for (size_t T = 0; T < Targets.size(); ++T) {
    std::vector<double> Row;
    for (size_t P = 0; P < PolicyNames.size(); ++P) {
      std::vector<double> PerSet;
      for (size_t S = 0; S < SetPtrs.size(); ++S) {
        const Measurement &Base = *Results[Next];
        const Measurement &Cell = *Results[Next + 1];
        PerSet.push_back(Base.MeanTargetTime / Cell.MeanTargetTime);
        Next += 2;
      }
      Row.push_back(harmonicMean(PerSet));
    }
    Matrix.Values.push_back(std::move(Row));
  }
  return Matrix;
}

void medley::exp::printSpeedupMatrix(std::ostream &OS,
                                     const std::string &Title,
                                     const SpeedupMatrix &Matrix) {
  Table T(Title);
  T.addRow();
  T.addCell("benchmark");
  for (const std::string &Policy : Matrix.Policies)
    T.addCell(Policy);
  for (size_t R = 0; R < Matrix.Targets.size(); ++R) {
    T.addRow();
    T.addCell(Matrix.Targets[R]);
    for (double V : Matrix.Values[R])
      T.addCell(V);
  }
  T.addRow();
  T.addCell("hmean");
  for (double V : Matrix.hmeanPerPolicy())
    T.addCell(V);
  T.print(OS);
  OS << '\n';
}

void medley::exp::writeSpeedupMatrixCsv(std::ostream &OS,
                                        const SpeedupMatrix &Matrix) {
  CsvWriter W(OS, /*BufferBytes=*/1 << 16);
  std::vector<std::string> Header;
  Header.reserve(Matrix.Policies.size() + 1);
  Header.push_back("benchmark");
  Header.insert(Header.end(), Matrix.Policies.begin(), Matrix.Policies.end());
  W.writeRow(Header);
  for (size_t R = 0; R < Matrix.Targets.size(); ++R)
    W.writeRow(Matrix.Targets[R], Matrix.Values[R]);
  W.writeRow("hmean", Matrix.hmeanPerPolicy());
}

void medley::exp::printBars(std::ostream &OS, const std::string &Title,
                            const std::vector<std::string> &Labels,
                            const std::vector<double> &Values,
                            const std::string &Unit) {
  OS << Title << '\n';
  size_t Width = 0;
  for (const std::string &Label : Labels)
    Width = std::max(Width, Label.size());
  // Scale so the largest value fills the line.
  double Max = Values.empty() ? 1.0 : maxOf(Values);
  double UnitsPerChar = Max > 0.0 ? 56.0 / Max : 1.0;
  for (size_t I = 0; I < Labels.size() && I < Values.size(); ++I)
    OS << "  " << padRight(Labels[I], Width) << "  "
       << padLeft(formatDouble(Values[I], 2), 6) << Unit << "  "
       << asciiBar(Values[I], UnitsPerChar) << '\n';
  OS << '\n';
}
