//===-- exp/Reporter.cpp - Figure/table reporters ----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Reporter.h"

#include "support/Error.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

using namespace medley;
using namespace medley::exp;

std::vector<double> SpeedupMatrix::hmeanPerPolicy() const {
  std::vector<double> Result;
  for (size_t P = 0; P < Policies.size(); ++P) {
    std::vector<double> Column;
    Column.reserve(Targets.size());
    for (size_t T = 0; T < Targets.size(); ++T)
      Column.push_back(Values[T][P]);
    Result.push_back(harmonicMean(Column));
  }
  return Result;
}

size_t SpeedupMatrix::policyIndex(const std::string &Policy) const {
  for (size_t P = 0; P < Policies.size(); ++P)
    if (Policies[P] == Policy)
      return P;
  reportFatalError("policy '" + Policy + "' not in matrix");
}

SpeedupMatrix
medley::exp::computeSpeedupMatrix(Driver &D, PolicySet &Policies,
                                  const std::vector<std::string> &Targets,
                                  const std::vector<std::string> &PolicyNames,
                                  const Scenario &Scen) {
  SpeedupMatrix Matrix;
  Matrix.Targets = Targets;
  Matrix.Policies = PolicyNames;
  for (const std::string &Target : Targets) {
    std::vector<double> Row;
    for (const std::string &Policy : PolicyNames)
      Row.push_back(D.speedup(Target, Policies.factory(Policy), Scen));
    Matrix.Values.push_back(std::move(Row));
  }
  return Matrix;
}

void medley::exp::printSpeedupMatrix(std::ostream &OS,
                                     const std::string &Title,
                                     const SpeedupMatrix &Matrix) {
  Table T(Title);
  T.addRow();
  T.addCell("benchmark");
  for (const std::string &Policy : Matrix.Policies)
    T.addCell(Policy);
  for (size_t R = 0; R < Matrix.Targets.size(); ++R) {
    T.addRow();
    T.addCell(Matrix.Targets[R]);
    for (double V : Matrix.Values[R])
      T.addCell(V);
  }
  T.addRow();
  T.addCell("hmean");
  for (double V : Matrix.hmeanPerPolicy())
    T.addCell(V);
  T.print(OS);
  OS << '\n';
}

void medley::exp::printBars(std::ostream &OS, const std::string &Title,
                            const std::vector<std::string> &Labels,
                            const std::vector<double> &Values,
                            const std::string &Unit) {
  OS << Title << '\n';
  size_t Width = 0;
  for (const std::string &Label : Labels)
    Width = std::max(Width, Label.size());
  // Scale so the largest value fills the line.
  double Max = Values.empty() ? 1.0 : maxOf(Values);
  double UnitsPerChar = Max > 0.0 ? 56.0 / Max : 1.0;
  for (size_t I = 0; I < Labels.size() && I < Values.size(); ++I)
    OS << "  " << padRight(Labels[I], Width) << "  "
       << padLeft(formatDouble(Values[I], 2), 6) << Unit << "  "
       << asciiBar(Values[I], UnitsPerChar) << '\n';
  OS << '\n';
}
