//===-- exp/Reporter.h - Figure/table reporters -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the bench binaries: compute per-benchmark speedup
/// matrices for a scenario and print them as the rows the paper's figures
/// plot (one row per benchmark, one column per policy, harmonic-mean
/// summary row, ASCII bars for eyeballing).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_REPORTER_H
#define MEDLEY_EXP_REPORTER_H

#include "exp/Driver.h"
#include "exp/PolicySet.h"

#include <ostream>

namespace medley::exp {

/// Speedups of a set of policies over the default, per benchmark.
struct SpeedupMatrix {
  std::vector<std::string> Targets;
  std::vector<std::string> Policies;
  /// Values[t][p] = speedup of policy p on target t.
  std::vector<std::vector<double>> Values;

  /// Harmonic mean over targets for each policy (the paper's aggregate).
  std::vector<double> hmeanPerPolicy() const;

  /// Column index of \p Policy (fatal if absent).
  size_t policyIndex(const std::string &Policy) const;
};

/// Runs every (target, policy) cell of \p Scen.
SpeedupMatrix computeSpeedupMatrix(Driver &D, PolicySet &Policies,
                                   const std::vector<std::string> &Targets,
                                   const std::vector<std::string> &PolicyNames,
                                   const Scenario &Scen);

/// Prints a per-benchmark speedup table with an hmean summary row.
void printSpeedupMatrix(std::ostream &OS, const std::string &Title,
                        const SpeedupMatrix &Matrix);

/// Writes \p Matrix as CSV (header row, one row per target, hmean row)
/// through a buffered CsvWriter: the whole matrix reaches \p OS in a
/// handful of stream writes regardless of row count.
void writeSpeedupMatrixCsv(std::ostream &OS, const SpeedupMatrix &Matrix);

/// Prints a one-line "policy: value" bar chart.
void printBars(std::ostream &OS, const std::string &Title,
               const std::vector<std::string> &Labels,
               const std::vector<double> &Values,
               const std::string &Unit = "x");

} // namespace medley::exp

#endif // MEDLEY_EXP_REPORTER_H
