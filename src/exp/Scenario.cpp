//===-- exp/Scenario.cpp - Experimental scenarios --------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Scenario.h"

#include "support/Error.h"

using namespace medley;
using namespace medley::exp;

double Scenario::availabilityPeriod() const {
  switch (Hardware) {
  case HardwareChange::Static:
  case HardwareChange::LiveTrace:
    return 0.0;
  case HardwareChange::Low:
    return 20.0;
  case HardwareChange::High:
    return 10.0;
  }
  MEDLEY_UNREACHABLE("bad hardware-change kind");
}

const std::vector<workload::WorkloadSet> &Scenario::workloadSets() const {
  static const std::vector<workload::WorkloadSet> None;
  if (WorkloadSize.empty())
    return None;
  if (WorkloadSize == "live") {
    // The live study's external load is trace-driven; these two programs
    // carry the traced thread demand (the driver splits it between them).
    static const std::vector<workload::WorkloadSet> Live = {
        {"live", {"cg", "ft"}}};
    return Live;
  }
  return workload::workloadsBySize(WorkloadSize);
}

Scenario Scenario::withAffinity() const {
  Scenario Copy = *this;
  Copy.Affinity = true;
  Copy.Name += "+affinity";
  return Copy;
}

Scenario Scenario::isolatedStatic() {
  return Scenario{"isolated/static", "", HardwareChange::Static, false};
}

Scenario Scenario::smallLow() {
  return Scenario{"small/low", "small", HardwareChange::Low, false};
}

Scenario Scenario::smallHigh() {
  return Scenario{"small/high", "small", HardwareChange::High, false};
}

Scenario Scenario::largeLow() {
  return Scenario{"large/low", "large", HardwareChange::Low, false};
}

Scenario Scenario::largeHigh() {
  return Scenario{"large/high", "large", HardwareChange::High, false};
}

Scenario Scenario::liveStudy() {
  return Scenario{"live-study", "live", HardwareChange::LiveTrace, false};
}

const std::vector<Scenario> &Scenario::dynamicScenarios() {
  static const std::vector<Scenario> Scenarios = {
      smallLow(), smallHigh(), largeLow(), largeHigh()};
  return Scenarios;
}
