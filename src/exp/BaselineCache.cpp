//===-- exp/BaselineCache.cpp - Shared default-policy cache --------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/BaselineCache.h"

using namespace medley;
using namespace medley::exp;

BaselineCache &BaselineCache::instance() {
  static BaselineCache Instance;
  return Instance;
}

std::shared_ptr<const Measurement>
BaselineCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  return It->second;
}

std::shared_ptr<const Measurement> BaselineCache::insert(const std::string &Key,
                                                         Measurement M) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It != Entries.end())
    return It->second;
  auto Entry = std::make_shared<const Measurement>(std::move(M));
  Entries.emplace(Key, Entry);
  return Entry;
}

void BaselineCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
}

size_t BaselineCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

uint64_t BaselineCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

uint64_t BaselineCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

void BaselineCache::resetCounters() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Hits = 0;
  Misses = 0;
}
