//===-- exp/PolicySet.h - Trained-policy registry ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds and caches the trained artefacts every experiment needs — the
/// expert sets (1/2/4/8), the monolithic offline model, the feature scaler
/// — and exposes policy factories by name. Training happens once per
/// process (the paper's "one-off cost").
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_POLICYSET_H
#define MEDLEY_EXP_POLICYSET_H

#include "core/ExpertBuilder.h"
#include "core/ExpertRegistry.h"
#include "core/MixtureOfExperts.h"
#include "core/RolloutController.h"

#include <map>

namespace medley::exp {

/// Process-wide registry of trained policies.
class PolicySet {
public:
  /// The shared, lazily trained instance.
  static PolicySet &instance();

  explicit PolicySet(core::TrainingConfig Config =
                         core::TrainingConfig::standard());

  core::ExpertBuilder &builder() { return Builder; }

  /// Experts of granularity \p K (trained and cached on first use).
  std::shared_ptr<const std::vector<core::Expert>> experts(unsigned K);

  /// The per-expert training datasets of granularity \p K.
  const std::vector<core::BuiltExpert> &builtExperts(unsigned K);

  /// Factory for one of the paper's policies: "default", "online",
  /// "offline", "analytic" or "mixture" (4 experts, regime selector).
  policy::PolicyFactory factory(const std::string &Name);

  /// Mixture factory with explicit granularity and selector kind
  /// ("regime", "accuracy", "binned", "perceptron", "hyperplane", "random"). \p Stats, if given, is shared
  /// by every instance the factory creates. \p Options configures each
  /// instance (e.g. pure-part memoization for fleet-scale hot paths).
  policy::PolicyFactory
  mixtureFactory(unsigned NumExperts, const std::string &SelectorKind,
                 std::shared_ptr<core::MoeStats> Stats = nullptr,
                 core::MixtureOptions Options = {});

  /// Mixture factory wrapped in the degradation ladder: the selector is
  /// decorated with a QuarantineSelector, and the policy degrades to
  /// DefaultPolicy behaviour whenever every expert is quarantined.
  /// \p Faults (optional, non-owning, NOT thread-safe) receives the
  /// degradation counters of every instance the factory creates — pass
  /// nullptr when instances run on multiple driver threads.
  policy::PolicyFactory
  hardenedMixtureFactory(unsigned NumExperts, const std::string &SelectorKind,
                         core::QuarantineOptions Quarantine = {},
                         support::FaultStats *Faults = nullptr,
                         std::shared_ptr<core::MoeStats> Stats = nullptr);

  /// Factory pinning the mixture to single expert \p Index of a
  /// \p NumExperts set (the Fig-15c single-expert bars).
  policy::PolicyFactory singleExpertFactory(unsigned NumExperts,
                                            size_t Index);

  /// The process-wide live expert registry, seeded on first use with the
  /// standard 4-expert set, the corpus feature scaler and the regime
  /// selector prototype (version 1). The lifecycle machinery (trainer,
  /// rollout) publishes retrained snapshots into it.
  std::shared_ptr<core::ExpertRegistry> liveRegistry();

  /// Registry-backed mixture factory ("mixture-live"): every instance
  /// follows liveRegistry() publications, swapping experts at decision-
  /// epoch boundaries while keeping its selector's learned state. The
  /// selector is quarantine-hardened so rollbacks can re-admit strikes.
  /// \p Rollout, if given, is serviced from the instances' decision loops
  /// — its single-threaded contract means such a factory must then create
  /// exactly one instance. \p Faults as in hardenedMixtureFactory.
  policy::PolicyFactory
  liveMixtureFactory(unsigned NumExperts, const std::string &SelectorKind,
                     std::shared_ptr<core::RolloutController> Rollout = nullptr,
                     core::QuarantineOptions Quarantine = {},
                     support::FaultStats *Faults = nullptr,
                     std::shared_ptr<core::MoeStats> Stats = nullptr);

  /// Policy names in the paper's presentation order.
  static const std::vector<std::string> &standardPolicies();

private:
  core::ExpertBuilder Builder;
  std::map<unsigned, std::vector<core::BuiltExpert>> Built;
  std::map<unsigned, std::shared_ptr<const std::vector<core::Expert>>>
      ExpertSets;
  bool HaveScaler = false;
  FeatureScaler Scaler;
  bool HaveOffline = false;
  std::shared_ptr<LinearModel> OfflineModel;
  std::shared_ptr<core::ExpertRegistry> LiveRegistry;
  uint64_t AnalyticSeedCounter = 0x5EED0;

  const FeatureScaler &featureScaler();
  const LinearModel &offlineModel();
  std::shared_ptr<core::ExpertSelector>
  selectorPrototype(unsigned NumExperts, const std::string &SelectorKind);
};

} // namespace medley::exp

#endif // MEDLEY_EXP_POLICYSET_H
