//===-- exp/PolicySet.cpp - Trained-policy registry ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/PolicySet.h"

#include "core/LiveMixture.h"
#include "policy/AnalyticPolicy.h"
#include "policy/DefaultPolicy.h"
#include "policy/OfflinePolicy.h"
#include "policy/OnlinePolicy.h"
#include "support/Error.h"

using namespace medley;
using namespace medley::exp;

PolicySet &PolicySet::instance() {
  static PolicySet Instance;
  return Instance;
}

PolicySet::PolicySet(core::TrainingConfig Config)
    : Builder(std::move(Config)) {}

const std::vector<core::BuiltExpert> &PolicySet::builtExperts(unsigned K) {
  auto It = Built.find(K);
  if (It == Built.end())
    It = Built.emplace(K, Builder.build(K)).first;
  return It->second;
}

std::shared_ptr<const std::vector<core::Expert>>
PolicySet::experts(unsigned K) {
  auto It = ExpertSets.find(K);
  if (It != ExpertSets.end())
    return It->second;
  auto Set = std::make_shared<std::vector<core::Expert>>();
  for (const core::BuiltExpert &B : builtExperts(K))
    Set->push_back(B.E);
  std::shared_ptr<const std::vector<core::Expert>> Shared = Set;
  ExpertSets.emplace(K, Shared);
  return Shared;
}

const FeatureScaler &PolicySet::featureScaler() {
  if (!HaveScaler) {
    Scaler = Builder.featureScaler();
    HaveScaler = true;
  }
  return Scaler;
}

const LinearModel &PolicySet::offlineModel() {
  if (!HaveOffline) {
    // The "offline" baseline reproduces the CGO'13 model the paper compares
    // against: trained on the evaluation machine under varying external
    // workload but *fixed* processor availability — that work predates the
    // dynamic-hardware setting, which is exactly why the paper finds it
    // "cannot adapt to new environments". (The Figure-14c aggregate model,
    // by contrast, is trained on the experts' full corpus; see
    // ExpertBuilder::monolithicThreadModel.)
    core::TrainingConfig Config = core::TrainingConfig::standard();
    Config.Platforms = {sim::MachineConfig::evaluationPlatform()};
    Config.SplitPlatformIndex = 0;
    Config.AvailabilityPeriod = 1e9; // Effectively static availability.
    core::ExpertBuilder OfflineBuilder(std::move(Config));
    OfflineModel =
        std::make_shared<LinearModel>(OfflineBuilder.monolithicThreadModel());
    HaveOffline = true;
  }
  return *OfflineModel;
}

std::shared_ptr<core::ExpertSelector>
PolicySet::selectorPrototype(unsigned NumExperts,
                             const std::string &SelectorKind) {
  FeatureScaler Scaler = featureScaler();

  if (SelectorKind == "perceptron")
    return std::make_shared<core::PerceptronSelector>(NumExperts, Scaler);
  if (SelectorKind == "hyperplane")
    return std::make_shared<core::HyperplaneSelector>(NumExperts, Scaler);
  if (SelectorKind == "accuracy")
    return std::make_shared<core::AccuracySelector>(NumExperts);
  if (SelectorKind == "binned")
    return std::make_shared<core::BinnedAccuracySelector>(NumExperts, Scaler);
  if (SelectorKind == "regime") {
    std::vector<int> Tags;
    for (const core::BuiltExpert &B : builtExperts(NumExperts)) {
      const std::string &Description = B.E.description();
      if (Description.rfind("uncontended", 0) == 0)
        Tags.push_back(0);
      else if (Description.rfind("contended", 0) == 0)
        Tags.push_back(1);
      else
        Tags.push_back(-1);
    }
    return std::make_shared<core::RegimeSelector>(std::move(Tags));
  }
  if (SelectorKind == "random")
    return std::make_shared<core::RandomSelector>(NumExperts, 0xAB1E);
  reportFatalError("unknown selector kind '" + SelectorKind + "'");
}

policy::PolicyFactory
PolicySet::mixtureFactory(unsigned NumExperts, const std::string &SelectorKind,
                          std::shared_ptr<core::MoeStats> Stats,
                          core::MixtureOptions Options) {
  auto Experts = experts(NumExperts);
  auto Prototype = selectorPrototype(NumExperts, SelectorKind);
  return [Experts, Prototype, Stats, Options]() {
    return std::make_unique<core::MixtureOfExperts>(
        Experts, Prototype->clone(), Stats, Options);
  };
}

policy::PolicyFactory PolicySet::hardenedMixtureFactory(
    unsigned NumExperts, const std::string &SelectorKind,
    core::QuarantineOptions Quarantine, support::FaultStats *Faults,
    std::shared_ptr<core::MoeStats> Stats) {
  auto Experts = experts(NumExperts);
  auto Prototype = selectorPrototype(NumExperts, SelectorKind);
  return [Experts, Prototype, Quarantine, Faults, Stats]() {
    auto Guarded = std::make_unique<core::QuarantineSelector>(
        Prototype->clone(), Quarantine, Faults);
    core::MixtureOptions Options;
    Options.Faults = Faults;
    return std::make_unique<core::MixtureOfExperts>(
        Experts, std::move(Guarded), Stats, Options);
  };
}

policy::PolicyFactory PolicySet::singleExpertFactory(unsigned NumExperts,
                                                     size_t Index) {
  auto Experts = experts(NumExperts);
  if (Index >= Experts->size())
    reportFatalError("single-expert index out of range");
  return [Experts, NumExperts, Index]() {
    return std::make_unique<core::MixtureOfExperts>(
        Experts, std::make_unique<core::FixedSelector>(NumExperts, Index));
  };
}

std::shared_ptr<core::ExpertRegistry> PolicySet::liveRegistry() {
  if (!LiveRegistry) {
    LiveRegistry = std::make_shared<core::ExpertRegistry>();
    LiveRegistry->publish(experts(4), featureScaler(),
                          selectorPrototype(4, "regime"));
  }
  return LiveRegistry;
}

policy::PolicyFactory PolicySet::liveMixtureFactory(
    unsigned NumExperts, const std::string &SelectorKind,
    std::shared_ptr<core::RolloutController> Rollout,
    core::QuarantineOptions Quarantine, support::FaultStats *Faults,
    std::shared_ptr<core::MoeStats> Stats) {
  auto Registry = liveRegistry();
  if (!Registry->current() ||
      Registry->current()->numExperts() != NumExperts)
    reportFatalError("live registry holds a different expert arity than "
                     "the requested live-mixture factory");
  auto Prototype = selectorPrototype(NumExperts, SelectorKind);
  return [Registry, Prototype, Rollout, Quarantine, Faults, Stats]() {
    auto Guarded = std::make_unique<core::QuarantineSelector>(
        Prototype->clone(), Quarantine, Faults);
    core::MixtureOptions Options;
    Options.Faults = Faults;
    return std::make_unique<core::LiveMixture>(
        Registry, std::move(Guarded), Rollout, Stats, Options);
  };
}

policy::PolicyFactory PolicySet::factory(const std::string &Name) {
  if (Name == "default")
    return [] { return std::make_unique<policy::DefaultPolicy>(); };
  if (Name == "online")
    return [] { return std::make_unique<policy::OnlinePolicy>(); };
  if (Name == "offline") {
    LinearModel Model = offlineModel();
    return [Model] {
      return std::make_unique<policy::OfflinePolicy>(Model);
    };
  }
  if (Name == "analytic") {
    // Each instance gets its own deterministic probe stream.
    auto Counter = std::make_shared<uint64_t>(AnalyticSeedCounter);
    return [Counter] {
      policy::AnalyticPolicy::Options Options;
      Options.Seed = ++*Counter;
      return std::make_unique<policy::AnalyticPolicy>(Options);
    };
  }
  if (Name == "mixture")
    return mixtureFactory(4, "regime");
  if (Name == "mixture-hardened")
    return hardenedMixtureFactory(4, "regime");
  if (Name == "mixture-live")
    return liveMixtureFactory(4, "regime");
  reportFatalError("unknown policy '" + Name + "'");
}

const std::vector<std::string> &PolicySet::standardPolicies() {
  static const std::vector<std::string> Names = {"online", "offline",
                                                 "analytic", "mixture"};
  return Names;
}
