//===-- exp/Driver.cpp - Experiment driver -----------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

#include "policy/DefaultPolicy.h"
#include "support/Statistics.h"
#include "workload/Catalog.h"
#include "workload/LiveTrace.h"

#include <cassert>

using namespace medley;
using namespace medley::exp;

namespace {

/// FNV-1a over a string mixed with a seed; drives per-cell determinism.
uint64_t hashCell(uint64_t Seed, const std::string &Key) {
  uint64_t H = 14695981039346656037ULL ^ Seed;
  for (char C : Key) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

Driver::Driver(DriverOptions Options) : Options(Options) {
  assert(Options.Repeats >= 1 && "need at least one repeat");
}

runtime::CoExecutionConfig Driver::makeConfig(const Scenario &Scen,
                                              const std::string &SetName,
                                              const std::string &Target,
                                              unsigned Repeat) const {
  runtime::CoExecutionConfig Config;
  Config.Machine = Scen.Affinity ? Options.Machine.withAffinity()
                                 : Options.Machine;
  Config.Tick = Options.Tick;
  Config.MaxTime = Options.MaxTime;
  Config.RecordTraces = Options.RecordTraces;

  std::string CellKey = Scen.Name + "|" + SetName + "|" + Target + "|r" +
                        std::to_string(Repeat);
  uint64_t CellSeed = hashCell(Options.Seed, CellKey);
  Config.WorkloadSeed = CellSeed;
  // Per-program workload threads stay modest (the contention comes from
  // the *number* of co-running programs); this also keeps the runtime
  // features inside the regime the offline models were trained on.
  Config.WorkloadMaxThreads = std::max(2u, Options.Machine.TotalCores * 5 / 16);

  unsigned Cores = Config.Machine.TotalCores;
  switch (Scen.Hardware) {
  case HardwareChange::Static:
    Config.Availability = [Cores] {
      return std::make_unique<sim::StaticAvailability>(Cores);
    };
    break;
  case HardwareChange::Low:
  case HardwareChange::High: {
    double Period = Scen.availabilityPeriod();
    Config.Availability = [Cores, Period, CellSeed] {
      return sim::PeriodicAvailability::standardLadder(Cores, Period,
                                                       CellSeed ^ 0xCAFE);
    };
    break;
  }
  case HardwareChange::LiveTrace: {
    workload::LiveTraceData Trace =
        workload::generateLiveTrace(CellSeed ^ 0x11FE, Cores);
    auto Points = Trace.Availability;
    Config.Availability = [Points] {
      return std::make_unique<sim::TraceAvailability>(Points);
    };
    break;
  }
  }
  return Config;
}

std::vector<runtime::WorkloadProgramSetup>
Driver::makeWorkload(const Scenario &Scen, const workload::WorkloadSet *Set,
                     const policy::PolicyFactory *WorkloadPolicy,
                     uint64_t RepeatSeed) const {
  std::vector<runtime::WorkloadProgramSetup> Setups;
  if (!Set)
    return Setups;

  if (Scen.Hardware == HardwareChange::LiveTrace) {
    // Trace-driven demand carriers: the traced workload thread count is
    // split evenly across the carrier programs.
    workload::LiveTraceData Trace =
        workload::generateLiveTrace(RepeatSeed ^ 0x11FE,
                                    Options.Machine.TotalCores);
    size_t NumCarriers = Set->Programs.size();
    for (size_t I = 0; I < NumCarriers; ++I) {
      std::vector<std::pair<double, unsigned>> Share;
      Share.reserve(Trace.WorkloadThreads.size());
      for (const auto &[Time, Threads] : Trace.WorkloadThreads) {
        unsigned Part = Threads / NumCarriers;
        if (I < Threads % NumCarriers)
          ++Part;
        Share.emplace_back(Time, std::max(1u, Part));
      }
      runtime::WorkloadProgramSetup Setup;
      Setup.Spec = workload::Catalog::byName(Set->Programs[I]);
      Setup.Chooser = workload::traceChooser(std::move(Share));
      Setups.push_back(std::move(Setup));
    }
    return Setups;
  }

  for (const std::string &Name : Set->Programs) {
    runtime::WorkloadProgramSetup Setup;
    Setup.Spec = workload::Catalog::byName(Name);
    if (WorkloadPolicy)
      Setup.Policy = std::shared_ptr<policy::ThreadPolicy>(
          (*WorkloadPolicy)());
    Setups.push_back(std::move(Setup));
  }
  return Setups;
}

Measurement Driver::measure(const std::string &Target,
                            const policy::PolicyFactory &Factory,
                            const Scenario &Scen,
                            const workload::WorkloadSet *Set,
                            const policy::PolicyFactory *WorkloadPolicy) {
  const workload::ProgramSpec &Spec = workload::Catalog::byName(Target);
  std::string SetName = Set ? Set->Name : "none";

  Measurement Result;
  std::vector<double> Times, Throughputs;
  for (unsigned R = 0; R < Options.Repeats; ++R) {
    runtime::CoExecutionConfig Config = makeConfig(Scen, SetName, Target, R);
    uint64_t RepeatSeed = Config.WorkloadSeed;
    std::unique_ptr<policy::ThreadPolicy> Policy = Factory();
    runtime::CoExecutionResult Run = runCoExecution(
        Config, Spec, *Policy,
        makeWorkload(Scen, Set, WorkloadPolicy, RepeatSeed));
    Times.push_back(Run.TargetTime);
    Throughputs.push_back(Run.WorkloadThroughput);
    Result.Runs.push_back(std::move(Run));
  }
  Result.MeanTargetTime = mean(Times);
  Result.MeanWorkloadThroughput = mean(Throughputs);
  return Result;
}

const Measurement &
Driver::defaultMeasurement(const std::string &Target, const Scenario &Scen,
                           const workload::WorkloadSet *Set) {
  std::string Key =
      Scen.Name + "|" + (Set ? Set->Name : "none") + "|" + Target;
  auto It = DefaultCache.find(Key);
  if (It != DefaultCache.end())
    return It->second;

  policy::PolicyFactory Default = [] {
    return std::make_unique<policy::DefaultPolicy>();
  };
  Measurement M = measure(Target, Default, Scen, Set);
  return DefaultCache.emplace(Key, std::move(M)).first->second;
}

double Driver::speedup(const std::string &Target,
                       const policy::PolicyFactory &Factory,
                       const Scenario &Scen) {
  const std::vector<workload::WorkloadSet> &Sets = Scen.workloadSets();
  std::vector<double> PerSet;
  if (Sets.empty()) {
    const Measurement &Base = defaultMeasurement(Target, Scen, nullptr);
    Measurement M = measure(Target, Factory, Scen, nullptr);
    PerSet.push_back(Base.MeanTargetTime / M.MeanTargetTime);
  } else {
    for (const workload::WorkloadSet &Set : Sets) {
      const Measurement &Base = defaultMeasurement(Target, Scen, &Set);
      Measurement M = measure(Target, Factory, Scen, &Set);
      PerSet.push_back(Base.MeanTargetTime / M.MeanTargetTime);
    }
  }
  return harmonicMean(PerSet);
}

double Driver::workloadImpact(const std::string &Target,
                              const policy::PolicyFactory &Factory,
                              const Scenario &Scen) {
  const std::vector<workload::WorkloadSet> &Sets = Scen.workloadSets();
  assert(!Sets.empty() && "workload impact needs an external workload");
  std::vector<double> PerSet;
  for (const workload::WorkloadSet &Set : Sets) {
    const Measurement &Base = defaultMeasurement(Target, Scen, &Set);
    Measurement M = measure(Target, Factory, Scen, &Set);
    PerSet.push_back(M.MeanWorkloadThroughput /
                     Base.MeanWorkloadThroughput);
  }
  return harmonicMean(PerSet);
}
