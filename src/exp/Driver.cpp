//===-- exp/Driver.cpp - Experiment driver -----------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exp/Driver.h"

#include "policy/DefaultPolicy.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "workload/Catalog.h"
#include "workload/LiveTrace.h"

#include <cassert>
#include <map>
#include <sstream>

using namespace medley;
using namespace medley::exp;

namespace {

/// FNV-1a over a string mixed with a seed; drives per-cell determinism.
uint64_t hashCell(uint64_t Seed, const std::string &Key) {
  uint64_t H = 14695981039346656037ULL ^ Seed;
  for (char C : Key) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Everything per-driver that shapes a measurement, folded into the
/// process-wide baseline-cache key so differently configured drivers
/// never share entries.
std::string fingerprintOptions(const DriverOptions &Options) {
  const sim::MachineConfig &M = Options.Machine;
  std::ostringstream OS;
  OS << "n" << Options.Repeats << "|t" << Options.Tick << "|m"
     << Options.MaxTime << "|tr" << Options.RecordTraces << "|mc"
     << M.TotalCores << ";" << M.MemoryBandwidth << ";" << M.TotalMemoryMb
     << ";" << M.AffinityBenefit << ";" << M.ContextSwitchOverhead << ";"
     << M.BarrierConvoy << ";" << M.MemContentionExponent << ";"
     << M.MemFactorCap << ";" << M.SocketCount << ";" << M.InterSocketSync;
  if (!Options.Faults.empty()) {
    // Fault plans change every measurement; stream the full plan so
    // differently perturbed drivers never share baseline-cache entries.
    const sim::FaultPlan &P = Options.Faults;
    OS << "|fp" << P.CorruptionRate << ";" << P.DropoutRate << ";"
       << P.StormCores;
    auto Stream = [&OS](char Tag, const std::vector<sim::FaultWindow> &Ws) {
      OS << ";" << Tag;
      for (const sim::FaultWindow &W : Ws)
        OS << W.Begin << "," << W.End << ",";
    };
    Stream('d', P.SensorDropout);
    Stream('c', P.SensorCorruption);
    Stream('u', P.UnplugStorm);
    Stream('s', P.StaleMonitor);
  }
  return OS.str();
}

} // namespace

/// One repeat of one cell, fully prepared on the planning thread: the
/// config and workload are pure functions of the cell key, and the policy
/// instance is constructed in plan order so stateful factories (e.g. the
/// analytic policy's seed counter) see the sequential call sequence.
/// Workers only run the simulation.
struct Driver::PlannedRun {
  size_t Cell = 0; ///< Owning cell index in the plan.
  const workload::ProgramSpec *Spec = nullptr;
  runtime::CoExecutionConfig Config;
  std::unique_ptr<policy::ThreadPolicy> Policy;
  std::vector<runtime::WorkloadProgramSetup> Workload;
  runtime::CoExecutionResult Result;

  /// Failure-isolation bookkeeping (see DriverOptions::CellRetries).
  bool Failed = false;
  unsigned Attempts = 0;
  std::string Error;
};

Driver::Driver(DriverOptions Options)
    : Options(Options), OptionsFingerprint(fingerprintOptions(Options)) {
  assert(Options.Repeats >= 1 && "need at least one repeat");
}

Driver::~Driver() = default;

unsigned Driver::jobs() const {
  return Options.Jobs > 0 ? Options.Jobs : support::ThreadPool::defaultJobs();
}

runtime::CoExecutionConfig Driver::makeConfig(const Scenario &Scen,
                                              const std::string &SetName,
                                              const std::string &Target,
                                              unsigned Repeat) const {
  runtime::CoExecutionConfig Config;
  Config.Machine = Scen.Affinity ? Options.Machine.withAffinity()
                                 : Options.Machine;
  Config.Tick = Options.Tick;
  Config.MaxTime = Options.MaxTime;
  Config.RecordTraces = Options.RecordTraces;

  std::string CellKey = Scen.Name + "|" + SetName + "|" + Target + "|r" +
                        std::to_string(Repeat);
  uint64_t CellSeed = hashCell(Options.Seed, CellKey);
  Config.WorkloadSeed = CellSeed;
  // Per-program workload threads stay modest (the contention comes from
  // the *number* of co-running programs); this also keeps the runtime
  // features inside the regime the offline models were trained on.
  Config.WorkloadMaxThreads = std::max(2u, Options.Machine.TotalCores * 5 / 16);

  unsigned Cores = Config.Machine.TotalCores;
  switch (Scen.Hardware) {
  case HardwareChange::Static:
    Config.Availability = [Cores] {
      return std::make_unique<sim::StaticAvailability>(Cores);
    };
    break;
  case HardwareChange::Low:
  case HardwareChange::High: {
    double Period = Scen.availabilityPeriod();
    Config.Availability = [Cores, Period, CellSeed] {
      return sim::PeriodicAvailability::standardLadder(Cores, Period,
                                                       CellSeed ^ 0xCAFE);
    };
    break;
  }
  case HardwareChange::LiveTrace: {
    workload::LiveTraceData Trace =
        workload::generateLiveTrace(CellSeed ^ 0x11FE, Cores);
    auto Points = Trace.Availability;
    Config.Availability = [Points] {
      return std::make_unique<sim::TraceAvailability>(Points);
    };
    break;
  }
  }

  if (!Options.Faults.empty()) {
    sim::FaultPlan Plan = Options.Faults;
    uint64_t FaultSeed = CellSeed ^ 0xFA17FA17ULL;
    Config.Faults = [Plan, FaultSeed] {
      return std::make_unique<sim::FaultInjector>(Plan, FaultSeed);
    };
  }
  return Config;
}

std::vector<runtime::WorkloadProgramSetup>
Driver::makeWorkload(const Scenario &Scen, const workload::WorkloadSet *Set,
                     const policy::PolicyFactory *WorkloadPolicy,
                     uint64_t RepeatSeed) const {
  std::vector<runtime::WorkloadProgramSetup> Setups;
  if (!Set)
    return Setups;

  if (Scen.Hardware == HardwareChange::LiveTrace) {
    // Trace-driven demand carriers: the traced workload thread count is
    // split evenly across the carrier programs.
    workload::LiveTraceData Trace =
        workload::generateLiveTrace(RepeatSeed ^ 0x11FE,
                                    Options.Machine.TotalCores);
    size_t NumCarriers = Set->Programs.size();
    for (size_t I = 0; I < NumCarriers; ++I) {
      std::vector<std::pair<double, unsigned>> Share;
      Share.reserve(Trace.WorkloadThreads.size());
      for (const auto &[Time, Threads] : Trace.WorkloadThreads) {
        unsigned Part = Threads / NumCarriers;
        if (I < Threads % NumCarriers)
          ++Part;
        Share.emplace_back(Time, std::max(1u, Part));
      }
      runtime::WorkloadProgramSetup Setup;
      Setup.Spec = workload::Catalog::byName(Set->Programs[I]);
      Setup.Chooser = workload::traceChooser(std::move(Share));
      Setups.push_back(std::move(Setup));
    }
    return Setups;
  }

  for (const std::string &Name : Set->Programs) {
    runtime::WorkloadProgramSetup Setup;
    Setup.Spec = workload::Catalog::byName(Name);
    if (WorkloadPolicy)
      Setup.Policy = std::shared_ptr<policy::ThreadPolicy>(
          (*WorkloadPolicy)());
    Setups.push_back(std::move(Setup));
  }
  return Setups;
}

std::string Driver::baselineKey(const std::string &Target,
                                const Scenario &Scen,
                                const workload::WorkloadSet *Set) const {
  std::string SetName = Set ? Set->Name : "none";
  std::string CellKey = Scen.Name + "|" + SetName + "|" + Target;
  // The repeat-0 seed folds Options.Seed into the key; the fingerprint
  // covers everything else the measurement depends on.
  std::ostringstream OS;
  OS << CellKey << "|s" << std::hex << hashCell(Options.Seed, CellKey + "|r0")
     << "|" << OptionsFingerprint;
  return OS.str();
}

void Driver::executeRuns(std::vector<PlannedRun> &Runs) {
  // Cell isolation: a run that throws is retried from a clean policy
  // state; a run that exhausts the retry budget is recorded as failed
  // with a MaxTime penalty instead of aborting the whole plan. The
  // workload setups are copied per attempt because runCoExecution
  // consumes them.
  unsigned MaxAttempts = 1 + Options.CellRetries;
  auto Execute = [MaxAttempts](PlannedRun &Run) {
    for (unsigned A = 0; A < MaxAttempts; ++A) {
      try {
        if (A > 0) {
          Run.Policy->reset();
          for (runtime::WorkloadProgramSetup &Setup : Run.Workload)
            if (Setup.Policy)
              Setup.Policy->reset();
        }
        std::vector<runtime::WorkloadProgramSetup> Workload = Run.Workload;
        Run.Result = runCoExecution(Run.Config, *Run.Spec, *Run.Policy,
                                    std::move(Workload));
        Run.Attempts = A + 1;
        return;
      } catch (const std::exception &E) {
        Run.Error = E.what();
      } catch (...) {
        Run.Error = "non-standard exception";
      }
    }
    Run.Failed = true;
    Run.Attempts = MaxAttempts;
    Run.Result = runtime::CoExecutionResult();
    Run.Result.TargetFinished = false;
    Run.Result.TargetTime = Run.Config.MaxTime;
  };
  unsigned Jobs = jobs();
  if (Jobs <= 1 || Runs.size() <= 1) {
    for (PlannedRun &Run : Runs)
      Execute(Run);
    return;
  }
  if (!Pool)
    Pool = std::make_unique<support::ThreadPool>(Jobs);
  Pool->parallelFor(Runs.size(), [&](size_t I) { Execute(Runs[I]); });
}

std::vector<std::shared_ptr<const Measurement>>
Driver::measureCells(const std::vector<CellSpec> &Cells) {
  std::vector<std::shared_ptr<const Measurement>> Results(Cells.size());

  policy::PolicyFactory Default = [] {
    return std::make_unique<policy::DefaultPolicy>();
  };

  // Plan: enumerate every (cell, repeat) run up front. Baseline cells are
  // served from the process-wide cache when possible and deduplicated
  // within the batch; everything else becomes planned runs. Policies are
  // instantiated here, sequentially in plan order — see PlannedRun.
  std::vector<PlannedRun> Runs;
  std::vector<std::string> BaselineKeys(Cells.size());
  std::vector<size_t> AliasOf(Cells.size(), SIZE_MAX);
  std::map<std::string, size_t> BaselineOwner;

  for (size_t C = 0; C < Cells.size(); ++C) {
    const CellSpec &Cell = Cells[C];
    assert(Cell.Scen && "cell without a scenario");
    const policy::PolicyFactory *Factory = Cell.Factory;
    if (!Factory) {
      std::string Key = baselineKey(Cell.Target, *Cell.Scen, Cell.Set);
      auto Owner = BaselineOwner.find(Key);
      if (Owner != BaselineOwner.end()) {
        AliasOf[C] = Owner->second; // Same baseline planned earlier this batch.
        continue;
      }
      if (auto Cached = BaselineCache::instance().lookup(Key)) {
        Results[C] = std::move(Cached);
        continue;
      }
      BaselineOwner.emplace(Key, C);
      BaselineKeys[C] = std::move(Key);
      Factory = &Default;
    }

    const workload::ProgramSpec &Spec = workload::Catalog::byName(Cell.Target);
    std::string SetName = Cell.Set ? Cell.Set->Name : "none";
    for (unsigned R = 0; R < Options.Repeats; ++R) {
      PlannedRun Run;
      Run.Cell = C;
      Run.Spec = &Spec;
      Run.Config = makeConfig(*Cell.Scen, SetName, Cell.Target, R);
      Run.Policy = (*Factory)();
      Run.Workload = makeWorkload(*Cell.Scen, Cell.Set, Cell.WorkloadPolicy,
                                  Run.Config.WorkloadSeed);
      Runs.push_back(std::move(Run));
    }
  }

  executeRuns(Runs);

  // Reduce in cell order, repeats in order — the exact arithmetic of the
  // sequential path, regardless of the execution interleaving above.
  for (size_t First = 0; First < Runs.size();) {
    size_t C = Runs[First].Cell;
    Measurement M;
    std::vector<double> Times, Throughputs;
    size_t Last = First;
    for (; Last < Runs.size() && Runs[Last].Cell == C; ++Last) {
      PlannedRun &Planned = Runs[Last];
      runtime::CoExecutionResult &Run = Planned.Result;
      Times.push_back(Run.TargetTime);
      Throughputs.push_back(Run.WorkloadThroughput);
      M.Faults.merge(Run.Faults);
      if (Planned.Attempts > 1)
        M.Faults.CellRetries += Planned.Attempts - 1;
      if (Planned.Failed) {
        ++M.Faults.CellFailures;
        CellFailure F;
        F.Repeat = static_cast<unsigned>(Last - First);
        F.Attempts = Planned.Attempts;
        F.Error = std::move(Planned.Error);
        M.Failures.push_back(std::move(F));
      }
      M.Runs.push_back(std::move(Run));
    }
    M.MeanTargetTime = mean(Times);
    M.MeanWorkloadThroughput = mean(Throughputs);
    if (!BaselineKeys[C].empty())
      Results[C] = BaselineCache::instance().insert(BaselineKeys[C],
                                                    std::move(M));
    else
      Results[C] = std::make_shared<const Measurement>(std::move(M));
    First = Last;
  }

  // Resolve within-batch baseline duplicates.
  for (size_t C = 0; C < Cells.size(); ++C)
    if (AliasOf[C] != SIZE_MAX)
      Results[C] = Results[AliasOf[C]];

  return Results;
}

Measurement Driver::measure(const std::string &Target,
                            const policy::PolicyFactory &Factory,
                            const Scenario &Scen,
                            const workload::WorkloadSet *Set,
                            const policy::PolicyFactory *WorkloadPolicy) {
  CellSpec Cell;
  Cell.Target = Target;
  Cell.Factory = &Factory;
  Cell.Scen = &Scen;
  Cell.Set = Set;
  Cell.WorkloadPolicy = WorkloadPolicy;
  return *measureCells({Cell}).front();
}

std::shared_ptr<const Measurement>
Driver::defaultMeasurement(const std::string &Target, const Scenario &Scen,
                           const workload::WorkloadSet *Set) {
  CellSpec Cell;
  Cell.Target = Target;
  Cell.Scen = &Scen;
  Cell.Set = Set;
  return measureCells({Cell}).front();
}

double Driver::speedup(const std::string &Target,
                       const policy::PolicyFactory &Factory,
                       const Scenario &Scen) {
  const std::vector<workload::WorkloadSet> &Sets = Scen.workloadSets();

  // One plan per speedup: baseline and policy cells for every set execute
  // together across the pool.
  std::vector<CellSpec> Cells;
  auto AddPair = [&](const workload::WorkloadSet *Set) {
    CellSpec Base;
    Base.Target = Target;
    Base.Scen = &Scen;
    Base.Set = Set;
    Cells.push_back(Base);
    CellSpec Policy = Base;
    Policy.Factory = &Factory;
    Cells.push_back(Policy);
  };
  if (Sets.empty())
    AddPair(nullptr);
  else
    for (const workload::WorkloadSet &Set : Sets)
      AddPair(&Set);

  auto Results = measureCells(Cells);
  std::vector<double> PerSet;
  for (size_t I = 0; I + 1 < Results.size(); I += 2)
    PerSet.push_back(Results[I]->MeanTargetTime /
                     Results[I + 1]->MeanTargetTime);
  return harmonicMean(PerSet);
}

double Driver::workloadImpact(const std::string &Target,
                              const policy::PolicyFactory &Factory,
                              const Scenario &Scen) {
  const std::vector<workload::WorkloadSet> &Sets = Scen.workloadSets();
  assert(!Sets.empty() && "workload impact needs an external workload");

  std::vector<CellSpec> Cells;
  for (const workload::WorkloadSet &Set : Sets) {
    CellSpec Base;
    Base.Target = Target;
    Base.Scen = &Scen;
    Base.Set = &Set;
    Cells.push_back(Base);
    CellSpec Policy = Base;
    Policy.Factory = &Factory;
    Cells.push_back(Policy);
  }

  auto Results = measureCells(Cells);
  std::vector<double> PerSet;
  for (size_t I = 0; I + 1 < Results.size(); I += 2)
    PerSet.push_back(Results[I + 1]->MeanWorkloadThroughput /
                     Results[I]->MeanWorkloadThroughput);
  return harmonicMean(PerSet);
}
