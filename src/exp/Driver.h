//===-- exp/Driver.h - Experiment driver ------------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs targets under policies in scenarios and turns completion times into
/// the paper's metrics: speedup over the OpenMP default (per benchmark,
/// averaged over the workload sets of a size class, repeats averaged, and
/// harmonic means for aggregates) and external-workload impact. Workload
/// behaviour and availability are seeded by (scenario, set, target, repeat)
/// only, so every policy faces the identical environment — the paper's
/// fair-comparison requirement.
///
/// Execution is organised as an explicit cell plan (see exp/Cell.h): every
/// entry point enumerates its (cell, repeat) runs up front, constructs the
/// policy instances sequentially in plan order, executes the independent
/// runs across a support::ThreadPool, and reduces in deterministic cell
/// order. Results are therefore bit-identical at every job count; baseline
/// cells are shared process-wide through exp::BaselineCache.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_DRIVER_H
#define MEDLEY_EXP_DRIVER_H

#include "exp/BaselineCache.h"
#include "exp/Cell.h"
#include "exp/Scenario.h"
#include "runtime/CoExecution.h"

#include <memory>

namespace medley::support {
class ThreadPool;
} // namespace medley::support

namespace medley::exp {

/// Driver-wide options.
struct DriverOptions {
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();
  unsigned Repeats = 3; ///< "Each experiment was repeated 3 times."
  uint64_t Seed = 0xD01;
  double Tick = 0.1;
  double MaxTime = 900.0;
  bool RecordTraces = false;
  /// Worker threads for cell execution. 0 = auto (the MEDLEY_JOBS
  /// environment variable, else the hardware concurrency); 1 = inline
  /// sequential execution. Results are identical at every value.
  unsigned Jobs = 0;

  /// Fault-injection plan applied to every run (empty = no injection).
  /// Each run derives its injector seed from the cell seed, so the fault
  /// streams obey the same determinism contract as everything else.
  sim::FaultPlan Faults;

  /// Retries a failed repeat gets before it is recorded as a CellFailure
  /// with a MaxTime penalty. A failing cell never aborts the plan.
  unsigned CellRetries = 1;
};

/// Executes experiment cells and computes speedups with baseline caching.
class Driver {
public:
  explicit Driver(DriverOptions Options = {});
  ~Driver();

  Driver(const Driver &) = delete;
  Driver &operator=(const Driver &) = delete;

  /// Runs \p Target under \p Factory against \p Set (null = isolated) in
  /// \p Scen, averaged over repeats. If \p WorkloadPolicy is non-null the
  /// workload programs adapt with fresh instances from it instead of the
  /// reproducible thread pattern (Section 7.4's smart workloads).
  Measurement measure(const std::string &Target,
                      const policy::PolicyFactory &Factory,
                      const Scenario &Scen, const workload::WorkloadSet *Set,
                      const policy::PolicyFactory *WorkloadPolicy = nullptr);

  /// Executes a batch of cells as one plan: baseline cells (null Factory)
  /// are served from the process-wide cache where possible and
  /// deduplicated within the batch, the remaining runs execute across the
  /// pool, and results are reduced in cell order. Returns one measurement
  /// per input cell, in order.
  std::vector<std::shared_ptr<const Measurement>>
  measureCells(const std::vector<CellSpec> &Cells);

  /// Speedup of \p Factory over the OpenMP default for \p Target in
  /// \p Scen: per-set time ratios, harmonically averaged over the
  /// scenario's workload sets (one ratio for isolated scenarios).
  double speedup(const std::string &Target,
                 const policy::PolicyFactory &Factory, const Scenario &Scen);

  /// Ratio of external-workload throughput under \p Factory to the
  /// throughput under the default policy (> 1 = the policy *helps* the
  /// workload; Fig 13a).
  double workloadImpact(const std::string &Target,
                        const policy::PolicyFactory &Factory,
                        const Scenario &Scen);

  /// The cached default-policy measurement for a cell. The returned entry
  /// is immutable and remains valid for the caller's lifetime, across
  /// further measurements and cache clears.
  std::shared_ptr<const Measurement>
  defaultMeasurement(const std::string &Target, const Scenario &Scen,
                     const workload::WorkloadSet *Set);

  const DriverOptions &options() const { return Options; }

  /// The resolved worker count this driver executes plans with.
  unsigned jobs() const;

  /// Clears the process-wide baseline cache (entries held by callers stay
  /// valid; only needed to force recomputation, e.g. in benchmarks).
  void clearCache() { BaselineCache::instance().clear(); }

private:
  struct PlannedRun;

  runtime::CoExecutionConfig makeConfig(const Scenario &Scen,
                                        const std::string &SetName,
                                        const std::string &Target,
                                        unsigned Repeat) const;

  std::vector<runtime::WorkloadProgramSetup>
  makeWorkload(const Scenario &Scen, const workload::WorkloadSet *Set,
               const policy::PolicyFactory *WorkloadPolicy,
               uint64_t RepeatSeed) const;

  /// Cache key of a baseline cell under this driver's options.
  std::string baselineKey(const std::string &Target, const Scenario &Scen,
                          const workload::WorkloadSet *Set) const;

  /// Runs every planned run, across the pool when jobs() > 1.
  void executeRuns(std::vector<PlannedRun> &Runs);

  DriverOptions Options;
  std::string OptionsFingerprint;
  std::unique_ptr<support::ThreadPool> Pool; ///< Created on first use.
};

} // namespace medley::exp

#endif // MEDLEY_EXP_DRIVER_H
