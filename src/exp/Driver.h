//===-- exp/Driver.h - Experiment driver ------------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs targets under policies in scenarios and turns completion times into
/// the paper's metrics: speedup over the OpenMP default (per benchmark,
/// averaged over the workload sets of a size class, repeats averaged, and
/// harmonic means for aggregates) and external-workload impact. Workload
/// behaviour and availability are seeded by (scenario, set, target, repeat)
/// only, so every policy faces the identical environment — the paper's
/// fair-comparison requirement.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_DRIVER_H
#define MEDLEY_EXP_DRIVER_H

#include "exp/Scenario.h"
#include "runtime/CoExecution.h"

#include <map>

namespace medley::exp {

/// Driver-wide options.
struct DriverOptions {
  sim::MachineConfig Machine = sim::MachineConfig::evaluationPlatform();
  unsigned Repeats = 3; ///< "Each experiment was repeated 3 times."
  uint64_t Seed = 0xD01;
  double Tick = 0.1;
  double MaxTime = 900.0;
  bool RecordTraces = false;
};

/// Mean results of the repeats of one (target, policy, scenario, set) cell.
struct Measurement {
  double MeanTargetTime = 0.0;
  double MeanWorkloadThroughput = 0.0;
  std::vector<runtime::CoExecutionResult> Runs;
};

/// Executes experiment cells and computes speedups with baseline caching.
class Driver {
public:
  explicit Driver(DriverOptions Options = {});

  /// Runs \p Target under \p Factory against \p Set (null = isolated) in
  /// \p Scen, averaged over repeats. If \p WorkloadPolicy is non-null the
  /// workload programs adapt with fresh instances from it instead of the
  /// reproducible thread pattern (Section 7.4's smart workloads).
  Measurement measure(const std::string &Target,
                      const policy::PolicyFactory &Factory,
                      const Scenario &Scen, const workload::WorkloadSet *Set,
                      const policy::PolicyFactory *WorkloadPolicy = nullptr);

  /// Speedup of \p Factory over the OpenMP default for \p Target in
  /// \p Scen: per-set time ratios, harmonically averaged over the
  /// scenario's workload sets (one ratio for isolated scenarios).
  double speedup(const std::string &Target,
                 const policy::PolicyFactory &Factory, const Scenario &Scen);

  /// Ratio of external-workload throughput under \p Factory to the
  /// throughput under the default policy (> 1 = the policy *helps* the
  /// workload; Fig 13a).
  double workloadImpact(const std::string &Target,
                        const policy::PolicyFactory &Factory,
                        const Scenario &Scen);

  /// The cached default-policy measurement for a cell.
  const Measurement &defaultMeasurement(const std::string &Target,
                                        const Scenario &Scen,
                                        const workload::WorkloadSet *Set);

  const DriverOptions &options() const { return Options; }

  /// Clears the baseline cache (only needed if options change).
  void clearCache() { DefaultCache.clear(); }

private:
  runtime::CoExecutionConfig makeConfig(const Scenario &Scen,
                                        const std::string &SetName,
                                        const std::string &Target,
                                        unsigned Repeat) const;

  std::vector<runtime::WorkloadProgramSetup>
  makeWorkload(const Scenario &Scen, const workload::WorkloadSet *Set,
               const policy::PolicyFactory *WorkloadPolicy,
               uint64_t RepeatSeed) const;

  DriverOptions Options;
  std::map<std::string, Measurement> DefaultCache;
};

} // namespace medley::exp

#endif // MEDLEY_EXP_DRIVER_H
