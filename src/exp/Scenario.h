//===-- exp/Scenario.h - Experimental scenarios -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's experimental scenarios (Section 6.4): an isolated static
/// system, the four dynamic settings (small/large workloads x low/high
/// frequency hardware change), and the live-trace case study (Section 7.5).
/// Affinity scheduling (Section 7.6) is a modifier on any scenario.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_EXP_SCENARIO_H
#define MEDLEY_EXP_SCENARIO_H

#include "workload/WorkloadSets.h"

#include <string>
#include <vector>

namespace medley::exp {

/// Hardware-change frequency (Section 6.4: low = every 20 s, high = 10 s).
enum class HardwareChange { Static, Low, High, LiveTrace };

/// One experimental setting.
struct Scenario {
  std::string Name;
  /// "", "small" or "large"; empty = isolated (no external workload).
  std::string WorkloadSize;
  HardwareChange Hardware = HardwareChange::Static;
  bool Affinity = false;

  /// Availability change period in seconds (0 for static / trace-driven).
  double availabilityPeriod() const;

  /// Workload sets run under this scenario (empty for isolated).
  const std::vector<workload::WorkloadSet> &workloadSets() const;

  Scenario withAffinity() const;

  // The paper's named settings.
  static Scenario isolatedStatic();
  static Scenario smallLow();
  static Scenario smallHigh();
  static Scenario largeLow();
  static Scenario largeHigh();
  static Scenario liveStudy();

  /// The four dynamic scenarios of Figure 8, in presentation order.
  static const std::vector<Scenario> &dynamicScenarios();
};

} // namespace medley::exp

#endif // MEDLEY_EXP_SCENARIO_H
