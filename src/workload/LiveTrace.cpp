//===-- workload/LiveTrace.cpp - Live-system activity traces ---------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/LiveTrace.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::workload;

namespace {

/// Workload intensity regimes as fractions of machine capacity.
struct Regime {
  double Level;  ///< Mean demand as a fraction of cores.
  double Jitter; ///< Relative jitter applied per dwell period.
};

const Regime Regimes[3] = {
    {0.15, 0.30}, // quiet
    {0.45, 0.25}, // normal
    {0.85, 0.20}, // busy
};

unsigned demandAt(Rng &Generator, size_t RegimeIndex, unsigned MaxCores) {
  const Regime &R = Regimes[RegimeIndex];
  double Level = R.Level * (1.0 + Generator.uniform(-R.Jitter, R.Jitter));
  long Threads = std::lround(Level * static_cast<double>(MaxCores));
  return static_cast<unsigned>(std::clamp<long>(Threads, 1, 2L * MaxCores));
}

/// Markov transition: prefer staying, otherwise move to a neighbour regime.
size_t nextRegime(Rng &Generator, size_t Current) {
  double Draw = Generator.uniform();
  if (Draw < 0.55)
    return Current;
  if (Draw < 0.80)
    return Current == 0 ? 1 : Current - 1;
  return Current == 2 ? 1 : Current + 1;
}

} // namespace

LiveTraceData medley::workload::generateLiveTrace(uint64_t Seed,
                                                  unsigned MaxCores,
                                                  LiveTraceOptions Options) {
  assert(MaxCores >= 2 && "need at least two cores");
  assert(Options.Duration > 0.0 && Options.MeanDwell > 0.0 &&
         "invalid trace options");
  assert(Options.FailureStart >= 0.0 &&
         Options.FailureStart < Options.FailureEnd &&
         Options.FailureEnd <= 1.0 && "invalid failure window");

  Rng Generator(Seed);
  LiveTraceData Data;
  Data.Duration = Options.Duration;

  // Workload demand: regime-switching with exponential dwell times.
  size_t Current = 1; // Start in the "normal" regime.
  double Time = 0.0;
  while (Time < Options.Duration) {
    Data.WorkloadThreads.emplace_back(Time,
                                      demandAt(Generator, Current, MaxCores));
    double Dwell = -Options.MeanDwell * std::log(1.0 - Generator.uniform());
    Dwell = std::clamp(Dwell, 1.0, 5.0 * Options.MeanDwell);
    Time += Dwell;
    Current = nextRegime(Generator, Current);
  }
  if (Data.WorkloadThreads.empty() || Data.WorkloadThreads.front().first > 0.0)
    Data.WorkloadThreads.emplace(Data.WorkloadThreads.begin(), 0.0,
                                 MaxCores / 3);

  // Availability: full capacity except the failure window at half capacity
  // (Section 7.5: "a hardware failure such that half of the processors were
  // unavailable").
  double FailStart = Options.FailureStart * Options.Duration;
  double FailEnd = Options.FailureEnd * Options.Duration;
  Data.Availability.emplace_back(0.0, MaxCores);
  Data.Availability.emplace_back(FailStart, MaxCores / 2);
  Data.Availability.emplace_back(FailEnd, MaxCores);
  return Data;
}

std::vector<unsigned>
medley::workload::generateActivityLog(uint64_t Seed, unsigned HardwareContexts,
                                      size_t NumPoints) {
  assert(HardwareContexts >= 4 && NumPoints >= 2 && "invalid log request");
  Rng Generator(Seed);
  std::vector<unsigned> Log;
  Log.reserve(NumPoints);

  size_t Current = 1;
  double Level = Regimes[Current].Level;
  size_t DwellLeft = 0;
  for (size_t I = 0; I < NumPoints; ++I) {
    if (DwellLeft == 0) {
      Current = nextRegime(Generator, Current);
      DwellLeft = static_cast<size_t>(Generator.uniformInt(5, 60));
    }
    --DwellLeft;
    // Smooth toward the regime level with additive noise and rare spikes.
    Level += 0.2 * (Regimes[Current].Level - Level);
    double Noise = Generator.normal(0.0, 0.03);
    double Spike = Generator.bernoulli(0.01) ? Generator.uniform(0.1, 0.4) : 0.0;
    double Fraction = std::clamp(Level + Noise + Spike, 0.01, 1.0);
    Log.push_back(static_cast<unsigned>(
        std::lround(Fraction * static_cast<double>(HardwareContexts))));
  }
  return Log;
}
