//===-- workload/ThreadPattern.cpp - Workload thread choosers --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/ThreadPattern.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::workload;

ThreadPattern::ThreadPattern(uint64_t Seed, unsigned MinThreads,
                             unsigned MaxThreads, double ChangePeriod)
    : Seed(Seed), MinThreads(MinThreads), MaxThreads(MaxThreads),
      ChangePeriod(ChangePeriod), Generator(Seed) {
  assert(MinThreads >= 1 && MinThreads <= MaxThreads && "invalid range");
  assert(ChangePeriod > 0.0 && "change period must be positive");
  CurrentThreads = (MinThreads + MaxThreads) / 2;
}

unsigned ThreadPattern::threadsAt(double Time) {
  long Epoch = static_cast<long>(std::floor(Time / ChangePeriod));
  while (CurrentEpoch < Epoch) {
    ++CurrentEpoch;
    if (CurrentEpoch == 0)
      continue;
    // Steps of up to +/-2 keep the walk lively without teleporting.
    long Step = Generator.uniformInt(-2, 2);
    long Next = static_cast<long>(CurrentThreads) + Step;
    Next = std::clamp<long>(Next, MinThreads, MaxThreads);
    CurrentThreads = static_cast<unsigned>(Next);
  }
  return CurrentThreads;
}

ThreadChooser ThreadPattern::asChooser() {
  return [this](const RegionContext &Context) {
    return threadsAt(Context.Now);
  };
}

ThreadChooser ThreadPattern::makeChooser(uint64_t Seed, unsigned MinThreads,
                                         unsigned MaxThreads,
                                         double ChangePeriod) {
  auto Pattern = std::make_shared<ThreadPattern>(Seed, MinThreads, MaxThreads,
                                                 ChangePeriod);
  return [Pattern](const RegionContext &Context) {
    return Pattern->threadsAt(Context.Now);
  };
}

void ThreadPattern::reset() {
  Generator = Rng(Seed);
  CurrentEpoch = -1;
  CurrentThreads = (MinThreads + MaxThreads) / 2;
}

ThreadChooser medley::workload::traceChooser(
    std::vector<std::pair<double, unsigned>> Points) {
  assert(!Points.empty() && "trace chooser needs at least one point");
  auto Shared =
      std::make_shared<std::vector<std::pair<double, unsigned>>>(
          std::move(Points));
  return [Shared](const RegionContext &Context) -> unsigned {
    const auto &Trace = *Shared;
    auto It = std::upper_bound(
        Trace.begin(), Trace.end(), Context.Now,
        [](double T, const auto &Point) { return T < Point.first; });
    if (It == Trace.begin())
      return Trace.front().second;
    return std::prev(It)->second;
  };
}

ThreadChooser medley::workload::fixedChooser(unsigned Threads) {
  assert(Threads >= 1 && "fixed chooser needs a positive thread count");
  return [Threads](const RegionContext &) { return Threads; };
}
