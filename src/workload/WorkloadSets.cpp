//===-- workload/WorkloadSets.cpp - Table-3 workload sets -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/WorkloadSets.h"

#include "support/Error.h"
#include "workload/Catalog.h"

using namespace medley;
using namespace medley::workload;

static std::vector<WorkloadSet> canonicalized(std::vector<WorkloadSet> Sets) {
  for (WorkloadSet &Set : Sets)
    for (std::string &Name : Set.Programs)
      Name = Catalog::canonicalName(Name);
  return Sets;
}

const std::vector<WorkloadSet> &medley::workload::smallWorkloads() {
  static const std::vector<WorkloadSet> Sets = canonicalized({
      {"small-1", {"is", "cg"}},
      {"small-2", {"ammp", "fft"}},
  });
  return Sets;
}

const std::vector<WorkloadSet> &medley::workload::largeWorkloads() {
  static const std::vector<WorkloadSet> Sets = canonicalized({
      {"large-1", {"bt", "sp", "equake", "is", "cg", "art"}},
      {"large-2", {"bscholes", "lu", "bt", "sp", "fmine", "art", "mg"}},
  });
  return Sets;
}

const std::vector<WorkloadSet> &
medley::workload::workloadsBySize(const std::string &Size) {
  if (Size == "small")
    return smallWorkloads();
  if (Size == "large")
    return largeWorkloads();
  reportFatalError("unknown workload size '" + Size + "'");
}
