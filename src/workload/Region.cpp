//===-- workload/Region.cpp - Parallel region performance model -----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/Region.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::workload;

double medley::workload::regionRate(const RegionSpec &Region, unsigned Threads,
                                    const sim::CpuAllocation &Allocation) {
  assert(Threads >= 1 && "a region runs with at least one thread");
  double N = static_cast<double>(Threads);
  double Share = std::clamp(Allocation.CpuShare, 1e-6, 1.0);
  double Phi = std::clamp(Region.ParallelFraction, 0.0, 1.0);

  // Serial portion runs on one thread at its share; parallel portion runs
  // on all threads at their aggregate share.
  double SerialRate = Share;
  double ParallelRate = N * Share;
  double Nominal = 1.0 / ((1.0 - Phi) / SerialRate + Phi / ParallelRate);

  // Barriers pay the oversubscription convoy plus the inter-socket cost
  // once the thread team spans more than one socket.
  unsigned PerSocket = std::max(1u, Allocation.CoresPerSocket);
  double Spanned =
      static_cast<double>((Threads + PerSocket - 1) / PerSocket);
  double SocketFactor = 1.0 + Allocation.InterSocketSync * (Spanned - 1.0);
  double SyncPenalty = 1.0 + Region.SyncCost * (N - 1.0) *
                                 Allocation.BarrierFactor * SocketFactor;
  double MemPenalty =
      1.0 + Region.MemIntensity * (Allocation.MemFactor - 1.0);
  return Nominal / (SyncPenalty * MemPenalty);
}

double medley::workload::isolatedRegionSpeedup(
    const RegionSpec &Region, unsigned Threads,
    const sim::MachineConfig &Machine) {
  assert(Machine.valid() && "invalid machine");
  unsigned Cores = Machine.TotalCores;

  auto rateAt = [&](unsigned N) {
    sim::CpuAllocation Allocation;
    Allocation.AvailableCores = Cores;
    Allocation.RunnableThreads = N;
    Allocation.CoresPerSocket = Machine.coresPerSocket();
    Allocation.InterSocketSync = Machine.InterSocketSync;
    double Ratio = static_cast<double>(N) / Cores;
    Allocation.CpuShare = std::min(1.0, 1.0 / Ratio);
    if (Ratio > 1.0) {
      Allocation.CpuShare /=
          1.0 + Machine.ContextSwitchOverhead * (Ratio - 1.0);
      Allocation.BarrierFactor = 1.0 + Machine.BarrierConvoy * (Ratio - 1.0);
    }
    double Demand =
        static_cast<double>(N) * Region.MemIntensity * Allocation.CpuShare;
    double DemandRatio = Demand / Machine.MemoryBandwidth;
    Allocation.MemFactor =
        DemandRatio <= 1.0
            ? 1.0
            : std::min(std::pow(DemandRatio, Machine.MemContentionExponent),
                       Machine.MemFactorCap);
    return regionRate(Region, N, Allocation);
  };

  return rateAt(Threads) / rateAt(1);
}
