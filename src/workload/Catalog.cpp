//===-- workload/Catalog.cpp - Benchmark program catalog -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/Catalog.h"

#include "support/Error.h"

#include <algorithm>
#include <cmath>

using namespace medley;
using namespace medley::workload;

ProgramSpec medley::workload::makeProgramSpec(const ProgramTraits &Traits) {
  ProgramSpec Spec;
  Spec.Name = Traits.Name;
  Spec.Suite = Traits.Suite;
  Spec.Iterations = Traits.Iterations;
  Spec.WorkingSetMb = Traits.WorkingSetMb;

  double PerIteration =
      Traits.TotalWork / static_cast<double>(Traits.Iterations);

  // Three regions per iteration: a compute kernel, a memory sweep and a
  // reduction/synchronisation phase. Their parameters are derived from the
  // aggregate traits; shares are typical of iterative scientific codes.
  // The phases are deliberately heterogeneous (a nearly sync-free kernel, a
  // bandwidth-hungry sweep, a barrier-dominated reduction): the best thread
  // count then depends on *which* phase meets *which* environment, the
  // regime structure that defeats one-size-fits-all models (Section 1).
  struct Derivation {
    const char *Suffix;
    double Share;
    double PhiScale;   // Blends toward 1 (compute) or below phi (reduce).
    double MuScale;
    double SigmaScale;
  };
  static const Derivation Derivations[3] = {
      {"compute", 0.45, +0.30, 0.30, 0.2},
      {"sweep", 0.35, 0.00, 1.80, 0.6},
      {"reduce", 0.20, -0.05, 0.50, 3.0},
  };

  for (const Derivation &D : Derivations) {
    RegionSpec Region;
    Region.Name = Traits.Name + "." + D.Suffix;
    Region.Work = PerIteration * D.Share;
    if (D.PhiScale > 0.0)
      Region.ParallelFraction =
          Traits.ParallelFraction + (1.0 - Traits.ParallelFraction) * D.PhiScale;
    else
      Region.ParallelFraction =
          std::max(0.5, Traits.ParallelFraction + D.PhiScale);
    // Executed behaviour includes the hidden multipliers ...
    Region.SyncCost = Traits.SyncCost * D.SigmaScale * Traits.SyncHidden;
    Region.MemIntensity =
        std::min(0.95, Traits.MemIntensity * D.MuScale * Traits.MemHidden);
    // ... while the code features are *observables* derived from the
    // nominal instruction mix only: load/store density saturates with
    // memory intensity and branch density with synchronisation structure,
    // and neither sees the hidden irregularity. No single model over these
    // features can recover the executed costs exactly.
    double NominalMu = std::min(0.95, Traits.MemIntensity * D.MuScale);
    double NominalSigma = Traits.SyncCost * D.SigmaScale;
    Region.Code.LoadStoreRatio = 0.15 + 0.50 * std::sqrt(NominalMu);
    Region.Code.InstructionWeight = D.Share;
    Region.Code.BranchRatio =
        std::min(0.35, 0.04 + 1.1 * std::sqrt(NominalSigma));
    Spec.Regions.push_back(std::move(Region));
  }
  return Spec;
}

static std::vector<ProgramSpec> buildCatalog() {
  // Name, suite, total work, iterations, phi, sigma, mu, working set (MB),
  // hidden sync multiplier, hidden memory multiplier.
  // Parameters are calibrated so the NAS scalability split of Section 5.1
  // (isolated 32-core speedup >= P/4 = 8) lands as published behaviour
  // suggests: bt/ep/lu/sp scale, cg/ft/is/mg do not. Hidden multipliers
  // encode behaviour the instruction mix cannot see: structured dense codes
  // (bt, ep, blackscholes) behave better than their mix suggests, while
  // irregular pointer-chasing codes (cg, art, canneal, freqmine) behave
  // substantially worse.
  static const ProgramTraits Traits[] = {
      // NAS (training + evaluation).
      {"bt", "NAS", 520, 60, 0.990, 0.0040, 0.30, 1200, 0.75, 0.85},
      {"cg", "NAS", 130, 75, 0.950, 0.0250, 0.70, 800, 1.55, 1.30},
      {"ep", "NAS", 740, 50, 0.999, 0.0005, 0.05, 32, 0.70, 0.70},
      {"ft", "NAS", 200, 40, 0.970, 0.0080, 0.85, 5000, 1.15, 1.35},
      {"is", "NAS", 90, 45, 0.900, 0.0300, 0.60, 1000, 1.45, 1.20},
      {"lu", "NAS", 390, 70, 0.980, 0.0090, 0.40, 600, 0.85, 0.90},
      {"mg", "NAS", 140, 55, 0.960, 0.0200, 0.80, 3500, 1.40, 1.30},
      {"sp", "NAS", 460, 65, 0.985, 0.0060, 0.35, 1200, 0.80, 0.90},
      // SpecOMP (evaluation only).
      {"ammp", "SpecOMP", 300, 60, 0.975, 0.0100, 0.35, 160, 0.90, 0.95},
      {"applu", "SpecOMP", 360, 60, 0.980, 0.0080, 0.40, 1500, 0.85, 0.90},
      {"apsi", "SpecOMP", 260, 50, 0.970, 0.0120, 0.45, 1600, 1.05, 1.00},
      {"art", "SpecOMP", 110, 60, 0.930, 0.0280, 0.75, 3700, 1.50, 1.40},
      {"equake", "SpecOMP", 150, 55, 0.950, 0.0150, 0.70, 800, 1.30, 1.25},
      {"fma3d", "SpecOMP", 340, 60, 0.978, 0.0090, 0.38, 1000, 0.90, 0.95},
      {"swim", "SpecOMP", 160, 45, 0.960, 0.0100, 0.88, 1900, 1.10, 1.40},
      {"mgrid", "SpecOMP", 150, 50, 0.955, 0.0140, 0.78, 3400, 1.25, 1.30},
      {"wupwise", "SpecOMP", 420, 60, 0.990, 0.0050, 0.25, 1500, 0.80, 0.85},
      {"galgel", "SpecOMP", 230, 55, 0.965, 0.0160, 0.50, 400, 1.10, 1.05},
      // Parsec (evaluation only).
      {"blackscholes", "Parsec", 600, 80, 0.998, 0.0010, 0.10, 620, 0.70, 0.75},
      {"bodytrack", "Parsec", 210, 70, 0.960, 0.0260, 0.45, 500, 1.40, 1.10},
      {"swaptions", "Parsec", 560, 75, 0.997, 0.0015, 0.08, 110, 0.70, 0.75},
      {"freqmine", "Parsec", 240, 65, 0.940, 0.0240, 0.55, 1300, 1.50, 1.25},
      {"fluidanimate", "Parsec", 290, 70, 0.970, 0.0180, 0.50, 650, 1.15, 1.05},
      {"canneal", "Parsec", 130, 55, 0.920, 0.0200, 0.80, 950, 1.45, 1.40},
      {"streamcluster", "Parsec", 170, 60, 0.950, 0.0120, 0.85, 110, 1.10, 1.40},
      {"ferret", "Parsec", 330, 65, 0.980, 0.0100, 0.35, 130, 0.90, 0.95},
      {"vips", "Parsec", 350, 70, 0.982, 0.0080, 0.30, 180, 0.90, 0.90},
      {"x264", "Parsec", 300, 75, 0.975, 0.0120, 0.40, 480, 1.05, 1.00},
      {"dedup", "Parsec", 180, 60, 0.940, 0.0200, 0.60, 1300, 1.35, 1.20},
      {"facesim", "Parsec", 310, 60, 0.972, 0.0130, 0.42, 780, 1.00, 1.00},
  };

  std::vector<ProgramSpec> Specs;
  Specs.reserve(std::size(Traits));
  for (const ProgramTraits &T : Traits)
    // buildCatalog runs once inside allPrograms' function-local static.
    // medley-lint: allow(hotpath-escape) — one-time static initializer.
    Specs.push_back(makeProgramSpec(T));
  return Specs;
}

const std::vector<ProgramSpec> &Catalog::allPrograms() {
  static const std::vector<ProgramSpec> Programs = buildCatalog();
  return Programs;
}

std::string Catalog::canonicalName(const std::string &Name) {
  if (Name == "bscholes")
    return "blackscholes";
  if (Name == "btrack")
    return "bodytrack";
  if (Name == "fmine")
    return "freqmine";
  if (Name == "fft")
    return "ft";
  return Name;
}

const ProgramSpec &Catalog::byName(const std::string &Name) {
  std::string Canonical = canonicalName(Name);
  for (const ProgramSpec &Spec : allPrograms())
    if (Spec.Name == Canonical)
      return Spec;
  reportFatalError("unknown program '" + Name + "'");
}

bool Catalog::contains(const std::string &Name) {
  std::string Canonical = canonicalName(Name);
  for (const ProgramSpec &Spec : allPrograms())
    if (Spec.Name == Canonical)
      return true;
  return false;
}

std::vector<ProgramSpec> Catalog::bySuite(const std::string &Suite) {
  std::vector<ProgramSpec> Result;
  for (const ProgramSpec &Spec : allPrograms())
    if (Spec.Suite == Suite)
      Result.push_back(Spec);
  return Result;
}

const std::vector<std::string> &Catalog::evaluationTargets() {
  static const std::vector<std::string> Targets = {
      "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
      "ammp", "art", "equake", "blackscholes", "bodytrack", "freqmine"};
  return Targets;
}

const std::vector<std::string> &Catalog::trainingPrograms() {
  static const std::vector<std::string> Programs = {
      "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"};
  return Programs;
}
