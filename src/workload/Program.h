//===-- workload/Program.h - Executable program model -----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A program is a sequence of parallel regions executed for a number of
/// outer iterations (NAS-style time stepping). Before every region
/// execution the program consults a ThreadChooser — the hook every mapping
/// policy plugs into, mirroring the per-parallel-loop decision point of the
/// paper. Program implements sim::Task so the simulator schedules it.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_PROGRAM_H
#define MEDLEY_WORKLOAD_PROGRAM_H

#include "workload/Region.h"

#include <functional>
#include <memory>
#include <vector>

namespace medley::workload {

/// Static description of a whole program.
struct ProgramSpec {
  std::string Name;
  std::string Suite; ///< "NAS", "SpecOMP" or "Parsec".
  std::vector<RegionSpec> Regions;
  unsigned Iterations = 1; ///< Outer repetitions of the region sequence.
  double WorkingSetMb = 256.0;

  /// Total serial work across all iterations.
  double totalWork() const;

  /// Isolated whole-program speedup at \p Threads threads (work-weighted
  /// harmonic combination of region speedups); drives the Section-5.1
  /// scalability split.
  double isolatedSpeedup(unsigned Threads,
                         const sim::MachineConfig &Machine) const;
};

/// Everything a policy may look at when choosing a thread count.
struct RegionContext {
  const ProgramSpec *Program = nullptr;
  const RegionSpec *Region = nullptr;
  size_t RegionIndex = 0;
  size_t Iteration = 0;
  sim::EnvSample Env;    ///< Environment as seen by this program.
  double Now = 0.0;      ///< Simulated time.
  unsigned MaxThreads = 1; ///< Upper clamp (machine core count).

  /// The scheduler's environment epoch (CpuAllocation::EnvEpoch) at the
  /// decision: equal epochs prove Env is bit-identical apart from
  /// WorkloadThreads. 0 for contexts built outside the simulator.
  uint64_t EnvEpoch = 0;
};

/// Result of one completed region execution, fed back to policies.
struct RegionOutcome {
  const RegionSpec *Region = nullptr;
  unsigned Threads = 0;
  double Work = 0.0;     ///< Serial-work units completed.
  double Duration = 0.0; ///< Wall-clock seconds taken.
  double EndTime = 0.0;

  /// Observed progress rate (work per second).
  double rate() const { return Duration > 0.0 ? Work / Duration : 0.0; }
};

/// Decides the thread count for the upcoming region execution.
using ThreadChooser = std::function<unsigned(const RegionContext &)>;

/// Observes completed region executions (policy feedback, tracing).
using RegionObserver = std::function<void(const RegionOutcome &)>;

/// A running instance of a ProgramSpec.
class Program : public sim::Task {
public:
  /// \p MaxThreads clamps chooser decisions (normally the machine's total
  /// core count). If \p Looping, the program restarts upon completion and
  /// finished() never becomes true (external-workload behaviour: "each
  /// program runs until the other finishes").
  Program(ProgramSpec Spec, ThreadChooser Chooser, unsigned MaxThreads,
          bool Looping = false);

  /// Shared-spec constructor: tenant fleets instantiate the same catalog
  /// program tens of thousands of times, so instances share one immutable
  /// spec instead of copying its region vector per tenant.
  Program(std::shared_ptr<const ProgramSpec> Spec, ThreadChooser Chooser,
          unsigned MaxThreads, bool Looping = false);

  void setRegionObserver(RegionObserver Observer);

  // sim::Task interface.
  const std::string &name() const override { return Spec->Name; }
  unsigned activeThreads() const override { return CurrentThreads; }
  double memoryDemand() const override;
  double workingSetMb() const override { return Spec->WorkingSetMb; }
  void step(double Dt, const sim::CpuAllocation &Allocation) override;
  bool stepSteady(double Dt, const sim::CpuAllocation &Allocation) override;
  bool finished() const override;

  const ProgramSpec &spec() const { return *Spec; }

  /// The shared spec instance (alive as long as any instance uses it).
  const std::shared_ptr<const ProgramSpec> &sharedSpec() const { return Spec; }

  /// Wall-clock completion time of the (first) full run; meaningful once
  /// finished() or completedRuns() > 0.
  double completionTime() const { return CompletionTime; }

  /// Number of full runs completed (only > 1 when looping).
  size_t completedRuns() const { return CompletedRuns; }

  /// Region executions completed so far.
  size_t regionsExecuted() const { return RegionsExecuted; }

  /// Total serial-work units completed so far (across restarts when
  /// looping); the basis of workload-throughput measurements (Fig 13a).
  double workCompleted() const { return TotalWorkDone; }

private:
  void startNextRegion(const sim::CpuAllocation &Allocation, double Now);

  /// regionRate for the active region and current thread count under
  /// \p Allocation, memoized on the full argument tuple. regionRate is a
  /// pure function, so a hit returns exactly the bits a recomputation
  /// would; across steady ticks (same share/contention factors) the whole
  /// Amdahl/penalty evaluation collapses to a few compares.
  double cachedRegionRate(const sim::CpuAllocation &Allocation);

  std::shared_ptr<const ProgramSpec> Spec;
  ThreadChooser Chooser;
  unsigned MaxThreads;
  bool Looping;
  RegionObserver Observer;

  size_t RegionIndex = 0;
  size_t Iteration = 0;
  bool RegionActive = false;
  unsigned CurrentThreads = 1;
  double RegionProgress = 0.0;
  double RegionStart = 0.0;
  bool Done = false;
  double CompletionTime = 0.0;
  size_t CompletedRuns = 0;
  size_t RegionsExecuted = 0;
  double TotalWorkDone = 0.0;

  /// cachedRegionRate memo (single entry): key + value.
  bool RateValid = false;
  size_t RateRegionIndex = 0;
  unsigned RateThreads = 0;
  double RateShare = 0.0;
  double RateMemFactor = 0.0;
  double RateBarrierFactor = 0.0;
  unsigned RateCoresPerSocket = 0;
  double RateInterSocketSync = 0.0;
  double CachedRate = 0.0;
};

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_PROGRAM_H
