//===-- workload/Region.h - Parallel region performance model ---*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel region (OpenMP loop) model: static code features plus an
/// analytic performance model. The model captures the behaviours that make
/// thread selection non-trivial (paper Sections 3, 6-7):
///   * Amdahl-limited parallel speedup,
///   * per-thread synchronisation/barrier overhead (irregular programs such
///     as cg/mg lose performance with too many threads),
///   * memory-bandwidth contention shared across co-running programs,
///   * oversubscription losses when runnable threads exceed cores (folded
///     into the CPU share by the scheduler).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_REGION_H
#define MEDLEY_WORKLOAD_REGION_H

#include "sim/Machine.h"
#include "sim/Task.h"

#include <string>

namespace medley::workload {

/// Static code features of a region (paper features f1..f3), normalised to
/// the program as the paper prescribes.
struct CodeFeatures {
  double LoadStoreRatio = 0.0;    ///< f1: load/store count per instruction.
  double InstructionWeight = 0.0; ///< f2: region instructions / program total.
  double BranchRatio = 0.0;       ///< f3: branches per instruction.
};

/// Specification of one parallel region.
struct RegionSpec {
  std::string Name;

  /// Serial work per execution in CPU-seconds (time on one dedicated core).
  double Work = 1.0;

  /// Amdahl parallel fraction in [0, 1].
  double ParallelFraction = 0.95;

  /// Synchronisation overhead per extra thread: the region slows by a
  /// factor (1 + SyncCost * (n - 1)).
  double SyncCost = 0.01;

  /// Memory intensity in [0, 1]: both the bandwidth demand per thread and
  /// the sensitivity to memory contention.
  double MemIntensity = 0.3;

  CodeFeatures Code;
};

/// Progress rate (serial-work units per second) of \p Region run with
/// \p Threads threads under \p Allocation. Monotone in CpuShare; the
/// best-performing thread count depends on the environment, which is what
/// gives the thread-selection problem its content.
double regionRate(const RegionSpec &Region, unsigned Threads,
                  const sim::CpuAllocation &Allocation);

/// Isolated-machine speedup of \p Region at \p Threads threads on
/// \p Machine, relative to one thread. Used for the scalability split of
/// Section 5.1.
double isolatedRegionSpeedup(const RegionSpec &Region, unsigned Threads,
                             const sim::MachineConfig &Machine);

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_REGION_H
