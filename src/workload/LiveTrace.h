//===-- workload/LiveTrace.h - Live-system activity traces ------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators replacing the paper's 50-hour production log (Figure 1) and
/// its scaled-down replay (Section 7.5). We do not have the original log;
/// the regime-switching generator below reproduces its visual structure —
/// quiet plateaus, busy bursts, and a hardware-failure window during which
/// half the processors disappear — scaled to the simulated machine, which
/// is the same scaling the authors applied to their 12-core replay.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_LIVETRACE_H
#define MEDLEY_WORKLOAD_LIVETRACE_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace medley::workload {

/// A replayable live-system scenario.
struct LiveTraceData {
  /// Piecewise-constant external workload thread demand over time.
  std::vector<std::pair<double, unsigned>> WorkloadThreads;

  /// Piecewise-constant processor availability, including the failure
  /// window at half capacity.
  std::vector<std::pair<double, unsigned>> Availability;

  double Duration = 0.0;
};

/// Options for generateLiveTrace.
struct LiveTraceOptions {
  double Duration = 240.0;     ///< Replay length in simulated seconds.
  double MeanDwell = 8.0;      ///< Mean time between workload regime shifts.
  double FailureStart = 0.40;  ///< Failure window start (fraction of run).
  double FailureEnd = 0.60;    ///< Failure window end (fraction of run).
};

/// Generates the Section-7.5 case-study scenario for a machine with
/// \p MaxCores cores. Workload thread demand regime-switches between quiet,
/// normal and busy levels; availability drops to MaxCores/2 inside the
/// failure window (the paper's 2-of-50-hour hardware failure, scaled).
LiveTraceData generateLiveTrace(uint64_t Seed, unsigned MaxCores,
                                LiveTraceOptions Options = {});

/// Generates a Figure-1-style long activity log: \p NumPoints samples of
/// system-wide thread counts for a machine with \p HardwareContexts
/// contexts, with the bursty/plateau structure of the original figure.
std::vector<unsigned> generateActivityLog(uint64_t Seed,
                                          unsigned HardwareContexts,
                                          size_t NumPoints);

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_LIVETRACE_H
