//===-- workload/Program.cpp - Executable program model ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "workload/Program.h"

#include <algorithm>
#include <cassert>

using namespace medley;
using namespace medley::workload;

double ProgramSpec::totalWork() const {
  double Sum = 0.0;
  for (const RegionSpec &Region : Regions)
    Sum += Region.Work;
  return Sum * static_cast<double>(Iterations);
}

double ProgramSpec::isolatedSpeedup(unsigned Threads,
                                    const sim::MachineConfig &Machine) const {
  assert(!Regions.empty() && "program without regions");
  // Work-weighted harmonic combination: total time is the sum of per-region
  // times, each scaled by its own speedup.
  double TotalWork = 0.0, TotalTime = 0.0;
  for (const RegionSpec &Region : Regions) {
    double S = isolatedRegionSpeedup(Region, Threads, Machine);
    TotalWork += Region.Work;
    TotalTime += Region.Work / S;
  }
  return TotalWork / TotalTime;
}

Program::Program(ProgramSpec Spec, ThreadChooser Chooser, unsigned MaxThreads,
                 bool Looping)
    : Program(std::make_shared<const ProgramSpec>(std::move(Spec)),
              std::move(Chooser), MaxThreads, Looping) {}

Program::Program(std::shared_ptr<const ProgramSpec> Spec, ThreadChooser Chooser,
                 unsigned MaxThreads, bool Looping)
    : Spec(std::move(Spec)), Chooser(std::move(Chooser)),
      MaxThreads(MaxThreads), Looping(Looping) {
  assert(this->Spec && "program needs a spec");
  assert(!this->Spec->Regions.empty() && "program needs at least one region");
  assert(this->Spec->Iterations >= 1 &&
         "program needs at least one iteration");
  assert(MaxThreads >= 1 && "invalid thread clamp");
  assert(this->Chooser && "a thread chooser is required");
}

void Program::setRegionObserver(RegionObserver NewObserver) {
  Observer = std::move(NewObserver);
}

double Program::memoryDemand() const {
  if (Done || Spec->Regions.empty())
    return 0.0;
  const RegionSpec &Region = Spec->Regions[RegionIndex];
  return static_cast<double>(CurrentThreads) * Region.MemIntensity;
}

bool Program::finished() const { return Done; }

void Program::startNextRegion(const sim::CpuAllocation &Allocation,
                              double Now) {
  RegionContext Context;
  Context.Program = Spec.get();
  Context.Region = &Spec->Regions[RegionIndex];
  Context.RegionIndex = RegionIndex;
  Context.Iteration = Iteration;
  Context.Env = Allocation.Env;
  Context.Now = Now;
  Context.MaxThreads = MaxThreads;
  Context.EnvEpoch = Allocation.EnvEpoch;

  unsigned Chosen = Chooser(Context);
  CurrentThreads = std::clamp(Chosen, 1u, MaxThreads);
  RegionProgress = 0.0;
  RegionStart = Now;
  RegionActive = true;
}

double Program::cachedRegionRate(const sim::CpuAllocation &Allocation) {
  if (!RateValid || RateRegionIndex != RegionIndex ||
      RateThreads != CurrentThreads || RateShare != Allocation.CpuShare ||
      RateMemFactor != Allocation.MemFactor ||
      RateBarrierFactor != Allocation.BarrierFactor ||
      RateCoresPerSocket != Allocation.CoresPerSocket ||
      RateInterSocketSync != Allocation.InterSocketSync) {
    CachedRate =
        regionRate(Spec->Regions[RegionIndex], CurrentThreads, Allocation);
    RateRegionIndex = RegionIndex;
    RateThreads = CurrentThreads;
    RateShare = Allocation.CpuShare;
    RateMemFactor = Allocation.MemFactor;
    RateBarrierFactor = Allocation.BarrierFactor;
    RateCoresPerSocket = Allocation.CoresPerSocket;
    RateInterSocketSync = Allocation.InterSocketSync;
    RateValid = true;
  }
  return CachedRate;
}

bool Program::stepSteady(double Dt, const sim::CpuAllocation &Allocation) {
  // The fast path replicates exactly one arithmetic scenario of step():
  // an already-active region that does NOT complete within this tick. It
  // performs the same operations in the same order on the same values, so
  // its results are bit-identical; every other scenario (region start —
  // which reads Allocation.Env, completion, Done, degenerate Dt) declines
  // and lets the scheduler run the full step().
  if (Done || !RegionActive || !(Dt > 1e-12))
    return false;
  const RegionSpec &Region = Spec->Regions[RegionIndex];
  double Rate = cachedRegionRate(Allocation);
  assert(Rate > 0.0 && "region cannot make progress");
  double WorkLeft = Region.Work - RegionProgress;
  double TimeNeeded = WorkLeft / Rate;
  if (!(TimeNeeded > Dt))
    return false; // Region completes this tick: slow path.
  RegionProgress += Rate * Dt;
  TotalWorkDone += Rate * Dt;
  return true;
}

void Program::step(double Dt, const sim::CpuAllocation &Allocation) {
  if (Done)
    return;
  double Remaining = Dt;
  while (Remaining > 1e-12 && !Done) {
    double LocalNow = Allocation.Now + (Dt - Remaining);
    if (!RegionActive)
      startNextRegion(Allocation, LocalNow);

    const RegionSpec &Region = Spec->Regions[RegionIndex];
    double Rate = cachedRegionRate(Allocation);
    assert(Rate > 0.0 && "region cannot make progress");

    double WorkLeft = Region.Work - RegionProgress;
    double TimeNeeded = WorkLeft / Rate;
    if (TimeNeeded > Remaining) {
      RegionProgress += Rate * Remaining;
      TotalWorkDone += Rate * Remaining;
      Remaining = 0.0;
      break;
    }

    // Region completes within this tick.
    Remaining -= TimeNeeded;
    TotalWorkDone += WorkLeft;
    double EndTime = Allocation.Now + (Dt - Remaining);
    ++RegionsExecuted;
    RegionActive = false;
    if (Observer) {
      RegionOutcome Outcome;
      Outcome.Region = &Region;
      Outcome.Threads = CurrentThreads;
      Outcome.Work = Region.Work;
      Outcome.Duration = EndTime - RegionStart;
      Outcome.EndTime = EndTime;
      Observer(Outcome);
    }

    // Advance to the next region / iteration / run.
    ++RegionIndex;
    if (RegionIndex == Spec->Regions.size()) {
      RegionIndex = 0;
      ++Iteration;
      if (Iteration == Spec->Iterations) {
        Iteration = 0;
        ++CompletedRuns;
        if (CompletedRuns == 1)
          CompletionTime = EndTime;
        if (!Looping) {
          Done = true;
          CurrentThreads = 0;
        }
      }
    }
  }
}
