//===-- workload/Catalog.h - Benchmark program catalog ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark catalog: synthetic models of the NAS, SpecOMP and Parsec
/// programs the paper evaluates (Section 6.2), parameterised so their
/// published qualitative behaviours hold — ep/blackscholes scale nearly
/// linearly, cg/mg/is/art are irregular and synchronisation-bound, ft/swim/
/// equake are memory-bandwidth bound. Only NAS programs are used for
/// training (Section 5.2.1); SpecOMP and Parsec stay unseen.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_CATALOG_H
#define MEDLEY_WORKLOAD_CATALOG_H

#include "workload/Program.h"

namespace medley::workload {

/// Aggregate characteristics from which a ProgramSpec's regions are derived.
struct ProgramTraits {
  std::string Name;
  std::string Suite;
  double TotalWork = 100.0; ///< Serial CPU-seconds over the whole run.
  unsigned Iterations = 50;
  double ParallelFraction = 0.95;
  double SyncCost = 0.01;
  double MemIntensity = 0.3;
  double WorkingSetMb = 256.0;

  /// Hidden behaviour multipliers: how much worse (or better) the program's
  /// *actual* synchronisation and memory behaviour is than its instruction
  /// mix suggests (barrier imbalance, access irregularity, locality). They
  /// scale the executed costs but are invisible in the code features —
  /// the part of program behaviour only behavioural training data can
  /// capture, which is why experts trained on behaviourally similar
  /// programs beat a single model fit to everything (paper Section 7.7).
  double SyncHidden = 1.0;
  double MemHidden = 1.0;
};

/// Expands aggregate traits into a three-region program (compute / memory
/// sweep / reduction) with per-region code features.
ProgramSpec makeProgramSpec(const ProgramTraits &Traits);

/// Catalog of every modelled program.
class Catalog {
public:
  /// All programs across the three suites.
  static const std::vector<ProgramSpec> &allPrograms();

  /// Looks up \p Name (aliases like "bscholes", "btrack", "fmine", "fft"
  /// are accepted). Fatal error if unknown.
  static const ProgramSpec &byName(const std::string &Name);

  /// True if \p Name (or an alias of it) exists.
  static bool contains(const std::string &Name);

  /// Programs of one suite ("NAS", "SpecOMP", "Parsec").
  static std::vector<ProgramSpec> bySuite(const std::string &Suite);

  /// Resolves paper-style aliases to catalog names.
  static std::string canonicalName(const std::string &Name);

  /// The target programs used throughout the evaluation figures.
  static const std::vector<std::string> &evaluationTargets();

  /// Training programs: the NAS suite only (Section 5.2.1).
  static const std::vector<std::string> &trainingPrograms();
};

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_CATALOG_H
