//===-- workload/WorkloadSets.h - Table-3 workload sets ---------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The external workload configurations of the paper's Table 3:
///   small: (i) is, cg            (ii) ammp, fft
///   large: (i) bt, sp, equake, is, cg, art
///          (ii) bscholes, lu, bt, sp, fmine, art, mg
/// Results in the evaluation are averaged over the sets of each size class.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_WORKLOADSETS_H
#define MEDLEY_WORKLOAD_WORKLOADSETS_H

#include <string>
#include <vector>

namespace medley::workload {

/// One external workload: a named list of co-executing programs.
struct WorkloadSet {
  std::string Name;
  std::vector<std::string> Programs;
};

/// The two "small" workload sets of Table 3.
const std::vector<WorkloadSet> &smallWorkloads();

/// The two "large" workload sets of Table 3.
const std::vector<WorkloadSet> &largeWorkloads();

/// Both size classes, keyed "small" / "large".
const std::vector<WorkloadSet> &workloadsBySize(const std::string &Size);

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_WORKLOADSETS_H
