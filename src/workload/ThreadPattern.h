//===-- workload/ThreadPattern.h - Workload thread choosers -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread choosers for external workload programs. The paper requires that
/// "the same external workload is reproduced for all evaluated policies";
/// these choosers make workload behaviour a deterministic function of time
/// and seed, independent of anything the target program does.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_WORKLOAD_THREADPATTERN_H
#define MEDLEY_WORKLOAD_THREADPATTERN_H

#include "support/Random.h"
#include "workload/Program.h"

#include <memory>
#include <utility>
#include <vector>

namespace medley::workload {

/// Piecewise-constant thread count following a seeded random walk: every
/// \p ChangePeriod seconds the level moves by at most one step on a ladder
/// between MinThreads and MaxThreads.
class ThreadPattern {
public:
  ThreadPattern(uint64_t Seed, unsigned MinThreads, unsigned MaxThreads,
                double ChangePeriod);

  /// Thread count in effect at \p Time (queried with non-decreasing Time).
  unsigned threadsAt(double Time);

  /// Wraps this pattern as a ThreadChooser. The chooser shares *this; keep
  /// the pattern alive for the lifetime of the program.
  ThreadChooser asChooser();

  /// Creates a heap-held pattern already wrapped as a chooser (the chooser
  /// keeps the pattern alive).
  static ThreadChooser makeChooser(uint64_t Seed, unsigned MinThreads,
                                   unsigned MaxThreads, double ChangePeriod);

  void reset();

private:
  uint64_t Seed;
  unsigned MinThreads;
  unsigned MaxThreads;
  double ChangePeriod;
  Rng Generator;
  long CurrentEpoch = -1;
  unsigned CurrentThreads;
};

/// Chooser that replays a fixed piecewise-constant (time, threads) trace;
/// used by the live-system case study.
ThreadChooser traceChooser(std::vector<std::pair<double, unsigned>> Points);

/// Chooser that always returns \p Threads.
ThreadChooser fixedChooser(unsigned Threads);

} // namespace medley::workload

#endif // MEDLEY_WORKLOAD_THREADPATTERN_H
