//===-- sim/SystemMonitor.h - /proc-style system monitor --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintains the machine-wide counters that back the runtime features:
/// run-queue length, 1-/5-minute load averages (EMA like the kernel's),
/// cached-memory fraction, and page free-list turnover. The simulation
/// updates the monitor once per tick; tasks read per-observer EnvSamples.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_SYSTEMMONITOR_H
#define MEDLEY_SIM_SYSTEMMONITOR_H

#include "sim/EnvSample.h"
#include "sim/Machine.h"
#include "support/Statistics.h"

namespace medley::sim {

/// Rolls machine activity into the sar-style counters of EnvSample.
class SystemMonitor {
public:
  explicit SystemMonitor(const MachineConfig &Config);

  /// Folds in one tick of activity.
  ///
  /// \param RunnableThreads machine-wide runnable thread count.
  /// \param AvailableCores cores usable this tick.
  /// \param UsedMemoryMb sum of resident working sets.
  /// \param Dt tick length in seconds.
  void update(unsigned RunnableThreads, unsigned AvailableCores,
              double UsedMemoryMb, double Dt);

  /// Environment as observed by a task that itself keeps
  /// \p ObserverThreads threads runnable (excluded from WorkloadThreads).
  EnvSample sample(unsigned ObserverThreads = 0) const;

  /// Machine-wide runnable thread count as of the last update. Only the
  /// WorkloadThreads field of sample() depends on the observer, so a
  /// caller sampling for many observers can take sample(0) once and
  /// rewrite that one field from this count (the simulator's tick loop
  /// does exactly that).
  unsigned runnable() const { return RunnableThreads; }

  /// The paper's scalar environment value for \p ObserverThreads' view.
  double envNorm(unsigned ObserverThreads = 0) const;

  /// Clears all counters back to their initial state.
  void reset();

  /// Monotonic state-change counter: bumped by update()/reset() only when
  /// some observable counter actually changed bitwise. Equal versions
  /// therefore prove that sample() returns bit-identical EnvSamples
  /// (modulo the observer-dependent WorkloadThreads field, which is a pure
  /// function of runnable() and the observer) — the proof the decision
  /// memo (DESIGN.md §16.5) builds its environment epoch from. The EMAs
  /// reach exact floating-point fixed points under a constant load, so
  /// the version really does go quiet on steady workloads.
  uint64_t version() const { return Version; }

private:
  MachineConfig Config;
  Ema Load1;
  Ema Load5;
  unsigned RunnableThreads = 0;
  unsigned AvailableCores = 0;
  double UsedMemoryMb = 0.0;
  double PageRate = 0.0;
  bool HasMemorySample = false;
  uint64_t Version = 0;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_SYSTEMMONITOR_H
