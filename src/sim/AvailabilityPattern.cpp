//===-- sim/AvailabilityPattern.cpp - Processor availability --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/AvailabilityPattern.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace medley;
using namespace medley::sim;

AvailabilityPattern::~AvailabilityPattern() = default;

StaticAvailability::StaticAvailability(unsigned Cores) : Cores(Cores) {
  assert(Cores > 0 && "a machine needs at least one core");
}

unsigned StaticAvailability::coresAt(double) { return Cores; }

double StaticAvailability::nextChangeAt(double) {
  return std::numeric_limits<double>::infinity();
}

PeriodicAvailability::PeriodicAvailability(std::vector<unsigned> Levels,
                                           double Period, uint64_t Seed)
    : Levels(std::move(Levels)), Period(Period), Seed(Seed), Generator(Seed) {
  assert(!this->Levels.empty() && "need at least one availability level");
  assert(Period > 0.0 && "period must be positive");
  assert(std::is_sorted(this->Levels.begin(), this->Levels.end()) &&
         "levels must be increasing");
  CurrentLevel = this->Levels.size() - 1; // Start fully available.
}

std::unique_ptr<PeriodicAvailability>
PeriodicAvailability::standardLadder(unsigned MaxCores, double Period,
                                     uint64_t Seed) {
  assert(MaxCores >= 4 && "ladder needs at least 4 cores");
  std::vector<unsigned> Levels = {MaxCores / 4, MaxCores / 2,
                                  3 * MaxCores / 4, MaxCores};
  return std::make_unique<PeriodicAvailability>(std::move(Levels), Period,
                                                Seed);
}

unsigned PeriodicAvailability::coresAt(double Time) {
  long Epoch = static_cast<long>(std::floor(Time / Period));
  // Advance the walk one epoch at a time so replays are exact regardless of
  // the tick length used by the caller.
  while (CurrentEpoch < Epoch) {
    ++CurrentEpoch;
    if (CurrentEpoch == 0)
      continue; // The initial level covers the first epoch.
    int Step = static_cast<int>(Generator.uniformInt(-1, 1));
    long Next = static_cast<long>(CurrentLevel) + Step;
    Next = std::clamp<long>(Next, 0, static_cast<long>(Levels.size()) - 1);
    CurrentLevel = static_cast<size_t>(Next);
  }
  return Levels[CurrentLevel];
}

double PeriodicAvailability::nextChangeAt(double Time) {
  if (Levels.size() == 1)
    return std::numeric_limits<double>::infinity();
  // The walk can only move at an epoch boundary. floor() here matches
  // coresAt exactly, so the caller's cached value transitions on the same
  // tick it would have by querying every tick.
  double Epoch = std::floor(Time / Period);
  return (Epoch + 1.0) * Period;
}

void PeriodicAvailability::reset() {
  Generator = Rng(Seed);
  CurrentEpoch = -1;
  CurrentLevel = Levels.size() - 1;
}

TraceAvailability::TraceAvailability(
    std::vector<std::pair<double, unsigned>> Points)
    : Points(std::move(Points)) {
  assert(!this->Points.empty() && "trace must have at least one point");
  assert(std::is_sorted(this->Points.begin(), this->Points.end(),
                        [](const auto &A, const auto &B) {
                          return A.first < B.first;
                        }) &&
         "trace points must be sorted by time");
}

unsigned TraceAvailability::coresAt(double Time) {
  // Find the last breakpoint at or before Time.
  auto It = std::upper_bound(
      Points.begin(), Points.end(), Time,
      [](double T, const auto &Point) { return T < Point.first; });
  if (It == Points.begin())
    return Points.front().second;
  return std::prev(It)->second;
}

double TraceAvailability::nextChangeAt(double Time) {
  auto It = std::upper_bound(
      Points.begin(), Points.end(), Time,
      [](double T, const auto &Point) { return T < Point.first; });
  if (It == Points.end())
    return std::numeric_limits<double>::infinity();
  return It->first;
}
