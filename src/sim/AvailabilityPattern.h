//===-- sim/AvailabilityPattern.h - Processor availability ------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models changes in the number of available processors over time. The paper
/// varies availability at two frequencies — every 20 s ("low") and every
/// 10 s ("high") — and replays a live-system trace including a hardware
/// failure that removes half the processors (Section 7.5).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_AVAILABILITYPATTERN_H
#define MEDLEY_SIM_AVAILABILITYPATTERN_H

#include "support/Random.h"

#include <memory>
#include <utility>
#include <vector>

namespace medley::sim {

/// Supplies the number of available cores at a (monotonically queried)
/// point in simulated time.
class AvailabilityPattern {
public:
  virtual ~AvailabilityPattern();

  /// Returns the core count in effect at \p Time. Queries are made with
  /// non-decreasing Time; stateful patterns rely on that.
  virtual unsigned coresAt(double Time) = 0;

  /// Earliest time strictly after \p Time at which coresAt may return a
  /// different value: the caller may cache coresAt(Time) on the half-open
  /// interval [Time, nextChangeAt(Time)). The default returns \p Time —
  /// "no guarantee, requery every tick" — so subclasses that don't
  /// override keep their exact pre-caching behaviour. Patterns with known
  /// breakpoints override to let the simulator skip per-tick queries.
  virtual double nextChangeAt(double Time) { return Time; }

  /// Resets any internal state so the pattern replays identically.
  virtual void reset() = 0;
};

/// A constant number of cores (the paper's "static" setting).
class StaticAvailability : public AvailabilityPattern {
public:
  explicit StaticAvailability(unsigned Cores);

  unsigned coresAt(double Time) override;
  double nextChangeAt(double Time) override; ///< Never changes: +infinity.
  void reset() override {}

private:
  unsigned Cores;
};

/// Availability that re-draws every \p Period seconds by randomly walking
/// across a ladder of levels (fractions of the maximum core count). This is
/// the paper's low-frequency (20 s) / high-frequency (10 s) hardware change.
class PeriodicAvailability : public AvailabilityPattern {
public:
  /// \p Levels are candidate core counts in increasing order; the walk moves
  /// at most one rung per period and never leaves the ladder.
  PeriodicAvailability(std::vector<unsigned> Levels, double Period,
                       uint64_t Seed);

  /// Builds the standard ladder {P/4, P/2, 3P/4, P} for a machine of
  /// \p MaxCores, starting at the top.
  static std::unique_ptr<PeriodicAvailability>
  standardLadder(unsigned MaxCores, double Period, uint64_t Seed);

  unsigned coresAt(double Time) override;
  double nextChangeAt(double Time) override; ///< Next period boundary.
  void reset() override;

private:
  std::vector<unsigned> Levels;
  double Period;
  uint64_t Seed;
  Rng Generator;
  long CurrentEpoch = -1;
  size_t CurrentLevel = 0;
};

/// Piecewise-constant availability replayed from (time, cores) breakpoints.
/// Used for the Figure-1 live trace and its half-capacity failure window.
class TraceAvailability : public AvailabilityPattern {
public:
  /// \p Points must be sorted by time; the first point should be at time 0.
  explicit TraceAvailability(std::vector<std::pair<double, unsigned>> Points);

  unsigned coresAt(double Time) override;
  double nextChangeAt(double Time) override; ///< Next breakpoint after Time.
  void reset() override {}

private:
  std::vector<std::pair<double, unsigned>> Points;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_AVAILABILITYPATTERN_H
