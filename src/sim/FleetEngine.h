//===-- sim/FleetEngine.h - Sharded fleet simulation engine -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scale axis of the project (DESIGN.md §16): N share-nothing machine
/// shards, each owning its own Simulation (TaskTable-backed task state,
/// per-tick Arena, SystemMonitor), its own churn Rng stream derived from
/// the fleet seed and the shard id, its own latency histogram and its own
/// per-round scratch arena. Shards never touch each other's state on the
/// tick path; the only cross-shard channel is a (dst, src) mailbox matrix
/// of tenant tokens, written by the source shard during its round and
/// drained by the destination in source-id order after the round barrier.
///
/// Determinism: every per-shard stream is derived from (fleet seed, shard
/// id), mailbox drains are src-ordered, and the two-level reduction merges
/// per-shard aggregates in shard-id order — so fleet results are
/// bit-identical at any worker count and any shard→worker placement, the
/// same discipline the experiment driver established in PR 1.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_FLEETENGINE_H
#define MEDLEY_SIM_FLEETENGINE_H

#include "sim/Simulation.h"
#include "support/Arena.h"
#include "support/Histogram.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <vector>

namespace medley::sim {

/// Configuration of a fleet of simulated machines.
struct FleetConfig {
  /// Number of share-nothing machine shards.
  unsigned NumShards = 16;

  /// Fleet master seed; every per-shard stream (churn, availability,
  /// faults) is derived from (Seed, shard id), never from placement.
  uint64_t Seed = 0xF1EE7;

  /// Scheduling quantum of every shard's simulation, in seconds.
  double Tick = 0.1;

  /// Machine model instantiated per shard.
  MachineConfig Machine;

  /// Availability pattern factory, one call per shard with that shard's
  /// derived seed. Required.
  std::function<std::unique_ptr<AvailabilityPattern>(unsigned Shard,
                                                     uint64_t ShardSeed)>
      Availability;

  /// Optional fault-injector factory (per-shard unplug storms, sensor
  /// faults); called once per shard, may return null for healthy shards.
  std::function<std::unique_ptr<FaultInjector>(unsigned Shard,
                                               uint64_t ShardSeed)>
      Faults;

  /// Materialises the tenant behind a mailbox token on its destination
  /// shard. Tokens — not task objects — cross shard boundaries, so a
  /// migrating tenant is rebuilt against the destination shard's own
  /// policy bindings and never carries references to its source shard.
  /// Required when the churn hook sends mail.
  std::function<std::shared_ptr<Task>(unsigned Shard, uint64_t Token)>
      TenantFactory;
};

/// Deterministic per-shard aggregates (no wall-clock quantities here; the
/// nondeterministic timing lives in the latency histograms).
struct FleetShardStats {
  uint64_t Ticks = 0;             ///< Simulation ticks executed.
  uint64_t ArrivalsDelivered = 0; ///< Tenants adopted from the mailbox.
  uint64_t DeparturesSent = 0;    ///< Tokens posted to other shards.
  uint64_t TasksAlive = 0;        ///< Live tenants after the last round.
  uint64_t RunnableThreads = 0;   ///< Runnable threads after the last round.
};

/// Fleet-wide reduction result: per-shard stats in shard-id order plus
/// their ordered merge and an order-sensitive checksum over the per-shard
/// values (two runs agree on the checksum iff they agree shard for shard).
struct FleetStats {
  std::vector<FleetShardStats> Shards;
  FleetShardStats Totals;
  uint64_t Checksum = 0;
};

/// Sink through which a shard's churn hook posts tenant tokens to other
/// shards (or to itself; self-mail is delivered next round like any
/// other). Write-side of the mailbox matrix: each (dst, src) slot is
/// written only by shard src, so no synchronisation is needed.
class MailSink {
public:
  void send(unsigned DstShard, uint64_t Token);

private:
  friend class FleetEngine;
  MailSink(class FleetEngine &Engine, unsigned SrcShard)
      : Engine(Engine), SrcShard(SrcShard) {}
  FleetEngine &Engine;
  unsigned SrcShard;
};

/// Per-round churn hook, invoked on the shard's worker after its ticks:
/// may remove tenants from the shard's simulation, post tokens via the
/// sink, and use the shard arena for transient pick lists (reset before
/// each invocation). \p Round is the 0-based round index. Must draw all
/// randomness from \p ChurnRng to stay placement-independent.
using ChurnHook = std::function<void(unsigned Shard, uint64_t Round,
                                     Rng &ChurnRng, Simulation &Sim,
                                     support::Arena &Scratch,
                                     MailSink &Sink)>;

/// N share-nothing machine shards driven rounds-at-a-time from a
/// ThreadPool under a fixed shard→slot plan.
class FleetEngine {
public:
  explicit FleetEngine(FleetConfig Config);
  ~FleetEngine();

  FleetEngine(const FleetEngine &) = delete;
  FleetEngine &operator=(const FleetEngine &) = delete;

  unsigned numShards() const { return static_cast<unsigned>(Shards.size()); }

  /// The shard's own simulation / churn stream / scratch arena. Outside a
  /// run these are safe from the caller; during run() they are owned by
  /// the shard's worker.
  Simulation &shardSim(unsigned Shard);
  Rng &shardChurnRng(unsigned Shard);
  support::Arena &shardArena(unsigned Shard);

  /// Derived seed of \p Shard (exposed so scenario builders can derive
  /// further per-shard streams that stay placement-independent).
  uint64_t shardSeed(unsigned Shard) const;

  /// Populates shards before the first round: \p Seeder runs once per
  /// shard with the shard's churn stream (deterministic, runs on the
  /// caller thread in shard-id order).
  void seedTenants(
      const std::function<void(unsigned Shard, Rng &ChurnRng,
                               Simulation &Sim)> &Seeder);

  /// Installs the per-round churn hook (may be null: no churn).
  void setChurnHook(ChurnHook Hook);

  /// Runs \p Rounds rounds of \p TicksPerRound ticks each. Shards are
  /// grouped into \p PlanSlots contiguous groups (0 = one slot per pool
  /// worker, capped at the shard count); each group is one unit of pool
  /// work per round. The grouping fixes which shards travel together —
  /// results are bit-identical for every plan, only wall-clock changes.
  void run(support::ThreadPool &Pool, uint64_t Rounds, unsigned TicksPerRound,
           unsigned PlanSlots = 0);

  /// The hot per-shard tick loop: exactly \p Ticks simulation steps with
  /// per-tick latency recording. No mailbox traffic, no churn, and — once
  /// per-shard capacities are warm — no heap allocation (the PR 4/6
  /// zero-alloc contract, enforced by bench_fleet's allocation counter
  /// and medley-lint L7/L12). Public so tests and the lint harness can
  /// drive a single shard.
  void stepShard(unsigned Shard, unsigned Ticks);

  /// Round phases around stepShard, exposed for tests: drainInbox adopts
  /// mailbox tokens in source-id order; runChurn invokes the churn hook.
  void drainInbox(unsigned Shard);
  void runChurn(unsigned Shard, uint64_t Round);

  /// Deterministic per-shard aggregates (valid between rounds / after
  /// run()).
  const FleetShardStats &shardStats(unsigned Shard) const;

  /// Per-shard tick-latency histogram (wall-clock; NOT deterministic).
  const support::LatencyHistogram &shardLatency(unsigned Shard) const;

  /// Two-level deterministic reduction: refreshes the liveness columns of
  /// every per-shard stat block, then merges them in shard-id order.
  FleetStats reduce() const;

  /// Merged tick-latency histogram (shard-id-ordered merge; the merge is
  /// commutative, so ordering is convention, not necessity).
  support::LatencyHistogram mergedLatency() const;

private:
  struct Shard;

  void postMail(unsigned DstShard, unsigned SrcShard, uint64_t Token);

  FleetConfig Config;
  ChurnHook Churn;
  std::vector<std::unique_ptr<Shard>> Shards;

  friend class MailSink;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_FLEETENGINE_H
