//===-- sim/FleetEngine.cpp - Sharded fleet simulation engine ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/FleetEngine.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace medley;
using namespace medley::sim;

namespace {

/// splitmix64 finaliser: the shard-seed derivation must scatter nearby
/// shard ids into unrelated streams, and must depend only on (fleet seed,
/// shard id) — never on placement.
uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Order-sensitive FNV-1a step over one 64-bit word.
uint64_t fnvStep(uint64_t Hash, uint64_t Value) {
  for (unsigned Byte = 0; Byte < 8; ++Byte) {
    Hash ^= (Value >> (Byte * 8)) & 0xFF;
    Hash *= 1099511628211ULL;
  }
  return Hash;
}

uint64_t fnvStats(uint64_t Hash, const FleetShardStats &S) {
  Hash = fnvStep(Hash, S.Ticks);
  Hash = fnvStep(Hash, S.ArrivalsDelivered);
  Hash = fnvStep(Hash, S.DeparturesSent);
  Hash = fnvStep(Hash, S.TasksAlive);
  Hash = fnvStep(Hash, S.RunnableThreads);
  return Hash;
}

} // namespace

/// The per-shard state block. Everything in here is owned exclusively by
/// the shard: during a round only the worker running the shard's slot
/// touches it (except the Inbox columns, each written by exactly one other
/// shard's worker under the round-phase barrier protocol).
struct FleetEngine::Shard {
  std::unique_ptr<Simulation> Sim;
  uint64_t Seed = 0;          ///< Derived (fleet seed, shard id) seed.
  Rng ChurnRng{0};            ///< Re-seeded in the engine constructor.
  support::Arena Scratch;     ///< Churn-hook transients; reset per round.
  support::LatencyHistogram Latency;
  FleetShardStats Stats;
  /// Inbox[Src]: tokens posted by shard Src this round, drained by this
  /// shard in Src order at the start of the next round.
  std::vector<std::vector<uint64_t>> Inbox;
};

void MailSink::send(unsigned DstShard, uint64_t Token) {
  Engine.postMail(DstShard, SrcShard, Token);
}

FleetEngine::FleetEngine(FleetConfig InConfig) : Config(std::move(InConfig)) {
  if (Config.NumShards == 0)
    reportFatalError("fleet engine with zero shards");
  if (!Config.Availability)
    reportFatalError("fleet engine without an availability factory");

  Shards.reserve(Config.NumShards);
  for (unsigned S = 0; S < Config.NumShards; ++S) {
    auto Block = std::make_unique<Shard>();
    Block->Seed = mix64(Config.Seed ^ (0x9E3779B97F4A7C15ULL * (S + 1)));
    Block->Sim = std::make_unique<Simulation>(
        Config.Machine, Config.Availability(S, Block->Seed), Config.Tick);
    if (Config.Faults)
      if (auto Injector = Config.Faults(S, Block->Seed))
        Block->Sim->setFaultInjector(std::move(Injector));
    // Distinct sub-stream per purpose: churn draws must not correlate with
    // the availability/fault streams derived from the same shard seed.
    Block->ChurnRng = Rng(mix64(Block->Seed ^ 0x517CC1B727220A95ULL));
    Block->Inbox.resize(Config.NumShards);
    Shards.push_back(std::move(Block));
  }
}

FleetEngine::~FleetEngine() = default;

Simulation &FleetEngine::shardSim(unsigned Shard) {
  assert(Shard < Shards.size());
  return *Shards[Shard]->Sim;
}

Rng &FleetEngine::shardChurnRng(unsigned Shard) {
  assert(Shard < Shards.size());
  return Shards[Shard]->ChurnRng;
}

support::Arena &FleetEngine::shardArena(unsigned Shard) {
  assert(Shard < Shards.size());
  return Shards[Shard]->Scratch;
}

uint64_t FleetEngine::shardSeed(unsigned Shard) const {
  assert(Shard < Shards.size());
  return Shards[Shard]->Seed;
}

void FleetEngine::seedTenants(
    const std::function<void(unsigned Shard, Rng &ChurnRng, Simulation &Sim)>
        &Seeder) {
  for (unsigned S = 0; S < Shards.size(); ++S) {
    Seeder(S, Shards[S]->ChurnRng, *Shards[S]->Sim);
    Shards[S]->Stats.TasksAlive = Shards[S]->Sim->numTasks();
    Shards[S]->Stats.RunnableThreads = Shards[S]->Sim->runnableThreads();
  }
}

void FleetEngine::setChurnHook(ChurnHook Hook) { Churn = std::move(Hook); }

void FleetEngine::stepShard(unsigned Shard, unsigned Ticks) {
  assert(Shard < Shards.size());
  struct Shard &S = *Shards[Shard];
  Simulation &Sim = *S.Sim;
  for (unsigned T = 0; T < Ticks; ++T) {
    // The tick-latency histogram measures the host, not the simulation:
    // it feeds the wall-clock half of the fleet result (p50..p99.9),
    // which is documented non-deterministic and never checksummed. The
    // deterministic half never reads these samples.
    // medley-lint: allow(nondeterminism) — host latency measurement.
    auto Begin = std::chrono::steady_clock::now();
    Sim.step();
    // medley-lint: allow(nondeterminism) — host latency measurement.
    auto End = std::chrono::steady_clock::now();
    S.Latency.record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Begin)
            .count()));
  }
  S.Stats.Ticks += Ticks;
  S.Stats.TasksAlive = Sim.numTasks();
  S.Stats.RunnableThreads = Sim.runnableThreads();
}

void FleetEngine::drainInbox(unsigned Shard) {
  assert(Shard < Shards.size());
  struct Shard &Dst = *Shards[Shard];
  // Source-id order: delivery order into the destination simulation (and
  // hence TaskTable insertion order, which fixes every later reduction
  // order) depends only on who sent what, never on worker interleaving.
  for (unsigned Src = 0; Src < Shards.size(); ++Src) {
    std::vector<uint64_t> &Box = Dst.Inbox[Src];
    if (Box.empty())
      continue;
    if (!Config.TenantFactory)
      reportFatalError("fleet mail delivered without a tenant factory");
    for (uint64_t Token : Box) {
      Dst.Sim->addTask(Config.TenantFactory(Shard, Token));
      ++Dst.Stats.ArrivalsDelivered;
    }
    Box.clear();
  }
  Dst.Stats.TasksAlive = Dst.Sim->numTasks();
  Dst.Stats.RunnableThreads = Dst.Sim->runnableThreads();
}

void FleetEngine::runChurn(unsigned Shard, uint64_t Round) {
  assert(Shard < Shards.size());
  if (!Churn)
    return;
  struct Shard &S = *Shards[Shard];
  S.Scratch.reset();
  MailSink Sink(*this, Shard);
  Churn(Shard, Round, S.ChurnRng, *S.Sim, S.Scratch, Sink);
  S.Stats.TasksAlive = S.Sim->numTasks();
  S.Stats.RunnableThreads = S.Sim->runnableThreads();
}

void FleetEngine::postMail(unsigned DstShard, unsigned SrcShard,
                           uint64_t Token) {
  assert(DstShard < Shards.size() && SrcShard < Shards.size());
  // (Dst, Src) slot: written only by Src's worker during the churn phase,
  // read only by Dst's worker during the next round's drain phase — the
  // phase barrier between them makes this a plain unsynchronised write.
  Shards[DstShard]->Inbox[SrcShard].push_back(Token);
  ++Shards[SrcShard]->Stats.DeparturesSent;
}

void FleetEngine::run(support::ThreadPool &Pool, uint64_t Rounds,
                      unsigned TicksPerRound, unsigned PlanSlots) {
  const unsigned NumShards = numShards();
  unsigned Slots = PlanSlots == 0 ? Pool.size() : PlanSlots;
  Slots = std::min(std::max(Slots, 1U), NumShards);

  // Fixed plan: slot I owns the contiguous shard range [Begin[I],
  // Begin[I+1]). The plan is a function of (NumShards, Slots) only — which
  // worker executes a slot varies run to run, but the shard grouping (and
  // thus every per-shard stream) does not.
  std::vector<unsigned> Begin(Slots + 1, 0);
  for (unsigned I = 0; I <= Slots; ++I)
    Begin[I] = static_cast<unsigned>(
        (static_cast<uint64_t>(NumShards) * I) / Slots);

  for (uint64_t Round = 0; Round < Rounds; ++Round) {
    // Phase 1 — adopt last round's mail, then tick. No shard writes
    // outside itself here, so phases 1 and 2 of *different* shards never
    // race; parallelFor's join is the barrier between the phases.
    Pool.parallelFor(Slots, [&](size_t Slot) {
      for (unsigned S = Begin[Slot]; S < Begin[Slot + 1]; ++S) {
        drainInbox(S);
        stepShard(S, TicksPerRound);
      }
    });
    // Phase 2 — churn: shards may post mail into other shards' inbox
    // columns (each column written by exactly one sender), drained only
    // after the next phase-1 barrier.
    Pool.parallelFor(Slots, [&](size_t Slot) {
      for (unsigned S = Begin[Slot]; S < Begin[Slot + 1]; ++S)
        runChurn(S, Round);
    });
  }
}

const FleetShardStats &FleetEngine::shardStats(unsigned Shard) const {
  assert(Shard < Shards.size());
  return Shards[Shard]->Stats;
}

const support::LatencyHistogram &
FleetEngine::shardLatency(unsigned Shard) const {
  assert(Shard < Shards.size());
  return Shards[Shard]->Latency;
}

FleetStats FleetEngine::reduce() const {
  FleetStats Out;
  Out.Shards.reserve(Shards.size());
  uint64_t Hash = 14695981039346656037ULL;
  for (const std::unique_ptr<Shard> &S : Shards) {
    FleetShardStats Stats = S->Stats;
    // Liveness columns re-read at reduction time so a reduce() between
    // rounds (or before any round) reflects the simulations as they are.
    Stats.TasksAlive = S->Sim->numTasks();
    Stats.RunnableThreads = S->Sim->runnableThreads();

    Out.Totals.Ticks += Stats.Ticks;
    Out.Totals.ArrivalsDelivered += Stats.ArrivalsDelivered;
    Out.Totals.DeparturesSent += Stats.DeparturesSent;
    Out.Totals.TasksAlive += Stats.TasksAlive;
    Out.Totals.RunnableThreads += Stats.RunnableThreads;
    Hash = fnvStats(Hash, Stats);
    Out.Shards.push_back(Stats);
  }
  Out.Checksum = Hash;
  return Out;
}

support::LatencyHistogram FleetEngine::mergedLatency() const {
  support::LatencyHistogram Merged;
  for (const std::unique_ptr<Shard> &S : Shards)
    Merged.merge(S->Latency);
  return Merged;
}
