//===-- sim/Simulation.h - Discrete-time machine simulation -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-time simulation loop: each tick it reads processor
/// availability, computes the fair CPU share and memory-contention factor
/// for the current task mix, advances every task, and refreshes the system
/// monitor. This substitutes for the paper's physical 32-core testbed (see
/// DESIGN.md §5).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_SIMULATION_H
#define MEDLEY_SIM_SIMULATION_H

#include "sim/AvailabilityPattern.h"
#include "sim/FaultInjector.h"
#include "sim/Machine.h"
#include "sim/SystemMonitor.h"
#include "sim/Task.h"

#include <functional>
#include <memory>

namespace medley::sim {

/// Owns the machine state and task set, and advances simulated time.
class Simulation {
public:
  /// \p Tick is the scheduling quantum in seconds.
  Simulation(MachineConfig Config,
             std::unique_ptr<AvailabilityPattern> Availability,
             double Tick = 0.1);

  /// Adds \p T to the machine; tasks may be added mid-simulation.
  void addTask(std::shared_ptr<Task> T);

  /// Removes a task (e.g. a finished workload program being replaced).
  void removeTask(const Task *T);

  /// Advances the simulation by one tick.
  void step();

  /// Steps until \p Done returns true or \p MaxTime is reached. Returns
  /// true if \p Done fired (false = timed out).
  bool runUntil(const std::function<bool()> &Done, double MaxTime);

  /// Registers a hook invoked after every tick (monitoring, logging).
  void addTickHook(std::function<void(Simulation &)> Hook);

  /// Installs a fault injector perturbing this simulation (null = none).
  /// Storm windows override the availability pattern, stale windows
  /// suppress monitor updates, and sensor faults corrupt the EnvSamples
  /// that tasks observe.
  void setFaultInjector(std::unique_ptr<FaultInjector> Injector);

  /// The installed injector, or null.
  const FaultInjector *faultInjector() const { return Faults.get(); }

  double now() const { return Time; }
  double tick() const { return Tick; }
  const MachineConfig &machine() const { return Config; }
  const SystemMonitor &monitor() const { return Monitor; }

  /// Cores available at the current time.
  unsigned availableCores();

  /// Total runnable threads across unfinished tasks.
  unsigned runnableThreads() const;

  size_t numTasks() const {
    compactTasks();
    return Tasks.size();
  }
  const std::vector<std::shared_ptr<Task>> &tasks() const {
    compactTasks();
    return Tasks;
  }

private:
  /// Squeezes out tombstoned (null) entries left by removeTask, keeping the
  /// surviving tasks in insertion order. Called before any code can observe
  /// the task list, so a null entry is never visible outside this class.
  void compactTasks() const;
  /// Per-task values gathered once per tick so each virtual accessor is
  /// called exactly once per task per tick.
  struct TaskTickState {
    Task *T = nullptr;
    unsigned Threads = 0;
    double Demand = 0.0;
  };

  MachineConfig Config;
  std::unique_ptr<AvailabilityPattern> Availability;
  std::unique_ptr<FaultInjector> Faults;
  double Tick;
  double Time = 0.0;
  SystemMonitor Monitor;
  /// Task list in insertion order. removeTask tombstones (nulls) the slot
  /// instead of erasing, so a burst of removals costs one compaction pass
  /// instead of one element-shifting erase each. Mutable so the const
  /// accessors can compact lazily; nulls never escape compactTasks.
  mutable std::vector<std::shared_ptr<Task>> Tasks;
  mutable size_t TombstonedTasks = 0;
  std::vector<std::function<void(Simulation &)>> TickHooks;
  std::vector<TaskTickState> Scratch; ///< Reused across ticks.
};

} // namespace medley::sim

#endif // MEDLEY_SIM_SIMULATION_H
