//===-- sim/Simulation.h - Discrete-time machine simulation -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-time simulation loop: each tick it reads processor
/// availability, computes the fair CPU share and memory-contention factor
/// for the current task mix, advances every task, and refreshes the system
/// monitor. This substitutes for the paper's physical 32-core testbed (see
/// DESIGN.md §5).
///
/// The tick loop is structured around three caches that are all
/// bit-identity-preserving (DESIGN.md §13): task state lives in a
/// struct-of-arrays TaskTable whose generation counter lets the per-tick
/// FP reductions (runnable threads, used memory, bandwidth demand — and
/// the share/contention factors derived from them, including the pow())
/// be reused verbatim across ticks where no column changed; processor
/// availability is queried only at pattern-declared change points; and
/// the environment sample is taken lazily, only on ticks where some task
/// takes the slow path (a fast-pathed task never reads its Env). With a
/// fault injector installed the loop reverts to the always-query,
/// always-sample schedule, because injectors draw seeded randomness once
/// per tick and skipping a call would shift the fault stream.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_SIMULATION_H
#define MEDLEY_SIM_SIMULATION_H

#include "sim/AvailabilityPattern.h"
#include "sim/FaultInjector.h"
#include "sim/Machine.h"
#include "sim/SystemMonitor.h"
#include "sim/Task.h"
#include "sim/TaskTable.h"
#include "support/Arena.h"

#include <functional>
#include <memory>

namespace medley::sim {

/// Owns the machine state and task set, and advances simulated time.
class Simulation {
public:
  /// \p Tick is the scheduling quantum in seconds.
  Simulation(MachineConfig Config,
             std::unique_ptr<AvailabilityPattern> Availability,
             double Tick = 0.1);

  /// Adds \p T to the machine; tasks may be added mid-simulation.
  void addTask(std::shared_ptr<Task> T);

  /// Removes a task (e.g. a finished workload program being replaced).
  void removeTask(const Task *T);

  /// Advances the simulation by one tick.
  void step();

  /// Steps until \p Done returns true or \p MaxTime is reached. Returns
  /// true if \p Done fired (false = timed out).
  bool runUntil(const std::function<bool()> &Done, double MaxTime);

  /// Registers a hook invoked after every tick (monitoring, logging).
  void addTickHook(std::function<void(Simulation &)> Hook);

  /// Installs a fault injector perturbing this simulation (null = none).
  /// Storm windows override the availability pattern, stale windows
  /// suppress monitor updates, and sensor faults corrupt the EnvSamples
  /// that tasks observe.
  void setFaultInjector(std::unique_ptr<FaultInjector> Injector);

  /// The installed injector, or null.
  const FaultInjector *faultInjector() const { return Faults.get(); }

  double now() const { return Time; }
  double tick() const { return Tick; }
  const MachineConfig &machine() const { return Config; }
  const SystemMonitor &monitor() const { return Monitor; }

  /// Cores available at the current time (always a live pattern query,
  /// with any fault override applied — never the step loop's cache).
  unsigned availableCores();

  /// Total runnable threads across unfinished tasks.
  unsigned runnableThreads() const;

  size_t numTasks() const { return Table.owners().size(); }
  const std::vector<std::shared_ptr<Task>> &tasks() const {
    return Table.owners();
  }

private:
  /// Recomputes the per-tick reductions and allocation scalars for
  /// \p Cores and the current table contents, caching them under the
  /// table generation. The accumulation order is insertion order, exactly
  /// as an uncached tick would compute it.
  void recomputeTickState(unsigned Cores);

  MachineConfig Config;
  std::unique_ptr<AvailabilityPattern> Availability;
  std::unique_ptr<FaultInjector> Faults;
  double Tick;
  double Time = 0.0;
  SystemMonitor Monitor;
  /// Task state, struct-of-arrays; iteration order is insertion order.
  TaskTable Table;
  std::vector<std::function<void(Simulation &)>> TickHooks;

  /// Per-tick transients (the slow-path task list); reset each tick,
  /// reaching zero heap traffic once at high-water capacity.
  support::Arena TickArena;

  /// Availability cache: coresAt() is constant on [Time, NextCoresChange),
  /// per AvailabilityPattern::nextChangeAt. Unused while faults are
  /// installed (storm overrides are drawn per tick).
  unsigned CachedCores = 0;
  double NextCoresChange = 0.0; ///< Sentinel set in ctor to force a query.

  /// Environment epoch handed to tasks via CpuAllocation::EnvEpoch:
  /// bumped whenever the monitor's observable state changed since the
  /// epoch was last assigned, and on every tick while a fault injector is
  /// installed (perturbEnv redraws seeded garbage each tick, so no two
  /// faulted ticks may share an epoch).
  uint64_t EnvEpoch = 0;
  uint64_t EpochMonitorVersion = ~0ULL; ///< Sentinel: first tick bumps.

  /// Reduction cache, valid for (CacheGeneration, CacheCores).
  bool TickCacheValid = false;
  uint64_t CacheGeneration = 0;
  unsigned CacheCores = 0;
  unsigned CachedRunnable = 0;
  double CachedUsedMemory = 0.0;
  /// Allocation handed to tasks; scalar fields refreshed with the
  /// reduction cache, Now per tick, Env only on the slow path.
  CpuAllocation BaseAlloc;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_SIMULATION_H
