//===-- sim/EnvSample.h - Runtime environment snapshot ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seven runtime features (f4..f10 of the paper's Table 1) observed by a
/// program at a point in time, mirroring the Linux `sar`/`/proc` counters the
/// original system sampled. The paper formalises the *environment* as the
/// norm of these features; scaledNorm implements that with thread-count
/// dimensioned components normalised by the machine size so no single
/// counter dominates.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_ENVSAMPLE_H
#define MEDLEY_SIM_ENVSAMPLE_H

#include "linalg/Vector.h"

#include <string>

namespace medley::sim {

/// One observation of the runtime environment (paper features f4..f10).
struct EnvSample {
  double WorkloadThreads = 0.0; ///< f4: threads of co-executing programs.
  double Processors = 0.0;      ///< f5: currently available processors.
  double RunQueue = 0.0;        ///< f6: runnable threads (sar runq-sz).
  double LoadAvg1 = 0.0;        ///< f7: 1-minute load average (ldavg-1).
  double LoadAvg5 = 0.0;        ///< f8: 5-minute load average (ldavg-5).
  double CachedMemory = 0.0;    ///< f9: cached/free memory fraction [0,1].
  double PageFreeRate = 0.0;    ///< f10: page free-list turnover rate.

  /// Returns the features as a 7-vector in f4..f10 order.
  Vec toVec() const;

  /// The paper's environment value ||e||: Euclidean norm of the runtime
  /// features with count-dimensioned components divided by \p CoreScale
  /// (the machine's total core count).
  double scaledNorm(double CoreScale) const;

  /// Names matching Table 1, index-aligned with toVec().
  static const std::vector<std::string> &featureNames();

  /// True when every field is a finite number.
  bool isFinite() const;

  /// Repairs a corrupted sample in place: non-finite fields are zeroed,
  /// negative counters are clamped to 0, and CachedMemory is clamped to
  /// [0, 1]. Returns the number of fields that needed repair — the first
  /// rung of the degradation ladder (DESIGN.md §9).
  unsigned sanitize();
};

} // namespace medley::sim

#endif // MEDLEY_SIM_ENVSAMPLE_H
