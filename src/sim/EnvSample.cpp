//===-- sim/EnvSample.cpp - Runtime environment snapshot ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/EnvSample.h"

#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::sim;

Vec EnvSample::toVec() const {
  return {WorkloadThreads, Processors, RunQueue, LoadAvg1,
          LoadAvg5,        CachedMemory, PageFreeRate};
}

double EnvSample::scaledNorm(double CoreScale) const {
  assert(CoreScale > 0.0 && "core scale must be positive");
  double Wt = WorkloadThreads / CoreScale;
  double P = Processors / CoreScale;
  double Rq = RunQueue / CoreScale;
  double L1 = LoadAvg1 / CoreScale;
  double L5 = LoadAvg5 / CoreScale;
  return std::sqrt(Wt * Wt + P * P + Rq * Rq + L1 * L1 + L5 * L5 +
                   CachedMemory * CachedMemory + PageFreeRate * PageFreeRate);
}

const std::vector<std::string> &EnvSample::featureNames() {
  static const std::vector<std::string> Names = {
      "workload threads", "processors",    "runq-sz", "ldavg-1",
      "ldavg-5",          "cached memory", "pages free list rate"};
  return Names;
}
