//===-- sim/EnvSample.cpp - Runtime environment snapshot ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/EnvSample.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::sim;

Vec EnvSample::toVec() const {
  return {WorkloadThreads, Processors, RunQueue, LoadAvg1,
          LoadAvg5,        CachedMemory, PageFreeRate};
}

double EnvSample::scaledNorm(double CoreScale) const {
  assert(CoreScale > 0.0 && "core scale must be positive");
  double Wt = WorkloadThreads / CoreScale;
  double P = Processors / CoreScale;
  double Rq = RunQueue / CoreScale;
  double L1 = LoadAvg1 / CoreScale;
  double L5 = LoadAvg5 / CoreScale;
  return std::sqrt(Wt * Wt + P * P + Rq * Rq + L1 * L1 + L5 * L5 +
                   CachedMemory * CachedMemory + PageFreeRate * PageFreeRate);
}

bool EnvSample::isFinite() const {
  return std::isfinite(WorkloadThreads) && std::isfinite(Processors) &&
         std::isfinite(RunQueue) && std::isfinite(LoadAvg1) &&
         std::isfinite(LoadAvg5) && std::isfinite(CachedMemory) &&
         std::isfinite(PageFreeRate);
}

unsigned EnvSample::sanitize() {
  unsigned Repaired = 0;
  auto Repair = [&Repaired](double &X, double Lo, double Hi) {
    if (std::isfinite(X) && X >= Lo && X <= Hi)
      return;
    X = std::isfinite(X) ? std::clamp(X, Lo, Hi) : 0.0;
    ++Repaired;
  };
  constexpr double Huge = 1e12; // Far beyond any plausible counter.
  Repair(WorkloadThreads, 0.0, Huge);
  Repair(Processors, 0.0, Huge);
  Repair(RunQueue, 0.0, Huge);
  Repair(LoadAvg1, 0.0, Huge);
  Repair(LoadAvg5, 0.0, Huge);
  Repair(CachedMemory, 0.0, 1.0);
  Repair(PageFreeRate, 0.0, Huge);
  return Repaired;
}

const std::vector<std::string> &EnvSample::featureNames() {
  static const std::vector<std::string> Names = {
      "workload threads", "processors",    "runq-sz", "ldavg-1",
      "ldavg-5",          "cached memory", "pages free list rate"};
  return Names;
}
