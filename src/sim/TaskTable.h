//===-- sim/TaskTable.h - Struct-of-arrays task state -----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's task set as a struct-of-arrays: one parallel column per
/// observable scheduling quantity (active threads, memory demand, working
/// set, finished flag), mirrored from the virtual Task accessors at add
/// time and after every slow-path step. The tick loop's reductions walk
/// the columns — contiguous, branch-predictable, no virtual dispatch —
/// and a generation counter tells the loop when any column changed so it
/// can reuse last tick's reduction results bit-for-bit (DESIGN.md §13).
///
/// Iteration order is insertion order throughout: the per-tick FP
/// reductions accumulate in task order, so removal tombstones a slot and
/// compaction erases stably. A tombstoned (null) slot is never visible
/// outside the table's own iteration helpers.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_TASKTABLE_H
#define MEDLEY_SIM_TASKTABLE_H

#include "sim/Task.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace medley::sim {

/// Struct-of-arrays mirror of every task's observable scheduling state.
class TaskTable {
public:
  /// Tombstone count at which the next compact() call actually compacts.
  /// Hoisted here (rather than re-derived at each call site) so every
  /// observation point — step, accessors, size queries — agrees on when
  /// the erase pass runs. 1 keeps the historical behaviour: nulls never
  /// survive past the next observation.
  static constexpr size_t CompactionThreshold = 1;

  /// Appends \p T, capturing its observable state into the columns.
  /// (Named adopt, not add, so medley-lint's name-based call resolution
  /// doesn't conflate it with the dataset/statistics add() methods on the
  /// decision path.)
  void adopt(std::shared_ptr<Task> T);

  /// Tombstones every slot holding \p T (releases the task now, compacts
  /// later). Bumps the generation.
  void remove(const Task *T);

  /// Erases tombstoned slots, preserving insertion order, once the count
  /// reaches CompactionThreshold; cheap no-op otherwise.
  void compact() const;

  /// Live (non-tombstoned) task count.
  size_t size() const { return Owners.size() - Tombstones; }

  /// Monotonic counter bumped whenever any column value or the membership
  /// changes. Equal generations guarantee bit-identical column contents,
  /// so per-tick reductions cached under a generation can be reused.
  uint64_t generation() const { return Generation; }

  /// Raw slot count including tombstones — the iteration bound for the
  /// column accessors below. Slots with ptr(I) == nullptr are tombstones.
  size_t slots() const { return Owners.size(); }

  Task *ptr(size_t I) const { return Ptrs[I]; }
  unsigned threads(size_t I) const { return Threads[I]; }
  double memoryDemand(size_t I) const { return Demand[I]; }
  double workingSetMb(size_t I) const { return WorkingSet[I]; }
  bool finished(size_t I) const { return Finished[I] != 0; }

  /// Re-reads slot \p I's accessors after a slow-path step and folds any
  /// changes into the columns, bumping the generation only when a value
  /// actually changed (steady ticks keep the reduction cache warm).
  void refresh(size_t I);

  /// The owning pointers in insertion order, compacted first so callers
  /// never see a tombstone.
  const std::vector<std::shared_ptr<Task>> &owners() const;

private:
  /// Insertion-order owners; a null entry is a tombstone left by remove().
  /// Mutable (with the columns) so const accessors can compact lazily.
  mutable std::vector<std::shared_ptr<Task>> Owners;
  mutable std::vector<Task *> Ptrs;
  mutable std::vector<unsigned> Threads;
  mutable std::vector<double> Demand;
  mutable std::vector<double> WorkingSet;
  mutable std::vector<uint8_t> Finished;
  mutable size_t Tombstones = 0;
  uint64_t Generation = 0;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_TASKTABLE_H
