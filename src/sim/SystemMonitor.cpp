//===-- sim/SystemMonitor.cpp - /proc-style system monitor -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/SystemMonitor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::sim;

SystemMonitor::SystemMonitor(const MachineConfig &Config)
    : Config(Config), Load1(60.0), Load5(300.0) {
  assert(Config.valid() && "invalid machine configuration");
  AvailableCores = Config.TotalCores;
}

void SystemMonitor::update(unsigned NewRunnable, unsigned NewCores,
                           double NewUsedMemoryMb, double Dt) {
  assert(Dt > 0.0 && "tick length must be positive");
  double PreviousMemory = UsedMemoryMb;
  RunnableThreads = NewRunnable;
  AvailableCores = NewCores;
  UsedMemoryMb = std::min(NewUsedMemoryMb, Config.TotalMemoryMb);

  Load1.update(static_cast<double>(NewRunnable), Dt);
  Load5.update(static_cast<double>(NewRunnable), Dt);

  // Page free-list turnover: memory allocation/release churn per second,
  // normalised by total memory. Smoothed to avoid a spiky feature.
  if (HasMemorySample) {
    double Churn =
        std::fabs(UsedMemoryMb - PreviousMemory) / (Config.TotalMemoryMb * Dt);
    PageRate = 0.8 * PageRate + 0.2 * std::min(Churn, 1.0);
  }
  HasMemorySample = true;
}

EnvSample SystemMonitor::sample(unsigned ObserverThreads) const {
  EnvSample Env;
  unsigned Others = RunnableThreads > ObserverThreads
                        ? RunnableThreads - ObserverThreads
                        : 0;
  Env.WorkloadThreads = static_cast<double>(Others);
  Env.Processors = static_cast<double>(AvailableCores);
  Env.RunQueue = static_cast<double>(RunnableThreads);
  Env.LoadAvg1 = Load1.value();
  Env.LoadAvg5 = Load5.value();
  Env.CachedMemory =
      1.0 - std::min(1.0, UsedMemoryMb / Config.TotalMemoryMb);
  Env.PageFreeRate = PageRate;
  return Env;
}

double SystemMonitor::envNorm(unsigned ObserverThreads) const {
  return sample(ObserverThreads)
      .scaledNorm(static_cast<double>(Config.TotalCores));
}

void SystemMonitor::reset() {
  Load1.reset();
  Load5.reset();
  RunnableThreads = 0;
  AvailableCores = Config.TotalCores;
  UsedMemoryMb = 0.0;
  PageRate = 0.0;
  HasMemorySample = false;
}
