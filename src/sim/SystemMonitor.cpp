//===-- sim/SystemMonitor.cpp - /proc-style system monitor -----------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/SystemMonitor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::sim;

SystemMonitor::SystemMonitor(const MachineConfig &Config)
    : Config(Config), Load1(60.0), Load5(300.0) {
  assert(Config.valid() && "invalid machine configuration");
  AvailableCores = Config.TotalCores;
}

void SystemMonitor::update(unsigned NewRunnable, unsigned NewCores,
                           double NewUsedMemoryMb, double Dt) {
  assert(Dt > 0.0 && "tick length must be positive");
  double PreviousMemory = UsedMemoryMb;
  double PreviousLoad1 = Load1.value();
  double PreviousLoad5 = Load5.value();
  double PreviousPageRate = PageRate;
  bool HadMemorySample = HasMemorySample;
  unsigned PreviousRunnable = RunnableThreads;
  unsigned PreviousCores = AvailableCores;

  RunnableThreads = NewRunnable;
  AvailableCores = NewCores;
  UsedMemoryMb = std::min(NewUsedMemoryMb, Config.TotalMemoryMb);

  Load1.update(static_cast<double>(NewRunnable), Dt);
  Load5.update(static_cast<double>(NewRunnable), Dt);

  // Page free-list turnover: memory allocation/release churn per second,
  // normalised by total memory. Smoothed to avoid a spiky feature.
  if (HasMemorySample) {
    double Churn =
        std::fabs(UsedMemoryMb - PreviousMemory) / (Config.TotalMemoryMb * Dt);
    PageRate = 0.8 * PageRate + 0.2 * std::min(Churn, 1.0);
  }
  HasMemorySample = true;

  // Bitwise change detection (== on doubles is deliberate): under a
  // constant runnable count the EMAs converge to exact fixed points, at
  // which point updates stop bumping the version and downstream decision
  // memos (keyed on the simulation's environment epoch) start hitting.
  // medley-lint: allow(float-equality) — exact-fixed-point detection.
  if (PreviousRunnable != RunnableThreads || PreviousCores != AvailableCores ||
      PreviousMemory != UsedMemoryMb || PreviousLoad1 != Load1.value() ||
      PreviousLoad5 != Load5.value() || PreviousPageRate != PageRate ||
      !HadMemorySample)
    ++Version;
}

EnvSample SystemMonitor::sample(unsigned ObserverThreads) const {
  EnvSample Env;
  unsigned Others = RunnableThreads > ObserverThreads
                        ? RunnableThreads - ObserverThreads
                        : 0;
  Env.WorkloadThreads = static_cast<double>(Others);
  Env.Processors = static_cast<double>(AvailableCores);
  Env.RunQueue = static_cast<double>(RunnableThreads);
  Env.LoadAvg1 = Load1.value();
  Env.LoadAvg5 = Load5.value();
  Env.CachedMemory =
      1.0 - std::min(1.0, UsedMemoryMb / Config.TotalMemoryMb);
  Env.PageFreeRate = PageRate;
  return Env;
}

double SystemMonitor::envNorm(unsigned ObserverThreads) const {
  return sample(ObserverThreads)
      .scaledNorm(static_cast<double>(Config.TotalCores));
}

void SystemMonitor::reset() {
  Load1.reset();
  Load5.reset();
  RunnableThreads = 0;
  AvailableCores = Config.TotalCores;
  UsedMemoryMb = 0.0;
  PageRate = 0.0;
  HasMemorySample = false;
  ++Version; // Conservative: a rewind is always an observable change.
}
