//===-- sim/FaultInjector.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seed-driven fault injection for the simulated environment (DESIGN.md
/// §9). A FaultPlan schedules windows of four fault classes against a run:
///
///   * sensor dropout  — sampled EnvSample fields read as zero, as if the
///     /proc counter briefly vanished;
///   * sensor corruption — sampled fields replaced by NaN, infinities or
///     wildly out-of-range garbage;
///   * unplug storm    — the available core count is forced below the
///     scenario's availability pattern, possibly to zero (hot-unplug
///     beyond anything the patterns model);
///   * stale monitor   — SystemMonitor updates are suppressed, so every
///     observer keeps reading an aging snapshot.
///
/// A FaultInjector executes a plan for one run. All randomness flows from
/// the constructor seed through a private Rng queried once per tick in
/// monotonic time order, so a run under faults is exactly as deterministic
/// as a run without: same (plan, seed) => same faults, tick for tick.
/// On-disk expert-model corruption, the fifth fault class, is a static
/// helper (corruptFile) since it acts before a run starts.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_FAULTINJECTOR_H
#define MEDLEY_SIM_FAULTINJECTOR_H

#include "sim/EnvSample.h"
#include "support/FaultStats.h"
#include "support/Random.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace medley::sim {

/// A closed-open time window [Begin, End) during which a fault class is
/// active.
struct FaultWindow {
  double Begin = 0.0;
  double End = 0.0;

  bool contains(double Time) const { return Time >= Begin && Time < End; }
};

/// The schedule of faults for a run. An empty plan injects nothing.
struct FaultPlan {
  std::vector<FaultWindow> SensorDropout;   ///< Fields read as zero.
  std::vector<FaultWindow> SensorCorruption;///< Fields read as NaN/garbage.
  std::vector<FaultWindow> UnplugStorm;     ///< Cores forced to StormCores.
  std::vector<FaultWindow> StaleMonitor;    ///< Monitor updates suppressed.

  // Expert-lifecycle faults (DESIGN.md §14.6), struck on the registry's
  // publication/readback path rather than per tick:
  std::vector<FaultWindow> TornPublication;   ///< Snapshot write torn mid-file.
  std::vector<FaultWindow> StaleSnapshotRead; ///< Readback serves an old version.
  std::vector<FaultWindow> CandidateCorruption;///< Candidate bytes damaged in flight.

  /// Per-tick probability that an active corruption window actually
  /// corrupts this tick's sample (1.0 = every tick).
  double CorruptionRate = 0.5;

  /// Per-tick probability that an active dropout window zeroes this
  /// tick's sample.
  double DropoutRate = 0.5;

  /// Core count forced during an unplug storm (0 = total outage).
  unsigned StormCores = 0;

  /// True when no window of any class is scheduled.
  bool empty() const;

  /// The canonical full-ladder schedule used by the chaos suite: repeating
  /// dropout, corruption, storm and stale windows staggered across
  /// [0, Horizon) so every fault class strikes several times.
  static FaultPlan chaosSchedule(double Horizon);
};

/// Executes a FaultPlan for one run; owns all fault randomness.
class FaultInjector {
public:
  /// \p Seed drives which fields are corrupted and with what garbage;
  /// runs with equal (plan, seed) inject identical faults.
  FaultInjector(FaultPlan Plan, uint64_t Seed);

  /// The core count the machine actually exposes at \p Time given the
  /// pattern said \p PatternCores. Storm windows force FaultPlan::StormCores
  /// (never above the pattern's value).
  unsigned overrideCores(double Time, unsigned PatternCores);

  /// True when the system monitor must skip its update this tick.
  bool monitorStale(double Time);

  /// Applies any scheduled sensor dropout/corruption to \p Env in place.
  void perturbEnv(double Time, EnvSample &Env);

  /// True when a snapshot publication at \p Time must be torn (wired into
  /// core::SnapshotFaultHooks::TearWrite by the lifecycle chaos tests).
  /// Lifecycle faults draw from a dedicated generator so they never
  /// perturb the per-tick sensor fault stream.
  bool tearPublication(double Time);

  /// True when a snapshot readback at \p Time must behave as if the store
  /// served a stale version (the caller then loads with a minimum-version
  /// expectation the file cannot meet).
  bool staleSnapshotRead(double Time);

  /// Damages serialised candidate \p Bytes in place when \p Time falls in
  /// a candidate-corruption window (wired into
  /// core::SnapshotFaultHooks::CorruptCandidate). Returns true when the
  /// bytes were touched.
  bool corruptCandidate(double Time, std::string &Bytes);

  /// Counters of every fault injected so far.
  const support::FaultStats &stats() const { return Stats; }

  /// Rewinds to the initial state (same faults on replay).
  void reset();

  /// Deterministically corrupts the file at \p Path in place — truncation
  /// or byte garbage depending on \p Seed — for on-disk expert-model
  /// fault tests. Returns false when the file cannot be read or written.
  [[nodiscard]] static bool corruptFile(const std::string &Path,
                                        uint64_t Seed);

private:
  /// Writes seeded garbage (NaN, infinities, huge magnitudes, negative
  /// counters) over one uniformly chosen field of \p Env.
  void corruptOneField(EnvSample &Env);

  FaultPlan Plan;
  uint64_t Seed;
  Rng Generator;
  /// Separate stream for publication-path faults: publications interleave
  /// unpredictably with ticks, and sharing Generator would make the sensor
  /// fault sequence depend on publication timing.
  Rng LifecycleGenerator;
  support::FaultStats Stats;
};

/// Factory type: each run constructs a fresh injector so plans replay
/// identically (mirrors runtime::AvailabilityFactory).
using FaultInjectorFactory = std::function<std::unique_ptr<FaultInjector>()>;

} // namespace medley::sim

#endif // MEDLEY_SIM_FAULTINJECTOR_H
