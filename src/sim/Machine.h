//===-- sim/Machine.h - Machine configuration -------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static description of the simulated machine. The evaluation platform of
/// the paper (Table 2) is a 32-core Xeon with a shared LLC; training also
/// used a 12-core machine. Memory bandwidth and the scheduling overheads
/// here are normalised quantities: a fully memory-bound thread demands 1.0
/// bandwidth unit, and the machine saturates once total demand exceeds
/// MemoryBandwidth.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_MACHINE_H
#define MEDLEY_SIM_MACHINE_H

namespace medley::sim {

/// Immutable hardware parameters of a simulated machine.
struct MachineConfig {
  /// Physical core count (availability patterns vary the usable subset).
  unsigned TotalCores = 32;

  /// Aggregate memory bandwidth in normalised units (1.0 = one fully
  /// memory-bound thread running at full speed).
  double MemoryBandwidth = 14.0;

  /// Total memory in MB; working sets consume it and drive the cached
  /// memory / page-rate features.
  double TotalMemoryMb = 64.0 * 1024.0;

  /// Fraction of the memory-contention penalty removed when the OS pins
  /// threads to cores (Section 7.6 studies affinity scheduling). 0 = off.
  double AffinityBenefit = 0.0;

  /// Context-switch overhead coefficient: when runnable threads exceed
  /// available cores by ratio r > 1, every thread's efficiency becomes
  /// 1 / (1 + ContextSwitchOverhead * (r - 1)).
  double ContextSwitchOverhead = 0.35;

  /// Barrier-convoy coefficient: on an oversubscribed machine threads of a
  /// parallel region are no longer co-scheduled, so every barrier waits for
  /// descheduled stragglers. A region's synchronisation cost is multiplied
  /// by (1 + BarrierConvoy * (r - 1)) when runnable/cores = r > 1. This is
  /// the effect that makes "spawn as many threads as processors" a bad
  /// policy on loaded machines (paper Sections 3 and 7.2).
  double BarrierConvoy = 1.8;

  /// Memory contention grows superlinearly once aggregate demand exceeds
  /// the bandwidth (queueing at the memory controller): the slowdown
  /// factor is (demand/bandwidth)^MemContentionExponent, capped by
  /// MemFactorCap.
  double MemContentionExponent = 1.6;
  double MemFactorCap = 3.0;

  /// Socket topology (Table 2: "4 one-socket nodes, 8 cores/socket").
  /// Threads are packed socket by socket; a region whose team spans s > 1
  /// sockets pays (1 + InterSocketSync * (s - 1)) on its synchronisation
  /// cost — barriers across the interconnect are far slower than within a
  /// socket. This makes the best team size jump between socket-sized
  /// plateaus, one of the strong non-linearities of real machines.
  unsigned SocketCount = 4;
  double InterSocketSync = 0.5;

  /// Cores per socket (TotalCores / SocketCount, at least 1).
  unsigned coresPerSocket() const;

  /// Builds the paper's 32-core evaluation platform (Table 2).
  static MachineConfig evaluationPlatform();

  /// Builds the 12-core training machine (Section 5.1).
  static MachineConfig trainingPlatform12();

  /// Returns a copy with affinity scheduling enabled.
  MachineConfig withAffinity(double Benefit = 0.35) const;

  /// Sanity-checks the parameters (positive counts, bandwidth, memory).
  bool valid() const;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_MACHINE_H
