//===-- sim/Simulation.cpp - Discrete-time machine simulation --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

using namespace medley;
using namespace medley::sim;

Task::~Task() = default;

Simulation::Simulation(MachineConfig Config,
                       std::unique_ptr<AvailabilityPattern> Availability,
                       double Tick)
    : Config(Config), Availability(std::move(Availability)), Tick(Tick),
      Monitor(Config),
      NextCoresChange(-std::numeric_limits<double>::infinity()) {
  assert(Config.valid() && "invalid machine configuration");
  assert(this->Availability && "availability pattern required");
  assert(Tick > 0.0 && "tick must be positive");
  BaseAlloc.CoresPerSocket = Config.coresPerSocket();
  BaseAlloc.InterSocketSync = Config.InterSocketSync;
}

void Simulation::addTask(std::shared_ptr<Task> T) {
  assert(T && "null task");
  Table.adopt(std::move(T));
}

void Simulation::removeTask(const Task *T) { Table.remove(T); }

unsigned Simulation::availableCores() {
  unsigned Cores = Availability->coresAt(Time);
  return Faults ? Faults->overrideCores(Time, Cores) : Cores;
}

void Simulation::setFaultInjector(std::unique_ptr<FaultInjector> Injector) {
  Faults = std::move(Injector);
}

unsigned Simulation::runnableThreads() const {
  Table.compact();
  unsigned Total = 0;
  for (size_t I = 0, N = Table.slots(); I < N; ++I)
    if (!Table.finished(I))
      Total += Table.threads(I);
  return Total;
}

void Simulation::recomputeTickState(unsigned Cores) {
  // One pass over the columns gathers every per-task quantity this tick
  // needs. The accumulation is in insertion order — identical, value for
  // value, to the virtual-accessor gather this replaces — so reusing the
  // cached results on later ticks with an unchanged generation is
  // bit-identical to recomputing them.
  unsigned Runnable = 0;
  double UsedMemory = 0.0;
  const size_t N = Table.slots();
  for (size_t I = 0; I < N; ++I) {
    if (!Table.ptr(I) || Table.finished(I))
      continue;
    Runnable += Table.threads(I);
    UsedMemory += Table.workingSetMb(I);
  }

  // Fair time slicing with a context-switch penalty once the machine is
  // oversubscribed: each thread gets share = min(1, P/R), further scaled by
  // 1 / (1 + kappa * (R/P - 1)) when R > P. A zero-core window (hot-unplug
  // to 0 during a fault storm) parks every thread: share 0, no penalties.
  double Share = 1.0;
  double BarrierFactor = 1.0;
  if (Cores == 0) {
    Share = 0.0;
  } else if (Runnable > 0) {
    double Ratio = static_cast<double>(Runnable) / Cores;
    Share = std::min(1.0, 1.0 / Ratio);
    if (Ratio > 1.0) {
      Share /= 1.0 + Config.ContextSwitchOverhead * (Ratio - 1.0);
      // Pinning threads to cores keeps barrier convoys shorter: a pinned
      // straggler is rescheduled on its own core instead of migrating.
      BarrierFactor = 1.0 + Config.BarrierConvoy * (Ratio - 1.0) *
                                (1.0 - Config.AffinityBenefit);
    }
  }

  // Memory contention: bandwidth demand scales with the CPU time each task
  // actually receives; factor > 1 slows the memory-bound portion of work.
  double TotalDemand = 0.0;
  for (size_t I = 0; I < N; ++I) {
    if (!Table.ptr(I) || Table.finished(I))
      continue;
    TotalDemand += Table.memoryDemand(I) * Share;
  }
  double DemandRatio = TotalDemand / Config.MemoryBandwidth;
  double MemFactor =
      DemandRatio <= 1.0
          ? 1.0
          : std::min(std::pow(DemandRatio, Config.MemContentionExponent),
                     Config.MemFactorCap);
  if (Config.AffinityBenefit > 0.0)
    MemFactor = 1.0 + (MemFactor - 1.0) * (1.0 - Config.AffinityBenefit);

  BaseAlloc.CpuShare = Share;
  BaseAlloc.MemFactor = MemFactor;
  BaseAlloc.BarrierFactor = BarrierFactor;
  BaseAlloc.AvailableCores = Cores;
  BaseAlloc.RunnableThreads = Runnable;
  CachedRunnable = Runnable;
  CachedUsedMemory = UsedMemory;
  CacheGeneration = Table.generation();
  CacheCores = Cores;
  TickCacheValid = true;
}

void Simulation::step() {
  Table.compact();

  unsigned Cores;
  if (Faults) {
    // Injectors draw seeded randomness once per tick in monotonic time
    // order; the storm override therefore cannot be cached.
    Cores = Faults->overrideCores(Time, Availability->coresAt(Time));
  } else {
    if (Time >= NextCoresChange) {
      CachedCores = Availability->coresAt(Time);
      NextCoresChange = Availability->nextChangeAt(Time);
    }
    Cores = CachedCores;
  }

  if (!TickCacheValid || Cores != CacheCores ||
      Table.generation() != CacheGeneration)
    recomputeTickState(Cores);

  BaseAlloc.Now = Time;

  // Environment epoch: the EnvSample handed to slow-path tasks below is a
  // pure function of the monitor state (plus per-tick fault perturbation),
  // so the epoch advances exactly when the monitor's change-version moved
  // — or unconditionally under faults, whose seeded garbage is redrawn
  // every tick. Equal epochs ⇒ bit-identical Env except WorkloadThreads.
  if (Faults || Monitor.version() != EpochMonitorVersion) {
    ++EnvEpoch;
    EpochMonitorVersion = Monitor.version();
  }
  BaseAlloc.EnvEpoch = EnvEpoch;

  // Phase 1: every unfinished task attempts the steady fast path (advance
  // without reading the environment). Tasks that decline are staged in
  // the tick arena and take the slow path below, in insertion order, so
  // observer and decision callbacks fire in the same order as a loop that
  // stepped every task the slow way.
  TickArena.reset();
  const size_t N = Table.slots();
  uint32_t *Slow = N == 0 ? nullptr : TickArena.allocateArray<uint32_t>(N);
  size_t NumSlow = 0;
  for (size_t I = 0; I < N; ++I) {
    Task *T = Table.ptr(I);
    if (!T || Table.finished(I))
      continue;
    if (!T->stepSteady(Tick, BaseAlloc))
      Slow[NumSlow++] = static_cast<uint32_t>(I);
  }

  // Phase 2: sample the environment once — only needed when some task
  // takes the slow path, except under faults, where the injector must be
  // consulted every tick to keep its random stream aligned. The env
  // sample is per-observer (a task does not count its own threads as
  // external workload), but only its WorkloadThreads field depends on the
  // observer — sample once and rewrite that field per task.
  if (NumSlow > 0 || Faults) {
    EnvSample SharedEnv = Monitor.sample(0);
    unsigned MonitorRunnable = Monitor.runnable();
    if (Faults)
      Faults->perturbEnv(Time, SharedEnv);
    for (size_t K = 0; K < NumSlow; ++K) {
      size_t I = Slow[K];
      unsigned SelfThreads = Table.threads(I);
      BaseAlloc.Env = SharedEnv;
      BaseAlloc.Env.WorkloadThreads = static_cast<double>(
          MonitorRunnable > SelfThreads ? MonitorRunnable - SelfThreads : 0);
      Table.ptr(I)->step(Tick, BaseAlloc);
      Table.refresh(I);
    }
  }

  // A stale-monitor fault suppresses the update: observers keep reading
  // the aging snapshot until the window passes.
  if (!Faults || !Faults->monitorStale(Time))
    Monitor.update(CachedRunnable, Cores, CachedUsedMemory, Tick);
  Time += Tick;

  for (const auto &Hook : TickHooks)
    Hook(*this);
}

bool Simulation::runUntil(const std::function<bool()> &Done, double MaxTime) {
  while (Time < MaxTime) {
    if (Done())
      return true;
    step();
  }
  return Done();
}

void Simulation::addTickHook(std::function<void(Simulation &)> Hook) {
  TickHooks.push_back(std::move(Hook));
}
