//===-- sim/Simulation.cpp - Discrete-time machine simulation --------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Simulation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::sim;

Task::~Task() = default;

Simulation::Simulation(MachineConfig Config,
                       std::unique_ptr<AvailabilityPattern> Availability,
                       double Tick)
    : Config(Config), Availability(std::move(Availability)), Tick(Tick),
      Monitor(Config) {
  assert(Config.valid() && "invalid machine configuration");
  assert(this->Availability && "availability pattern required");
  assert(Tick > 0.0 && "tick must be positive");
}

void Simulation::addTask(std::shared_ptr<Task> T) {
  assert(T && "null task");
  Tasks.push_back(std::move(T));
}

void Simulation::removeTask(const Task *T) {
  // Tombstone instead of erase: nulling the slot releases the task now but
  // leaves the survivors in place, so k removals between ticks cost one
  // compaction pass (at the next step or accessor) rather than k
  // element-shifting erases. Iteration order is insertion order throughout —
  // the per-tick FP reductions in step() accumulate in task order, so a
  // swap-and-pop would change results.
  for (std::shared_ptr<Task> &Entry : Tasks)
    if (Entry.get() == T) {
      Entry.reset();
      ++TombstonedTasks;
    }
}

void Simulation::compactTasks() const {
  if (TombstonedTasks == 0)
    return;
  Tasks.erase(std::remove(Tasks.begin(), Tasks.end(), nullptr), Tasks.end());
  TombstonedTasks = 0;
}

unsigned Simulation::availableCores() {
  unsigned Cores = Availability->coresAt(Time);
  return Faults ? Faults->overrideCores(Time, Cores) : Cores;
}

void Simulation::setFaultInjector(std::unique_ptr<FaultInjector> Injector) {
  Faults = std::move(Injector);
}

unsigned Simulation::runnableThreads() const {
  compactTasks();
  unsigned Total = 0;
  for (const auto &T : Tasks)
    if (!T->finished())
      Total += T->activeThreads();
  return Total;
}

void Simulation::step() {
  compactTasks();
  unsigned Cores = availableCores();

  // One pass over the task set gathers every per-task quantity this tick
  // needs; the virtual accessors fire once per task instead of once per
  // use (runnable count, memory pass, env sampling).
  Scratch.clear();
  unsigned Runnable = 0;
  double UsedMemory = 0.0;
  for (const auto &T : Tasks) {
    if (T->finished())
      continue;
    TaskTickState S;
    S.T = T.get();
    S.Threads = T->activeThreads();
    S.Demand = T->memoryDemand();
    Runnable += S.Threads;
    UsedMemory += T->workingSetMb();
    // Scratch capacity sticks at the live-task count after the first
    // tick (DESIGN.md §11), so steady-state growth never reallocates.
    // medley-lint: allow(hotpath-escape) — amortized sticky scratch.
    Scratch.push_back(S);
  }

  // Fair time slicing with a context-switch penalty once the machine is
  // oversubscribed: each thread gets share = min(1, P/R), further scaled by
  // 1 / (1 + kappa * (R/P - 1)) when R > P. A zero-core window (hot-unplug
  // to 0 during a fault storm) parks every thread: share 0, no penalties.
  double Share = 1.0;
  double BarrierFactor = 1.0;
  if (Cores == 0) {
    Share = 0.0;
  } else if (Runnable > 0) {
    double Ratio = static_cast<double>(Runnable) / Cores;
    Share = std::min(1.0, 1.0 / Ratio);
    if (Ratio > 1.0) {
      Share /= 1.0 + Config.ContextSwitchOverhead * (Ratio - 1.0);
      // Pinning threads to cores keeps barrier convoys shorter: a pinned
      // straggler is rescheduled on its own core instead of migrating.
      BarrierFactor = 1.0 + Config.BarrierConvoy * (Ratio - 1.0) *
                                (1.0 - Config.AffinityBenefit);
    }
  }

  // Memory contention: bandwidth demand scales with the CPU time each task
  // actually receives; factor > 1 slows the memory-bound portion of work.
  double TotalDemand = 0.0;
  for (const TaskTickState &S : Scratch)
    TotalDemand += S.Demand * Share;
  double DemandRatio = TotalDemand / Config.MemoryBandwidth;
  double MemFactor =
      DemandRatio <= 1.0
          ? 1.0
          : std::min(std::pow(DemandRatio, Config.MemContentionExponent),
                     Config.MemFactorCap);
  if (Config.AffinityBenefit > 0.0)
    MemFactor = 1.0 + (MemFactor - 1.0) * (1.0 - Config.AffinityBenefit);

  // Advance every unfinished task under the computed allocation. The env
  // sample is per-observer (a task does not count its own threads as
  // external workload), but only its WorkloadThreads field depends on the
  // observer — sample once and rewrite that field per task.
  EnvSample SharedEnv = Monitor.sample(0);
  unsigned MonitorRunnable = Monitor.runnable();
  if (Faults)
    Faults->perturbEnv(Time, SharedEnv);
  CpuAllocation Allocation;
  Allocation.CpuShare = Share;
  Allocation.MemFactor = MemFactor;
  Allocation.BarrierFactor = BarrierFactor;
  Allocation.CoresPerSocket = Config.coresPerSocket();
  Allocation.InterSocketSync = Config.InterSocketSync;
  Allocation.AvailableCores = Cores;
  Allocation.RunnableThreads = Runnable;
  Allocation.Now = Time;
  for (const TaskTickState &S : Scratch) {
    Allocation.Env = SharedEnv;
    Allocation.Env.WorkloadThreads = static_cast<double>(
        MonitorRunnable > S.Threads ? MonitorRunnable - S.Threads : 0);
    S.T->step(Tick, Allocation);
  }

  // A stale-monitor fault suppresses the update: observers keep reading
  // the aging snapshot until the window passes.
  if (!Faults || !Faults->monitorStale(Time))
    Monitor.update(Runnable, Cores, UsedMemory, Tick);
  Time += Tick;

  for (const auto &Hook : TickHooks)
    Hook(*this);
}

bool Simulation::runUntil(const std::function<bool()> &Done, double MaxTime) {
  while (Time < MaxTime) {
    if (Done())
      return true;
    step();
  }
  return Done();
}

void Simulation::addTickHook(std::function<void(Simulation &)> Hook) {
  TickHooks.push_back(std::move(Hook));
}
