//===-- sim/Machine.cpp - Machine configuration ---------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"

#include <algorithm>

using namespace medley::sim;

MachineConfig MachineConfig::evaluationPlatform() {
  MachineConfig Config;
  Config.TotalCores = 32;
  // The shared LLC/memory system saturates when roughly 45% of the cores run
  // fully memory-bound threads, a typical ratio for this class of machine.
  Config.MemoryBandwidth = 0.45 * 32;
  Config.TotalMemoryMb = 64.0 * 1024.0;
  return Config;
}

MachineConfig MachineConfig::trainingPlatform12() {
  MachineConfig Config;
  Config.TotalCores = 12;
  Config.MemoryBandwidth = 0.45 * 12;
  Config.TotalMemoryMb = 24.0 * 1024.0;
  Config.SocketCount = 2; // 2 sockets x 6 cores.
  return Config;
}

unsigned MachineConfig::coresPerSocket() const {
  if (SocketCount == 0)
    return TotalCores;
  return std::max(1u, TotalCores / SocketCount);
}

MachineConfig MachineConfig::withAffinity(double Benefit) const {
  MachineConfig Config = *this;
  Config.AffinityBenefit = Benefit;
  return Config;
}

bool MachineConfig::valid() const {
  return TotalCores > 0 && MemoryBandwidth > 0.0 && TotalMemoryMb > 0.0 &&
         AffinityBenefit >= 0.0 && AffinityBenefit < 1.0 &&
         ContextSwitchOverhead >= 0.0 && BarrierConvoy >= 0.0 &&
         MemContentionExponent >= 1.0 && MemFactorCap >= 1.0 &&
         SocketCount >= 1 && InterSocketSync >= 0.0;
}
