//===-- sim/TaskTable.cpp - Struct-of-arrays task state -------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/TaskTable.h"

#include <cassert>

using namespace medley;
using namespace medley::sim;

void TaskTable::adopt(std::shared_ptr<Task> T) {
  assert(T && "null task");
  Task *Raw = T.get();
  // Column capacities stick at the task-set high-water mark, so add/remove
  // churn at a stable population never reallocates.
  // medley-lint: allow(hotpath-escape) — amortized sticky column growth.
  Owners.push_back(std::move(T));
  Ptrs.push_back(Raw);
  Threads.push_back(Raw->activeThreads());
  Demand.push_back(Raw->memoryDemand());
  WorkingSet.push_back(Raw->workingSetMb());
  Finished.push_back(Raw->finished() ? 1 : 0);
  ++Generation;
}

void TaskTable::remove(const Task *T) {
  // Tombstone instead of erase: nulling the slot releases the task now but
  // leaves the survivors in place, so k removals between ticks cost one
  // compaction pass rather than k element-shifting erases. The full scan
  // (no early break) keeps the historical semantics of removing every
  // occurrence of a pointer added more than once.
  for (size_t I = 0, N = Owners.size(); I < N; ++I)
    if (Ptrs[I] == T && Owners[I]) {
      Owners[I].reset();
      Ptrs[I] = nullptr;
      ++Tombstones;
      ++Generation;
    }
}

void TaskTable::compact() const {
  if (Tombstones < CompactionThreshold)
    return;
  // Stable in-place erase across every column at once; survivors keep
  // insertion order so the step() reductions accumulate identically.
  size_t Out = 0;
  for (size_t I = 0, N = Owners.size(); I < N; ++I) {
    if (!Owners[I])
      continue;
    if (Out != I) {
      Owners[Out] = std::move(Owners[I]);
      Ptrs[Out] = Ptrs[I];
      Threads[Out] = Threads[I];
      Demand[Out] = Demand[I];
      WorkingSet[Out] = WorkingSet[I];
      Finished[Out] = Finished[I];
    }
    ++Out;
  }
  Owners.resize(Out);
  Ptrs.resize(Out);
  Threads.resize(Out);
  Demand.resize(Out);
  WorkingSet.resize(Out);
  Finished.resize(Out);
  Tombstones = 0;
  // Compaction only drops tombstones (which every reduction already
  // skips), so the generation is intentionally NOT bumped: cached
  // reduction results stay valid.
}

void TaskTable::refresh(size_t I) {
  assert(I < Owners.size() && Ptrs[I] && "refreshing a tombstoned slot");
  const Task *T = Ptrs[I];
  unsigned NewThreads = T->activeThreads();
  double NewDemand = T->memoryDemand();
  double NewWorkingSet = T->workingSetMb();
  uint8_t NewFinished = T->finished() ? 1 : 0;
  if (NewThreads == Threads[I] && NewDemand == Demand[I] &&
      NewWorkingSet == WorkingSet[I] && NewFinished == Finished[I])
    return;
  Threads[I] = NewThreads;
  Demand[I] = NewDemand;
  WorkingSet[I] = NewWorkingSet;
  Finished[I] = NewFinished;
  ++Generation;
}

const std::vector<std::shared_ptr<Task>> &TaskTable::owners() const {
  compact();
  return Owners;
}
