//===-- sim/Task.h - Schedulable task interface -----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface between the simulator's scheduler and anything that runs on
/// the machine. Program models (src/workload) implement Task; the scheduler
/// hands each task its per-tick CPU allocation and contention state.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_SIM_TASK_H
#define MEDLEY_SIM_TASK_H

#include "sim/EnvSample.h"

#include <string>

namespace medley::sim {

/// Per-tick resource allocation handed to a task by the scheduler.
struct CpuAllocation {
  /// Fraction of a core each of the task's threads receives this tick
  /// (fair-share time slicing, including the context-switch penalty).
  double CpuShare = 1.0;

  /// Memory-contention slowdown factor (>= 1) for fully memory-bound work.
  double MemFactor = 1.0;

  /// Barrier-convoy multiplier (>= 1) applied to synchronisation costs;
  /// grows with machine-wide oversubscription.
  double BarrierFactor = 1.0;

  /// Socket topology for the inter-socket synchronisation penalty.
  unsigned CoresPerSocket = 8;
  double InterSocketSync = 0.0;

  /// Cores available machine-wide this tick.
  unsigned AvailableCores = 0;

  /// Runnable threads machine-wide this tick (including this task's).
  unsigned RunnableThreads = 0;

  /// Environment as seen by this task (its own threads excluded from
  /// WorkloadThreads), sampled at the start of the tick.
  EnvSample Env;

  /// Current simulated time at the start of the tick.
  double Now = 0.0;

  /// Environment epoch: a counter the scheduler bumps whenever the fields
  /// backing Env could have changed bitwise (monitor state change, fault
  /// injection, core-count change). Two allocations with equal EnvEpoch
  /// carry bit-identical Env contents except for the observer-dependent
  /// WorkloadThreads field. Decision memoization (DESIGN.md §16.5) keys
  /// on this to prove selector inputs unchanged without comparing them.
  uint64_t EnvEpoch = 0;
};

/// Anything the simulated machine can run.
///
/// Scheduler contract: the four observable scheduling quantities —
/// activeThreads(), memoryDemand(), workingSetMb() and finished() — may
/// change only inside step() / stepSteady(). The simulator mirrors them
/// into struct-of-arrays columns (sim::TaskTable) at add time and after
/// every slow-path step, and its per-tick reductions read the columns, not
/// the accessors; a task mutating them out of band desynchronises the
/// mirror.
class Task {
public:
  virtual ~Task();

  /// Stable display name.
  virtual const std::string &name() const = 0;

  /// Threads this task currently keeps runnable.
  virtual unsigned activeThreads() const = 0;

  /// Memory bandwidth demand, in normalised units, if the task ran at full
  /// speed this tick (the scheduler scales it by the granted CPU share).
  virtual double memoryDemand() const = 0;

  /// Resident working set in MB.
  virtual double workingSetMb() const = 0;

  /// Advances the task by \p Dt seconds under \p Allocation.
  virtual void step(double Dt, const CpuAllocation &Allocation) = 0;

  /// Steady-tick fast path. \p Allocation carries the same scalar fields
  /// as step()'s would, but its Env member is STALE — a task that would
  /// consult the environment this tick (e.g. to start a new region) must
  /// return false. Returning true means the task fully advanced itself by
  /// \p Dt, bit-identically to what step() would have done, without
  /// changing any of the four observable scheduling quantities. Returning
  /// false means "take the slow path": the scheduler then samples the
  /// environment and calls step() with a complete allocation; the task
  /// must not have mutated anything. The default opts every tick out, so
  /// existing Task implementations keep their exact behaviour.
  virtual bool stepSteady(double Dt, const CpuAllocation &Allocation) {
    (void)Dt;
    (void)Allocation;
    return false;
  }

  /// True once the task has completed all its work.
  virtual bool finished() const = 0;
};

} // namespace medley::sim

#endif // MEDLEY_SIM_TASK_H
