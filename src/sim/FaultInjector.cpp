//===-- sim/FaultInjector.cpp - Deterministic fault injection -------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

using namespace medley;
using namespace medley::sim;

namespace {

bool anyContains(const std::vector<FaultWindow> &Windows, double Time) {
  for (const FaultWindow &W : Windows)
    if (W.contains(Time))
      return true;
  return false;
}

/// Repeats a [Offset, Offset + Width) window every Period seconds over
/// [0, Horizon).
std::vector<FaultWindow> repeating(double Offset, double Width, double Period,
                                   double Horizon) {
  std::vector<FaultWindow> Windows;
  for (double T = Offset; T < Horizon; T += Period)
    Windows.push_back({T, std::min(T + Width, Horizon)});
  return Windows;
}

} // namespace

bool FaultPlan::empty() const {
  return SensorDropout.empty() && SensorCorruption.empty() &&
         UnplugStorm.empty() && StaleMonitor.empty() &&
         TornPublication.empty() && StaleSnapshotRead.empty() &&
         CandidateCorruption.empty();
}

FaultPlan FaultPlan::chaosSchedule(double Horizon) {
  assert(Horizon > 0.0 && "fault schedule needs a positive horizon");
  FaultPlan Plan;
  // Staggered so that every class strikes alone and (around the overlaps)
  // together: dropouts early in each cycle, corruption mid-cycle, a storm
  // straddling the corruption tail, stale reads late.
  Plan.SensorDropout = repeating(2.0, 3.0, 25.0, Horizon);
  Plan.SensorCorruption = repeating(8.0, 4.0, 25.0, Horizon);
  Plan.UnplugStorm = repeating(10.0, 5.0, 25.0, Horizon);
  Plan.StaleMonitor = repeating(18.0, 4.0, 25.0, Horizon);
  // Lifecycle faults on their own cadence, offset so publications hit both
  // quiet stretches and the middle of sensor-fault windows.
  Plan.TornPublication = repeating(5.0, 3.0, 25.0, Horizon);
  Plan.StaleSnapshotRead = repeating(14.0, 3.0, 25.0, Horizon);
  Plan.CandidateCorruption = repeating(21.0, 3.0, 25.0, Horizon);
  Plan.CorruptionRate = 0.75;
  Plan.DropoutRate = 0.75;
  Plan.StormCores = 0;
  return Plan;
}

FaultInjector::FaultInjector(FaultPlan Plan, uint64_t Seed)
    : Plan(std::move(Plan)), Seed(Seed), Generator(Seed),
      LifecycleGenerator(Seed ^ 0x11FECC1Eu) {}

void FaultInjector::reset() {
  Generator = Rng(Seed);
  LifecycleGenerator = Rng(Seed ^ 0x11FECC1Eu);
  Stats = support::FaultStats();
}

unsigned FaultInjector::overrideCores(double Time, unsigned PatternCores) {
  if (!anyContains(Plan.UnplugStorm, Time))
    return PatternCores;
  unsigned Forced = std::min(Plan.StormCores, PatternCores);
  if (Forced != PatternCores)
    ++Stats.UnplugOverrides;
  return Forced;
}

bool FaultInjector::monitorStale(double Time) {
  if (!anyContains(Plan.StaleMonitor, Time))
    return false;
  ++Stats.StaleTicks;
  return true;
}

void FaultInjector::corruptOneField(EnvSample &Env) {
  double *Fields[] = {&Env.WorkloadThreads, &Env.Processors, &Env.RunQueue,
                      &Env.LoadAvg1,        &Env.LoadAvg5,   &Env.CachedMemory,
                      &Env.PageFreeRate};
  double *Field = Fields[Generator.uniformInt(0, 6)];
  switch (Generator.uniformInt(0, 3)) {
  case 0:
    *Field = std::numeric_limits<double>::quiet_NaN();
    break;
  case 1:
    *Field = std::numeric_limits<double>::infinity();
    break;
  case 2:
    *Field = -std::numeric_limits<double>::infinity();
    break;
  default:
    // Finite but wildly out of range (sign flips included): the kind of
    // garbage a torn read of a /proc counter produces.
    *Field = Generator.uniform(-1.0, 1.0) * 1e18;
    break;
  }
  ++Stats.SensorCorruptions;
}

void FaultInjector::perturbEnv(double Time, EnvSample &Env) {
  if (anyContains(Plan.SensorDropout, Time) &&
      Generator.bernoulli(Plan.DropoutRate)) {
    Env = EnvSample(); // Every counter reads as zero.
    ++Stats.SensorDropouts;
  }
  if (anyContains(Plan.SensorCorruption, Time) &&
      Generator.bernoulli(Plan.CorruptionRate)) {
    corruptOneField(Env);
    // A second strike half the time: multi-field corruption exercises the
    // sanitizer beyond the single-NaN case.
    if (Generator.bernoulli(0.5))
      corruptOneField(Env);
  }
}

bool FaultInjector::tearPublication(double Time) {
  if (!anyContains(Plan.TornPublication, Time))
    return false;
  ++Stats.TornPublications;
  return true;
}

bool FaultInjector::staleSnapshotRead(double Time) {
  if (!anyContains(Plan.StaleSnapshotRead, Time))
    return false;
  ++Stats.StaleSnapshotReads;
  return true;
}

bool FaultInjector::corruptCandidate(double Time, std::string &Bytes) {
  if (!anyContains(Plan.CandidateCorruption, Time) || Bytes.empty())
    return false;
  if (LifecycleGenerator.bernoulli(0.5)) {
    // Truncation: the hand-off died mid-copy.
    size_t Keep = 1 + static_cast<size_t>(LifecycleGenerator.uniformInt(
                          0, static_cast<int64_t>(Bytes.size()) - 1));
    Bytes.resize(Keep);
  } else {
    // Bit rot: a run of bytes flipped in flight.
    size_t Start = static_cast<size_t>(LifecycleGenerator.uniformInt(
        0, static_cast<int64_t>(Bytes.size()) - 1));
    for (size_t I = 0; I < 32 && Start + I < Bytes.size(); ++I)
      Bytes[Start + I] = static_cast<char>(
          Bytes[Start + I] ^
          static_cast<char>(1 + LifecycleGenerator.uniformInt(0, 254)));
  }
  ++Stats.CandidateCorruptions;
  return true;
}

bool FaultInjector::corruptFile(const std::string &Path, uint64_t Seed) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Contents = Buffer.str();
  In.close();
  if (Contents.empty())
    return false;

  Rng Generator(Seed);
  if (Generator.bernoulli(0.5)) {
    // Truncate somewhere past the header so parsing starts then starves.
    size_t Keep = 1 + static_cast<size_t>(Generator.uniformInt(
                          0, static_cast<int64_t>(Contents.size()) - 1));
    Contents.resize(Keep);
  } else {
    // Overwrite a run of bytes with numeric-looking garbage ("nan",
    // stray signs) so tokens parse as non-finite or not at all.
    const char Garbage[] = "nan inf -nan +- 1e999 ";
    size_t Start = static_cast<size_t>(Generator.uniformInt(
        0, static_cast<int64_t>(Contents.size()) - 1));
    for (size_t I = 0; I < 64 && Start + I < Contents.size(); ++I)
      Contents[Start + I] = Garbage[I % (sizeof(Garbage) - 1)];
  }

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Contents;
  return static_cast<bool>(Out);
}
