//===-- policy/OnlinePolicy.cpp - Hill-climbing adaptation --------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/OnlinePolicy.h"

#include <algorithm>
#include <cassert>

using namespace medley::policy;

OnlinePolicy::OnlinePolicy(unsigned Window, unsigned Step)
    : Window(Window), Step(Step) {
  assert(Window >= 1 && Step >= 1 && "invalid hill-climbing parameters");
}

unsigned OnlinePolicy::select(const FeatureVector &Features) {
  MaxThreads = Features.MaxThreads;
  if (Current == 0) {
    // Start at half the machine: a neutral point the climb can leave in
    // either direction.
    Current = std::max(1u, Features.MaxThreads / 2);
  }
  return Current;
}

void OnlinePolicy::observe(const workload::RegionOutcome &Outcome) {
  WindowRateSum += Outcome.rate();
  ++SeenInWindow;
  if (SeenInWindow < Window)
    return;

  double Rate = WindowRateSum / static_cast<double>(SeenInWindow);
  SeenInWindow = 0;
  WindowRateSum = 0.0;

  // Classic hill climbing: keep moving while performance improves, turn
  // around when it regresses.
  if (PreviousRate >= 0.0 && Rate < PreviousRate)
    Direction = -Direction;
  PreviousRate = Rate;

  long Next = static_cast<long>(Current) + Direction * static_cast<long>(Step);
  Next = std::clamp<long>(Next, 1, static_cast<long>(std::max(1u, MaxThreads)));
  Current = static_cast<unsigned>(Next);
}

void OnlinePolicy::reset() {
  Current = 0;
  Direction = 1;
  SeenInWindow = 0;
  WindowRateSum = 0.0;
  PreviousRate = -1.0;
}

const std::string &OnlinePolicy::name() const {
  static const std::string Name = "online";
  return Name;
}
