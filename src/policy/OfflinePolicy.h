//===-- policy/OfflinePolicy.h - Offline-model policy -----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "offline" baseline (Section 6.3): a single machine-learning model
/// (CGO'13-style) trained ahead of time predicts the thread count from the
/// 10 features at every region. It exploits prior knowledge but never
/// adapts — exactly one monolithic model for all environments. The same
/// class also serves as the Figure-14(c) "aggregate model" built from the
/// union of all experts' training data.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_OFFLINEPOLICY_H
#define MEDLEY_POLICY_OFFLINEPOLICY_H

#include "ml/LinearModel.h"
#include "policy/ThreadPolicy.h"

namespace medley::policy {

/// Predicts n = clamp(round(w . f + beta)) from an offline-trained model.
class OfflinePolicy : public ThreadPolicy {
public:
  explicit OfflinePolicy(LinearModel ThreadModel,
                         std::string PolicyName = "offline");

  unsigned select(const FeatureVector &Features) override;
  void reset() override {}
  const std::string &name() const override { return PolicyName; }
  /// One frozen model, no adaptation: decisions depend on features alone.
  bool decisionsArePure() const override { return true; }

  const LinearModel &model() const { return ThreadModel; }

private:
  LinearModel ThreadModel;
  std::string PolicyName;
};

} // namespace medley::policy

#endif // MEDLEY_POLICY_OFFLINEPOLICY_H
