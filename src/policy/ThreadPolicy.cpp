//===-- policy/ThreadPolicy.cpp - Mapping policy interface -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/ThreadPolicy.h"

using namespace medley::policy;

ThreadPolicy::~ThreadPolicy() = default;

void ThreadPolicy::observe(const workload::RegionOutcome &) {}

void ThreadPolicy::beginDecisionEpoch() {}
