//===-- policy/ExtendedFeatures.cpp - Candidate feature sweep -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/ExtendedFeatures.h"

#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::policy;

const std::vector<std::string> &medley::policy::extendedFeatureNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N = featureNames(); // The deployed ten first.
    const char *Extra[] = {
        // Compiler-style derived code counters.
        "arithmetic intensity", "ls x branches", "weighted load/store",
        "weighted branches", "sqrt load/store", "sqrt branches",
        "ls minus branches", "code density proxy",
        // OS-style derived runtime counters.
        "free processors", "utilization (runq/procs)",
        "per-core workload", "load ratio (ldavg1/5)", "load trend",
        "overload flag", "memory used", "memory pressure x load",
        "workload minus procs", "runq minus procs", "sqrt runq",
        "log processors", "procs squared", "workload squared",
        "ldavg-1 squared", "cached x procs",
        // Genuinely uninformative counters (constants / pure noise
        // transforms) — information gain must bury these.
        "page size (const)", "tick length (const)", "page rate squared",
        "cached minus cached (zero)", "parity of runq",
        "runq mod 3",
    };
    for (const char *Name : Extra)
      N.push_back(Name);
    return N;
  }();
  return Names;
}

size_t medley::policy::numExtendedFeatures() {
  return extendedFeatureNames().size();
}

const std::vector<size_t> &medley::policy::deployedFeatureIndices() {
  static const std::vector<size_t> Indices = [] {
    std::vector<size_t> I;
    for (size_t K = 0; K < NumFeatures; ++K)
      I.push_back(K);
    return I;
  }();
  return Indices;
}

Vec medley::policy::buildExtendedFeatures(
    const workload::RegionContext &Context, unsigned TotalCores) {
  FeatureVector Base = buildFeatures(Context, TotalCores);
  const Vec &F = Base.Values;
  double Ls = F[0], Weight = F[1], Br = F[2];
  double W = F[3], P = F[4], Rq = F[5], L1 = F[6], L5 = F[7];
  double Cached = F[8], PageRate = F[9];

  Vec X = F; // Deployed ten first.
  // Compiler-style derived code counters.
  X.push_back(std::max(0.0, 1.0 - Ls - Br)); // arithmetic intensity
  X.push_back(Ls * Br);
  X.push_back(Weight * Ls);
  X.push_back(Weight * Br);
  X.push_back(std::sqrt(Ls));
  X.push_back(std::sqrt(Br));
  X.push_back(Ls - Br);
  X.push_back(Weight / (Ls + Br + 1e-3));
  // OS-style derived runtime counters.
  X.push_back(std::max(0.0, P - Rq));
  X.push_back(Rq / std::max(1.0, P));
  X.push_back(W / std::max(1.0, P));
  X.push_back(L1 / std::max(1e-3, L5));
  X.push_back(L1 - L5);
  X.push_back(Rq > P ? 1.0 : 0.0);
  X.push_back(1.0 - Cached);
  X.push_back((1.0 - Cached) * L1);
  X.push_back(W - P);
  X.push_back(Rq - P);
  X.push_back(std::sqrt(std::max(0.0, Rq)));
  X.push_back(std::log(std::max(1.0, P)));
  X.push_back(P * P);
  X.push_back(W * W);
  X.push_back(L1 * L1);
  X.push_back(Cached * P);
  // Uninformative counters.
  X.push_back(4096.0);
  X.push_back(0.1);
  X.push_back(PageRate * PageRate);
  X.push_back(Cached - Cached);
  X.push_back(std::fmod(std::floor(Rq), 2.0));
  X.push_back(std::fmod(std::floor(Rq), 3.0));

  assert(X.size() == numExtendedFeatures() && "candidate arity mismatch");
  // The base ten are sanitized by buildFeatures; sweep the derived
  // candidates too so no transform of extreme-but-finite inputs leaks a
  // non-finite value into the feature-selection pipeline.
  sanitizeValues(X);
  return X;
}
