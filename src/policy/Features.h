//===-- policy/Features.h - The 10-feature vector ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's 10-dimensional feature vector f = [c, e] (Table 1):
/// three static code features of the parallel loop followed by seven
/// runtime environment features. Policies and experts consume exactly this
/// representation.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_FEATURES_H
#define MEDLEY_POLICY_FEATURES_H

#include "workload/Program.h"

namespace medley::policy {

/// Number of features in the deployed models.
inline constexpr size_t NumFeatures = 10;

/// One decision point's inputs.
struct FeatureVector {
  /// Raw features f1..f10 in Table-1 order. Always finite: buildFeatures
  /// sanitizes corrupted sensor readings before any policy sees them.
  Vec Values;

  /// The paper's environment value ||e_t|| (scaled norm of f4..f10).
  double EnvNorm = 0.0;

  /// Simulated time of the decision.
  double Now = 0.0;

  /// Clamp for thread predictions (machine core count).
  unsigned MaxThreads = 1;

  /// Number of input values the sanitizer had to repair (0 on a clean
  /// sample); feeds support::FaultStats::SanitizedValues.
  unsigned SanitizedCount = 0;
};

/// Table-1 feature names, index-aligned with FeatureVector::Values.
const std::vector<std::string> &featureNames();

/// Assembles the feature vector for a region decision. \p TotalCores is the
/// machine's physical core count, used to scale the environment norm.
/// Corrupted inputs (NaN/Inf fields injected by sensor faults) are
/// sanitized here — the first rung of the degradation ladder — so every
/// downstream policy and expert sees only finite features.
FeatureVector buildFeatures(const workload::RegionContext &Context,
                            unsigned TotalCores);

/// In-place variant: fills \p Out, reusing its Values capacity so the
/// steady-state decision path performs no heap allocation. Produces exactly
/// the same FeatureVector as the value-returning overload.
void buildFeatures(const workload::RegionContext &Context, unsigned TotalCores,
                   FeatureVector &Out);

/// Reusable per-binding decision state. Each policy binding (one per
/// experiment cell / worker thread) owns one, so consecutive decisions
/// share buffers without any cross-thread contention.
struct DecisionScratch {
  FeatureVector Features;
};

/// Repairs \p Values in place: every non-finite entry becomes 0. Returns
/// the number of entries repaired.
unsigned sanitizeValues(Vec &Values);

/// Extracts only the environment features (f4..f10) from \p Features.
Vec environmentPart(const FeatureVector &Features);

} // namespace medley::policy

#endif // MEDLEY_POLICY_FEATURES_H
