//===-- policy/Features.h - The 10-feature vector ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's 10-dimensional feature vector f = [c, e] (Table 1):
/// three static code features of the parallel loop followed by seven
/// runtime environment features. Policies and experts consume exactly this
/// representation.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_FEATURES_H
#define MEDLEY_POLICY_FEATURES_H

#include "workload/Program.h"

namespace medley::policy {

/// Number of features in the deployed models.
inline constexpr size_t NumFeatures = 10;

/// One decision point's inputs.
struct FeatureVector {
  /// Raw features f1..f10 in Table-1 order.
  Vec Values;

  /// The paper's environment value ||e_t|| (scaled norm of f4..f10).
  double EnvNorm = 0.0;

  /// Simulated time of the decision.
  double Now = 0.0;

  /// Clamp for thread predictions (machine core count).
  unsigned MaxThreads = 1;
};

/// Table-1 feature names, index-aligned with FeatureVector::Values.
const std::vector<std::string> &featureNames();

/// Assembles the feature vector for a region decision. \p TotalCores is the
/// machine's physical core count, used to scale the environment norm.
FeatureVector buildFeatures(const workload::RegionContext &Context,
                            unsigned TotalCores);

/// Extracts only the environment features (f4..f10) from \p Features.
Vec environmentPart(const FeatureVector &Features);

} // namespace medley::policy

#endif // MEDLEY_POLICY_FEATURES_H
