//===-- policy/DefaultPolicy.h - OpenMP default policy ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenMP 3.0 default baseline (Section 6.3): "assigns a thread number
/// equal to the current number of available processors", irrespective of
/// any co-executing workload.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_DEFAULTPOLICY_H
#define MEDLEY_POLICY_DEFAULTPOLICY_H

#include "policy/ThreadPolicy.h"

namespace medley::policy {

/// n = current number of available processors.
class DefaultPolicy : public ThreadPolicy {
public:
  unsigned select(const FeatureVector &Features) override;
  void reset() override {}
  const std::string &name() const override;
  bool decisionsArePure() const override { return true; }
};

} // namespace medley::policy

#endif // MEDLEY_POLICY_DEFAULTPOLICY_H
