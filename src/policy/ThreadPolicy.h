//===-- policy/ThreadPolicy.h - Mapping policy interface --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface every thread-selection policy implements: select() is
/// invoked at every parallel region start with the 10-feature vector, and
/// observe() reports each completed region so adaptive policies can react.
/// One policy instance drives one program for one run; reset() rewinds any
/// adaptation state between runs.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_THREADPOLICY_H
#define MEDLEY_POLICY_THREADPOLICY_H

#include "policy/Features.h"

#include <memory>

namespace medley::policy {

/// Abstract thread-selection policy.
class ThreadPolicy {
public:
  virtual ~ThreadPolicy();

  /// Chooses a thread count for the upcoming region execution. The result
  /// is clamped by the runtime to [1, Features.MaxThreads].
  virtual unsigned select(const FeatureVector &Features) = 0;

  /// Decision-epoch boundary: invoked by the runtime binding immediately
  /// before each decision's features are assembled. Policies backed by a
  /// versioned store (the expert registry) use this to pick up a freshly
  /// published snapshot — mid-decision state never changes under a policy.
  /// Default: no-op. Must be cheap; it runs on every decision.
  virtual void beginDecisionEpoch();

  /// Reports a completed region execution. Default: ignore.
  virtual void observe(const workload::RegionOutcome &Outcome);

  /// True when select() is a pure function of the feature vector: no
  /// adaptation state read or written, no randomness, no external snapshot
  /// swaps at epoch boundaries. The runtime's decision memo may then reuse
  /// a prior decision outright (skipping select()) whenever it can prove
  /// the features are bit-identical; for impure policies it may only skip
  /// feature assembly, never the select() call — skipping one would starve
  /// the policy's internal adaptation and change later decisions. Default:
  /// false (the conservative answer is always correct).
  virtual bool decisionsArePure() const { return false; }

  /// Rewinds adaptation state for a fresh run.
  virtual void reset() = 0;

  /// Short policy name ("default", "online", "offline", "analytic", ...).
  virtual const std::string &name() const = 0;
};

/// Factory type used by the experiment driver: each run gets fresh policy
/// instances.
using PolicyFactory = std::function<std::unique_ptr<ThreadPolicy>()>;

} // namespace medley::policy

#endif // MEDLEY_POLICY_THREADPOLICY_H
