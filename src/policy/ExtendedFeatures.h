//===-- policy/ExtendedFeatures.h - Candidate feature sweep -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wide candidate feature set of Section 5.2.2: "During the training
/// phase 134 features were collected, comprising of many code and
/// environment parameters available within our LLVM-based compiler and
/// Linux. From these, 10 features were chosen ... based on the quality of
/// information gain." We generate the analogous sweep for the simulated
/// world: the ten deployed features plus dozens of derived compiler- and
/// OS-style counters (ratios, differences, transforms, and counters that
/// are genuinely uninformative). `bench_ext_feature_selection` reruns the
/// information-gain selection over this set and checks that the deployed
/// ten dominate the ranking.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_EXTENDEDFEATURES_H
#define MEDLEY_POLICY_EXTENDEDFEATURES_H

#include "policy/Features.h"

namespace medley::policy {

/// Names of the extended candidate set. The first NumFeatures entries are
/// exactly featureNames() (the deployed ten), followed by the candidates.
const std::vector<std::string> &extendedFeatureNames();

/// Number of candidate features (== extendedFeatureNames().size()).
size_t numExtendedFeatures();

/// Assembles the extended candidate vector for a region decision,
/// index-aligned with extendedFeatureNames().
Vec buildExtendedFeatures(const workload::RegionContext &Context,
                          unsigned TotalCores);

/// Indices (into the extended vector) of the ten deployed features.
const std::vector<size_t> &deployedFeatureIndices();

} // namespace medley::policy

#endif // MEDLEY_POLICY_EXTENDEDFEATURES_H
