//===-- policy/OfflinePolicy.cpp - Offline-model policy -----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/OfflinePolicy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::policy;

OfflinePolicy::OfflinePolicy(LinearModel ThreadModel, std::string PolicyName)
    : ThreadModel(std::move(ThreadModel)), PolicyName(std::move(PolicyName)) {
  assert(this->ThreadModel.dimension() == NumFeatures &&
         "offline model arity mismatch");
}

unsigned OfflinePolicy::select(const FeatureVector &Features) {
  long N = std::lround(ThreadModel.predict(Features.Values));
  N = std::clamp<long>(N, 1, static_cast<long>(Features.MaxThreads));
  return static_cast<unsigned>(N);
}
