//===-- policy/AnalyticPolicy.h - Interval-sampling analytic model -*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "analytic" baseline (Section 6.3, after Sridharan et al. PLDI'14):
/// "an analytical model determines the degree of parallelism at runtime
/// based on observed speedups at fixed time-intervals and estimated using
/// regression techniques". The policy alternates between an exploration
/// phase — running parallel sections with two randomly chosen thread
/// numbers to observe their rates — and a hold phase running the regressed
/// optimum for a fixed interval. The exploration and the hold lag are the
/// overheads the mixture approach avoids (Figure 2's delayed reaction
/// at t0).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_ANALYTICPOLICY_H
#define MEDLEY_POLICY_ANALYTICPOLICY_H

#include "policy/ThreadPolicy.h"
#include "support/Random.h"

#include <map>

namespace medley::policy {

/// Two-point exploration + Amdahl-curve regression + fixed-interval hold.
class AnalyticPolicy : public ThreadPolicy {
public:
  struct Options {
    /// Region executions measured per sampled thread count.
    unsigned SampleWindow = 1;
    /// Seconds to keep the regressed optimum before re-exploring.
    double HoldInterval = 8.0;
    /// Efficiency knee: choose the smallest n reaching this fraction of
    /// the model's asymptotic rate.
    double KneeFraction = 0.9;
    /// Passive monitoring: if a region's observed rate drifts from its
    /// rate at the start of the hold by more than this relative amount,
    /// the environment has shifted and exploration restarts early.
    double DriftThreshold = 0.4;
    uint64_t Seed = 0x5eedu;
  };

  AnalyticPolicy();
  explicit AnalyticPolicy(Options Opts);

  unsigned select(const FeatureVector &Features) override;
  void observe(const workload::RegionOutcome &Outcome) override;
  void reset() override;
  const std::string &name() const override;

  /// True while the policy is running exploration samples.
  bool exploring() const { return Phase != PhaseKind::Hold; }

private:
  enum class PhaseKind { SampleFirst, SampleSecond, Hold };

  void startExploration(unsigned MaxThreads);
  void fitAndHold();

  Options Opts;
  Rng Generator;

  PhaseKind Phase = PhaseKind::SampleFirst;
  unsigned SampleThreads[2] = {1, 1};
  double SampleRate[2] = {0.0, 0.0};
  unsigned SampleSeen = 0;
  double SampleRateSum = 0.0;

  unsigned HeldThreads = 1;
  double HoldStart = 0.0;
  double LastNow = 0.0;
  unsigned MaxThreadsSeen = 1;
  bool Primed = false;

  /// Reference rate per region established at the start of a hold; used
  /// for drift detection.
  std::map<const workload::RegionSpec *, double> HoldReferenceRates;
  bool DriftDetected = false;
};

} // namespace medley::policy

#endif // MEDLEY_POLICY_ANALYTICPOLICY_H
