//===-- policy/DefaultPolicy.cpp - OpenMP default policy ----------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/DefaultPolicy.h"

#include <algorithm>
#include <cmath>

using namespace medley::policy;

unsigned DefaultPolicy::select(const FeatureVector &Features) {
  // f5 is the current number of available processors.
  double Processors = Features.Values[4];
  long N = std::lround(Processors);
  return static_cast<unsigned>(std::max(1L, N));
}

const std::string &DefaultPolicy::name() const {
  static const std::string Name = "default";
  return Name;
}
