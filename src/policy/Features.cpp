//===-- policy/Features.cpp - The 10-feature vector --------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/Features.h"

#include <cassert>

using namespace medley;
using namespace medley::policy;

const std::vector<std::string> &medley::policy::featureNames() {
  static const std::vector<std::string> Names = {
      "load/store count", "instructions", "branches",
      "workload threads", "processors",   "runq-sz",
      "ldavg-1",          "ldavg-5",      "cached memory",
      "pages free list rate"};
  return Names;
}

FeatureVector
medley::policy::buildFeatures(const workload::RegionContext &Context,
                              unsigned TotalCores) {
  assert(Context.Region && "region context without a region");
  assert(TotalCores >= 1 && "invalid core count");

  const workload::CodeFeatures &Code = Context.Region->Code;
  const sim::EnvSample &Env = Context.Env;

  FeatureVector F;
  F.Values = {Code.LoadStoreRatio, Code.InstructionWeight, Code.BranchRatio,
              Env.WorkloadThreads, Env.Processors,         Env.RunQueue,
              Env.LoadAvg1,        Env.LoadAvg5,           Env.CachedMemory,
              Env.PageFreeRate};
  F.EnvNorm = Env.scaledNorm(static_cast<double>(TotalCores));
  F.Now = Context.Now;
  F.MaxThreads = Context.MaxThreads;
  return F;
}

Vec medley::policy::environmentPart(const FeatureVector &Features) {
  assert(Features.Values.size() == NumFeatures && "malformed feature vector");
  return Vec(Features.Values.begin() + 3, Features.Values.end());
}
