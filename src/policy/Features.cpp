//===-- policy/Features.cpp - The 10-feature vector --------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/Features.h"

#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::policy;

const std::vector<std::string> &medley::policy::featureNames() {
  static const std::vector<std::string> Names = {
      "load/store count", "instructions", "branches",
      "workload threads", "processors",   "runq-sz",
      "ldavg-1",          "ldavg-5",      "cached memory",
      "pages free list rate"};
  return Names;
}

unsigned medley::policy::sanitizeValues(Vec &Values) {
  unsigned Repaired = 0;
  for (double &X : Values)
    if (!std::isfinite(X)) {
      X = 0.0;
      ++Repaired;
    }
  return Repaired;
}

FeatureVector
medley::policy::buildFeatures(const workload::RegionContext &Context,
                              unsigned TotalCores) {
  FeatureVector F;
  buildFeatures(Context, TotalCores, F);
  return F;
}

void medley::policy::buildFeatures(const workload::RegionContext &Context,
                                   unsigned TotalCores, FeatureVector &Out) {
  assert(Context.Region && "region context without a region");
  assert(TotalCores >= 1 && "invalid core count");

  const workload::CodeFeatures &Code = Context.Region->Code;

  // Sanitize a copy of the environment first: a NaN field would otherwise
  // poison the norm, and the norm must be computed from the same values
  // the policies see.
  sim::EnvSample Env = Context.Env;
  unsigned Repaired = Env.sanitize();

  Out.Values.resize(NumFeatures);
  Out.Values[0] = Code.LoadStoreRatio;
  Out.Values[1] = Code.InstructionWeight;
  Out.Values[2] = Code.BranchRatio;
  Out.Values[3] = Env.WorkloadThreads;
  Out.Values[4] = Env.Processors;
  Out.Values[5] = Env.RunQueue;
  Out.Values[6] = Env.LoadAvg1;
  Out.Values[7] = Env.LoadAvg5;
  Out.Values[8] = Env.CachedMemory;
  Out.Values[9] = Env.PageFreeRate;
  // Code features come from the workload description, but guard them too:
  // a corrupt catalog entry must not leak NaN into the models.
  Repaired += sanitizeValues(Out.Values);
  Out.EnvNorm = Env.scaledNorm(static_cast<double>(TotalCores));
  if (!std::isfinite(Out.EnvNorm)) {
    Out.EnvNorm = 0.0;
    ++Repaired;
  }
  Out.Now = Context.Now;
  Out.MaxThreads = Context.MaxThreads;
  Out.SanitizedCount = Repaired;
}

Vec medley::policy::environmentPart(const FeatureVector &Features) {
  assert(Features.Values.size() == NumFeatures && "malformed feature vector");
  return Vec(Features.Values.begin() + 3, Features.Values.end());
}
