//===-- policy/AnalyticPolicy.cpp - Interval-sampling analytic model ------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "policy/AnalyticPolicy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::policy;

AnalyticPolicy::AnalyticPolicy() : AnalyticPolicy(Options()) {}

AnalyticPolicy::AnalyticPolicy(Options Opts)
    : Opts(Opts), Generator(Opts.Seed) {
  assert(Opts.SampleWindow >= 1 && "need at least one sample per probe");
  assert(Opts.HoldInterval > 0.0 && "hold interval must be positive");
  assert(Opts.KneeFraction > 0.0 && Opts.KneeFraction < 1.0 &&
         "knee fraction must be in (0, 1)");
}

void AnalyticPolicy::startExploration(unsigned MaxThreads) {
  // Two distinct probe thread counts. The first exploration draws them at
  // random (the PLDI'14 scheme's random probes); later explorations probe
  // around the currently held optimum, jittered so repeated probes do not
  // alias with a periodic environment.
  unsigned First, Second;
  if (!Primed || HeldThreads == 0) {
    First = static_cast<unsigned>(Generator.uniformInt(1, MaxThreads));
    Second = First;
    while (Second == First && MaxThreads > 1)
      Second = static_cast<unsigned>(Generator.uniformInt(1, MaxThreads));
  } else {
    double Down = Generator.uniform(0.5, 0.8);
    double Up = Generator.uniform(1.25, 1.6);
    First = static_cast<unsigned>(
        std::clamp<long>(std::lround(HeldThreads * Down), 1, MaxThreads));
    Second = static_cast<unsigned>(std::clamp<long>(
        std::lround(HeldThreads * Up) + 1, 1, MaxThreads));
    if (Second == First)
      Second = std::min(MaxThreads, First + 1);
  }
  SampleThreads[0] = First;
  SampleThreads[1] = Second;
  SampleRate[0] = SampleRate[1] = 0.0;
  SampleSeen = 0;
  SampleRateSum = 0.0;
  Phase = PhaseKind::SampleFirst;
}

unsigned AnalyticPolicy::select(const FeatureVector &Features) {
  LastNow = Features.Now;
  MaxThreadsSeen = Features.MaxThreads;
  if (!Primed) {
    startExploration(Features.MaxThreads);
    Primed = true;
  }
  switch (Phase) {
  case PhaseKind::SampleFirst:
    return SampleThreads[0];
  case PhaseKind::SampleSecond:
    return SampleThreads[1];
  case PhaseKind::Hold:
    if (DriftDetected || Features.Now - HoldStart >= Opts.HoldInterval) {
      startExploration(Features.MaxThreads);
      return SampleThreads[0];
    }
    return HeldThreads;
  }
  return HeldThreads;
}

void AnalyticPolicy::observe(const workload::RegionOutcome &Outcome) {
  if (Phase == PhaseKind::Hold) {
    // Passive monitoring (the PLDI'14 scheme watches instantaneous
    // performance): compare each region's rate with its rate when the
    // hold began; a large drift means the environment changed.
    auto [It, Inserted] =
        HoldReferenceRates.try_emplace(Outcome.Region, Outcome.rate());
    if (!Inserted) {
      double Reference = It->second;
      if (Reference > 0.0) {
        double Drift = Outcome.rate() / Reference - 1.0;
        if (Drift > Opts.DriftThreshold || Drift < -Opts.DriftThreshold)
          DriftDetected = true;
      }
    }
    return;
  }

  SampleRateSum += Outcome.rate();
  ++SampleSeen;
  if (SampleSeen < Opts.SampleWindow)
    return;

  double Rate = SampleRateSum / static_cast<double>(SampleSeen);
  SampleSeen = 0;
  SampleRateSum = 0.0;
  if (Phase == PhaseKind::SampleFirst) {
    SampleRate[0] = Rate;
    Phase = PhaseKind::SampleSecond;
    return;
  }
  SampleRate[1] = Rate;
  fitAndHold();
}

void AnalyticPolicy::fitAndHold() {
  unsigned N1 = SampleThreads[0], N2 = SampleThreads[1];
  double R1 = std::max(SampleRate[0], 1e-9);
  double R2 = std::max(SampleRate[1], 1e-9);
  unsigned MaxThreads = std::max(1u, MaxThreadsSeen);

  unsigned Choice;
  if (N1 == N2) {
    Choice = N1;
  } else {
    // Regress the Amdahl-style curve 1/rate = alpha + beta / n through the
    // two observations, then take the efficiency knee: the smallest n whose
    // modelled rate reaches KneeFraction of the asymptotic rate 1/alpha.
    double InvN1 = 1.0 / N1, InvN2 = 1.0 / N2;
    double Beta = (1.0 / R1 - 1.0 / R2) / (InvN1 - InvN2);
    double Alpha = 1.0 / R1 - Beta * InvN1;
    if (Alpha <= 0.0 || Beta <= 0.0) {
      // Degenerate fit: keep whichever sample was faster.
      Choice = R1 >= R2 ? N1 : N2;
    } else {
      double Knee = Beta / (Alpha * (1.0 / Opts.KneeFraction - 1.0));
      long N = static_cast<long>(std::ceil(Knee));
      // The fitted curve is monotone, so it cannot see a peak; never
      // extrapolate far beyond the probed range.
      long Probed = static_cast<long>(std::max(N1, N2));
      N = std::min(N, Probed + Probed / 2);
      N = std::clamp<long>(N, 1, static_cast<long>(MaxThreads));
      Choice = static_cast<unsigned>(N);
    }
  }

  HeldThreads = Choice;
  HoldStart = LastNow;
  HoldReferenceRates.clear();
  DriftDetected = false;
  Phase = PhaseKind::Hold;
}

void AnalyticPolicy::reset() {
  Generator = Rng(Opts.Seed);
  Phase = PhaseKind::SampleFirst;
  SampleThreads[0] = SampleThreads[1] = 1;
  SampleRate[0] = SampleRate[1] = 0.0;
  SampleSeen = 0;
  SampleRateSum = 0.0;
  HeldThreads = 1;
  HoldStart = 0.0;
  LastNow = 0.0;
  MaxThreadsSeen = 1;
  Primed = false;
  HoldReferenceRates.clear();
  DriftDetected = false;
}

const std::string &AnalyticPolicy::name() const {
  static const std::string Name = "analytic";
  return Name;
}
