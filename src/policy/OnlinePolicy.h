//===-- policy/OnlinePolicy.h - Hill-climbing adaptation --------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "online" baseline (Section 6.3): a Parcae-style robust adaptive
/// scheme that hill-climbs the thread count using observed execution rates.
/// It needs several region executions per probe, so it reacts slowly to
/// environment changes and can be trapped in local optima — the weaknesses
/// the paper attributes to it.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_POLICY_ONLINEPOLICY_H
#define MEDLEY_POLICY_ONLINEPOLICY_H

#include "policy/ThreadPolicy.h"

namespace medley::policy {

/// Hill-climbing thread selection driven by observed region rates.
class OnlinePolicy : public ThreadPolicy {
public:
  /// \p Window is the number of region executions averaged per probe;
  /// \p Step is the thread-count increment between probes. The defaults
  /// adapt by one thread every few regions — robust but slow to track a
  /// changing environment, which is the weakness the paper ascribes to
  /// this class of scheme.
  explicit OnlinePolicy(unsigned Window = 5, unsigned Step = 1);

  unsigned select(const FeatureVector &Features) override;
  void observe(const workload::RegionOutcome &Outcome) override;
  void reset() override;
  const std::string &name() const override;

  unsigned currentThreads() const { return Current; }

private:
  unsigned Window;
  unsigned Step;

  unsigned Current = 0; // 0 = uninitialised; primed on first select().
  int Direction = 1;
  unsigned SeenInWindow = 0;
  double WindowRateSum = 0.0;
  double PreviousRate = -1.0;
  unsigned MaxThreads = 1;
};

} // namespace medley::policy

#endif // MEDLEY_POLICY_ONLINEPOLICY_H
