//===-- linalg/Vector.cpp - Dense vector operations -------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "linalg/Vector.h"

#include <cassert>
#include <cmath>

namespace medley {

Vec zeros(size_t N) { return Vec(N, 0.0); }

double dot(const Vec &A, const Vec &B) {
  assert(A.size() == B.size() && "dot: dimension mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double norm2(const Vec &A) { return std::sqrt(dot(A, A)); }

Vec add(const Vec &A, const Vec &B) {
  assert(A.size() == B.size() && "add: dimension mismatch");
  Vec R(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    R[I] = A[I] + B[I];
  return R;
}

Vec sub(const Vec &A, const Vec &B) {
  assert(A.size() == B.size() && "sub: dimension mismatch");
  Vec R(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    R[I] = A[I] - B[I];
  return R;
}

Vec scale(const Vec &A, double S) {
  Vec R(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    R[I] = A[I] * S;
  return R;
}

void axpy(Vec &Y, double S, const Vec &X) {
  assert(Y.size() == X.size() && "axpy: dimension mismatch");
  for (size_t I = 0; I < Y.size(); ++I)
    Y[I] += S * X[I];
}

double distance(const Vec &A, const Vec &B) { return norm2(sub(A, B)); }

Vec hadamard(const Vec &A, const Vec &B) {
  assert(A.size() == B.size() && "hadamard: dimension mismatch");
  Vec R(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    R[I] = A[I] * B[I];
  return R;
}

void addInto(const Vec &A, const Vec &B, Vec &Out) {
  assert(A.size() == B.size() && "addInto: dimension mismatch");
  Out.resize(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out[I] = A[I] + B[I];
}

void subInto(const Vec &A, const Vec &B, Vec &Out) {
  assert(A.size() == B.size() && "subInto: dimension mismatch");
  Out.resize(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out[I] = A[I] - B[I];
}

void scaleInto(const Vec &A, double S, Vec &Out) {
  Out.resize(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out[I] = A[I] * S;
}

double dotSpan(const double *A, const double *B, size_t N) {
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

void axpySpan(double *Y, double S, const double *X, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Y[I] += S * X[I];
}

void gemv(const Vec &FlatM, size_t Rows, size_t Cols, const Vec &X,
          Vec &Out) {
  assert(FlatM.size() == Rows * Cols && "gemv: matrix shape mismatch");
  assert(X.size() == Cols && "gemv: vector dimension mismatch");
  Out.resize(Rows);
  for (size_t R = 0; R < Rows; ++R)
    Out[R] = dotSpan(FlatM.data() + R * Cols, X.data(), Cols);
}

} // namespace medley
