//===-- linalg/Matrix.cpp - Dense row-major matrix ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"

using namespace medley;

Matrix::Matrix(size_t Rows, size_t Cols, double Fill)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

Matrix Matrix::fromRows(const std::vector<Vec> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.NumCols && "ragged row set");
    for (size_t C = 0; C < M.NumCols; ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

Vec Matrix::row(size_t R) const {
  assert(R < NumRows && "row index out of range");
  Vec V(NumCols);
  for (size_t C = 0; C < NumCols; ++C)
    V[C] = at(R, C);
  return V;
}

Vec Matrix::col(size_t C) const {
  assert(C < NumCols && "column index out of range");
  Vec V(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    V[R] = at(R, C);
  return V;
}

Vec Matrix::apply(const Vec &X) const {
  assert(X.size() == NumCols && "apply: dimension mismatch");
  Vec Y(NumRows, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    double Sum = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += at(R, C) * X[C];
    Y[R] = Sum;
  }
  return Y;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &B) const {
  assert(NumCols == B.NumRows && "multiply: dimension mismatch");
  Matrix Out(NumRows, B.NumCols);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t K = 0; K < NumCols; ++K) {
      double A = at(R, K);
      // Exact zero-skip: only a true 0.0 contributes nothing to the
      // product. medley-lint: allow(float-equality)
      if (A == 0.0)
        continue;
      for (size_t C = 0; C < B.NumCols; ++C)
        Out.at(R, C) += A * B.at(K, C);
    }
  return Out;
}

Matrix Matrix::plusDiagonal(double S) const {
  assert(NumRows == NumCols && "plusDiagonal requires a square matrix");
  Matrix Out = *this;
  for (size_t I = 0; I < NumRows; ++I)
    Out.at(I, I) += S;
  return Out;
}
