//===-- linalg/LeastSquares.h - Linear regression ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ordinary and ridge least-squares fitting. The paper (Section 5.2.3) uses
/// "a linear regression technique employing standard least squares" for both
/// the thread predictor w and the environment predictor m; this is that
/// technique. A small ridge term is available as a fallback for degenerate
/// training sets (e.g. constant features under leave-one-out splits).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_LINALG_LEASTSQUARES_H
#define MEDLEY_LINALG_LEASTSQUARES_H

#include "linalg/Matrix.h"

#include <optional>

namespace medley {

/// Result of a least-squares fit: y ~= Weights . x + Intercept.
struct LinearFit {
  Vec Weights;
  double Intercept = 0.0;
  /// Coefficient of determination on the training data.
  double R2 = 0.0;

  /// Evaluates the fitted model on \p X.
  double predict(const Vec &X) const;
};

/// Options controlling fitLeastSquares.
struct LeastSquaresOptions {
  /// Ridge regularisation strength (0 = ordinary least squares). Applied to
  /// the weights only, never to the intercept.
  double Ridge = 0.0;
  /// Whether to fit an intercept term (the paper's regression constant β).
  bool FitIntercept = true;
};

/// Fits min ||X w - Y|| over rows of \p X. Returns std::nullopt when the
/// problem is unsolvable (fewer samples than features and no ridge term, or
/// a numerically singular system even after the ridge fallback).
std::optional<LinearFit> fitLeastSquares(const std::vector<Vec> &X,
                                         const Vec &Y,
                                         LeastSquaresOptions Options = {});

} // namespace medley

#endif // MEDLEY_LINALG_LEASTSQUARES_H
