//===-- linalg/Vector.h - Dense vector operations ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense vectors are plain std::vector<double> (aliased as Vec); this header
/// provides the free-function operations the learning code needs. Keeping
/// the representation standard makes the feature plumbing trivial.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_LINALG_VECTOR_H
#define MEDLEY_LINALG_VECTOR_H

#include <cstddef>
#include <vector>

namespace medley {

using Vec = std::vector<double>;

/// Returns a zero vector of dimension \p N.
Vec zeros(size_t N);

/// Dot product; dimensions must match.
double dot(const Vec &A, const Vec &B);

/// Euclidean (L2) norm.
double norm2(const Vec &A);

/// Element-wise sum; dimensions must match.
Vec add(const Vec &A, const Vec &B);

/// Element-wise difference A - B; dimensions must match.
Vec sub(const Vec &A, const Vec &B);

/// Returns S * A.
Vec scale(const Vec &A, double S);

/// In-place Y += S * X; dimensions must match.
void axpy(Vec &Y, double S, const Vec &X);

/// Euclidean distance between A and B.
double distance(const Vec &A, const Vec &B);

/// Element-wise product (Hadamard); dimensions must match.
Vec hadamard(const Vec &A, const Vec &B);

//===----------------------------------------------------------------------===//
// Allocation-free kernels
//
// In-place/span counterparts of the value-returning helpers above, for the
// decision hot path (DESIGN.md §11). Each performs exactly the same
// floating-point operations in exactly the same order as its counterpart,
// so results are bit-identical; the only difference is that the output
// lands in a caller-owned buffer whose capacity is reused across calls.
// Out may alias A or B.
//===----------------------------------------------------------------------===//

/// Out = A + B without allocating (Out is resized; capacity is kept).
void addInto(const Vec &A, const Vec &B, Vec &Out);

/// Out = A - B without allocating.
void subInto(const Vec &A, const Vec &B, Vec &Out);

/// Out = S * A without allocating.
void scaleInto(const Vec &A, double S, Vec &Out);

/// Dot product over raw spans; same accumulation order as dot().
double dotSpan(const double *A, const double *B, size_t N);

/// In-place Y[0..N) += S * X[0..N); same order as axpy().
void axpySpan(double *Y, double S, const double *X, size_t N);

/// Row-major dense matrix-vector product: Out[R] = dot(M[R*Cols ..], X).
/// \p FlatM holds Rows x Cols values row-major; each row accumulates in
/// index order, exactly like dot(), so scoring K experts through one gemv
/// is bit-identical to K separate dot() calls.
void gemv(const Vec &FlatM, size_t Rows, size_t Cols, const Vec &X,
          Vec &Out);

} // namespace medley

#endif // MEDLEY_LINALG_VECTOR_H
