//===-- linalg/Vector.h - Dense vector operations ---------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense vectors are plain std::vector<double> (aliased as Vec); this header
/// provides the free-function operations the learning code needs. Keeping
/// the representation standard makes the feature plumbing trivial.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_LINALG_VECTOR_H
#define MEDLEY_LINALG_VECTOR_H

#include <cstddef>
#include <vector>

namespace medley {

using Vec = std::vector<double>;

/// Returns a zero vector of dimension \p N.
Vec zeros(size_t N);

/// Dot product; dimensions must match.
double dot(const Vec &A, const Vec &B);

/// Euclidean (L2) norm.
double norm2(const Vec &A);

/// Element-wise sum; dimensions must match.
Vec add(const Vec &A, const Vec &B);

/// Element-wise difference A - B; dimensions must match.
Vec sub(const Vec &A, const Vec &B);

/// Returns S * A.
Vec scale(const Vec &A, double S);

/// In-place Y += S * X; dimensions must match.
void axpy(Vec &Y, double S, const Vec &X);

/// Euclidean distance between A and B.
double distance(const Vec &A, const Vec &B);

/// Element-wise product (Hadamard); dimensions must match.
Vec hadamard(const Vec &A, const Vec &B);

} // namespace medley

#endif // MEDLEY_LINALG_VECTOR_H
