//===-- linalg/Solve.h - Linear system solvers ------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorisation for symmetric positive-definite systems and
/// Householder QR for (possibly rank-deficient, tall) least-squares systems.
/// These back the ordinary/ridge least squares used to train every expert.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_LINALG_SOLVE_H
#define MEDLEY_LINALG_SOLVE_H

#include "linalg/Matrix.h"

#include <optional>

namespace medley {

/// Solves A x = B for symmetric positive-definite A via Cholesky.
/// Returns std::nullopt if A is not (numerically) positive definite.
std::optional<Vec> solveCholesky(const Matrix &A, const Vec &B);

/// Solves the least-squares problem min ||A x - B||_2 via Householder QR
/// with column pivoting disabled (A is expected to be well conditioned
/// after feature scaling). Returns std::nullopt when A has fewer rows than
/// columns or a numerically zero diagonal appears in R.
std::optional<Vec> solveLeastSquaresQr(const Matrix &A, const Vec &B);

} // namespace medley

#endif // MEDLEY_LINALG_SOLVE_H
