//===-- linalg/LeastSquares.cpp - Linear regression ---------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "linalg/LeastSquares.h"

#include "linalg/Solve.h"

#include <cmath>

using namespace medley;

double LinearFit::predict(const Vec &X) const {
  return dot(Weights, X) + Intercept;
}

static double computeR2(const std::vector<Vec> &X, const Vec &Y,
                        const LinearFit &Fit) {
  if (Y.empty())
    return 0.0;
  double MeanY = 0.0;
  for (double V : Y)
    MeanY += V;
  MeanY /= static_cast<double>(Y.size());

  double SsRes = 0.0, SsTot = 0.0;
  for (size_t I = 0; I < Y.size(); ++I) {
    double E = Y[I] - Fit.predict(X[I]);
    SsRes += E * E;
    SsTot += (Y[I] - MeanY) * (Y[I] - MeanY);
  }
  if (SsTot <= 1e-12)
    return SsRes <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - SsRes / SsTot;
}

std::optional<LinearFit>
medley::fitLeastSquares(const std::vector<Vec> &X, const Vec &Y,
                        LeastSquaresOptions Options) {
  if (X.empty() || X.size() != Y.size())
    return std::nullopt;
  size_t NumFeatures = X.front().size();
  size_t NumCols = NumFeatures + (Options.FitIntercept ? 1 : 0);

  // Augment with a constant column when fitting an intercept.
  std::vector<Vec> Rows;
  Rows.reserve(X.size());
  for (const Vec &Row : X) {
    assert(Row.size() == NumFeatures && "ragged design matrix");
    Vec Augmented = Row;
    if (Options.FitIntercept)
      Augmented.push_back(1.0);
    Rows.push_back(std::move(Augmented));
  }
  Matrix A = Matrix::fromRows(Rows);

  std::optional<Vec> Solution;
  if (Options.Ridge <= 0.0 && A.rows() >= NumCols)
    Solution = solveLeastSquaresQr(A, Y);

  if (!Solution) {
    // Ridge (or fallback-ridge) path via regularised normal equations.
    double Lambda = Options.Ridge > 0.0 ? Options.Ridge : 1e-6;
    Matrix At = A.transposed();
    Matrix Normal = At.multiply(A);
    for (size_t I = 0; I < NumFeatures; ++I) // Never regularise the intercept.
      Normal.at(I, I) += Lambda;
    Vec Atb = At.apply(Y);
    Solution = solveCholesky(Normal, Atb);
    if (!Solution)
      return std::nullopt;
  }

  LinearFit Fit;
  Fit.Weights.assign(Solution->begin(), Solution->begin() + NumFeatures);
  Fit.Intercept = Options.FitIntercept ? (*Solution)[NumFeatures] : 0.0;
  Fit.R2 = computeR2(X, Y, Fit);
  return Fit;
}
