//===-- linalg/Matrix.h - Dense row-major matrix ----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major matrix sized for the small regression problems the paper
/// trains (10 features, a few thousand samples). No attempt at BLAS-level
/// performance is made or needed.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_LINALG_MATRIX_H
#define MEDLEY_LINALG_MATRIX_H

#include "linalg/Vector.h"

#include <cassert>
#include <cstddef>

namespace medley {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Constructs a \p Rows x \p Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0);

  /// Builds a matrix from row vectors; all rows must share a length.
  static Matrix fromRows(const std::vector<Vec> &Rows);

  /// Identity of dimension \p N.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Returns row \p R as a vector.
  Vec row(size_t R) const;

  /// Returns column \p C as a vector.
  Vec col(size_t C) const;

  /// Matrix-vector product; X must have cols() entries.
  Vec apply(const Vec &X) const;

  /// Returns the transpose.
  Matrix transposed() const;

  /// Matrix-matrix product; this->cols() must equal B.rows().
  Matrix multiply(const Matrix &B) const;

  /// Returns this + S * I (only meaningful for square matrices); used for
  /// ridge regularisation.
  Matrix plusDiagonal(double S) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

} // namespace medley

#endif // MEDLEY_LINALG_MATRIX_H
