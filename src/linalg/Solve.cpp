//===-- linalg/Solve.cpp - Linear system solvers ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "linalg/Solve.h"

#include <cmath>

using namespace medley;

std::optional<Vec> medley::solveCholesky(const Matrix &A, const Vec &B) {
  assert(A.rows() == A.cols() && "Cholesky requires a square matrix");
  assert(B.size() == A.rows() && "dimension mismatch");
  size_t N = A.rows();

  // Factor A = L L^T.
  Matrix L(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double Sum = A.at(I, J);
      for (size_t K = 0; K < J; ++K)
        Sum -= L.at(I, K) * L.at(J, K);
      if (I == J) {
        if (Sum <= 0.0)
          return std::nullopt;
        L.at(I, I) = std::sqrt(Sum);
      } else {
        L.at(I, J) = Sum / L.at(J, J);
      }
    }
  }

  // Forward substitution: L y = B.
  Vec Y(N);
  for (size_t I = 0; I < N; ++I) {
    double Sum = B[I];
    for (size_t K = 0; K < I; ++K)
      Sum -= L.at(I, K) * Y[K];
    Y[I] = Sum / L.at(I, I);
  }

  // Back substitution: L^T x = y.
  Vec X(N);
  for (size_t II = N; II > 0; --II) {
    size_t I = II - 1;
    double Sum = Y[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= L.at(K, I) * X[K];
    X[I] = Sum / L.at(I, I);
  }
  return X;
}

std::optional<Vec> medley::solveLeastSquaresQr(const Matrix &A, const Vec &B) {
  size_t M = A.rows(), N = A.cols();
  assert(B.size() == M && "dimension mismatch");
  if (M < N)
    return std::nullopt;

  // Work on copies; R overwrites Work, and Rhs accumulates Q^T B.
  Matrix Work = A;
  Vec Rhs = B;

  for (size_t K = 0; K < N; ++K) {
    // Build the Householder reflector for column K.
    double NormX = 0.0;
    for (size_t I = K; I < M; ++I)
      NormX += Work.at(I, K) * Work.at(I, K);
    NormX = std::sqrt(NormX);
    if (NormX < 1e-12)
      return std::nullopt;

    double Alpha = Work.at(K, K) > 0 ? -NormX : NormX;
    Vec V(M, 0.0);
    V[K] = Work.at(K, K) - Alpha;
    for (size_t I = K + 1; I < M; ++I)
      V[I] = Work.at(I, K);
    double VNorm2 = 0.0;
    for (size_t I = K; I < M; ++I)
      VNorm2 += V[I] * V[I];
    if (VNorm2 < 1e-24)
      continue; // Column already triangular.

    // Apply H = I - 2 v v^T / (v^T v) to the trailing matrix and RHS.
    for (size_t C = K; C < N; ++C) {
      double Dot = 0.0;
      for (size_t I = K; I < M; ++I)
        Dot += V[I] * Work.at(I, C);
      double Beta = 2.0 * Dot / VNorm2;
      for (size_t I = K; I < M; ++I)
        Work.at(I, C) -= Beta * V[I];
    }
    double Dot = 0.0;
    for (size_t I = K; I < M; ++I)
      Dot += V[I] * Rhs[I];
    double Beta = 2.0 * Dot / VNorm2;
    for (size_t I = K; I < M; ++I)
      Rhs[I] -= Beta * V[I];
  }

  // Back substitution on the upper triangle.
  Vec X(N);
  for (size_t KK = N; KK > 0; --KK) {
    size_t K = KK - 1;
    double Diag = Work.at(K, K);
    if (std::fabs(Diag) < 1e-12)
      return std::nullopt;
    double Sum = Rhs[K];
    for (size_t C = K + 1; C < N; ++C)
      Sum -= Work.at(K, C) * X[C];
    X[K] = Sum / Diag;
  }
  return X;
}
