//===-- core/Oracle.h - Best-thread-count oracle ----------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the thread count that maximises a region's progress rate under
/// a given environment state, using the same analytic machine model the
/// simulator executes. This is the training-data labeller: the paper
/// obtains labels by repeating runs with varying thread counts and
/// recording the best; evaluating the simulator's own rate model at every
/// candidate count is the exact limit of that procedure.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_ORACLE_H
#define MEDLEY_CORE_ORACLE_H

#include "sim/Machine.h"
#include "support/Random.h"
#include "workload/Region.h"

namespace medley::core {

/// A frozen environment state for oracle queries.
struct OracleEnv {
  unsigned AvailableCores = 32;
  /// External runnable threads (everything except the program deciding).
  unsigned ExternalThreads = 0;
  /// External memory-bandwidth demand at full speed (normalised units).
  double ExternalMemDemand = 0.0;
};

/// Progress rate of \p Region at \p Threads threads under \p Env on
/// \p Machine, assuming the environment stays frozen.
double oracleRegionRate(const workload::RegionSpec &Region, unsigned Threads,
                        const OracleEnv &Env, const sim::MachineConfig &Machine);

/// argmax over n in [1, Machine.TotalCores] of oracleRegionRate.
unsigned oracleBestThreads(const workload::RegionSpec &Region,
                           const OracleEnv &Env,
                           const sim::MachineConfig &Machine);

/// The label the paper's training procedure would actually produce: the
/// best thread count found by *measuring* a coarse grid of candidate
/// counts with multiplicative timing noise of \p NoiseStddev, using
/// \p Generator. This is the realistic counterpart of oracleBestThreads
/// ("runs are repeated by varying the number of threads ... record the
/// number of threads n that leads to best performance", Section 5.2.1).
unsigned empiricalBestThreads(const workload::RegionSpec &Region,
                              const OracleEnv &Env,
                              const sim::MachineConfig &Machine,
                              Rng &Generator, double NoiseStddev = 0.04);

} // namespace medley::core

#endif // MEDLEY_CORE_ORACLE_H
