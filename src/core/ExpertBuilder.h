//===-- core/ExpertBuilder.h - Offline expert training ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline training pipeline of Section 5: co-execute NAS target /
/// workload pairs on the 12- and 32-core platforms while exploring thread
/// counts, label every parallel-loop decision with the best thread number
/// for the observed environment and with the environment realised at the
/// next decision, then split the corpus by program scaling behaviour and
/// platform (Figure 5) and fit each expert's (w, m) model pair by least
/// squares. Training is a one-off cost; experts are never retrained online.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERTBUILDER_H
#define MEDLEY_CORE_EXPERTBUILDER_H

#include "core/Expert.h"
#include "sim/Machine.h"

#include <cstdint>
#include <vector>

namespace medley::core {

/// Training-run parameters.
struct TrainingConfig {
  /// Training programs; defaults to the NAS suite (Section 5.2.1).
  std::vector<std::string> Programs;

  /// Training platforms; defaults to the 12- and 32-core machines.
  std::vector<sim::MachineConfig> Platforms;

  /// Simulated seconds per target/workload pair. Long enough for the
  /// 1-/5-minute load averages to reach the levels deployment will see.
  double RunDuration = 150.0;
  double Tick = 0.1;
  uint64_t Seed = 0x7EA1;
  double AvailabilityPeriod = 8.0; ///< Hardware-change period while training.

  /// The paper's scalability criterion: a program is scalable if its
  /// isolated speedup reaches P / ScalabilityDivisor (Section 5.1 uses 4).
  double ScalabilityDivisor = 4.0;

  /// Environment-predictor regularisation as a fraction of the training
  /// subset size. Strong shrinkage pulls an expert's environment
  /// predictions toward its own regime's mean, which keeps it accurate at
  /// home and increasingly wrong away from home — precisely the property
  /// that makes environment error a proxy for expert fitness.
  double EnvRidgeFraction = 0.3;

  /// Platform on which the program-level scalability split is decided
  /// (Figure 5 separates the *programs* once, then trains per platform).
  /// Defaults to the last platform (the 32-core evaluation machine).
  size_t SplitPlatformIndex = 1;

  /// Fills in the defaults above.
  static TrainingConfig standard();
};

/// One labelled decision point from the training runs.
struct TrainingSample {
  Vec Features;               ///< The 10-feature vector f_t.
  double BestThreads = 1.0;   ///< Best thread count for this state.
  double NextEnvNorm = 0.0;   ///< ||e_{t+1}|| realised at the next decision.
  bool HasNextEnv = false;
  std::string Program;
  size_t PlatformIndex = 0;
  unsigned PlatformCores = 0;
  /// Program-level isolated speedup / core count on the split platform.
  double ScalabilityFraction = 0.0;

  /// Whether the machine was oversubscribed (runnable threads exceeded
  /// available processors) when the sample was taken — the "H/W
  /// configuration" axis of the expert split.
  bool Contended = false;
};

/// An expert plus the data it was trained on (kept for the analysis
/// figures: Table 1 weights, Figure 6 feature impact).
struct BuiltExpert {
  Expert E;
  Dataset ThreadData;
  Dataset EnvData;
};

/// Row of the Figure-5 training-split table.
struct ScalabilityEntry {
  std::string Program;
  unsigned PlatformCores = 0;
  double IsolatedSpeedup = 0.0;
  bool Scalable = false;
};

/// Runs the training matrix once and builds experts of any granularity.
class ExpertBuilder {
public:
  explicit ExpertBuilder(TrainingConfig Config = TrainingConfig::standard());

  /// Runs all training simulations (idempotent; called lazily by the
  /// accessors below).
  void collect();

  const std::vector<TrainingSample> &samples();

  /// Scaler over the entire corpus's features (used by the selectors).
  FeatureScaler featureScaler();

  /// Builds \p NumExperts experts (supported: 1, 2, 4, 8), ordered by the
  /// mean environment norm of their training data (E1 = calmest regime).
  /// 1 = monolithic; 2 = hardware-state split (uncontended/contended);
  /// 4 = program scaling behaviour x hardware state (the Figure-5 split,
  /// with "H/W configuration" realised as the machine state — see
  /// DESIGN.md §5); 8 = scaling quartiles x hardware state.
  std::vector<BuiltExpert> build(unsigned NumExperts);

  /// Like build(), but trains on a deterministic \p Fraction of the corpus
  /// (stride subsampling). Supports the Section-9 study of the trade-off
  /// between the number of experts and the training data volume.
  std::vector<BuiltExpert> buildSubsampled(unsigned NumExperts,
                                           double Fraction);

  /// The Figure-14(c) aggregate model: one thread predictor trained on the
  /// union of all experts' data.
  LinearModel monolithicThreadModel();

  /// The Figure-5 split table.
  std::vector<ScalabilityEntry> scalabilityTable();

  const TrainingConfig &config() const { return Config; }

private:
  void collectPair(const std::string &TargetName,
                   const std::string &WorkloadName, size_t PlatformIndex,
                   uint64_t Seed);

  /// Scalability fraction S(P)/P for \p Program on platform \p Platform.
  double scalabilityFraction(const std::string &Program,
                             const sim::MachineConfig &Platform) const;

  /// Expert index for a sample under a \p NumExperts split; kept in sync
  /// with the subset descriptions built in build(). \p BandEdges are the
  /// scaling-quartile boundaries used by the 8-expert split.
  size_t expertIndexFor(const TrainingSample &Sample, unsigned NumExperts,
                        const std::vector<double> &BandEdges) const;

  /// Shared implementation of build()/buildSubsampled().
  std::vector<BuiltExpert>
  buildFrom(unsigned NumExperts,
            const std::vector<TrainingSample> &Corpus);

  TrainingConfig Config;
  bool Collected = false;
  std::vector<TrainingSample> Samples;
  bool HaveScaler = false;
  FeatureScaler CorpusScaler;
};

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERTBUILDER_H
