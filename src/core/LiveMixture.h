//===-- core/LiveMixture.h - Registry-backed mixture policy -----*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mixture policy bound to a live ExpertRegistry (DESIGN.md §14): the
/// inner MixtureOfExperts runs the paper's decision loop unchanged, but at
/// every decision-epoch boundary the policy acquires the registry's
/// current snapshot — one atomic load on the steady path — and, when a new
/// version was published, rebinds the inner mixture's expert vector
/// without touching the selector's learned state (the RCU swap's reader
/// side). The selector keeps its accumulated accuracy across swaps;
/// pending cross-decision judgements that priced the old experts are
/// dropped at the boundary.
///
/// Optionally the policy also drives a RolloutController: its observe()
/// shadow-scores candidates on the decision path, maintain() runs at each
/// epoch boundary, and a completed rollback re-admits quarantined experts
/// (strikes earned under the bad snapshot must not punish the restored
/// one).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_LIVEMIXTURE_H
#define MEDLEY_CORE_LIVEMIXTURE_H

#include "core/ExpertRegistry.h"
#include "core/MixtureOfExperts.h"
#include "core/RolloutController.h"

#include <memory>

namespace medley::core {

/// Mixture-of-experts policy whose expert set follows an ExpertRegistry.
class LiveMixture : public policy::ThreadPolicy {
public:
  /// \p Registry must hold a published snapshot already (the initial
  /// expert set) and must outlive the policy. \p Selector arity must match
  /// that snapshot. \p Rollout (optional, shared with the trainer side)
  /// is serviced from this policy's decision loop; the observe()/
  /// maintain() single-threaded contract is satisfied because one policy
  /// instance drives one program.
  LiveMixture(std::shared_ptr<ExpertRegistry> Registry,
              std::unique_ptr<ExpertSelector> Selector,
              std::shared_ptr<RolloutController> Rollout = nullptr,
              std::shared_ptr<MoeStats> Stats = nullptr,
              MixtureOptions Options = {});

  /// Steady path: one acquire-load epoch check; swaps rebind the inner
  /// mixture and service the rollout machinery.
  void beginDecisionEpoch() override;

  unsigned select(const policy::FeatureVector &Features) override;
  void observe(const workload::RegionOutcome &Outcome) override;
  void reset() override;
  const std::string &name() const override;

  MixtureOfExperts &mixture() { return *Inner; }
  const MixtureOfExperts &mixture() const { return *Inner; }

  /// Version of the snapshot the policy currently decides with.
  uint64_t boundVersion() const { return BoundVersion; }

  /// Snapshot swaps performed over the policy's lifetime.
  uint64_t swaps() const { return Swaps; }

private:
  std::shared_ptr<ExpertRegistry> Registry;
  std::shared_ptr<RolloutController> Rollout;
  std::unique_ptr<MixtureOfExperts> Inner;

  ExpertRegistry::ReaderEpoch Reader;
  const std::vector<Expert> *BoundExperts = nullptr;
  uint64_t BoundVersion = 0;
  uint64_t Swaps = 0;
};

} // namespace medley::core

#endif // MEDLEY_CORE_LIVEMIXTURE_H
