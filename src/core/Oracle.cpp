//===-- core/Oracle.cpp - Best-thread-count oracle -----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

double medley::core::oracleRegionRate(const workload::RegionSpec &Region,
                                      unsigned Threads, const OracleEnv &Env,
                                      const sim::MachineConfig &Machine) {
  assert(Threads >= 1 && "invalid thread count");
  assert(Env.AvailableCores >= 1 && "invalid environment");

  // Mirror sim::Simulation::step's scheduling maths for a frozen mix.
  unsigned Runnable = Threads + Env.ExternalThreads;
  double Ratio =
      static_cast<double>(Runnable) / static_cast<double>(Env.AvailableCores);
  double Share = std::min(1.0, 1.0 / Ratio);
  double BarrierFactor = 1.0;
  if (Ratio > 1.0) {
    Share /= 1.0 + Machine.ContextSwitchOverhead * (Ratio - 1.0);
    BarrierFactor = 1.0 + Machine.BarrierConvoy * (Ratio - 1.0) *
                              (1.0 - Machine.AffinityBenefit);
  }

  double Demand = (Env.ExternalMemDemand +
                   static_cast<double>(Threads) * Region.MemIntensity) *
                  Share;
  double DemandRatio = Demand / Machine.MemoryBandwidth;
  double MemFactor =
      DemandRatio <= 1.0
          ? 1.0
          : std::min(std::pow(DemandRatio, Machine.MemContentionExponent),
                     Machine.MemFactorCap);
  if (Machine.AffinityBenefit > 0.0)
    MemFactor = 1.0 + (MemFactor - 1.0) * (1.0 - Machine.AffinityBenefit);

  sim::CpuAllocation Allocation;
  Allocation.CpuShare = Share;
  Allocation.MemFactor = MemFactor;
  Allocation.BarrierFactor = BarrierFactor;
  Allocation.CoresPerSocket = Machine.coresPerSocket();
  Allocation.InterSocketSync = Machine.InterSocketSync;
  Allocation.AvailableCores = Env.AvailableCores;
  Allocation.RunnableThreads = Runnable;
  return workload::regionRate(Region, Threads, Allocation);
}

unsigned medley::core::oracleBestThreads(const workload::RegionSpec &Region,
                                         const OracleEnv &Env,
                                         const sim::MachineConfig &Machine) {
  unsigned Best = 1;
  double BestRate = 0.0;
  for (unsigned N = 1; N <= Machine.TotalCores; ++N) {
    double Rate = oracleRegionRate(Region, N, Env, Machine);
    if (Rate > BestRate) {
      BestRate = Rate;
      Best = N;
    }
  }
  return Best;
}

unsigned medley::core::empiricalBestThreads(const workload::RegionSpec &Region,
                                            const OracleEnv &Env,
                                            const sim::MachineConfig &Machine,
                                            Rng &Generator,
                                            double NoiseStddev) {
  // The grid an engineer would sweep: powers of two padded with the
  // socket-sized counts of the machine.
  static const unsigned Grid[] = {1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32};
  unsigned Best = 1;
  double BestRate = 0.0;
  for (unsigned N : Grid) {
    if (N > Machine.TotalCores)
      break;
    double Rate = oracleRegionRate(Region, N, Env, Machine) *
                  (1.0 + Generator.normal(0.0, NoiseStddev));
    if (Rate > BestRate) {
      BestRate = Rate;
      Best = N;
    }
  }
  return Best;
}
