//===-- core/ExpertIo.h - Expert (de)serialisation --------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text (de)serialisation of trained linear experts. Training is a one-off
/// cost (Section 5.2.1); saving the resulting (w, m) pairs makes that
/// literal across process boundaries — a runtime can ship with a trained
/// expert file and never retrain. The format is a line-oriented,
/// whitespace-tokenised text format (stable, diffable, no dependencies):
///
///   medley-experts 2
///   checksum <16 lowercase hex digits>
///   experts <count> features <dim>
///   expert <name-token> <meanTrainingEnv>
///   description <free text to end of line>
///   w means <dim doubles> scales <dim doubles> weights <dim doubles>
///     intercept <double> r2 <double>
///   m ... (same shape)
///
/// The checksum is 64-bit FNV-1a over the payload — every byte after the
/// checksum line. Writers always emit version 2; readers accept version 1
/// (the same format minus the checksum line, unverified) so legacy files
/// keep loading. A payload that disagrees with its stored checksum is
/// rejected with ErrorCode::ChecksumMismatch before any parsing, so a
/// bit-flipped file can never half-load.
///
/// Only linear experts round-trip; external/function-backed experts are
/// rejected by writeExperts.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERTIO_H
#define MEDLEY_CORE_EXPERTIO_H

#include "core/Expert.h"
#include "support/Error.h"

#include <iosfwd>
#include <optional>

namespace medley::core {

/// Serialises \p Experts to \p OS. Returns false (writing nothing useful)
/// if any expert is not linear.
[[nodiscard]] bool writeExperts(std::ostream &OS,
                                const std::vector<Expert> &Experts);

/// Parses experts previously written by writeExperts. Returns std::nullopt
/// on any malformed input — wrong magic, truncated numbers, arity
/// mismatches, or non-finite model parameters (a corrupted file must
/// never leak NaN/Inf into the runtime). \p Err, when given, receives a
/// descriptive error on failure.
[[nodiscard]] std::optional<std::vector<Expert>>
readExperts(std::istream &IS, support::Error *Err = nullptr);

/// Convenience file wrappers; false / nullopt on I/O failure.
[[nodiscard]] bool saveExpertsToFile(const std::string &Path,
                                     const std::vector<Expert> &Experts);
[[nodiscard]] std::optional<std::vector<Expert>>
loadExpertsFromFile(const std::string &Path, support::Error *Err = nullptr);

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERTIO_H
