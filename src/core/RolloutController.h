//===-- core/RolloutController.h - Staged snapshot rollout ------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged-rollout state machine for retrained expert snapshots
/// (DESIGN.md §14.5):
///
///       stage           promote            survive canary
///   Idle ──► Shadow ──────► Canary ────────────► Promoted
///              │ lose          │ diverge (strikes)
///              ▼               ▼
///            Idle          RolledBack  (pre-swap snapshot republished
///                                       bit-identically)
///
/// Shadow: the candidate runs invisibly — on every live decision both the
/// live snapshot's experts and the candidate's predict the next
/// environment, and one step later the realised environment judges them
/// (the paper's own env-accuracy proxy; nothing is ever "tried out" on
/// traffic). The candidate is published only after winning at least a
/// configured fraction of a confidence window.
///
/// Canary: the candidate is live (published through the registry — the
/// RCU swap), but the pre-swap snapshot is retained and keeps
/// shadow-predicting on a configurable fraction of decisions. Divergence
/// strikes (the QuarantineSelector's strike discipline applied to whole
/// snapshots) trigger auto-rollback: the pre-swap snapshot's *content* is
/// republished under a fresh monotonic version — bit-identical experts,
/// new epoch — and the mixture's quarantine state is re-admitted so
/// strikes from the bad snapshot don't leak.
///
/// Split for the hot path: observe(), called on every decision, only
/// judges and stashes through sticky scratch buffers — it is a medley-lint
/// L7/L8 entry point and must stay allocation-free and lock-free.
/// maintain(), called at decision-epoch boundaries (or from the lifecycle
/// loop), drains the trainer mailbox and executes the state transitions
/// that allocate and publish. The caller contract is single-threaded for
/// both; only submitCandidate() may be called from another thread.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_ROLLOUTCONTROLLER_H
#define MEDLEY_CORE_ROLLOUTCONTROLLER_H

#include "core/ExpertRegistry.h"
#include "policy/Features.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace medley::core {

/// Rollout phases. RolledBack is sticky until the next candidate stages.
enum class RolloutState { Idle, Shadow, Canary, Promoted, RolledBack };

/// Short stable name of \p State ("idle", "shadow", ...).
const char *rolloutStateName(RolloutState State);

/// Tuning of the rollout ladder.
struct RolloutOptions {
  /// Judged decisions a candidate shadow-scores before the promote /
  /// reject verdict.
  size_t ShadowWindow = 128;

  /// Fraction of shadow-judged decisions the candidate must win (its best
  /// env prediction at least as close as the live snapshot's) to reach
  /// canary.
  double PromoteFraction = 0.55;

  /// Fraction of canary decisions scored against the retained pre-swap
  /// snapshot (deterministic Bresenham interleaving — the --canary-fraction
  /// knob; scoring costs one extra batch of env predictions per decision).
  double CanaryFraction = 1.0;

  /// Scored canary decisions without a rollback before promotion.
  size_t CanaryWindow = 256;

  /// Consecutive divergence strikes that trigger auto-rollback.
  unsigned RollbackStrikes = 3;

  /// A scored canary decision strikes when the live (canary) snapshot's
  /// best env error exceeds DivergenceFactor x the pre-swap snapshot's
  /// best error and the absolute floor (mirrors QuarantineOptions).
  double DivergenceFactor = 3.0;
  double AbsoluteErrorFloor = 0.5;
};

/// Drives candidates through Shadow -> Canary -> Promoted | RolledBack
/// against one ExpertRegistry.
class RolloutController {
public:
  /// \p Registry must outlive the controller. \p Stats (optional,
  /// non-owning) receives promotion / rollback counters on the
  /// observe()/maintain() caller's thread.
  RolloutController(std::shared_ptr<ExpertRegistry> Registry,
                    RolloutOptions Options = {},
                    support::FaultStats *Stats = nullptr);

  /// Thread-safe candidate hand-off (the trainer worker's side): the
  /// candidate is parked in a mailbox and staged by the next maintain().
  /// A newer submission replaces an unclaimed older one.
  void submitCandidate(std::vector<Expert> Candidate);

  /// Decision-path hook (medley-lint L7/L8 entry point): judges the
  /// previous decision's stashed predictions against the environment
  /// observed in \p Features, advances strike / window counters, and
  /// stashes this decision's predictions. Never allocates or locks in
  /// steady state; transitions that publish are deferred to maintain().
  /// Returns the phase after judging.
  RolloutState observe(const policy::FeatureVector &Features);

  /// Epoch-boundary slow path: drains the candidate mailbox (staging a new
  /// Shadow), and executes any transition observe() decided — publishing a
  /// promoted candidate, rolling back a diverged canary (republishing the
  /// retained pre-swap snapshot bit-identically), or retiring a rejected
  /// shadow. Returns the phase after the transitions.
  RolloutState maintain();

  RolloutState state() const { return State; }

  /// True exactly once after a rollback completed; reading clears the
  /// flag. The live-mixture policy uses this to re-admit quarantined
  /// experts after the pre-swap snapshot returns.
  bool consumeRollback();

  /// Lifetime counters (on the observe()/maintain() thread).
  uint64_t promotions() const { return Promotions; }
  uint64_t rollbacks() const { return Rollbacks; }
  uint64_t shadowRejects() const { return ShadowRejects; }

  /// The retained pre-swap snapshot while a canary is live (null
  /// otherwise); exposed for tests asserting bit-identical restoration.
  std::shared_ptr<const ExpertSnapshot> preSwapSnapshot() const {
    return PreSwap;
  }

  const RolloutOptions &options() const { return Options; }

private:
  /// Env predictions of every expert in \p Experts at \p Features, into
  /// \p Out (sticky scratch; batched when all experts are linear).
  void predictEnvInto(const std::vector<Expert> &Experts,
                      const std::vector<const LinearModel *> &Models,
                      const policy::FeatureVector &Features, Vec &Out);

  /// Best (smallest) |prediction - observed| over \p Predictions.
  static double bestError(const Vec &Predictions, double Observed);

  /// Rebuilds the batched linear-model views for both tracked expert sets.
  void rebuildViews();

  std::shared_ptr<ExpertRegistry> Registry;
  RolloutOptions Options;
  support::FaultStats *Stats;

  RolloutState State = RolloutState::Idle;

  /// Reader pin onto the live snapshot (the controller is a registry
  /// reader like any policy instance).
  ExpertRegistry::ReaderEpoch Reader;

  /// Shadow phase: the candidate under evaluation (unpublished).
  std::shared_ptr<const std::vector<Expert>> Candidate;

  /// Canary phase: the snapshot that was live before the swap.
  std::shared_ptr<const ExpertSnapshot> PreSwap;

  // Transition verdicts, decided in observe(), executed in maintain().
  bool WantPromote = false;
  bool WantReject = false;
  bool WantRollback = false;
  bool WantComplete = false; ///< Canary survived its window: finish.

  // Trainer mailbox: flag checked with one relaxed atomic load per
  // maintain(); the mutex is touched only when a candidate is waiting.
  std::atomic<bool> MailboxFull{false};
  std::mutex MailboxMutex;
  std::optional<std::vector<Expert>> Mailbox;

  // Shadow bookkeeping.
  size_t ShadowJudged = 0;
  size_t ShadowWins = 0;

  // Canary bookkeeping.
  size_t CanaryJudged = 0;
  unsigned ConsecutiveStrikes = 0;
  double CanaryAccumulator = 0.0;

  // Pending predictions stashed by the previous observe(): the live
  // snapshot's experts and the "other" set (candidate in Shadow, pre-swap
  // in Canary).
  bool HasPending = false;
  bool PendingScored = false; ///< Canary: was this decision scored?
  Vec PendingLive;
  Vec PendingOther;

  // Batched linear views (rebuilt by maintain() at swap boundaries only).
  std::vector<const LinearModel *> LiveEnvModels;
  std::vector<const LinearModel *> OtherEnvModels;
  const std::vector<Expert> *LiveExperts = nullptr;
  const std::vector<Expert> *OtherExperts = nullptr;

  bool RollbackPendingAck = false;
  uint64_t Promotions = 0;
  uint64_t Rollbacks = 0;
  uint64_t ShadowRejects = 0;
};

} // namespace medley::core

#endif // MEDLEY_CORE_ROLLOUTCONTROLLER_H
