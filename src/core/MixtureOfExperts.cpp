//===-- core/MixtureOfExperts.cpp - The mixture policy -------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/MixtureOfExperts.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

MixtureOfExperts::MixtureOfExperts(
    std::shared_ptr<const std::vector<Expert>> Experts,
    std::unique_ptr<ExpertSelector> Selector, std::shared_ptr<MoeStats> Stats,
    MixtureOptions Options)
    : Experts(std::move(Experts)), Selector(std::move(Selector)),
      Stats(std::move(Stats)), Options(Options) {
  assert(this->Experts && !this->Experts->empty() &&
         "mixture needs at least one expert");
  assert(this->Selector &&
         this->Selector->numExperts() == this->Experts->size() &&
         "selector arity must match the expert count");
  assert(!this->Stats || this->Stats->numExperts() == this->Experts->size());
}

void MixtureOfExperts::judgePreviousDecision(
    const policy::FeatureVector &Features) {
  if (!HasPending)
    return;

  // How far off was each expert's environment prediction made at the
  // previous region, now that the environment is observable?
  double Observed = Features.EnvNorm;
  Vec Errors(PendingEnvPredictions.size());
  for (size_t K = 0; K < PendingEnvPredictions.size(); ++K)
    Errors[K] = std::fabs(PendingEnvPredictions[K] - Observed);
  Selector->update(PendingFeatures, Errors);

  // Experts that learn their environment model online (Section 4.1's
  // retrofit path) receive the realised observation.
  for (const Expert &E : *Experts)
    E.observeEnvironment(PendingFeatures, Observed);

  if (Stats) {
    double Tolerance =
        Options.EnvAccuracyTolerance * std::max(Observed, 1e-6);
    for (size_t K = 0; K < PendingEnvPredictions.size(); ++K) {
      bool Accurate =
          std::fabs(PendingEnvPredictions[K] - Observed) <= Tolerance;
      ++Stats->EnvTotal[K];
      if (Accurate)
        ++Stats->EnvAccurate[K];
    }
    ++Stats->MixtureEnvTotal;
    if (std::fabs(PendingEnvPredictions[PendingChosen] - Observed) <=
        Tolerance)
      ++Stats->MixtureEnvAccurate;
  }
  HasPending = false;
}

unsigned MixtureOfExperts::select(const policy::FeatureVector &Features) {
  judgePreviousDecision(Features);

  if (Options.Faults && Features.SanitizedCount > 0)
    Options.Faults->SanitizedValues += Features.SanitizedCount;

  if (Selector->allQuarantined()) {
    // The ladder's floor: every expert's environment predictor has
    // diverged, so no expert can be trusted. Degrade to exactly the
    // OpenMP-default behaviour (n = available processors) while the
    // quarantine backoffs run down; judging continues below, so experts
    // are re-admitted and the mixture resumes automatically.
    if (Options.Faults)
      ++Options.Faults->DefaultFallbacks;
    double Processors = Features.Values[4];
    long N = std::clamp<long>(std::lround(Processors), 1,
                              static_cast<long>(Features.MaxThreads));
    unsigned Threads = static_cast<unsigned>(N);
    PendingFeatures = Features.Values;
    PendingEnvPredictions.resize(Experts->size());
    for (size_t K = 0; K < Experts->size(); ++K)
      PendingEnvPredictions[K] = (*Experts)[K].predictEnvNorm(Features);
    PendingChosen = LastExpert;
    HasPending = true;
    return Threads;
  }

  size_t Chosen;
  unsigned Threads;
  Vec Weights;
  if (Options.SoftBlend &&
      Selector->blendWeights(Features.Values, Weights)) {
    // Soft gating: accuracy-weighted blend of the expert predictions.
    double Blend = 0.0;
    double BestWeight = -1.0;
    Chosen = 0;
    for (size_t K = 0; K < Experts->size(); ++K) {
      unsigned N = (*Experts)[K].predictThreads(Features);
      Blend += Weights[K] * static_cast<double>(N);
      if (Weights[K] > BestWeight) {
        BestWeight = Weights[K];
        Chosen = K;
      }
    }
    long Rounded = std::lround(Blend);
    Rounded = std::clamp<long>(Rounded, 1,
                               static_cast<long>(Features.MaxThreads));
    Threads = static_cast<unsigned>(Rounded);
  } else {
    Chosen = Selector->select(Features.Values);
    assert(Chosen < Experts->size() && "selector returned a bad index");
    Threads = (*Experts)[Chosen].predictThreads(Features);
  }
  LastExpert = Chosen;

  // Stash this decision's environment predictions; they are judged at the
  // next region, which is the paper's next timestamp.
  PendingFeatures = Features.Values;
  PendingEnvPredictions.resize(Experts->size());
  for (size_t K = 0; K < Experts->size(); ++K)
    PendingEnvPredictions[K] = (*Experts)[K].predictEnvNorm(Features);
  PendingChosen = Chosen;
  HasPending = true;

  if (Stats) {
    ++Stats->SelectionCounts[Chosen];
    Stats->MixtureThreads.add(Threads);
    for (size_t K = 0; K < Experts->size(); ++K)
      Stats->ExpertThreads[K].add((*Experts)[K].predictThreads(Features));
  }
  return Threads;
}

void MixtureOfExperts::reset() {
  Selector->reset();
  HasPending = false;
  LastExpert = 0;
}

const std::string &MixtureOfExperts::name() const {
  static const std::string Name = "mixture";
  return Name;
}
