//===-- core/MixtureOfExperts.cpp - The mixture policy -------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/MixtureOfExperts.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace medley;
using namespace medley::core;

MixtureOfExperts::MixtureOfExperts(
    std::shared_ptr<const std::vector<Expert>> Experts,
    std::unique_ptr<ExpertSelector> Selector, std::shared_ptr<MoeStats> Stats,
    MixtureOptions Options)
    : Experts(std::move(Experts)), Selector(std::move(Selector)),
      Stats(std::move(Stats)), Options(Options) {
  assert(this->Experts && !this->Experts->empty() &&
         "mixture needs at least one expert");
  assert(this->Selector &&
         this->Selector->numExperts() == this->Experts->size() &&
         "selector arity must match the expert count");
  assert(!this->Stats || this->Stats->numExperts() == this->Experts->size());

  bindExpertViews();
}

void MixtureOfExperts::bindExpertViews() {
  SharedThreadScaler = nullptr;
  ThreadModels.clear();
  EnvModels.clear();
  AnyEnvObserver = false;
  // New models produce new bits for the same features; drop the memo.
  MemoValid = false;
  MemoHaveThreadPreds = false;

  // ExpertBuilder trains every thread predictor with one corpus-wide
  // scaler; when that holds (element-wise identical moments), the decision
  // path standardises features once and scores all experts from the shared
  // copy — bit-identical, but K-1 fewer standardisations per decision.
  const LinearModel *First = (*Experts)[0].threadModel();
  if (First) {
    SharedThreadScaler = &First->scaler();
    for (size_t K = 1; K < Experts->size(); ++K) {
      const LinearModel *M = (*Experts)[K].threadModel();
      if (!M || M->scaler().means() != First->scaler().means() ||
          M->scaler().scales() != First->scaler().scales()) {
        SharedThreadScaler = nullptr;
        break;
      }
    }
  }

  for (const Expert &E : *Experts) {
    if (E.hasEnvObserver())
      AnyEnvObserver = true;
    // Swap-boundary rebind, not the steady decision path: only the ctor
    // and rebindExperts reach here.
    if (const LinearModel *M = E.envModel())
      // medley-lint: allow(hotpath-escape) swap-boundary rebind
      EnvModels.push_back(M);
  }
  if (EnvModels.size() != Experts->size())
    EnvModels.clear(); // Mixed linear/external experts: keep the slow path.
  if (SharedThreadScaler)
    for (const Expert &E : *Experts)
      // medley-lint: allow(hotpath-escape) swap-boundary rebind (as above)
      ThreadModels.push_back(E.threadModel());
}

bool MixtureOfExperts::rebindExperts(
    std::shared_ptr<const std::vector<Expert>> NewExperts) {
  if (!NewExperts || NewExperts->size() != Experts->size())
    return false;
  Experts = std::move(NewExperts);
  // Pending env predictions priced the previous expert set; judging the
  // new experts against them would charge them for models they never ran.
  HasPending = false;
  bindExpertViews();
  return true;
}

void MixtureOfExperts::readmitQuarantined() {
  if (auto *Guarded = dynamic_cast<QuarantineSelector *>(Selector.get()))
    Guarded->readmitAll();
}

void MixtureOfExperts::stashPending(const policy::FeatureVector &Features,
                                    size_t Chosen, bool ReusePredictions) {
  PendingFeatures = Features.Values;
  if (ReusePredictions) {
    // Memo hit: PendingEnvPredictions still holds the predictions for
    // exactly these feature bits under the current expert set (nothing
    // else writes it), so recomputing them would reproduce the same
    // values — skip straight to re-arming the judgement.
    assert(PendingEnvPredictions.size() == Experts->size());
    PendingChosen = Chosen;
    HasPending = true;
    return;
  }
  PendingEnvPredictions.resize(Experts->size());
  if (!EnvModels.empty()) {
    // Direct linear path, bit-identical to Expert::predictEnvNorm: batch
    // the raw predictions, then clamp at zero like predictEnvNorm does.
    LinearModel::predictMany(EnvModels.data(), EnvModels.size(),
                             Features.Values, PendingEnvPredictions.data());
    for (size_t K = 0; K < EnvModels.size(); ++K)
      PendingEnvPredictions[K] = std::max(0.0, PendingEnvPredictions[K]);
  } else {
    for (size_t K = 0; K < Experts->size(); ++K)
      PendingEnvPredictions[K] = (*Experts)[K].predictEnvNorm(Features);
  }
  PendingChosen = Chosen;
  HasPending = true;
}

void MixtureOfExperts::judgePreviousDecision(
    const policy::FeatureVector &Features) {
  if (!HasPending)
    return;

  // How far off was each expert's environment prediction made at the
  // previous region, now that the environment is observable?
  double Observed = Features.EnvNorm;
  ScratchErrors.resize(PendingEnvPredictions.size());
  for (size_t K = 0; K < PendingEnvPredictions.size(); ++K)
    ScratchErrors[K] = std::fabs(PendingEnvPredictions[K] - Observed);
  Selector->update(PendingFeatures, ScratchErrors);

  // Experts that learn their environment model online (Section 4.1's
  // retrofit path) receive the realised observation.
  if (AnyEnvObserver)
    for (const Expert &E : *Experts)
      E.observeEnvironment(PendingFeatures, Observed);

  if (Stats) {
    double Tolerance =
        Options.EnvAccuracyTolerance * std::max(Observed, 1e-6);
    for (size_t K = 0; K < PendingEnvPredictions.size(); ++K) {
      bool Accurate =
          std::fabs(PendingEnvPredictions[K] - Observed) <= Tolerance;
      ++Stats->EnvTotal[K];
      if (Accurate)
        ++Stats->EnvAccurate[K];
    }
    ++Stats->MixtureEnvTotal;
    if (std::fabs(PendingEnvPredictions[PendingChosen] - Observed) <=
        Tolerance)
      ++Stats->MixtureEnvAccurate;
  }
  HasPending = false;
}

unsigned MixtureOfExperts::select(const policy::FeatureVector &Features) {
  // Pure-part memo probe (before the judge runs: the judge only updates
  // the selector, never the cached pure computations). A hit means the
  // previous decision saw these exact feature bits, so its standardised
  // features, batched thread scores and environment predictions are
  // bitwise reusable; gating and adaptation below still run in full.
  const bool MemoHit =
      Options.Memoize && MemoValid &&
      Features.Values.size() == policy::NumFeatures &&
      std::memcmp(MemoKey.data(), Features.Values.data(),
                  sizeof(double) * policy::NumFeatures) == 0;

  judgePreviousDecision(Features);

  if (Options.Faults && Features.SanitizedCount > 0)
    Options.Faults->SanitizedValues += Features.SanitizedCount;

  if (Selector->allQuarantined()) {
    // The ladder's floor: every expert's environment predictor has
    // diverged, so no expert can be trusted. Degrade to exactly the
    // OpenMP-default behaviour (n = available processors) while the
    // quarantine backoffs run down; judging continues below, so experts
    // are re-admitted and the mixture resumes automatically.
    if (Options.Faults)
      ++Options.Faults->DefaultFallbacks;
    double Processors = Features.Values[4];
    long N = std::clamp<long>(std::lround(Processors), 1,
                              static_cast<long>(Features.MaxThreads));
    unsigned Threads = static_cast<unsigned>(N);
    stashPending(Features, LastExpert, MemoHit);
    rememberMemoKey(Features, /*ComputedThreadPreds=*/false, MemoHit);
    return Threads;
  }

  size_t Chosen;
  unsigned Threads;
  bool HaveThreadPreds = false;
  bool ComputedThreadPreds = false;
  Vec &Weights = ScratchWeights;
  if (Options.SoftBlend &&
      Selector->blendWeights(Features.Values, Weights)) {
    // Soft gating: accuracy-weighted blend of the expert predictions.
    if (SharedThreadScaler) {
      if (!(MemoHit && MemoHaveThreadPreds)) {
        SharedThreadScaler->transformInto(Features.Values, ScratchStd);
        ScratchRawThreads.resize(ThreadModels.size());
        LinearModel::predictStandardizedMany(ThreadModels.data(),
                                             ThreadModels.size(), ScratchStd,
                                             ScratchRawThreads.data());
      }
      // Either branch leaves ScratchStd/ScratchRawThreads holding the
      // values for exactly these feature bits.
      ComputedThreadPreds = true;
    }
    ScratchThreadPreds.resize(Experts->size());
    double Blend = 0.0;
    double BestWeight = -1.0;
    Chosen = 0;
    for (size_t K = 0; K < Experts->size(); ++K) {
      unsigned N;
      if (SharedThreadScaler) {
        // Same rounding and clamping as Expert::predictThreads.
        long R = std::lround(ScratchRawThreads[K]);
        R = std::clamp<long>(R, 1, static_cast<long>(Features.MaxThreads));
        N = static_cast<unsigned>(R);
      } else {
        N = (*Experts)[K].predictThreads(Features);
      }
      ScratchThreadPreds[K] = N;
      Blend += Weights[K] * static_cast<double>(N);
      if (Weights[K] > BestWeight) {
        BestWeight = Weights[K];
        Chosen = K;
      }
    }
    HaveThreadPreds = true;
    long Rounded = std::lround(Blend);
    Rounded = std::clamp<long>(Rounded, 1,
                               static_cast<long>(Features.MaxThreads));
    Threads = static_cast<unsigned>(Rounded);
  } else {
    Chosen = Selector->select(Features.Values);
    assert(Chosen < Experts->size() && "selector returned a bad index");
    Threads = (*Experts)[Chosen].predictThreads(Features);
  }
  LastExpert = Chosen;

  // Stash this decision's environment predictions; they are judged at the
  // next region, which is the paper's next timestamp.
  stashPending(Features, Chosen, MemoHit);
  rememberMemoKey(Features, ComputedThreadPreds, MemoHit);

  if (Stats) {
    ++Stats->SelectionCounts[Chosen];
    Stats->MixtureThreads.add(Threads);
    // predictThreads is pure, so the per-expert predictions cached by the
    // blend loop above are exactly what a recomputation would produce.
    if (!HaveThreadPreds) {
      ScratchThreadPreds.resize(Experts->size());
      for (size_t K = 0; K < Experts->size(); ++K)
        ScratchThreadPreds[K] = (*Experts)[K].predictThreads(Features);
    }
    for (size_t K = 0; K < Experts->size(); ++K)
      Stats->ExpertThreads[K].add(ScratchThreadPreds[K]);
  }
  return Threads;
}

void MixtureOfExperts::rememberMemoKey(const policy::FeatureVector &Features,
                                       bool ComputedThreadPreds,
                                       bool MemoHit) {
  if (!Options.Memoize)
    return;
  if (Features.Values.size() != policy::NumFeatures) {
    MemoValid = false;
    MemoHaveThreadPreds = false;
    return;
  }
  std::memcpy(MemoKey.data(), Features.Values.data(),
              sizeof(double) * policy::NumFeatures);
  MemoValid = true;
  // Thread scores stay reusable if this call refreshed them, or if the key
  // did not change and they were already pinned to it.
  MemoHaveThreadPreds = ComputedThreadPreds || (MemoHit && MemoHaveThreadPreds);
}

void MixtureOfExperts::reset() {
  Selector->reset();
  HasPending = false;
  LastExpert = 0;
  MemoValid = false;
  MemoHaveThreadPreds = false;
}

const std::string &MixtureOfExperts::name() const {
  static const std::string Name = "mixture";
  return Name;
}
