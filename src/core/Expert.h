//===-- core/Expert.h - A (w, m) expert pair --------------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An expert in the paper's sense (Section 4.1): two offline-trained models
/// over the same training data —
///   * the thread predictor  w : f -> n        (how many threads to use)
///   * the environment predictor m : f_t -> ||ê_{t+1}||  (what the world
///     will look like next)
/// The environment predictor exists purely to let the online selector judge
/// this expert's quality: w's accuracy cannot be observed at runtime, m's
/// can, and the two are correlated because they share training data.
///
/// The standard experts are linear (Section 5.2.3), but the paper allows
/// "any (potentially external) expert that determines these two parameters,
/// via whatever means" — so an Expert can also be built from arbitrary
/// prediction functions (k-NN models, hand-written heuristics, ...), and an
/// expert without an offline environment model can learn one online from
/// the observations the mixture feeds back (Section 4.1's retrofit path).
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERT_H
#define MEDLEY_CORE_EXPERT_H

#include "ml/LinearModel.h"
#include "policy/Features.h"

#include <functional>
#include <memory>

namespace medley::core {

/// One offline-trained mapping policy with its quality proxy.
class Expert {
public:
  /// Raw prediction function over the 10-feature vector.
  using PredictFn = std::function<double(const Vec &)>;

  /// Callback fed the observed environment norm after each judged decision
  /// (used by experts that learn their environment model online).
  using ObserveEnvFn = std::function<void(const Vec &Features,
                                          double ObservedEnvNorm)>;

  Expert() = default;

  /// The standard construction: two linear models (Table 1).
  Expert(std::string Name, std::string Description, LinearModel ThreadModel,
         LinearModel EnvModel, double MeanTrainingEnv);

  /// External-expert construction: arbitrary thread / environment
  /// predictors and an optional online environment-learning hook.
  Expert(std::string Name, std::string Description, PredictFn ThreadFn,
         PredictFn EnvFn, double MeanTrainingEnv,
         ObserveEnvFn ObserveEnv = nullptr);

  /// Thread prediction n = clamp(round(w . f + beta), 1, MaxThreads).
  unsigned predictThreads(const policy::FeatureVector &Features) const;

  /// Thread prediction from a pre-standardised feature vector \p Std
  /// (threadModel()->scaler() applied to Features.Values). Only valid for
  /// linear experts; bit-identical to predictThreads. The mixture uses this
  /// to standardise once per decision when all experts share a scaler.
  unsigned predictThreadsStandardized(const policy::FeatureVector &Features,
                                      const Vec &Std) const;

  /// Environment prediction ||ê_{t+1}|| = m . f_t + beta.
  double predictEnvNorm(const policy::FeatureVector &Features) const;

  /// Reports the realised environment for a past decision at \p Features
  /// (no-op for purely offline experts).
  void observeEnvironment(const Vec &Features, double ObservedEnvNorm) const;

  const std::string &name() const { return Name; }
  const std::string &description() const { return Description; }

  /// The linear thread/environment models, or nullptr for an external
  /// (non-linear) expert. Used for Table-1 style introspection only.
  const LinearModel *threadModel() const;
  const LinearModel *envModel() const;

  /// Mean environment norm of the expert's training data; used to order
  /// experts along the hyperplane selector's axis.
  double meanTrainingEnv() const { return MeanTrainingEnv; }

  /// True when the expert learns its environment model online and wants
  /// observeEnvironment callbacks; the mixture skips the feedback loop
  /// entirely when no expert does.
  bool hasEnvObserver() const { return static_cast<bool>(ObserveEnv); }

private:
  std::string Name;
  std::string Description;
  /// Set for standard linear experts; introspection only.
  std::shared_ptr<const LinearModel> LinearThread;
  std::shared_ptr<const LinearModel> LinearEnv;
  PredictFn ThreadFn;
  PredictFn EnvFn;
  ObserveEnvFn ObserveEnv;
  double MeanTrainingEnv = 0.0;
};

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERT_H
