//===-- core/ExpertRegistry.cpp - Versioned expert snapshots --------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertRegistry.h"

#include "core/ExpertIo.h"
#include "support/Fnv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

using namespace medley;
using namespace medley::core;
using support::Error;
using support::ErrorCode;

namespace {

constexpr const char *SnapshotMagic = "medley-snapshot";
constexpr int SnapshotVersion = 1;

/// 16 lowercase hex digits (the on-disk checksum form).
std::string checksumHex(uint64_t Hash) {
  std::ostringstream OS;
  OS << std::hex << std::setw(16) << std::setfill('0') << Hash;
  return OS.str();
}

std::nullopt_t fail(Error *Err, ErrorCode Code, const std::string &Message) {
  support::reportError(Err, Code, Message);
  return std::nullopt;
}

/// Folds a string's bytes plus a terminator into a running hash (the
/// terminator keeps ("ab","c") and ("a","bc") distinct).
uint64_t hashString(uint64_t H, const std::string &S) {
  H = support::fnv1aUpdate(H, S.data(), S.size());
  return support::fnv1aUpdate(H, static_cast<unsigned char>(0));
}

uint64_t hashDouble(uint64_t H, double X) {
  return support::fnv1aUpdate(H, &X, sizeof(X));
}

} // namespace

uint64_t medley::core::snapshotChecksum(const std::vector<Expert> &Experts,
                                        const FeatureScaler &Scaler) {
  uint64_t H = support::fnv1aInit();
  std::ostringstream OS;
  if (writeExperts(OS, Experts)) {
    const std::string Payload = OS.str();
    H = support::fnv1aUpdate(H, Payload.data(), Payload.size());
  } else {
    // External experts have no canonical serialisation; hash their
    // identity fields so distinct bundles still get distinct checksums.
    for (const Expert &E : Experts) {
      H = hashString(H, E.name());
      H = hashString(H, E.description());
      H = hashDouble(H, E.meanTrainingEnv());
    }
  }
  for (double M : Scaler.means())
    H = hashDouble(H, M);
  for (double S : Scaler.scales())
    H = hashDouble(H, S);
  return H;
}

//===----------------------------------------------------------------------===//
// ExpertRegistry
//===----------------------------------------------------------------------===//

ExpertRegistry::ExpertRegistry(support::FaultStats *Stats) : Stats(Stats) {}

const ExpertSnapshot *ExpertRegistry::acquire(ReaderEpoch &Reader) const {
  const uint64_t Observed = Epoch.load(std::memory_order_acquire);
  if (Reader.Held && Reader.Epoch == Observed)
    return Reader.Held.get(); // Steady path: one load, one compare.

  // Epoch moved (or first acquire): re-pin the current snapshot. Current
  // is stored before Epoch is bumped, so the snapshot seen here is always
  // at least as new as the observed epoch; pinning its Version (not
  // Observed) keeps the per-reader sequence monotonic even when a publish
  // lands between the epoch load and the re-pin.
  {
    std::lock_guard<std::mutex> Lock(SlotMutex);
    Reader.Held = Current;
  }
  Reader.Epoch = Reader.Held ? Reader.Held->Version : 0;
  return Reader.Held.get();
}

std::shared_ptr<const ExpertSnapshot> ExpertRegistry::current() const {
  std::lock_guard<std::mutex> Lock(SlotMutex);
  return Current;
}

std::shared_ptr<const ExpertSnapshot> ExpertRegistry::publish(
    std::shared_ptr<const std::vector<Expert>> Experts, FeatureScaler Scaler,
    std::shared_ptr<const ExpertSelector> SelectorPrototype) {
  auto Snap = std::make_shared<ExpertSnapshot>();
  Snap->Experts = std::move(Experts);
  Snap->Scaler = std::move(Scaler);
  Snap->SelectorPrototype = std::move(SelectorPrototype);
  Snap->Checksum =
      Snap->Experts ? snapshotChecksum(*Snap->Experts, Snap->Scaler) : 0;
  std::lock_guard<std::mutex> Lock(PublishMutex);
  return publishLocked(std::move(Snap));
}

std::shared_ptr<const ExpertSnapshot>
ExpertRegistry::republish(const ExpertSnapshot &Snapshot) {
  auto Snap = std::make_shared<ExpertSnapshot>();
  Snap->Experts = Snapshot.Experts;
  Snap->Scaler = Snapshot.Scaler;
  Snap->SelectorPrototype = Snapshot.SelectorPrototype;
  Snap->Checksum = Snapshot.Checksum;
  std::lock_guard<std::mutex> Lock(PublishMutex);
  return publishLocked(std::move(Snap));
}

std::shared_ptr<const ExpertSnapshot>
ExpertRegistry::publishLocked(std::shared_ptr<ExpertSnapshot> Snap) {
  // Writers are serialised by PublishMutex, so a relaxed read of the
  // version counter is exact here.
  Snap->Version = Epoch.load(std::memory_order_relaxed) + 1;
  std::shared_ptr<const ExpertSnapshot> Published = std::move(Snap);
  // Publication order matters: install the snapshot first, then advance
  // the epoch with release semantics. A reader whose acquire-load sees the
  // new epoch is therefore guaranteed to find a snapshot with Version >=
  // that epoch behind the Current slot.
  {
    std::lock_guard<std::mutex> Lock(SlotMutex);
    Current = Published;
  }
  Epoch.store(Published->Version, std::memory_order_release);
  if (Stats)
    ++Stats->SnapshotPublications; // Publisher-thread counter (see header).
  return Published;
}

//===----------------------------------------------------------------------===//
// Crash-safe disk publication
//===----------------------------------------------------------------------===//

namespace {

/// fsyncs the directory containing \p Path so the rename itself is
/// durable; best-effort (some filesystems refuse directory fds).
void syncParentDir(const std::string &Path) {
  const size_t Slash = Path.find_last_of('/');
  const std::string Dir = Slash == std::string::npos ? std::string(".")
                                                     : Path.substr(0, Slash);
  const int FD = ::open(Dir.c_str(), O_RDONLY);
  if (FD >= 0) {
    ::fsync(FD);
    ::close(FD);
  }
}

bool writeAll(int FD, const char *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    const ssize_t N = ::write(FD, Data + Done, Size - Done);
    if (N < 0)
      return false;
    Done += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool medley::core::saveSnapshotToFile(const std::string &Path,
                                      const ExpertSnapshot &Snapshot,
                                      Error *Err,
                                      const SnapshotFaultHooks *Hooks,
                                      support::FaultStats *Stats) {
  if (!Snapshot.Experts || Snapshot.Experts->empty()) {
    support::reportError(Err, ErrorCode::InvalidArgument,
                         "snapshot holds no experts");
    return false;
  }

  // Serialise the payload: version + scaler + selector name + the ExpertIo
  // v2 expert block (which carries its own checksum).
  std::ostringstream Payload;
  Payload << "version " << Snapshot.Version << '\n';
  Payload << std::setprecision(std::numeric_limits<double>::max_digits10);
  Payload << "scaler means";
  for (double M : Snapshot.Scaler.means())
    Payload << ' ' << M;
  Payload << " scales";
  for (double S : Snapshot.Scaler.scales())
    Payload << ' ' << S;
  Payload << '\n';
  Payload << "selector "
          << (Snapshot.SelectorPrototype ? Snapshot.SelectorPrototype->name()
                                         : std::string("-"))
          << '\n';
  if (!writeExperts(Payload, *Snapshot.Experts)) {
    support::reportError(Err, ErrorCode::InvalidArgument,
                         "snapshot holds non-linear experts; cannot serialise");
    return false;
  }
  const std::string Body = Payload.str();

  std::string Full;
  Full.reserve(Body.size() + 64);
  Full += SnapshotMagic;
  Full += ' ';
  Full += std::to_string(SnapshotVersion);
  Full += '\n';
  Full += "checksum " + checksumHex(support::fnv1aString(Body)) + '\n';
  Full += Body;

  // Candidate-corruption fault window: the serialised bytes are damaged
  // before they reach the disk, as if the trainer handed over a snapshot
  // that was corrupted in flight.
  if (Hooks && Hooks->CorruptCandidate) {
    const size_t Before = Full.size();
    const uint64_t HashBefore = support::fnv1aString(Full);
    Hooks->CorruptCandidate(Full);
    if (Stats &&
        (Full.size() != Before || support::fnv1aString(Full) != HashBefore))
      ++Stats->CandidateCorruptions;
  }

  const std::string Tmp = Path + ".tmp";
  const int FD = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (FD < 0) {
    support::reportError(Err, ErrorCode::IoFailure,
                         "cannot open '" + Tmp + "' for writing");
    return false;
  }

  // Torn-write fault window: only a prefix lands in the temp file and the
  // rename never happens — the published path keeps its previous content,
  // exactly the crash-consistency contract a real power cut exercises.
  const bool Torn = Hooks && Hooks->TearWrite && Hooks->TearWrite();
  const size_t Limit = Torn ? Full.size() / 3 : Full.size();

  const bool Written = writeAll(FD, Full.data(), Limit);
  ::fsync(FD);
  ::close(FD);
  if (Torn) {
    if (Stats)
      ++Stats->TornPublications;
    support::reportError(Err, ErrorCode::IoFailure,
                         "torn publication of '" + Path +
                             "': temp write interrupted before rename");
    return false;
  }
  if (!Written) {
    support::reportError(Err, ErrorCode::IoFailure,
                         "short write to '" + Tmp + "'");
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    support::reportError(Err, ErrorCode::IoFailure,
                         "cannot rename '" + Tmp + "' over '" + Path + "'");
    return false;
  }
  syncParentDir(Path);
  return true;
}

std::optional<ExpertSnapshot>
medley::core::loadSnapshotFromFile(const std::string &Path, Error *Err,
                                   uint64_t ExpectMinVersion,
                                   std::string *SelectorName,
                                   support::FaultStats *Stats) {
  std::ifstream File(Path);
  if (!File)
    return fail(Err, ErrorCode::IoFailure, "cannot open '" + Path + "'");

  std::string Token;
  int FileVersion = 0;
  if (!(File >> Token) || Token != SnapshotMagic)
    return fail(Err, ErrorCode::CorruptInput,
                "not a medley snapshot file (bad magic)");
  if (!(File >> FileVersion) || FileVersion != SnapshotVersion)
    return fail(Err, ErrorCode::CorruptInput,
                "unsupported snapshot-file version");

  std::string Stored;
  if (!(File >> Token) || Token != "checksum" || !(File >> Stored))
    return fail(Err, ErrorCode::TruncatedInput, "missing snapshot checksum");
  std::string Rest;
  std::getline(File, Rest);
  std::ostringstream Slurped;
  Slurped << File.rdbuf();
  const std::string Body = Slurped.str();
  const std::string Actual = checksumHex(support::fnv1aString(Body));
  if (Actual != Stored) {
    if (Stats)
      ++Stats->ChecksumRejects;
    return fail(Err, ErrorCode::ChecksumMismatch,
                "snapshot payload checksum " + Actual +
                    " != stored checksum " + Stored);
  }

  std::istringstream IS(Body);
  uint64_t Version = 0;
  if (!(IS >> Token) || Token != "version" || !(IS >> Version))
    return fail(Err, ErrorCode::CorruptInput, "bad snapshot version line");

  Vec Means(policy::NumFeatures), Scales(policy::NumFeatures);
  if (!(IS >> Token) || Token != "scaler" || !(IS >> Token) ||
      Token != "means")
    return fail(Err, ErrorCode::CorruptInput, "bad snapshot scaler line");
  for (double &M : Means)
    if (!(IS >> M) || !std::isfinite(M))
      return fail(Err, ErrorCode::CorruptInput, "bad scaler means");
  if (!(IS >> Token) || Token != "scales")
    return fail(Err, ErrorCode::CorruptInput, "bad snapshot scaler line");
  for (double &S : Scales)
    if (!(IS >> S) || !std::isfinite(S) || S <= 0.0)
      return fail(Err, ErrorCode::CorruptInput, "bad scaler scales");

  std::string StoredSelector;
  if (!(IS >> Token) || Token != "selector" || !(IS >> StoredSelector))
    return fail(Err, ErrorCode::CorruptInput, "bad snapshot selector line");
  if (SelectorName)
    *SelectorName = StoredSelector == "-" ? std::string() : StoredSelector;

  std::optional<std::vector<Expert>> Experts = readExperts(IS, Err);
  if (!Experts)
    return std::nullopt;

  // Stale-readback defence: a snapshot store must never hand back a
  // version older than one the caller has already observed.
  if (ExpectMinVersion != 0 && Version < ExpectMinVersion) {
    if (Stats)
      ++Stats->StaleSnapshotReads;
    return fail(Err, ErrorCode::StaleVersion,
                "snapshot version " + std::to_string(Version) +
                    " older than expected minimum " +
                    std::to_string(ExpectMinVersion));
  }

  ExpertSnapshot Snap;
  Snap.Version = Version;
  Snap.Scaler = FeatureScaler::fromMoments(std::move(Means), std::move(Scales));
  Snap.Experts =
      std::make_shared<const std::vector<Expert>>(std::move(*Experts));
  Snap.Checksum = snapshotChecksum(*Snap.Experts, Snap.Scaler);
  return Snap;
}
