//===-- core/MoeStats.cpp - Mixture bookkeeping --------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/MoeStats.h"

#include <cassert>

using namespace medley;
using namespace medley::core;

MoeStats::MoeStats(size_t NumExperts)
    : SelectionCounts(NumExperts, 0), EnvAccurate(NumExperts, 0),
      EnvTotal(NumExperts, 0), ExpertThreads(NumExperts) {
  assert(NumExperts >= 1 && "stats need at least one expert");
}

double MoeStats::selectionFrequency(size_t K) const {
  assert(K < SelectionCounts.size() && "expert index out of range");
  size_t Total = 0;
  for (size_t C : SelectionCounts)
    Total += C;
  if (Total == 0)
    return 0.0;
  return static_cast<double>(SelectionCounts[K]) / static_cast<double>(Total);
}

double MoeStats::envAccuracy(size_t K) const {
  assert(K < EnvTotal.size() && "expert index out of range");
  if (EnvTotal[K] == 0)
    return 0.0;
  return static_cast<double>(EnvAccurate[K]) /
         static_cast<double>(EnvTotal[K]);
}

double MoeStats::mixtureEnvAccuracy() const {
  if (MixtureEnvTotal == 0)
    return 0.0;
  return static_cast<double>(MixtureEnvAccurate) /
         static_cast<double>(MixtureEnvTotal);
}

void MoeStats::clear() {
  size_t N = SelectionCounts.size();
  SelectionCounts.assign(N, 0);
  EnvAccurate.assign(N, 0);
  EnvTotal.assign(N, 0);
  MixtureEnvAccurate = 0;
  MixtureEnvTotal = 0;
  for (Histogram &H : ExpertThreads)
    H.clear();
  MixtureThreads.clear();
}
