//===-- core/ExpertTrainer.cpp - Online expert refitting ------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertTrainer.h"

#include "ml/Dataset.h"
#include "ml/LinearModel.h"
#include "policy/Features.h"

#include <utility>

using namespace medley;
using namespace medley::core;

ExpertTrainer::ExpertTrainer(TrainerOptions Options)
    : Options(std::move(Options)) {}

namespace {

/// Regime tag of an expert, mirroring PolicySet's regime-selector tagging:
/// 0 = uncontended, 1 = contended, -1 = any.
int regimeTagOf(const Expert &E) {
  const std::string &Description = E.description();
  if (Description.rfind("uncontended", 0) == 0)
    return 0;
  if (Description.rfind("contended", 0) == 0)
    return 1;
  return -1;
}

} // namespace

std::optional<ExpertTrainer::RetrainResult>
ExpertTrainer::retrainCounted(const trace::TickTrace &Trace,
                              const ExpertSnapshot &Base) const {
  if (!Base.Experts || Base.Experts->empty())
    return std::nullopt;
  const trace::TrainingWindow Window =
      trace::TrainingWindow::fromTrace(Trace, Options.Window);
  if (Window.size() < Options.MinSamplesPerExpert)
    return std::nullopt;

  RetrainResult Result;
  Result.Experts.reserve(Base.Experts->size());

  LinearModelOptions ModelOptions;
  ModelOptions.Ridge = Options.Ridge;
  ModelOptions.Standardize = true;
  // Every refit standardises with the corpus-wide scaler so candidate
  // models stay comparable with each other (and the mixture's batched
  // shared-scaler path keeps applying).
  ModelOptions.SharedScaler = &Base.Scaler;

  for (const Expert &E : *Base.Experts) {
    const int Tag = regimeTagOf(E);

    Dataset ThreadData(policy::featureNames());
    Dataset EnvData(policy::featureNames());
    double EnvSum = 0.0;
    for (size_t I = 0; I < Window.size(); ++I) {
      if (Tag >= 0 && static_cast<int>(Window.contended()[I]) != Tag)
        continue;
      ThreadData.add(Window.features()[I], Window.threadTargets()[I]);
      EnvData.add(Window.features()[I], Window.envTargets()[I]);
      EnvSum += Window.envTargets()[I];
    }

    if (ThreadData.size() < Options.MinSamplesPerExpert) {
      Result.Experts.push_back(E); // Slice too thin: carry the base over.
      ++Result.CarriedOver;
      continue;
    }

    std::optional<LinearModel> W =
        trainLinearModel(ThreadData, "w:" + E.name() + "@online",
                         ModelOptions);
    std::optional<LinearModel> M =
        trainLinearModel(EnvData, "m:" + E.name() + "@online", ModelOptions);
    if (!W || !M) {
      Result.Experts.push_back(E); // Degenerate fit: carry the base over.
      ++Result.CarriedOver;
      continue;
    }
    const double MeanEnv = EnvSum / static_cast<double>(EnvData.size());
    Result.Experts.emplace_back(E.name(), E.description(), std::move(*W),
                                std::move(*M), MeanEnv);
    ++Result.Refitted;
  }

  if (Result.Refitted == 0)
    return std::nullopt; // Nothing refitted: no candidate to stage.
  return Result;
}

std::optional<std::vector<Expert>>
ExpertTrainer::retrain(const trace::TickTrace &Trace,
                       const ExpertSnapshot &Base) const {
  std::optional<RetrainResult> Result = retrainCounted(Trace, Base);
  if (!Result)
    return std::nullopt;
  return std::move(Result->Experts);
}

void ExpertTrainer::retrainAsync(
    support::ThreadPool &Pool, trace::TickTrace Trace,
    std::shared_ptr<const ExpertSnapshot> Base,
    std::function<void(std::optional<std::vector<Expert>>)> Done) const {
  // Copy the options by value: the trainer object need not outlive the
  // submitted job.
  const TrainerOptions Opts = Options;
  Pool.submit([Opts, Trace = std::move(Trace), Base = std::move(Base),
               Done = std::move(Done)]() {
    ExpertTrainer Worker(Opts);
    Done(Worker.retrain(Trace, *Base));
  });
}
