//===-- core/RolloutController.cpp - Staged snapshot rollout --------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/RolloutController.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace medley;
using namespace medley::core;

const char *medley::core::rolloutStateName(RolloutState State) {
  switch (State) {
  case RolloutState::Idle:
    return "idle";
  case RolloutState::Shadow:
    return "shadow";
  case RolloutState::Canary:
    return "canary";
  case RolloutState::Promoted:
    return "promoted";
  case RolloutState::RolledBack:
    return "rolled-back";
  }
  return "unknown";
}

RolloutController::RolloutController(std::shared_ptr<ExpertRegistry> Registry,
                                     RolloutOptions Options,
                                     support::FaultStats *Stats)
    : Registry(std::move(Registry)), Options(Options), Stats(Stats) {}

void RolloutController::submitCandidate(std::vector<Expert> Candidate) {
  std::lock_guard<std::mutex> Lock(MailboxMutex);
  Mailbox = std::move(Candidate);
  MailboxFull.store(true, std::memory_order_release);
}

double RolloutController::bestError(const Vec &Predictions, double Observed) {
  double Best = std::numeric_limits<double>::infinity();
  for (double P : Predictions) {
    const double E = std::fabs(P - Observed);
    // A non-finite prediction (corrupted candidate model) compares as
    // infinitely wrong rather than poisoning the minimum.
    if (std::isfinite(E) && E < Best)
      Best = E;
  }
  return Best;
}

void RolloutController::predictEnvInto(
    const std::vector<Expert> &Experts,
    const std::vector<const LinearModel *> &Models,
    const policy::FeatureVector &Features, Vec &Out) {
  // medley-lint: allow(hotpath-escape) sticky scratch: capacity sticks
  // after the first decision, steady-state resizes never allocate
  Out.resize(Experts.size());
  if (!Models.empty()) {
    // Batched path, bit-identical to Expert::predictEnvNorm (same clamp).
    LinearModel::predictMany(Models.data(), Models.size(), Features.Values,
                             Out.data());
    for (double &P : Out)
      P = std::max(0.0, P);
    return;
  }
  for (size_t K = 0; K < Experts.size(); ++K)
    Out[K] = Experts[K].predictEnvNorm(Features);
}

RolloutState RolloutController::observe(const policy::FeatureVector &Features) {
  if (State != RolloutState::Shadow && State != RolloutState::Canary)
    return State;
  // A swap the controller has not processed yet (external publication, or
  // its own pending transition executed by the next maintain()) makes the
  // cached views stale: drop the pending judgement and wait.
  const ExpertSnapshot *Live = Registry->acquire(Reader);
  if (!Live || !LiveExperts || Live->Experts.get() != LiveExperts ||
      !OtherExperts) {
    HasPending = false;
    return State;
  }

  const double Observed = Features.EnvNorm;

  if (State == RolloutState::Shadow) {
    if (HasPending) {
      const double LiveErr = bestError(PendingLive, Observed);
      const double CandErr = bestError(PendingOther, Observed);
      ++ShadowJudged;
      if (CandErr <= LiveErr)
        ++ShadowWins;
      if (ShadowJudged >= Options.ShadowWindow) {
        const double Needed =
            Options.PromoteFraction * static_cast<double>(ShadowJudged);
        if (static_cast<double>(ShadowWins) >= Needed)
          WantPromote = true;
        else
          WantReject = true;
        HasPending = false;
        return State; // Verdict reached; stop scoring until maintain().
      }
    }
    predictEnvInto(*LiveExperts, LiveEnvModels, Features, PendingLive);
    predictEnvInto(*OtherExperts, OtherEnvModels, Features, PendingOther);
    HasPending = true;
    return State;
  }

  // Canary.
  if (HasPending && PendingScored) {
    const double CanaryErr = bestError(PendingLive, Observed);
    const double PreErr = bestError(PendingOther, Observed);
    const double Threshold = std::max(Options.DivergenceFactor * PreErr,
                                      Options.AbsoluteErrorFloor);
    if (!(CanaryErr <= Threshold)) // NaN-safe: non-finite strikes.
      ++ConsecutiveStrikes;
    else
      ConsecutiveStrikes = 0;
    ++CanaryJudged;
    HasPending = false;
    if (ConsecutiveStrikes >= Options.RollbackStrikes) {
      WantRollback = true;
      return State;
    }
    if (CanaryJudged >= Options.CanaryWindow) {
      WantComplete = true;
      return State;
    }
  }
  if (WantRollback || WantComplete)
    return State;

  // Deterministic Bresenham interleaving: score CanaryFraction of the
  // canary's decisions against the retained pre-swap snapshot.
  CanaryAccumulator += Options.CanaryFraction;
  if (CanaryAccumulator >= 1.0) {
    CanaryAccumulator -= 1.0;
    predictEnvInto(*LiveExperts, LiveEnvModels, Features, PendingLive);
    predictEnvInto(*OtherExperts, OtherEnvModels, Features, PendingOther);
    HasPending = true;
    PendingScored = true;
  } else {
    HasPending = false;
    PendingScored = false;
  }
  return State;
}

RolloutState RolloutController::maintain() {
  // Execute the verdict observe() reached, if any.
  if (WantReject) {
    WantReject = false;
    Candidate.reset();
    ++ShadowRejects;
    State = RolloutState::Idle;
  }
  if (WantPromote) {
    WantPromote = false;
    std::shared_ptr<const ExpertSnapshot> Live = Registry->current();
    if (Live && Candidate) {
      // The RCU swap: the candidate goes live under the next version;
      // the outgoing snapshot is retained for canary shadow-scoring and
      // bit-identical rollback.
      Registry->publish(Candidate, Live->Scaler, Live->SelectorPrototype);
      PreSwap = std::move(Live);
      Candidate.reset();
      CanaryJudged = 0;
      ConsecutiveStrikes = 0;
      CanaryAccumulator = 0.0;
      State = RolloutState::Canary;
    } else {
      Candidate.reset();
      State = RolloutState::Idle;
    }
  }
  if (WantRollback) {
    WantRollback = false;
    if (PreSwap) {
      // Republish the retained snapshot's content under a fresh monotonic
      // version: same experts, same checksum, new epoch.
      Registry->republish(*PreSwap);
      ++Rollbacks;
      if (Stats)
        ++Stats->SnapshotRollbacks;
      RollbackPendingAck = true;
    }
    PreSwap.reset();
    State = RolloutState::RolledBack;
  }
  if (WantComplete) {
    WantComplete = false;
    ++Promotions;
    if (Stats)
      ++Stats->SnapshotPromotions;
    PreSwap.reset();
    State = RolloutState::Promoted;
  }

  // Stage a parked candidate — except while a canary is unresolved (it
  // must promote or roll back first; the mailbox keeps the newest).
  if (State != RolloutState::Canary &&
      MailboxFull.load(std::memory_order_acquire)) {
    std::optional<std::vector<Expert>> Taken;
    {
      std::lock_guard<std::mutex> Lock(MailboxMutex);
      Taken = std::move(Mailbox);
      Mailbox.reset();
      MailboxFull.store(false, std::memory_order_release);
    }
    std::shared_ptr<const ExpertSnapshot> Live = Registry->current();
    if (Taken && Live && Live->Experts &&
        Taken->size() == Live->Experts->size()) {
      Candidate =
          std::make_shared<const std::vector<Expert>>(std::move(*Taken));
      ShadowJudged = 0;
      ShadowWins = 0;
      State = RolloutState::Shadow;
    }
    // Arity mismatch (or no live snapshot yet): candidate dropped.
  }

  // Refresh the reader pin and the batched views; a stale pending
  // judgement from before a swap must not survive it.
  const ExpertSnapshot *Live = Registry->acquire(Reader);
  const std::vector<Expert> *NewLive = Live ? Live->Experts.get() : nullptr;
  const std::vector<Expert> *NewOther = nullptr;
  if (State == RolloutState::Shadow && Candidate)
    NewOther = Candidate.get();
  else if (State == RolloutState::Canary && PreSwap)
    NewOther = PreSwap->Experts.get();
  if (NewLive != LiveExperts || NewOther != OtherExperts) {
    // The cached pointer stays valid between maintain() calls because
    // `Reader` keeps the epoch pinned: the registry cannot retire the
    // snapshot generation this view points into until the pin advances,
    // which only happens on the next acquire() above.
    // medley-lint: allow(snapshot-retention)
    LiveExperts = NewLive;
    OtherExperts = NewOther;
    HasPending = false;
    PendingScored = false;
    rebuildViews();
  }
  return State;
}

void RolloutController::rebuildViews() {
  auto Build = [](const std::vector<Expert> *Experts,
                  std::vector<const LinearModel *> &Models) {
    Models.clear();
    if (!Experts)
      return;
    for (const Expert &E : *Experts) {
      const LinearModel *M = E.envModel();
      if (!M) {
        Models.clear(); // Mixed linear/external: use the per-expert path.
        return;
      }
      Models.push_back(M);
    }
  };
  Build(LiveExperts, LiveEnvModels);
  Build(OtherExperts, OtherEnvModels);
}

bool RolloutController::consumeRollback() {
  const bool Was = RollbackPendingAck;
  RollbackPendingAck = false;
  return Was;
}
