//===-- core/ExpertRegistry.h - Versioned expert snapshots ------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expert registry (DESIGN.md §14): versioned, immutable expert-snapshot
/// bundles published RCU-style so a background trainer can swap retrained
/// experts under live decision traffic without ever blocking a reader.
///
/// An ExpertSnapshot bundles everything a mixture policy needs — the expert
/// vector, the corpus-wide feature scaler, and a selector prototype — under
/// a monotonic version number and an FNV-1a content checksum. Snapshots are
/// immutable after publication; "updating" the registry always means
/// publishing a whole new snapshot.
///
/// Readers interact through a per-reader ReaderEpoch cache. The steady-state
/// acquire() path is one atomic uint64 load and a compare: no locks, no
/// reference-count traffic, no allocation — the decision hot path stays
/// within the PR 4/PR 6 contract (gated by medley-lint L7/L8 and
/// bench-compare). Only when the epoch has actually advanced does the
/// reader touch the shared_ptr slot (a brief mutex-guarded copy) to re-pin
/// the new snapshot; the old one stays alive until the last reader drops
/// its pin, which is what makes the swap zero-downtime.
///
/// Publication to disk is crash-safe: serialise to a temp file, fsync,
/// atomic rename. A crash (or an injected torn write) at any point leaves
/// either the complete old file or the complete new file, never a hybrid;
/// checksummed headers make a torn or bit-flipped readback detectable.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERTREGISTRY_H
#define MEDLEY_CORE_EXPERTREGISTRY_H

#include "core/Expert.h"
#include "core/ExpertSelector.h"
#include "support/Error.h"
#include "support/FaultStats.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace medley::core {

/// One immutable published bundle: experts + scaler + selector prototype,
/// stamped with a monotonic version and a content checksum. The checksum
/// identifies *content* (two snapshots of the same experts hash equal even
/// across versions), which is how a rollback proves it restored the
/// pre-swap snapshot bit-identically despite publishing a fresh version.
struct ExpertSnapshot {
  uint64_t Version = 0;  ///< Monotonic publication number (1-based).
  uint64_t Checksum = 0; ///< FNV-1a over the serialised expert payload.

  std::shared_ptr<const std::vector<Expert>> Experts;

  /// Corpus-wide feature scaler shared by selectors built on this snapshot.
  FeatureScaler Scaler;

  /// Cloned (never mutated) by each policy instance that adopts the
  /// snapshot; may be null when the publisher leaves selector choice to
  /// the reader.
  std::shared_ptr<const ExpertSelector> SelectorPrototype;

  size_t numExperts() const { return Experts ? Experts->size() : 0; }
};

/// Content checksum of an expert vector + scaler as stored in snapshot
/// headers: FNV-1a over the ExpertIo serialisation when every expert is
/// linear, over the identity fields (name, description, mean env) plus the
/// scaler moments otherwise.
uint64_t snapshotChecksum(const std::vector<Expert> &Experts,
                          const FeatureScaler &Scaler);

/// Hooks for fault injection on the publication path. The registry calls
/// them at the matching point of saveSnapshotToFile; tests wire them to
/// sim::FaultInjector windows (core cannot depend on sim).
struct SnapshotFaultHooks {
  /// Return true to tear this publication: only a prefix of the temp file
  /// is written and the atomic rename is skipped, exactly as a crash
  /// mid-write would leave the disk.
  std::function<bool()> TearWrite;

  /// May mutate the serialised candidate bytes in flight (bit flips,
  /// truncation) before they reach the temp file.
  std::function<void(std::string &Bytes)> CorruptCandidate;
};

/// Versioned RCU snapshot store. One writer at a time (publications are
/// serialised by an internal mutex); any number of concurrent readers, none
/// of which ever blocks or allocates on the steady path.
class ExpertRegistry {
public:
  /// Per-reader pin: the epoch the reader last observed and the snapshot it
  /// holds alive for that epoch. One per policy instance / reader thread —
  /// never shared across threads.
  struct ReaderEpoch {
    uint64_t Epoch = 0;
    std::shared_ptr<const ExpertSnapshot> Held;
  };

  /// \p Stats (optional, non-owning) receives lifecycle counters; it must
  /// outlive the registry.
  explicit ExpertRegistry(support::FaultStats *Stats = nullptr);

  /// Steady-path snapshot acquisition: one atomic epoch load; when it
  /// matches \p Reader's cached epoch the held snapshot is returned with no
  /// further shared-state traffic. On an epoch change the reader re-pins
  /// the current snapshot (a mutex-guarded shared_ptr copy — the only
  /// slow-path step). Returns nullptr only before the first publication.
  /// The version sequence observed through any single ReaderEpoch is
  /// monotonic.
  const ExpertSnapshot *acquire(ReaderEpoch &Reader) const;

  /// Epoch of the latest publication (0 before the first).
  uint64_t epoch() const { return Epoch.load(std::memory_order_acquire); }

  /// Pins the current snapshot (slow path; for setup / inspection, not the
  /// decision loop). Null before the first publication.
  std::shared_ptr<const ExpertSnapshot> current() const;

  /// Publishes a new snapshot built from \p Experts / \p Scaler /
  /// \p SelectorPrototype under the next version number. Readers observe
  /// the swap at their next acquire(); none blocks meanwhile. Returns the
  /// published snapshot.
  std::shared_ptr<const ExpertSnapshot>
  publish(std::shared_ptr<const std::vector<Expert>> Experts,
          FeatureScaler Scaler,
          std::shared_ptr<const ExpertSelector> SelectorPrototype);

  /// Re-publishes the *content* of \p Snapshot (experts, scaler, selector
  /// prototype, checksum) under a fresh version — the rollback primitive:
  /// version numbers stay monotonic while the content returns bit-identical
  /// to the pre-swap state.
  std::shared_ptr<const ExpertSnapshot>
  republish(const ExpertSnapshot &Snapshot);

  /// Number of publications so far.
  uint64_t publications() const { return epoch(); }

private:
  std::shared_ptr<const ExpertSnapshot>
  publishLocked(std::shared_ptr<ExpertSnapshot> Snap);

  /// Bumped last in publication order (release); readers load it first
  /// (acquire), so a reader that sees epoch E always finds a snapshot with
  /// Version >= E behind the Current slot.
  std::atomic<uint64_t> Epoch{0};

  /// The RCU slot; written under SlotMutex by publishers, copied under
  /// SlotMutex by readers on the (rare) epoch-change path. A plain
  /// mutex-guarded shared_ptr rather than std::atomic<shared_ptr>: the
  /// libstdc++ lock-free implementation unlocks its internal spinlock with
  /// relaxed ordering on the load side, which is a formal data race against
  /// the next store (and TSan flags it); the slot is off the steady path,
  /// so a brief mutex is the simpler correct tool.
  std::shared_ptr<const ExpertSnapshot> Current;

  /// Guards Current only; held for the duration of a shared_ptr copy.
  mutable std::mutex SlotMutex;

  /// Serialises writers; never touched by readers.
  std::mutex PublishMutex;

  support::FaultStats *Stats = nullptr;
};

/// Crash-safe snapshot publication to disk: serialises \p Snapshot
/// (checksummed header + version + scaler + selector name + the ExpertIo v2
/// expert payload) into "<Path>.tmp", fsyncs, then atomically renames over
/// \p Path. On any failure — including an injected torn write — \p Path is
/// left untouched (old content or absent), never partial. \p Stats counts
/// torn publications and candidate corruptions when hooks fire.
[[nodiscard]] bool saveSnapshotToFile(const std::string &Path,
                                      const ExpertSnapshot &Snapshot,
                                      support::Error *Err = nullptr,
                                      const SnapshotFaultHooks *Hooks = nullptr,
                                      support::FaultStats *Stats = nullptr);

/// Loads a snapshot file written by saveSnapshotToFile. Verifies the header
/// checksum over the full payload (and the embedded ExpertIo checksum)
/// before anything is parsed; mismatches land in the Error taxonomy as
/// ChecksumMismatch. When \p ExpectMinVersion is non-zero, a file holding an
/// older version is rejected as StaleVersion — the defence against a
/// readback serving a stale snapshot. The loaded snapshot carries no
/// selector prototype (selector choice is the reader's; the stored selector
/// name is returned through \p SelectorName when non-null).
[[nodiscard]] std::optional<ExpertSnapshot>
loadSnapshotFromFile(const std::string &Path, support::Error *Err = nullptr,
                     uint64_t ExpectMinVersion = 0,
                     std::string *SelectorName = nullptr,
                     support::FaultStats *Stats = nullptr);

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERTREGISTRY_H
