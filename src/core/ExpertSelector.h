//===-- core/ExpertSelector.h - Online expert selection ---------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online gating model M of Section 5.3. It partitions the
/// 10-dimensional feature space into regions, one per expert, and adapts
/// the partition from one signal only: which expert's environment
/// prediction from the previous decision came closest to the realised
/// environment ("we only use data from the last timestep to update the
/// model"). Two implementations are provided:
///   * HyperplaneSelector — the paper's formulation: ordered boundaries
///     S^1 < ... < S^{K-1} over the feature space, each moved toward
///     misclassified points;
///   * PerceptronSelector — K linear scoring functions updated with the
///     multiclass perceptron rule (the default; same signal, more robust
///     in 10 dimensions).
/// A seeded RandomSelector serves as an ablation control.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERTSELECTOR_H
#define MEDLEY_CORE_EXPERTSELECTOR_H

#include "ml/FeatureScaler.h"
#include "support/FaultStats.h"
#include "support/Random.h"

#include <memory>
#include <string>

namespace medley::core {

/// Online gating model: maps a feature vector to an expert index and
/// learns from last-timestep supervision.
class ExpertSelector {
public:
  virtual ~ExpertSelector();

  /// Chooses the expert for raw feature vector \p Features.
  virtual size_t select(const Vec &Features) = 0;

  /// Reports the per-expert environment-prediction errors
  /// |‖ê_t^k‖ − ‖e_t‖| of the decision made at \p Features, evaluated one
  /// timestep later. The winning expert is argmin of \p Errors.
  virtual void update(const Vec &Features, const Vec &Errors) = 0;

  /// Index of the expert with the smallest error (ties to the lowest
  /// index).
  static size_t winnerOf(const Vec &Errors);

  /// winnerOf over a raw span (flat per-bin error rows).
  static size_t winnerOfSpan(const double *Errors, size_t N);

  /// Soft gating (Jacobs et al.'s original formulation): fills \p Weights
  /// with a distribution over experts for \p Features and returns true, or
  /// returns false when the selector only supports hard selection.
  virtual bool blendWeights(const Vec &Features, Vec &Weights);

  /// Softmax of negative errors with a temperature relative to their mean;
  /// shared by the accuracy-based selectors.
  static Vec softmaxOfErrors(const Vec &Errors);

  /// softmaxOfErrors into a caller-owned buffer (allocation-free once
  /// \p Weights has capacity); bit-identical to the value-returning form.
  static void softmaxOfErrorsInto(const double *Errors, size_t N,
                                  Vec &Weights);

  /// Rewinds online adaptation.
  virtual void reset() = 0;

  /// Fresh copy in the initial state (each run adapts independently).
  virtual std::unique_ptr<ExpertSelector> clone() const = 0;

  virtual const std::string &name() const = 0;

  /// Quarantine queries (the degradation ladder's second rung). The base
  /// selectors never quarantine; QuarantineSelector overrides these.
  virtual bool isQuarantined(size_t Expert) const;
  virtual bool allQuarantined() const;

  size_t numExperts() const { return NumExperts; }

protected:
  explicit ExpertSelector(size_t NumExperts);
  size_t NumExperts;
};

/// Paper-faithful ordered-boundary selector: experts occupy consecutive
/// intervals of a scalar projection (the norm of the standardised feature
/// vector); boundaries move toward misclassified points.
class HyperplaneSelector : public ExpertSelector {
public:
  /// \p Scaler standardises features before projection; \p LearningRate
  /// controls boundary movement per misprediction.
  HyperplaneSelector(size_t NumExperts, FeatureScaler Scaler,
                     double LearningRate = 0.25);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

  /// Current boundary values (size NumExperts - 1), for inspection.
  const Vec &boundaries() const { return Boundaries; }

private:
  double project(const Vec &Features);
  void initBoundaries();

  FeatureScaler Scaler;
  double LearningRate;
  Vec Boundaries;
  Vec ScratchStd; ///< Reused standardised copy (hot path, never shared).
};

/// Multiclass-perceptron gating network over standardised features.
class PerceptronSelector : public ExpertSelector {
public:
  PerceptronSelector(size_t NumExperts, FeatureScaler Scaler,
                     double LearningRate = 0.5);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  /// Writes the standardised, bias-augmented feature vector into \p X.
  void augmentedInto(const Vec &Features, Vec &X) const;

  FeatureScaler Scaler;
  double LearningRate;
  /// All K scoring vectors in one contiguous row-major buffer
  /// (NumExperts x (dim + 1)), so scoring every expert is a single gemv
  /// over the standardised features instead of K pointer-chased dots.
  Vec FlatWeights;
  std::vector<double> RecentWins; ///< EMA of supervision wins (tie-break).
  Vec ScratchX;      ///< Reused augmented feature buffer.
  Vec ScratchScores; ///< Reused per-expert score buffer.
  bool Trained = false;
};

/// Tracks an exponential moving average of each expert's recent
/// environment error and selects the lowest. Context-free but very quick
/// to re-rank the experts after a regime change.
class AccuracySelector : public ExpertSelector {
public:
  /// \p Alpha is the EMA step per update.
  AccuracySelector(size_t NumExperts, double Alpha = 0.25);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  bool blendWeights(const Vec &Features, Vec &Weights) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  double Alpha;
  Vec ErrorEma;
  bool Trained = false;
};

/// The paper's piecewise partition made contextual: feature space is
/// bucketed by the norm of the standardised feature vector, and each
/// bucket keeps its own recent-accuracy ranking of the experts. Buckets
/// start evenly (no preference) and adapt from the last timestep only.
class BinnedAccuracySelector : public ExpertSelector {
public:
  BinnedAccuracySelector(size_t NumExperts, FeatureScaler Scaler,
                         size_t NumBins = 8, double Alpha = 0.3);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  bool blendWeights(const Vec &Features, Vec &Weights) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  size_t binOf(const Vec &Features);

  FeatureScaler Scaler;
  size_t NumBins;
  double Alpha;
  /// Per-bin EMA errors as one flat pre-sized buffer (NumBins x
  /// NumExperts, row-major); a bin untouched so far falls back to the
  /// global EMA.
  Vec FlatBinErrors;
  std::vector<bool> BinTouched;
  Vec GlobalErrors;
  Vec ScratchStd; ///< Reused standardised copy for binOf.
  bool Trained = false;
};

/// Two-level gate: experts are tagged with the machine regime their
/// training data came from (uncontended / contended / any); the observable
/// instantaneous state (runq-sz vs processors, features f6 and f5) picks
/// the regime, and recent environment accuracy ranks the experts inside
/// it. This is the converged form of the learned partition: the regime
/// boundary is exactly where the scheduler's oversubscription kinks are.
class RegimeSelector : public ExpertSelector {
public:
  /// Regime tag per expert: 0 = uncontended, 1 = contended, -1 = any.
  RegimeSelector(std::vector<int> RegimeTags, double Alpha = 0.25);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  bool blendWeights(const Vec &Features, Vec &Weights) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  /// True when the current state is oversubscribed.
  static bool contended(const Vec &Features);

  /// Fills \p Matching with the experts whose tag fits the regime of
  /// \p Features (all of them if no tag matches).
  void candidatesInto(const Vec &Features,
                      std::vector<size_t> &Matching) const;

  std::vector<int> RegimeTags;
  double Alpha;
  Vec ErrorEma;
  std::vector<size_t> ScratchMatching; ///< Reused candidate list.
  Vec ScratchErrors;                   ///< Reused blend error buffer.
  Vec ScratchInner;                    ///< Reused blend softmax buffer.
  bool Trained = false;
};

/// Uniformly random expert choice (ablation control).
class RandomSelector : public ExpertSelector {
public:
  RandomSelector(size_t NumExperts, uint64_t Seed);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  uint64_t Seed;
  Rng Generator;
};

/// Tuning of the quarantine ladder rung.
struct QuarantineOptions {
  /// An update counts as a strike against expert k when its environment
  /// error exceeds DivergenceFactor x the median error of that update
  /// (and the absolute floor); non-finite errors always strike.
  double DivergenceFactor = 6.0;
  double AbsoluteErrorFloor = 0.5;

  /// Consecutive strikes before the expert is quarantined.
  unsigned Strikes = 3;

  /// Updates an expert sits out after its first quarantine; doubles on
  /// every re-quarantine (timed re-admission with exponential backoff).
  unsigned BackoffUpdates = 16;
  unsigned MaxBackoffUpdates = 512;
};

/// Decorator that quarantines experts whose environment-predictor error
/// diverges from the pack. Healthy experts are selected by the wrapped
/// (inner) selector; a quarantined choice is redirected to the healthy
/// expert with the best recent error. Quarantined experts are re-admitted
/// after a timed backoff that doubles on every relapse. When every expert
/// is quarantined the mixture falls back to DefaultPolicy behaviour
/// (MixtureOfExperts checks allQuarantined()).
class QuarantineSelector : public ExpertSelector {
public:
  /// \p Stats (optional, non-owning) receives quarantine counters; it must
  /// outlive the selector. Clones do not inherit the stats sink.
  QuarantineSelector(std::unique_ptr<ExpertSelector> Inner,
                     QuarantineOptions Options = {},
                     support::FaultStats *Stats = nullptr);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  bool blendWeights(const Vec &Features, Vec &Weights) override;
  void reset() override;
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

  bool isQuarantined(size_t Expert) const override;
  bool allQuarantined() const override;

  /// Number of experts currently selectable.
  size_t healthyCount() const;

  /// Clears every expert's strike / quarantine / backoff state without
  /// resetting the wrapped selector — the rollback re-admission hook:
  /// after a bad snapshot is rolled back, experts that were only failing
  /// under it start clean while the inner selector's learned gating
  /// survives (contrast reset(), which rewinds both). Currently
  /// quarantined experts count as re-admissions in the stats sink.
  void readmitAll();

  const ExpertSelector &inner() const { return *Inner; }

private:
  /// Healthy expert with the lowest recent error (SIZE_MAX when none).
  size_t bestHealthy() const;

  std::unique_ptr<ExpertSelector> Inner;
  QuarantineOptions Options;
  support::FaultStats *Stats;
  std::string Name;

  /// Per-expert ladder state.
  struct ExpertState {
    unsigned ConsecutiveStrikes = 0;
    unsigned QuarantineRemaining = 0; ///< Updates left; 0 = healthy.
    unsigned NextBackoff = 0;         ///< Doubles on every relapse.
    double ErrorEma = 0.0;
    bool Seen = false;
  };
  std::vector<ExpertState> States;
  Vec ScratchFinite;    ///< Reused finite-error buffer (update()).
  Vec ScratchSanitized; ///< Reused sanitised-error buffer (update()).
};

/// Always selects a fixed expert (used to evaluate single experts E^k).
class FixedSelector : public ExpertSelector {
public:
  FixedSelector(size_t NumExperts, size_t Index);

  size_t select(const Vec &Features) override;
  void update(const Vec &Features, const Vec &Errors) override;
  void reset() override {}
  std::unique_ptr<ExpertSelector> clone() const override;
  const std::string &name() const override;

private:
  size_t Index;
};

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERTSELECTOR_H
