//===-- core/ExternalExperts.cpp - Non-linear and hand-written experts ----------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExternalExperts.h"

#include "core/ExpertBuilder.h"
#include "support/Error.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

//===----------------------------------------------------------------------===//
// OnlineEnvModel
//===----------------------------------------------------------------------===//

OnlineEnvModel::OnlineEnvModel(double Prior, double Alpha) : Alpha(Alpha) {
  assert(Alpha > 0.0 && Alpha <= 1.0 && "invalid EMA step");
  Estimate[0] = Estimate[1] = Prior;
}

bool OnlineEnvModel::contended(const Vec &Features) {
  assert(Features.size() >= 6 && "feature vector too short");
  return Features[5] > Features[4]; // runq-sz vs processors.
}

double OnlineEnvModel::predict(const Vec &Features) const {
  return Estimate[contended(Features) ? 1 : 0];
}

void OnlineEnvModel::observe(const Vec &Features, double ObservedEnvNorm) {
  double &E = Estimate[contended(Features) ? 1 : 0];
  E += Alpha * (ObservedEnvNorm - E);
  ++Count;
}

//===----------------------------------------------------------------------===//
// k-NN expert
//===----------------------------------------------------------------------===//

Expert medley::core::makeKnnExpert(ExpertBuilder &Builder,
                                   const std::string &Name,
                                   KnnOptions Options) {
  const std::vector<TrainingSample> &Samples = Builder.samples();
  if (Samples.empty())
    reportFatalError("cannot build a k-NN expert from an empty corpus");

  Dataset ThreadData(policy::featureNames());
  Dataset EnvData(policy::featureNames());
  double EnvSum = 0.0;
  size_t EnvCount = 0;
  for (const TrainingSample &S : Samples) {
    ThreadData.add(S.Features, S.BestThreads, S.Program);
    if (S.HasNextEnv) {
      EnvData.add(S.Features, S.NextEnvNorm, S.Program);
      EnvSum += S.NextEnvNorm;
      ++EnvCount;
    }
  }

  std::optional<KnnModel> W = trainKnnModel(ThreadData, "w:" + Name, Options);
  std::optional<KnnModel> M = trainKnnModel(EnvData, "m:" + Name, Options);
  if (!W || !M)
    reportFatalError("failed to build the k-NN expert '" + Name + "'");

  auto WShared = std::make_shared<KnnModel>(std::move(*W));
  auto MShared = std::make_shared<KnnModel>(std::move(*M));
  double MeanEnv = EnvCount ? EnvSum / static_cast<double>(EnvCount) : 0.0;
  return Expert(
      Name, "k-NN (instance-based)",
      [WShared](const Vec &X) { return WShared->predict(X); },
      [MShared](const Vec &X) { return MShared->predict(X); }, MeanEnv);
}

//===----------------------------------------------------------------------===//
// Linear epsilon-SVR expert
//===----------------------------------------------------------------------===//

Expert medley::core::makeSvrExpert(ExpertBuilder &Builder,
                                   const std::string &Name,
                                   SvrOptions Options) {
  const std::vector<TrainingSample> &Samples = Builder.samples();
  if (Samples.empty())
    reportFatalError("cannot build an SVR expert from an empty corpus");

  Dataset ThreadData(policy::featureNames());
  Dataset EnvData(policy::featureNames());
  double EnvSum = 0.0;
  size_t EnvCount = 0;
  for (const TrainingSample &S : Samples) {
    ThreadData.add(S.Features, S.BestThreads, S.Program);
    if (S.HasNextEnv) {
      EnvData.add(S.Features, S.NextEnvNorm, S.Program);
      EnvSum += S.NextEnvNorm;
      ++EnvCount;
    }
  }

  // The environment norm lives on a much smaller scale than thread counts;
  // shrink its insensitive tube accordingly.
  SvrOptions EnvOptions = Options;
  EnvOptions.Epsilon = 0.05;
  std::optional<SvrModel> W = trainSvrModel(ThreadData, "w:" + Name, Options);
  std::optional<SvrModel> M =
      trainSvrModel(EnvData, "m:" + Name, EnvOptions);
  if (!W || !M)
    reportFatalError("failed to build the SVR expert '" + Name + "'");

  auto WShared = std::make_shared<SvrModel>(std::move(*W));
  auto MShared = std::make_shared<SvrModel>(std::move(*M));
  double MeanEnv = EnvCount ? EnvSum / static_cast<double>(EnvCount) : 0.0;
  return Expert(
      Name, "linear epsilon-SVR",
      [WShared](const Vec &X) { return WShared->predict(X); },
      [MShared](const Vec &X) { return MShared->predict(X); }, MeanEnv);
}

//===----------------------------------------------------------------------===//
// Hand-written analytic expert
//===----------------------------------------------------------------------===//

Expert medley::core::makeHandcraftedExpert(const sim::MachineConfig &Machine,
                                           const std::string &Name) {
  unsigned PerSocket = Machine.coresPerSocket();
  auto ThreadFn = [PerSocket](const Vec &F) {
    double Processors = F[4];
    double Workload = F[3];
    double BranchRatio = F[2];
    // Claim the slack the workload leaves (it time-shares, so count each
    // external thread as roughly half a core), but never fight for more
    // than the machine has.
    double Slack = std::max(1.0, Processors - 0.5 * Workload);
    // Synchronisation-bound loops stay within one socket.
    if (BranchRatio > 0.18)
      Slack = std::min(Slack, static_cast<double>(PerSocket));
    return Slack;
  };

  // The environment model is learned online from the mixture's feedback;
  // its prior is the idle machine's norm (processors fully available,
  // memory free): sqrt((P/P)^2 + 1^2) = sqrt(2).
  auto Env = std::make_shared<OnlineEnvModel>(std::sqrt(2.0));
  return Expert(
      Name, "hand-written analytic",
      ThreadFn, [Env](const Vec &X) { return Env->predict(X); },
      /*MeanTrainingEnv=*/std::sqrt(2.0),
      [Env](const Vec &X, double Observed) { Env->observe(X, Observed); });
}
