//===-- core/Expert.cpp - A (w, m) expert pair ---------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Expert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

Expert::Expert(std::string Name, std::string Description,
               LinearModel ThreadModel, LinearModel EnvModel,
               double MeanTrainingEnv)
    : Name(std::move(Name)), Description(std::move(Description)),
      LinearThread(std::make_shared<LinearModel>(std::move(ThreadModel))),
      LinearEnv(std::make_shared<LinearModel>(std::move(EnvModel))),
      MeanTrainingEnv(MeanTrainingEnv) {
  assert(LinearThread->dimension() == policy::NumFeatures &&
         LinearEnv->dimension() == policy::NumFeatures &&
         "expert models must use the 10-feature representation");
  auto W = LinearThread;
  ThreadFn = [W](const Vec &X) { return W->predict(X); };
  auto M = LinearEnv;
  EnvFn = [M](const Vec &X) { return M->predict(X); };
}

Expert::Expert(std::string Name, std::string Description, PredictFn ThreadFn,
               PredictFn EnvFn, double MeanTrainingEnv,
               ObserveEnvFn ObserveEnv)
    : Name(std::move(Name)), Description(std::move(Description)),
      ThreadFn(std::move(ThreadFn)), EnvFn(std::move(EnvFn)),
      ObserveEnv(std::move(ObserveEnv)), MeanTrainingEnv(MeanTrainingEnv) {
  assert(this->ThreadFn && this->EnvFn &&
         "external experts need both prediction functions");
}

unsigned Expert::predictThreads(const policy::FeatureVector &Features) const {
  long N = std::lround(ThreadFn(Features.Values));
  N = std::clamp<long>(N, 1, static_cast<long>(Features.MaxThreads));
  return static_cast<unsigned>(N);
}

double Expert::predictEnvNorm(const policy::FeatureVector &Features) const {
  return std::max(0.0, EnvFn(Features.Values));
}

void Expert::observeEnvironment(const Vec &Features,
                                double ObservedEnvNorm) const {
  if (ObserveEnv)
    ObserveEnv(Features, ObservedEnvNorm);
}

const LinearModel *Expert::threadModel() const { return LinearThread.get(); }

const LinearModel *Expert::envModel() const { return LinearEnv.get(); }
