//===-- core/Expert.cpp - A (w, m) expert pair ---------------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/Expert.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

Expert::Expert(std::string Name, std::string Description,
               LinearModel ThreadModel, LinearModel EnvModel,
               double MeanTrainingEnv)
    : Name(std::move(Name)), Description(std::move(Description)),
      LinearThread(std::make_shared<LinearModel>(std::move(ThreadModel))),
      LinearEnv(std::make_shared<LinearModel>(std::move(EnvModel))),
      MeanTrainingEnv(MeanTrainingEnv) {
  assert(LinearThread->dimension() == policy::NumFeatures &&
         LinearEnv->dimension() == policy::NumFeatures &&
         "expert models must use the 10-feature representation");
  auto W = LinearThread;
  ThreadFn = [W](const Vec &X) { return W->predict(X); };
  auto M = LinearEnv;
  EnvFn = [M](const Vec &X) { return M->predict(X); };
}

Expert::Expert(std::string Name, std::string Description, PredictFn ThreadFn,
               PredictFn EnvFn, double MeanTrainingEnv,
               ObserveEnvFn ObserveEnv)
    : Name(std::move(Name)), Description(std::move(Description)),
      ThreadFn(std::move(ThreadFn)), EnvFn(std::move(EnvFn)),
      ObserveEnv(std::move(ObserveEnv)), MeanTrainingEnv(MeanTrainingEnv) {
  assert(this->ThreadFn && this->EnvFn &&
         "external experts need both prediction functions");
}

unsigned Expert::predictThreads(const policy::FeatureVector &Features) const {
  // Standard linear experts skip the std::function trampoline: the lambda
  // stored in ThreadFn would do exactly this call, so going direct is
  // bit-identical and keeps the per-decision path free of indirection.
  double Raw = LinearThread ? LinearThread->predict(Features.Values)
                            : ThreadFn(Features.Values);
  long N = std::lround(Raw);
  N = std::clamp<long>(N, 1, static_cast<long>(Features.MaxThreads));
  return static_cast<unsigned>(N);
}

unsigned
Expert::predictThreadsStandardized(const policy::FeatureVector &Features,
                                   const Vec &Std) const {
  assert(LinearThread && "standardised prediction needs a linear expert");
  double Raw = LinearThread->predictStandardized(Std);
  long N = std::lround(Raw);
  N = std::clamp<long>(N, 1, static_cast<long>(Features.MaxThreads));
  return static_cast<unsigned>(N);
}

double Expert::predictEnvNorm(const policy::FeatureVector &Features) const {
  double Raw = LinearEnv ? LinearEnv->predict(Features.Values)
                         : EnvFn(Features.Values);
  return std::max(0.0, Raw);
}

void Expert::observeEnvironment(const Vec &Features,
                                double ObservedEnvNorm) const {
  if (ObserveEnv)
    ObserveEnv(Features, ObservedEnvNorm);
}

const LinearModel *Expert::threadModel() const { return LinearThread.get(); }

const LinearModel *Expert::envModel() const { return LinearEnv.get(); }
