//===-- core/ExpertIo.cpp - Expert (de)serialisation ----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertIo.h"

#include "support/Fnv.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

using namespace medley;
using namespace medley::core;
using support::Error;
using support::ErrorCode;

namespace {

constexpr const char *Magic = "medley-experts";
/// Current format: checksummed header (see ExpertIo.h).
constexpr int Version = 2;
/// First format, still readable: no checksum line.
constexpr int LegacyVersion = 1;

/// Renders \p Hash as 16 lowercase hex digits (the on-disk checksum form).
std::string checksumHex(uint64_t Hash) {
  std::ostringstream OS;
  OS << std::hex << std::setw(16) << std::setfill('0') << Hash;
  return OS.str();
}

void writeVec(std::ostream &OS, const Vec &V) {
  for (double X : V)
    OS << ' ' << X;
}

/// Reports \p Code/\p Message through \p Err (if any); reads as the
/// nullopt it always returns.
std::nullopt_t fail(Error *Err, ErrorCode Code, const std::string &Message) {
  support::reportError(Err, Code, Message);
  return std::nullopt;
}

/// The parse-failure taxonomy: a stream that gave out at end-of-input was
/// truncated; one that stopped mid-stream holds an unparseable token.
ErrorCode streamFailure(const std::istream &IS) {
  return IS.eof() ? ErrorCode::TruncatedInput : ErrorCode::CorruptInput;
}

bool readVec(std::istream &IS, size_t N, Vec &Out) {
  Out.resize(N);
  for (size_t I = 0; I < N; ++I)
    if (!(IS >> Out[I]))
      return false;
  return true;
}

/// True when every entry of \p V is finite.
bool allFinite(const Vec &V) {
  for (double X : V)
    if (!std::isfinite(X))
      return false;
  return true;
}

/// Expects the literal token \p Expected next on the stream.
bool expectToken(std::istream &IS, const std::string &Expected) {
  std::string Token;
  return (IS >> Token) && Token == Expected;
}

void writeModel(std::ostream &OS, const char *Tag, const LinearModel &M) {
  OS << Tag << " means";
  writeVec(OS, M.scaler().means());
  OS << " scales";
  writeVec(OS, M.scaler().scales());
  OS << " weights";
  writeVec(OS, M.weights());
  OS << " intercept " << M.intercept() << " r2 " << M.trainingR2() << '\n';
}

std::optional<LinearModel> readModel(std::istream &IS, const char *Tag,
                                     size_t Dim, const std::string &Name,
                                     Error *Err) {
  if (!expectToken(IS, Tag) || !expectToken(IS, "means"))
    return fail(Err, streamFailure(IS),
                "model '" + Name + "': expected '" + Tag + " means'");
  Vec Means, Scales, Weights;
  if (!readVec(IS, Dim, Means))
    return fail(Err, streamFailure(IS),
                "model '" + Name + "': bad means vector");
  if (!expectToken(IS, "scales") || !readVec(IS, Dim, Scales))
    return fail(Err, streamFailure(IS),
                "model '" + Name + "': bad scales vector");
  if (!expectToken(IS, "weights") || !readVec(IS, Dim, Weights))
    return fail(Err, streamFailure(IS),
                "model '" + Name + "': bad weights vector");
  double Intercept = 0.0, R2 = 0.0;
  if (!expectToken(IS, "intercept") || !(IS >> Intercept))
    return fail(Err, streamFailure(IS),
                "model '" + Name + "': bad intercept");
  if (!expectToken(IS, "r2") || !(IS >> R2))
    return fail(Err, streamFailure(IS), "model '" + Name + "': bad r2");

  // Validate before constructing: a corrupted model must be rejected
  // here, not fed to the selector as silent NaN predictions.
  if (!allFinite(Means) || !allFinite(Weights) || !std::isfinite(Intercept) ||
      !std::isfinite(R2))
    return fail(Err, ErrorCode::NonFiniteValue,
                "model '" + Name + "': non-finite parameter");
  for (double S : Scales)
    if (!std::isfinite(S) || S <= 0.0)
      return fail(Err, ErrorCode::CorruptInput,
                  "model '" + Name + "': non-positive feature scale");

  LinearFit Fit;
  Fit.Weights = std::move(Weights);
  Fit.Intercept = Intercept;
  Fit.R2 = R2;
  return LinearModel(
      FeatureScaler::fromMoments(std::move(Means), std::move(Scales)),
      std::move(Fit), Name);
}

/// Parses the payload (everything after the checksum line) from \p IS.
std::optional<std::vector<Expert>> readBody(std::istream &IS, Error *Err) {
  size_t Count = 0, Dim = 0;
  if (!expectToken(IS, "experts") || !(IS >> Count))
    return fail(Err, streamFailure(IS), "bad expert count header");
  if (!expectToken(IS, "features") || !(IS >> Dim))
    return fail(Err, streamFailure(IS), "bad feature dimension header");
  if (Count == 0 || Count > 1024)
    return fail(Err, ErrorCode::CorruptInput,
                "implausible expert count " + std::to_string(Count));
  if (Dim != policy::NumFeatures)
    return fail(Err, ErrorCode::CorruptInput,
                "feature dimension " + std::to_string(Dim) + " != " +
                    std::to_string(policy::NumFeatures));

  std::vector<Expert> Experts;
  Experts.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    std::string Name;
    double MeanEnv = 0.0;
    if (!expectToken(IS, "expert") || !(IS >> Name) || !(IS >> MeanEnv))
      return fail(Err, streamFailure(IS),
                  "bad expert header at index " + std::to_string(I));
    if (!std::isfinite(MeanEnv))
      return fail(Err, ErrorCode::NonFiniteValue,
                  "expert '" + Name + "': non-finite mean training env");
    if (!expectToken(IS, "description"))
      return fail(Err, streamFailure(IS),
                  "expert '" + Name + "': missing description");
    std::string Description;
    std::getline(IS >> std::ws, Description);

    std::optional<LinearModel> W = readModel(IS, "w", Dim, "w:" + Name, Err);
    if (!W)
      return std::nullopt;
    std::optional<LinearModel> M = readModel(IS, "m", Dim, "m:" + Name, Err);
    if (!M)
      return std::nullopt;
    Experts.emplace_back(Name, Description, std::move(*W), std::move(*M),
                         MeanEnv);
  }
  return Experts;
}

} // namespace

bool medley::core::writeExperts(std::ostream &OS,
                                const std::vector<Expert> &Experts) {
  if (Experts.empty())
    return false;
  size_t Dim = policy::NumFeatures;
  for (const Expert &E : Experts)
    if (!E.threadModel() || !E.envModel())
      return false; // External experts cannot round-trip.

  // Serialise the payload first so the header can carry its checksum.
  std::ostringstream Payload;
  Payload << "experts " << Experts.size() << " features " << Dim << '\n';
  Payload << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Expert &E : Experts) {
    Payload << "expert " << E.name() << ' ' << E.meanTrainingEnv() << '\n';
    Payload << "description " << E.description() << '\n';
    writeModel(Payload, "w", *E.threadModel());
    writeModel(Payload, "m", *E.envModel());
  }
  const std::string Body = Payload.str();

  OS << Magic << ' ' << Version << '\n';
  OS << "checksum " << checksumHex(support::fnv1aString(Body)) << '\n';
  OS << Body;
  return static_cast<bool>(OS);
}

std::optional<std::vector<Expert>>
medley::core::readExperts(std::istream &IS, Error *Err) {
  std::string Token;
  int FileVersion = 0;
  if (!(IS >> Token) || Token != Magic)
    return fail(Err, streamFailure(IS),
                "not a medley expert file (bad magic)");
  if (!(IS >> FileVersion) ||
      (FileVersion != Version && FileVersion != LegacyVersion))
    return fail(Err, ErrorCode::CorruptInput,
                "unsupported expert-file version");
  if (FileVersion == LegacyVersion)
    return readBody(IS, Err); // v1: same payload, no checksum to verify.

  std::string Stored;
  if (!expectToken(IS, "checksum") || !(IS >> Stored))
    return fail(Err, streamFailure(IS), "missing checksum header");
  std::string Rest;
  std::getline(IS, Rest); // Consume the remainder of the checksum line.
  // Slurp the payload verbatim; the checksum covers these exact bytes.
  std::ostringstream Slurped;
  Slurped << IS.rdbuf();
  const std::string Body = Slurped.str();
  const std::string Actual = checksumHex(support::fnv1aString(Body));
  if (Actual != Stored)
    return fail(Err, ErrorCode::ChecksumMismatch,
                "expert payload checksum " + Actual +
                    " != stored checksum " + Stored);
  std::istringstream BodyStream(Body);
  return readBody(BodyStream, Err);
}

bool medley::core::saveExpertsToFile(const std::string &Path,
                                     const std::vector<Expert> &Experts) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  return writeExperts(OS, Experts);
}

std::optional<std::vector<Expert>>
medley::core::loadExpertsFromFile(const std::string &Path, Error *Err) {
  std::ifstream IS(Path);
  if (!IS)
    return fail(Err, ErrorCode::IoFailure, "cannot open '" + Path + "'");
  return readExperts(IS, Err);
}
