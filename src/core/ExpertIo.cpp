//===-- core/ExpertIo.cpp - Expert (de)serialisation ----------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertIo.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

using namespace medley;
using namespace medley::core;

namespace {

constexpr const char *Magic = "medley-experts";
constexpr int Version = 1;

void writeVec(std::ostream &OS, const Vec &V) {
  for (double X : V)
    OS << ' ' << X;
}

bool readVec(std::istream &IS, size_t N, Vec &Out) {
  Out.resize(N);
  for (size_t I = 0; I < N; ++I)
    if (!(IS >> Out[I]))
      return false;
  return true;
}

/// Expects the literal token \p Expected next on the stream.
bool expectToken(std::istream &IS, const std::string &Expected) {
  std::string Token;
  return (IS >> Token) && Token == Expected;
}

void writeModel(std::ostream &OS, const char *Tag, const LinearModel &M) {
  OS << Tag << " means";
  writeVec(OS, M.scaler().means());
  OS << " scales";
  writeVec(OS, M.scaler().scales());
  OS << " weights";
  writeVec(OS, M.weights());
  OS << " intercept " << M.intercept() << " r2 " << M.trainingR2() << '\n';
}

std::optional<LinearModel> readModel(std::istream &IS, const char *Tag,
                                     size_t Dim, const std::string &Name) {
  if (!expectToken(IS, Tag) || !expectToken(IS, "means"))
    return std::nullopt;
  Vec Means, Scales, Weights;
  if (!readVec(IS, Dim, Means))
    return std::nullopt;
  if (!expectToken(IS, "scales") || !readVec(IS, Dim, Scales))
    return std::nullopt;
  if (!expectToken(IS, "weights") || !readVec(IS, Dim, Weights))
    return std::nullopt;
  double Intercept = 0.0, R2 = 0.0;
  if (!expectToken(IS, "intercept") || !(IS >> Intercept))
    return std::nullopt;
  if (!expectToken(IS, "r2") || !(IS >> R2))
    return std::nullopt;
  for (double S : Scales)
    if (S <= 0.0)
      return std::nullopt;

  LinearFit Fit;
  Fit.Weights = std::move(Weights);
  Fit.Intercept = Intercept;
  Fit.R2 = R2;
  return LinearModel(
      FeatureScaler::fromMoments(std::move(Means), std::move(Scales)),
      std::move(Fit), Name);
}

} // namespace

bool medley::core::writeExperts(std::ostream &OS,
                                const std::vector<Expert> &Experts) {
  if (Experts.empty())
    return false;
  size_t Dim = policy::NumFeatures;
  for (const Expert &E : Experts)
    if (!E.threadModel() || !E.envModel())
      return false; // External experts cannot round-trip.

  OS << Magic << ' ' << Version << '\n';
  OS << "experts " << Experts.size() << " features " << Dim << '\n';
  OS << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const Expert &E : Experts) {
    OS << "expert " << E.name() << ' ' << E.meanTrainingEnv() << '\n';
    OS << "description " << E.description() << '\n';
    writeModel(OS, "w", *E.threadModel());
    writeModel(OS, "m", *E.envModel());
  }
  return static_cast<bool>(OS);
}

std::optional<std::vector<Expert>> medley::core::readExperts(std::istream &IS) {
  std::string Token;
  int FileVersion = 0;
  if (!(IS >> Token) || Token != Magic || !(IS >> FileVersion) ||
      FileVersion != Version)
    return std::nullopt;

  size_t Count = 0, Dim = 0;
  if (!expectToken(IS, "experts") || !(IS >> Count))
    return std::nullopt;
  if (!expectToken(IS, "features") || !(IS >> Dim))
    return std::nullopt;
  if (Count == 0 || Count > 1024 || Dim != policy::NumFeatures)
    return std::nullopt;

  std::vector<Expert> Experts;
  Experts.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    std::string Name;
    double MeanEnv = 0.0;
    if (!expectToken(IS, "expert") || !(IS >> Name) || !(IS >> MeanEnv))
      return std::nullopt;
    if (!expectToken(IS, "description"))
      return std::nullopt;
    std::string Description;
    std::getline(IS >> std::ws, Description);

    std::optional<LinearModel> W = readModel(IS, "w", Dim, "w:" + Name);
    if (!W)
      return std::nullopt;
    std::optional<LinearModel> M = readModel(IS, "m", Dim, "m:" + Name);
    if (!M)
      return std::nullopt;
    Experts.emplace_back(Name, Description, std::move(*W), std::move(*M),
                         MeanEnv);
  }
  return Experts;
}

bool medley::core::saveExpertsToFile(const std::string &Path,
                                     const std::vector<Expert> &Experts) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  return writeExperts(OS, Experts);
}

std::optional<std::vector<Expert>>
medley::core::loadExpertsFromFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return std::nullopt;
  return readExperts(IS);
}
