//===-- core/MixtureOfExperts.h - The mixture policy ------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution as a deployable ThreadPolicy (Sections 4-5).
/// At every parallel region the policy
///   1. judges the *previous* decision: each expert's environment
///      prediction made then is compared against the environment norm
///      observed now, and the selector is updated with the winner
///      (M(f_t) = argmin_k | ||ê_t^k|| - ||e_t|| |);
///   2. asks the selector for the expert best suited to the current
///      features and emits that expert's thread prediction.
/// No expert is ever "tried out": evaluation is entirely through the
/// environment-prediction proxy, so there is no exploration overhead.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_MIXTUREOFEXPERTS_H
#define MEDLEY_CORE_MIXTUREOFEXPERTS_H

#include "core/Expert.h"
#include "core/ExpertSelector.h"
#include "core/MoeStats.h"
#include "policy/ThreadPolicy.h"

#include <memory>

namespace medley::core {

/// Options for the mixture policy.
struct MixtureOptions {
  /// Relative tolerance for counting an environment prediction "accurate"
  /// in the Fig-15a bookkeeping (does not affect selection, which always
  /// uses the closest prediction).
  double EnvAccuracyTolerance = 0.2;

  /// Soft gating (Jacobs et al.'s original mixture formulation): when the
  /// selector can provide a weight distribution, blend the experts' thread
  /// predictions instead of committing to one expert. Statistics still
  /// attribute each decision to the highest-weight expert.
  bool SoftBlend = true;

  /// Optional (non-owning) sink for degradation counters: default-policy
  /// fallbacks under full quarantine and sanitized feature values. Must
  /// outlive the policy instance.
  support::FaultStats *Faults = nullptr;
};

/// Mixture-of-experts thread-selection policy.
class MixtureOfExperts : public policy::ThreadPolicy {
public:
  /// \p Experts is shared (read-only) across policy instances; \p Selector
  /// is owned and adapts online. \p Stats (optional) aggregates behaviour
  /// across instances for the analysis figures.
  MixtureOfExperts(std::shared_ptr<const std::vector<Expert>> Experts,
                   std::unique_ptr<ExpertSelector> Selector,
                   std::shared_ptr<MoeStats> Stats = nullptr,
                   MixtureOptions Options = {});

  unsigned select(const policy::FeatureVector &Features) override;
  void reset() override;
  const std::string &name() const override;

  const std::vector<Expert> &experts() const { return *Experts; }
  const ExpertSelector &selector() const { return *Selector; }

  /// Index of the expert chosen at the most recent decision.
  size_t lastExpert() const { return LastExpert; }

private:
  void judgePreviousDecision(const policy::FeatureVector &Features);

  std::shared_ptr<const std::vector<Expert>> Experts;
  std::unique_ptr<ExpertSelector> Selector;
  std::shared_ptr<MoeStats> Stats;
  MixtureOptions Options;

  bool HasPending = false;
  Vec PendingFeatures;
  Vec PendingEnvPredictions;
  size_t PendingChosen = 0;
  size_t LastExpert = 0;
};

} // namespace medley::core

#endif // MEDLEY_CORE_MIXTUREOFEXPERTS_H
