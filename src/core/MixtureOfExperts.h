//===-- core/MixtureOfExperts.h - The mixture policy ------------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution as a deployable ThreadPolicy (Sections 4-5).
/// At every parallel region the policy
///   1. judges the *previous* decision: each expert's environment
///      prediction made then is compared against the environment norm
///      observed now, and the selector is updated with the winner
///      (M(f_t) = argmin_k | ||ê_t^k|| - ||e_t|| |);
///   2. asks the selector for the expert best suited to the current
///      features and emits that expert's thread prediction.
/// No expert is ever "tried out": evaluation is entirely through the
/// environment-prediction proxy, so there is no exploration overhead.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_MIXTUREOFEXPERTS_H
#define MEDLEY_CORE_MIXTUREOFEXPERTS_H

#include "core/Expert.h"
#include "core/ExpertSelector.h"
#include "core/MoeStats.h"
#include "policy/ThreadPolicy.h"

#include <array>
#include <memory>

namespace medley::core {

/// Options for the mixture policy.
struct MixtureOptions {
  /// Relative tolerance for counting an environment prediction "accurate"
  /// in the Fig-15a bookkeeping (does not affect selection, which always
  /// uses the closest prediction).
  double EnvAccuracyTolerance = 0.2;

  /// Soft gating (Jacobs et al.'s original mixture formulation): when the
  /// selector can provide a weight distribution, blend the experts' thread
  /// predictions instead of committing to one expert. Statistics still
  /// attribute each decision to the highest-weight expert.
  bool SoftBlend = true;

  /// Optional (non-owning) sink for degradation counters: default-policy
  /// fallbacks under full quarantine and sanitized feature values. Must
  /// outlive the policy instance.
  support::FaultStats *Faults = nullptr;

  /// Pure-part decision memoization (ROADMAP item 5): when consecutive
  /// decisions arrive with bit-identical feature vectors — which the fleet
  /// engine's environment epochs make the common case — the expensive
  /// pure computations (feature standardisation, the batched thread-model
  /// scoring, the per-expert environment predictions) are reused from the
  /// previous decision instead of recomputed. Selector adaptation (the
  /// judge update) and gating still run on every decision, so the emitted
  /// decision sequence is bit-identical with the memo on or off; only the
  /// arithmetic that provably reproduces the same bits is skipped.
  bool Memoize = false;
};

/// Mixture-of-experts thread-selection policy.
class MixtureOfExperts : public policy::ThreadPolicy {
public:
  /// \p Experts is shared (read-only) across policy instances; \p Selector
  /// is owned and adapts online. \p Stats (optional) aggregates behaviour
  /// across instances for the analysis figures.
  MixtureOfExperts(std::shared_ptr<const std::vector<Expert>> Experts,
                   std::unique_ptr<ExpertSelector> Selector,
                   std::shared_ptr<MoeStats> Stats = nullptr,
                   MixtureOptions Options = {});

  unsigned select(const policy::FeatureVector &Features) override;
  void reset() override;
  const std::string &name() const override;

  const std::vector<Expert> &experts() const { return *Experts; }
  const ExpertSelector &selector() const { return *Selector; }

  /// Index of the expert chosen at the most recent decision.
  size_t lastExpert() const { return LastExpert; }

  /// Swaps in a new expert vector of the same arity while keeping the
  /// selector's learned state — the registry swap boundary (DESIGN.md
  /// §14): pending judgements are dropped (they priced the old experts)
  /// and the batched-scoring views are rebuilt. Returns false (and changes
  /// nothing) on an arity mismatch. Not part of the steady decision path.
  bool rebindExperts(std::shared_ptr<const std::vector<Expert>> NewExperts);

  /// Forwards rollback re-admission to a QuarantineSelector-wrapped
  /// selector (no-op otherwise): strikes accumulated under a rolled-back
  /// snapshot must not keep punishing experts under the restored one.
  void readmitQuarantined();

private:
  /// (Re)derives the batched-scoring views — SharedThreadScaler,
  /// ThreadModels, EnvModels, AnyEnvObserver — from the current experts.
  void bindExpertViews();
  void judgePreviousDecision(const policy::FeatureVector &Features);

  /// Records this decision's per-expert environment predictions so the
  /// next call can judge them. When \p ReusePredictions is set, the
  /// predictions already in PendingEnvPredictions were computed from
  /// bit-identical features against the same expert set and are kept.
  void stashPending(const policy::FeatureVector &Features, size_t Chosen,
                    bool ReusePredictions = false);

  /// Pins the memo to this decision's feature bits after the decision
  /// completes; \p ComputedThreadPreds records whether ScratchStd /
  /// ScratchRawThreads were (re)filled for these features this call.
  void rememberMemoKey(const policy::FeatureVector &Features,
                       bool ComputedThreadPreds, bool MemoHit);

  std::shared_ptr<const std::vector<Expert>> Experts;
  std::unique_ptr<ExpertSelector> Selector;
  std::shared_ptr<MoeStats> Stats;
  MixtureOptions Options;

  bool HasPending = false;
  Vec PendingFeatures;
  Vec PendingEnvPredictions;
  size_t PendingChosen = 0;
  size_t LastExpert = 0;

  // Per-decision scratch: capacity sticks after the first decision, so the
  // steady-state path never allocates. Instances are per-worker (factory
  // clones), so plain members need no synchronisation.
  Vec ScratchErrors;
  Vec ScratchWeights;
  Vec ScratchStd;
  Vec ScratchRawThreads;
  std::vector<unsigned> ScratchThreadPreds;

  /// Set when every expert's thread predictor is linear and uses the same
  /// feature scaler (the ExpertBuilder trains them that way): features are
  /// then standardised once per decision instead of once per expert.
  /// Points into the shared expert vector, which the policy keeps alive.
  const FeatureScaler *SharedThreadScaler = nullptr;

  /// Raw thread-model pointers, filled exactly when SharedThreadScaler is
  /// set; scored in one batch from the shared standardised features.
  std::vector<const LinearModel *> ThreadModels;

  /// Raw environment-model pointers (same lifetime as above), filled only
  /// when every expert is linear: the pending-prediction loop then skips
  /// the per-call Expert indirection. Empty otherwise.
  std::vector<const LinearModel *> EnvModels;

  /// Any expert with an online environment-learning hook? When false the
  /// per-decision observeEnvironment fan-out is a guaranteed no-op.
  bool AnyEnvObserver = false;

  /// Pure-part memo state (MixtureOptions::Memoize): MemoKey holds the
  /// feature values of the previous decision; when the next decision's
  /// values match bitwise, ScratchStd / ScratchRawThreads (if
  /// MemoHaveThreadPreds) and PendingEnvPredictions still hold exactly
  /// what recomputation would produce. Invalidated by reset() and by
  /// expert rebinds (new models, new bits).
  bool MemoValid = false;
  bool MemoHaveThreadPreds = false;
  std::array<double, policy::NumFeatures> MemoKey{};
};

} // namespace medley::core

#endif // MEDLEY_CORE_MIXTUREOFEXPERTS_H
