//===-- core/ExpertTrainer.h - Online expert refitting ----------*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity: A Mixture of
// Experts Approach for Runtime Mapping in Dynamic Environments" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Background refitting of the (w, m) expert pairs from recent trace
/// windows (DESIGN.md §14.3). The trainer never touches live state: it
/// reads an immutable base snapshot plus a TickTrace window, and produces a
/// fresh candidate expert vector for the RolloutController to shadow-score
/// and (maybe) publish through the ExpertRegistry. Training is fully
/// deterministic — same (window, base, options) => bit-identical candidate
/// models — so retraining preserves the repo-wide replay discipline even
/// when it runs on a support::ThreadPool worker.
///
/// Sample routing mirrors the regime machinery: experts whose description
/// starts with "uncontended"/"contended" refit only on window rows from
/// that machine regime; untagged experts see every row. Experts whose
/// slice of the window is too thin (or whose fit degenerates) carry over
/// from the base snapshot unchanged — a sparse window must never produce a
/// garbage expert. All refits share the base snapshot's corpus-wide
/// feature scaler, which keeps the mixture's batched shared-scaler scoring
/// path valid for candidates.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXPERTTRAINER_H
#define MEDLEY_CORE_EXPERTTRAINER_H

#include "core/ExpertRegistry.h"
#include "support/ThreadPool.h"
#include "trace/TrainingWindow.h"

#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace medley::core {

/// Tuning of the online refit.
struct TrainerOptions {
  /// Window extraction (size = the --retrain-window knob, code-feature
  /// template, load-average EMA steps).
  trace::TrainingWindowOptions Window;

  /// Ridge regularisation for the online fits; small traces need it (an
  /// exactly collinear window would otherwise degenerate).
  double Ridge = 1e-3;

  /// An expert refits only when its regime slice of the window has at
  /// least this many samples; thinner slices carry the base expert over.
  size_t MinSamplesPerExpert = 16;
};

/// Refits experts from trace windows; stateless apart from options, so one
/// trainer can serve many windows (and its methods are const / re-entrant).
class ExpertTrainer {
public:
  explicit ExpertTrainer(TrainerOptions Options = {});

  /// Synchronous deterministic refit of \p Base's experts against the last
  /// window of \p Trace. Returns the candidate expert vector, or nullopt
  /// when the window is too thin to refit even one expert (no candidate is
  /// better than a noise candidate).
  std::optional<std::vector<Expert>>
  retrain(const trace::TickTrace &Trace, const ExpertSnapshot &Base) const;

  /// Asynchronous form: runs retrain(\p Trace, *\p Base) on a \p Pool
  /// worker and hands the result to \p Done *on that worker thread*. The
  /// caller owns cross-thread hand-off discipline (the RolloutController
  /// takes candidates through a mutex-guarded mailbox).
  void retrainAsync(
      support::ThreadPool &Pool, trace::TickTrace Trace,
      std::shared_ptr<const ExpertSnapshot> Base,
      std::function<void(std::optional<std::vector<Expert>>)> Done) const;

  /// Number of experts actually refitted (vs carried over) in the last
  /// synchronous retrain() on this thread is returned via retrainCounted.
  struct RetrainResult {
    std::vector<Expert> Experts;
    size_t Refitted = 0;  ///< Experts with fresh fits.
    size_t CarriedOver = 0;///< Experts kept from the base snapshot.
  };

  /// retrain() with per-expert accounting (same determinism contract).
  std::optional<RetrainResult>
  retrainCounted(const trace::TickTrace &Trace,
                 const ExpertSnapshot &Base) const;

  const TrainerOptions &options() const { return Options; }

private:
  TrainerOptions Options;
};

} // namespace medley::core

#endif // MEDLEY_CORE_EXPERTTRAINER_H
