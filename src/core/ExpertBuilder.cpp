//===-- core/ExpertBuilder.cpp - Offline expert training ------------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/ExpertBuilder.h"

#include "core/Oracle.h"
#include "sim/Simulation.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "workload/Catalog.h"
#include "workload/ThreadPattern.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace medley;
using namespace medley::core;

TrainingConfig TrainingConfig::standard() {
  TrainingConfig Config;
  Config.Programs = workload::Catalog::trainingPrograms();
  Config.Platforms = {sim::MachineConfig::trainingPlatform12(),
                      sim::MachineConfig::evaluationPlatform()};
  return Config;
}

ExpertBuilder::ExpertBuilder(TrainingConfig Config)
    : Config(std::move(Config)) {
  if (this->Config.Programs.empty() || this->Config.Platforms.empty())
    reportFatalError("training config needs programs and platforms");
}

double
ExpertBuilder::scalabilityFraction(const std::string &Program,
                                   const sim::MachineConfig &Platform) const {
  const workload::ProgramSpec &Spec = workload::Catalog::byName(Program);
  double Speedup = Spec.isolatedSpeedup(Platform.TotalCores, Platform);
  return Speedup / static_cast<double>(Platform.TotalCores);
}

namespace {

/// Shared state of the exploring target chooser in one training run.
struct ExplorerState {
  Rng Generator;
  sim::Simulation *Sim = nullptr;
  const sim::Task *Self = nullptr;
  std::vector<TrainingSample> *Samples = nullptr;
  long PendingIndex = -1;
  sim::MachineConfig Machine;
  size_t PlatformIndex = 0;
  std::string Program;
  double ScalFrac = 0.0;

  // Piecewise-constant exploration: the paper's training runs execute with
  // a fixed thread count per run, so environment labels reflect stable
  // own-thread behaviour. We redraw every few seconds instead of every
  // region to keep that property while covering the state space.
  unsigned CurrentThreads = 0;
  double LastDraw = -1e9;
  static constexpr double DrawPeriod = 5.0;

  explicit ExplorerState(uint64_t Seed) : Generator(Seed) {}
};

} // namespace

void ExpertBuilder::collectPair(const std::string &TargetName,
                                const std::string &WorkloadName,
                                size_t PlatformIndex, uint64_t Seed) {
  const sim::MachineConfig &Machine = Config.Platforms[PlatformIndex];
  unsigned Cores = Machine.TotalCores;

  sim::Simulation Simulation(
      Machine,
      sim::PeriodicAvailability::standardLadder(
          Cores, Config.AvailabilityPeriod, Seed ^ 0xA11),
      Config.Tick);

  // External workload: one looping NAS program with a reproducible,
  // seed-derived thread pattern (paper Section 5.2.1: one target and one
  // workload, repeated with varying thread counts). An empty name runs the
  // target in isolation, grounding the models in the workload-free corner
  // of the state space.
  if (!WorkloadName.empty()) {
    auto Workload = std::make_shared<workload::Program>(
        workload::Catalog::byName(WorkloadName),
        workload::ThreadPattern::makeChooser(Seed ^ 0xB22, 2, Cores * 3 / 2,
                                             5.0),
        Cores, /*Looping=*/true);
    Simulation.addTask(Workload);
  }

  // Target: explores random thread counts so the corpus covers the joint
  // (own threads, environment) state space; each decision is labelled by
  // the oracle under the environment observed at decision time.
  auto State = std::make_shared<ExplorerState>(Seed ^ 0xC33);
  State->Sim = &Simulation;
  State->Samples = &Samples;
  State->Machine = Machine;
  State->PlatformIndex = PlatformIndex;
  State->Program = TargetName;
  State->ScalFrac = scalabilityFraction(
      TargetName, Config.Platforms[Config.SplitPlatformIndex]);

  auto Chooser = [State, Cores](const workload::RegionContext &Context) {
    policy::FeatureVector F = policy::buildFeatures(Context, Cores);

    std::vector<TrainingSample> &Out = *State->Samples;
    if (State->PendingIndex >= 0) {
      Out[static_cast<size_t>(State->PendingIndex)].NextEnvNorm = F.EnvNorm;
      Out[static_cast<size_t>(State->PendingIndex)].HasNextEnv = true;
    }

    OracleEnv Env;
    Env.AvailableCores = std::max(
        1u, static_cast<unsigned>(std::lround(Context.Env.Processors)));
    Env.ExternalThreads = static_cast<unsigned>(
        std::lround(Context.Env.WorkloadThreads));
    double ExternalDemand = 0.0;
    for (const auto &T : State->Sim->tasks())
      if (T.get() != State->Self && !T->finished())
        ExternalDemand += T->memoryDemand();
    Env.ExternalMemDemand = ExternalDemand;

    TrainingSample Sample;
    Sample.Features = F.Values;
    Sample.BestThreads = static_cast<double>(empiricalBestThreads(
        *Context.Region, Env, State->Machine, State->Generator));
    Sample.Program = State->Program;
    Sample.PlatformIndex = State->PlatformIndex;
    Sample.PlatformCores = State->Machine.TotalCores;
    Sample.ScalabilityFraction = State->ScalFrac;
    Sample.Contended = Context.Env.RunQueue > Context.Env.Processors;
    Out.push_back(std::move(Sample));
    State->PendingIndex = static_cast<long>(Out.size()) - 1;

    if (State->CurrentThreads == 0 ||
        Context.Now - State->LastDraw >= ExplorerState::DrawPeriod) {
      State->CurrentThreads =
          static_cast<unsigned>(State->Generator.uniformInt(1, Cores));
      State->LastDraw = Context.Now;
    }
    return State->CurrentThreads;
  };

  auto Target = std::make_shared<workload::Program>(
      workload::Catalog::byName(TargetName), Chooser, Cores,
      /*Looping=*/true);
  State->Self = Target.get();
  Simulation.addTask(Target);

  Simulation.runUntil([] { return false; },
                      Config.RunDuration); // Fixed-duration run.
  State->PendingIndex = -1; // The final sample has no successor.
}

void ExpertBuilder::collect() {
  if (Collected)
    return;
  Collected = true;

  uint64_t Seed = Config.Seed;
  for (size_t P = 0; P < Config.Platforms.size(); ++P)
    for (const std::string &Target : Config.Programs) {
      for (const std::string &Workload : Config.Programs) {
        if (Workload == Target)
          continue;
        Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
        collectPair(Target, Workload, P, Seed);
      }
      // Isolated runs per target/platform so the corpus covers the
      // workload-free corner of the state space as well.
      for (int Iso = 0; Iso < 3; ++Iso) {
        Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
        collectPair(Target, "", P, Seed);
      }
    }
}

const std::vector<TrainingSample> &ExpertBuilder::samples() {
  collect();
  return Samples;
}

FeatureScaler ExpertBuilder::featureScaler() {
  collect();
  if (!HaveScaler) {
    std::vector<Vec> Rows;
    Rows.reserve(Samples.size());
    for (const TrainingSample &S : Samples)
      Rows.push_back(S.Features);
    CorpusScaler = FeatureScaler::fit(Rows);
    HaveScaler = true;
  }
  return CorpusScaler;
}

size_t ExpertBuilder::expertIndexFor(const TrainingSample &Sample,
                                     unsigned NumExperts,
                                     const std::vector<double> &BandEdges)
    const {
  double ScalableThreshold = 1.0 / Config.ScalabilityDivisor;
  size_t Hw = Sample.Contended ? 1 : 0;
  switch (NumExperts) {
  case 1:
    return 0;
  case 2:
    return Hw;
  case 4:
    return Hw * 2 +
           (Sample.ScalabilityFraction >= ScalableThreshold ? 1 : 0);
  case 8: {
    size_t Band = 0;
    while (Band < BandEdges.size() &&
           Sample.ScalabilityFraction > BandEdges[Band])
      ++Band;
    return Hw * 4 + Band;
  }
  default:
    reportFatalError("unsupported expert count (use 1, 2, 4 or 8)");
  }
}

std::vector<BuiltExpert> ExpertBuilder::build(unsigned NumExperts) {
  collect();
  return buildFrom(NumExperts, Samples);
}

std::vector<BuiltExpert> ExpertBuilder::buildSubsampled(unsigned NumExperts,
                                                        double Fraction) {
  collect();
  if (Fraction <= 0.0 || Fraction > 1.0)
    reportFatalError("subsample fraction must be in (0, 1]");
  size_t Stride = std::max<size_t>(1, std::lround(1.0 / Fraction));
  std::vector<TrainingSample> Subset;
  Subset.reserve(Samples.size() / Stride + 1);
  for (size_t I = 0; I < Samples.size(); I += Stride)
    Subset.push_back(Samples[I]);
  return buildFrom(NumExperts, Subset);
}

std::vector<BuiltExpert>
ExpertBuilder::buildFrom(unsigned NumExperts,
                         const std::vector<TrainingSample> &Corpus) {
  if (NumExperts != 1 && NumExperts != 2 && NumExperts != 4 &&
      NumExperts != 8)
    reportFatalError("unsupported expert count (use 1, 2, 4 or 8)");

  // Scaling-quartile edges for the 8-expert split: divide the training
  // programs into 4 equal groups by their scalability fraction on the
  // split platform (Section 8.4's "further splitting ... based on scaling
  // behavior").
  std::vector<double> BandEdges;
  if (NumExperts == 8) {
    std::vector<double> Fracs;
    for (const std::string &Program : Config.Programs)
      Fracs.push_back(scalabilityFraction(
          Program, Config.Platforms[Config.SplitPlatformIndex]));
    std::sort(Fracs.begin(), Fracs.end());
    // Quartile boundaries. With fewer than four programs the early
    // quartile indexes would wrap below zero; collapse them onto the
    // smallest fraction instead.
    for (size_t Q = 1; Q < 4 && !Fracs.empty(); ++Q) {
      size_t Idx = Q * Fracs.size() / 4;
      BandEdges.push_back(Fracs[Idx > 0 ? Idx - 1 : 0] + 1e-9);
    }
  }

  // Partition the corpus.
  const std::vector<std::string> &Names = policy::featureNames();
  std::vector<Dataset> ThreadData(NumExperts, Dataset(Names));
  std::vector<Dataset> EnvData(NumExperts, Dataset(Names));
  for (const TrainingSample &S : Corpus) {
    size_t K = expertIndexFor(S, NumExperts, BandEdges);
    ThreadData[K].add(S.Features, S.BestThreads, S.Program);
    if (S.HasNextEnv)
      EnvData[K].add(S.Features, S.NextEnvNorm, S.Program);
  }

  auto describe = [&](size_t K) -> std::string {
    switch (NumExperts) {
    case 1:
      return "monolithic";
    case 2:
      return K == 1 ? "contended" : "uncontended";
    case 4:
      return std::string(K / 2 == 1 ? "contended/" : "uncontended/") +
             (K % 2 == 1 ? "scalable" : "non-scalable");
    case 8:
      return std::string(K / 4 == 1 ? "contended/" : "uncontended/") +
             "band-" + std::to_string(K % 4);
    default:
      return "expert";
    }
  };

  // Thread predictors are trained with the corpus-wide feature scaler so
  // every expert's n prediction is comparable under the same inputs.
  // Environment predictors deliberately keep their subset's own scaler:
  // each m is a *specialist* — accurate inside its training regime and
  // increasingly wrong outside it — which is what makes environment error
  // a usable proxy for expert fitness (Section 4.2). A subset left empty
  // by the split (possible for the finest granularity) falls back to its
  // platform's full corpus.
  FeatureScaler Shared = featureScaler();
  LinearModelOptions ThreadOptions;
  ThreadOptions.Ridge = 1e-3;
  ThreadOptions.SharedScaler = &Shared;
  LinearModelOptions EnvOptions; // Ridge set per subset below.
  std::vector<BuiltExpert> Built;
  for (size_t K = 0; K < NumExperts; ++K) {
    Dataset Threads = ThreadData[K];
    Dataset Envs = EnvData[K];
    if (Threads.size() < 20) {
      // Degenerate subset: fall back to the whole hardware-state half.
      bool WantContended = NumExperts >= 2 && K >= NumExperts / 2;
      Threads = Dataset(Names);
      Envs = Dataset(Names);
      for (const TrainingSample &S : Corpus) {
        if (NumExperts >= 2 && S.Contended != WantContended)
          continue;
        Threads.add(S.Features, S.BestThreads, S.Program);
        if (S.HasNextEnv)
          Envs.add(S.Features, S.NextEnvNorm, S.Program);
      }
    }

    std::optional<LinearModel> W =
        trainLinearModel(Threads, "w:" + describe(K), ThreadOptions);
    EnvOptions.Ridge =
        std::max(1e-3, Config.EnvRidgeFraction *
                           static_cast<double>(Envs.size()));
    std::optional<LinearModel> M =
        trainLinearModel(Envs, "m:" + describe(K), EnvOptions);
    if (!W || !M)
      reportFatalError("failed to train expert '" + describe(K) + "'");

    double MeanEnv = mean(Envs.targets());
    BuiltExpert B{Expert("", describe(K), std::move(*W), std::move(*M),
                         MeanEnv),
                  std::move(Threads), std::move(Envs)};
    Built.push_back(std::move(B));
  }

  // Order experts by the calmness of their training regime and name them
  // E1..EK; the hyperplane selector maps low environment norms to low
  // expert indices.
  std::stable_sort(Built.begin(), Built.end(),
                   [](const BuiltExpert &A, const BuiltExpert &B) {
                     return A.E.meanTrainingEnv() < B.E.meanTrainingEnv();
                   });
  for (size_t K = 0; K < Built.size(); ++K)
    Built[K].E = Expert("E" + std::to_string(K + 1),
                        Built[K].E.description(), *Built[K].E.threadModel(),
                        *Built[K].E.envModel(),
                        Built[K].E.meanTrainingEnv());
  return Built;
}

LinearModel ExpertBuilder::monolithicThreadModel() {
  collect();
  Dataset All(policy::featureNames());
  for (const TrainingSample &S : Samples)
    All.add(S.Features, S.BestThreads, S.Program);
  FeatureScaler Shared = featureScaler();
  LinearModelOptions Options;
  Options.Ridge = 1e-3;
  Options.SharedScaler = &Shared;
  std::optional<LinearModel> Model =
      trainLinearModel(All, "w:aggregate", Options);
  if (!Model)
    reportFatalError("failed to train the aggregate model");
  return *Model;
}

std::vector<ScalabilityEntry> ExpertBuilder::scalabilityTable() {
  std::vector<ScalabilityEntry> Table;
  for (const sim::MachineConfig &Platform : Config.Platforms)
    for (const std::string &Program : Config.Programs) {
      ScalabilityEntry Entry;
      Entry.Program = Program;
      Entry.PlatformCores = Platform.TotalCores;
      Entry.IsolatedSpeedup = scalabilityFraction(Program, Platform) *
                              static_cast<double>(Platform.TotalCores);
      Entry.Scalable = Entry.IsolatedSpeedup >=
                       static_cast<double>(Platform.TotalCores) /
                           Config.ScalabilityDivisor;
      Table.push_back(std::move(Entry));
    }
  return Table;
}
