//===-- core/ExternalExperts.h - Non-linear and hand-written experts -*- C++ -*-===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's extension points, implemented:
///
///  * Section 9 asks "whether other modeling techniques such as SVMs
///    trained on the same data or hand written analytic models can be
///    selected by a mixtures approach". makeKnnExpert builds an expert
///    whose (w, m) pair are instance-based k-NN models over the same
///    corpus the linear experts use.
///
///  * Section 4.1 notes that hand-crafted experts have no environment
///    predictor, and suggests "periodically select an expert (with no
///    environment predictor) and see how it affects the environment ...
///    slowly building an environment predictor automatically over time".
///    makeHandcraftedExpert wraps a human-written thread heuristic and
///    attaches an OnlineEnvModel that starts as a prior and refines itself
///    from the observations the mixture feeds back.
///
//===----------------------------------------------------------------------===//

#ifndef MEDLEY_CORE_EXTERNALEXPERTS_H
#define MEDLEY_CORE_EXTERNALEXPERTS_H

#include "core/Expert.h"
#include "ml/KnnModel.h"
#include "ml/SvrModel.h"
#include "sim/Machine.h"

namespace medley::core {

class ExpertBuilder;

/// An environment predictor learned online: an exponentially-weighted
/// running estimate of the environment norm, optionally conditioned on the
/// observable machine regime (contended / uncontended). Starts from a
/// prior and converges as observations arrive.
class OnlineEnvModel {
public:
  /// \p Prior seeds both regimes' estimates; \p Alpha is the EMA step.
  explicit OnlineEnvModel(double Prior, double Alpha = 0.1);

  /// Predicted ||e_{t+1}|| for the 10-feature vector \p Features.
  double predict(const Vec &Features) const;

  /// Folds in a realised observation for a past decision at \p Features.
  void observe(const Vec &Features, double ObservedEnvNorm);

  /// Observations folded in so far.
  size_t observations() const { return Count; }

private:
  static bool contended(const Vec &Features);

  double Alpha;
  double Estimate[2]; ///< Per regime: [uncontended, contended].
  size_t Count = 0;
};

/// Builds an expert whose thread and environment predictors are k-NN
/// models trained on \p Builder's corpus ("other modeling techniques ...
/// trained on the same data", Section 9). Fatal error if the corpus is
/// empty.
Expert makeKnnExpert(ExpertBuilder &Builder, const std::string &Name,
                     KnnOptions Options = {});

/// Builds an expert whose thread and environment predictors are linear
/// epsilon-SVR models trained on \p Builder's corpus — the paper's own
/// example of an alternative modelling technique ("such as SVMs trained on
/// the same data", Section 9). Fatal error if the corpus is empty.
Expert makeSvrExpert(ExpertBuilder &Builder, const std::string &Name,
                     SvrOptions Options = {});

/// Builds a hand-written analytic expert for \p Machine:
///   * thread heuristic: claim the processors left over by the external
///     workload; stay within one socket when the loop is branchy
///     (synchronisation-bound); never exceed the machine.
///   * environment model: an OnlineEnvModel (shared_ptr captured by the
///     expert's hooks) that learns from the mixture's feedback.
Expert makeHandcraftedExpert(const sim::MachineConfig &Machine,
                             const std::string &Name);

} // namespace medley::core

#endif // MEDLEY_CORE_EXTERNALEXPERTS_H
