//===-- core/LiveMixture.cpp - Registry-backed mixture policy ------------------------===//
//
// Part of Medley, a reproduction of "Celebrating Diversity" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "core/LiveMixture.h"

#include <cassert>

using namespace medley;
using namespace medley::core;

LiveMixture::LiveMixture(std::shared_ptr<ExpertRegistry> Registry,
                         std::unique_ptr<ExpertSelector> Selector,
                         std::shared_ptr<RolloutController> Rollout,
                         std::shared_ptr<MoeStats> Stats,
                         MixtureOptions Options)
    : Registry(std::move(Registry)), Rollout(std::move(Rollout)) {
  assert(this->Registry && "live mixture needs a registry");
  const ExpertSnapshot *Snap = this->Registry->acquire(Reader);
  assert(Snap && "registry must hold an initial snapshot");
  Inner = std::make_unique<MixtureOfExperts>(
      Snap->Experts, std::move(Selector), std::move(Stats), Options);
  // Identity tag for publication detection: only ever *compared* against
  // the freshly acquired snapshot, never dereferenced, so a retired
  // generation cannot be reached through it (and `Reader` pins the
  // current one regardless).
  // medley-lint: allow(snapshot-retention)
  BoundExperts = Snap->Experts.get();
  BoundVersion = Snap->Version;
}

void LiveMixture::beginDecisionEpoch() {
  // Rollout transitions (mailbox staging, publication, rollback) execute
  // here, off the decision's feature/selection path.
  if (Rollout) {
    Rollout->maintain();
    if (Rollout->consumeRollback())
      // The rolled-back snapshot struck its way out; those strikes say
      // nothing about the restored experts.
      Inner->readmitQuarantined();
  }

  const ExpertSnapshot *Snap = Registry->acquire(Reader);
  if (!Snap || Snap->Experts.get() == BoundExperts)
    return; // Steady path: nothing published since the last decision.
  if (Inner->rebindExperts(Snap->Experts)) {
    // Same identity-tag pattern as the constructor: compared, never
    // dereferenced, and `Reader` keeps the matching epoch pinned.
    // medley-lint: allow(snapshot-retention)
    BoundExperts = Snap->Experts.get();
    BoundVersion = Snap->Version;
    ++Swaps;
  }
  // An arity-mismatched snapshot (foreign publication) is skipped: the
  // policy keeps deciding with the experts it has.
}

unsigned LiveMixture::select(const policy::FeatureVector &Features) {
  if (Rollout)
    Rollout->observe(Features);
  return Inner->select(Features);
}

void LiveMixture::observe(const workload::RegionOutcome &Outcome) {
  Inner->observe(Outcome);
}

void LiveMixture::reset() { Inner->reset(); }

const std::string &LiveMixture::name() const {
  static const std::string Name = "mixture-live";
  return Name;
}
